//! The device contract, property-tested: for randomized recorded scenes,
//! every executor — [`TiledDevice`] across several tile counts and thread
//! counts, [`SimdDevice`] standalone, and the SIMD kernels inside tiled
//! bands — must produce bit-identical framebuffers, readback results and
//! [`HwStats`] counters to [`ReferenceDevice`].
//!
//! The scenes deliberately exercise every command the recorder can emit:
//! all three overlap-strategy choreographies (accumulation, blending,
//! stencil), wide anti-aliased lines and smooth points, filled polygons,
//! scissored sub-window passes with their own viewports, and all three
//! readback kinds (Minmax, stencil-max, per-cell reduction).

use proptest::prelude::*;
use spatial_geom::{Point, Rect, Segment};
use spatial_raster::framebuffer::HALF_GRAY;
use spatial_raster::{
    CommandList, DeviceError, FaultDevice, FaultKind, FaultPlan, FaultTrigger, OverlapStrategy,
    PixelRect, RasterDevice, Recorder, ReferenceDevice, SimdDevice, TiledDevice, Viewport,
};
use spatial_raster::{FrameBuffer, WriteMode};

#[derive(Debug, Clone)]
struct Scene {
    width: usize,
    height: usize,
    region: Rect,
    strategy: OverlapStrategy,
    line_width: f64,
    point_size: f64,
    first_segments: Vec<Segment>,
    second_segments: Vec<Segment>,
    points: Vec<Point>,
    polygon: Vec<Point>,
    /// A scissored overwrite pass inside this sub-rectangle, if any.
    scissor: Option<(PixelRect, Vec<Segment>)>,
}

const EXTENT: f64 = 24.0;

prop_compose! {
    fn arb_point()(x in -EXTENT..EXTENT, y in -EXTENT..EXTENT) -> Point {
        Point::new(x, y)
    }
}

prop_compose! {
    fn arb_segment()(a in arb_point(), b in arb_point()) -> Segment {
        Segment::new(a, b)
    }
}

prop_compose! {
    fn arb_scene()(
        width in 3usize..40,
        height in 3usize..40,
        rx in -8.0f64..8.0,
        ry in -8.0f64..8.0,
        rw in 0.5f64..30.0,
        rh in 0.5f64..30.0,
        strategy_pick in 0usize..3,
        line_width in 1.0f64..8.0,
        point_size in 1.0f64..8.0,
        first_segments in prop::collection::vec(arb_segment(), 0..10),
        second_segments in prop::collection::vec(arb_segment(), 0..10),
        points in prop::collection::vec(arb_point(), 0..6),
        polygon in prop::collection::vec(arb_point(), 3..7),
        with_scissor in 0usize..2,
        scissor_segments in prop::collection::vec(arb_segment(), 1..5),
    ) -> Scene {
        let strategy = match strategy_pick {
            0 => OverlapStrategy::Accumulation,
            1 => OverlapStrategy::Blending,
            _ => OverlapStrategy::Stencil,
        };
        // A scissor rectangle in the lower-left quadrant — always
        // non-empty and in bounds for any window ≥ 3×3.
        let scissor = (with_scissor == 1).then(|| {
            (
                PixelRect {
                    x: 1,
                    y: 1,
                    w: (width / 2).max(1),
                    h: (height / 2).max(1),
                },
                scissor_segments.clone(),
            )
        });
        Scene {
            width,
            height,
            region: Rect::new(rx, ry, rx + rw, ry + rh),
            strategy,
            line_width,
            point_size,
            first_segments,
            second_segments,
            points,
            polygon,
            scissor,
        }
    }
}

/// Records the full-choreography command list for a scene.
fn record(scene: &Scene) -> CommandList {
    let mut rec = Recorder::new(scene.width, scene.height);
    rec.set_viewport(Viewport::new(scene.region, scene.width, scene.height))
        .unwrap();
    rec.set_color(HALF_GRAY);
    rec.set_line_width(scene.line_width).unwrap();
    rec.set_point_size(scene.point_size).unwrap();
    match scene.strategy {
        OverlapStrategy::Accumulation => {
            rec.set_write_mode(WriteMode::Overwrite);
            rec.clear_color();
            rec.clear_accum();
            rec.draw_segments(scene.first_segments.iter().copied())
                .unwrap();
            rec.draw_points(scene.points.iter().copied()).unwrap();
            rec.fill_polygon(scene.polygon.iter().copied()).unwrap();
            rec.accum_load();
            rec.clear_color();
            rec.draw_segments(scene.second_segments.iter().copied())
                .unwrap();
            rec.accum_add();
            rec.accum_return();
            rec.minmax();
        }
        OverlapStrategy::Blending => {
            rec.set_write_mode(WriteMode::Overwrite);
            rec.clear_color();
            rec.draw_segments(scene.first_segments.iter().copied())
                .unwrap();
            rec.set_write_mode(WriteMode::Blend);
            rec.draw_segments(scene.second_segments.iter().copied())
                .unwrap();
            rec.draw_points(scene.points.iter().copied()).unwrap();
            rec.set_write_mode(WriteMode::Overwrite);
            rec.minmax();
        }
        OverlapStrategy::Stencil => {
            rec.clear_stencil();
            rec.set_write_mode(WriteMode::StencilReplace(1));
            rec.draw_segments(scene.first_segments.iter().copied())
                .unwrap();
            rec.fill_polygon(scene.polygon.iter().copied()).unwrap();
            rec.set_write_mode(WriteMode::StencilIncrIfEq(1));
            rec.draw_segments(scene.second_segments.iter().copied())
                .unwrap();
            rec.draw_points(scene.points.iter().copied()).unwrap();
            rec.set_write_mode(WriteMode::Overwrite);
            rec.stencil_max();
        }
    }
    // A scissored tail pass: cell-local viewport, merged draw extension,
    // and the batched per-cell reduction readback.
    if let Some((cell, segs)) = &scene.scissor {
        rec.set_scissor(Some(*cell)).unwrap();
        rec.set_viewport(Viewport::new(scene.region, cell.w, cell.h))
            .unwrap();
        rec.draw_segments(segs.iter().copied()).unwrap();
        rec.extend_draw_segments(segs.iter().rev().copied())
            .unwrap();
        rec.set_scissor(None).unwrap();
        rec.cell_max([
            *cell,
            PixelRect {
                x: 0,
                y: 0,
                w: scene.width,
                h: scene.height,
            },
        ])
        .unwrap();
    }
    rec.finish()
}

fn reference_run(list: &CommandList) -> (spatial_raster::Execution, FrameBuffer) {
    let mut reference = ReferenceDevice::new();
    let exec = reference.execute(list).expect("reference is infallible");
    let fb = reference.snapshot().expect("executed at least once");
    (exec, fb)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The tentpole invariant: every executor — scalar tiled at every
    /// tile/thread configuration, SIMD standalone, and SIMD inside tiled
    /// bands — is bit-identical to the reference replay: stats, readbacks,
    /// pixels.
    #[test]
    fn executors_are_bit_identical_to_reference(scene in arb_scene()) {
        let list = record(&scene);
        let (ref_exec, ref_fb) = reference_run(&list);
        let mut devices: Vec<Box<dyn RasterDevice>> = vec![Box::new(SimdDevice::new())];
        for tiles in [2usize, 5] {
            for threads in [1usize, 2, 4] {
                devices.push(Box::new(TiledDevice::new(tiles, threads)));
                devices.push(Box::new(TiledDevice::new_simd(tiles, threads)));
            }
        }
        for dev in &mut devices {
            let exec = dev.execute(&list).expect("simulated executors are infallible");
            prop_assert!(exec.validate(&list).is_ok(), "validation failed on {:?}", dev);
            prop_assert_eq!(
                &exec.stats, &ref_exec.stats,
                "stats diverged on {:?}", dev
            );
            prop_assert_eq!(
                &exec.readbacks, &ref_exec.readbacks,
                "readbacks diverged on {:?}", dev
            );
            let fb = dev.snapshot().expect("executed at least once");
            prop_assert!(fb == ref_fb, "framebuffer diverged on {:?}", dev);
        }
    }

    /// Executing the same list twice on the same device is idempotent:
    /// counters are a pure function of the list, not of device history.
    #[test]
    fn re_execution_is_pure(scene in arb_scene()) {
        let list = record(&scene);
        let mut devices: Vec<Box<dyn RasterDevice>> = vec![
            Box::new(TiledDevice::new(3, 2)),
            Box::new(SimdDevice::new()),
            Box::new(TiledDevice::new_simd(3, 2)),
        ];
        for dev in &mut devices {
            let first = dev.execute(&list).expect("simulated executors are infallible");
            let second = dev.execute(&list).expect("simulated executors are infallible");
            prop_assert_eq!(first, second, "impure execution on {:?}", dev);
        }
    }

    /// More tiles than rows, one tile, or one thread: degenerate shapes
    /// still match the reference exactly — in both scalar and SIMD mode.
    #[test]
    fn degenerate_tile_configs_match(scene in arb_scene()) {
        let list = record(&scene);
        let (ref_exec, ref_fb) = reference_run(&list);
        for (tiles, threads) in [(1usize, 1usize), (64, 2), (scene.height + 3, 8)] {
            for simd in [false, true] {
                let mut tiled = if simd {
                    TiledDevice::new_simd(tiles, threads)
                } else {
                    TiledDevice::new(tiles, threads)
                };
                let exec = tiled.execute(&list).expect("simulated executors are infallible");
                prop_assert_eq!(&exec.stats, &ref_exec.stats);
                prop_assert_eq!(&exec.readbacks, &ref_exec.readbacks);
                prop_assert!(tiled.snapshot().expect("ran") == ref_fb);
            }
        }
    }

    /// Fusing a recorded list is set-preserving on every backend: the
    /// fused list produces bit-identical charged stats, readbacks and
    /// framebuffer pixels on the reference, tiled, SIMD and tiled+SIMD
    /// executors — and identical outcome sequences under seeded fault
    /// schedules, since fusion never changes how often a list executes.
    #[test]
    fn fusion_preserves_execution_on_every_backend(
        scene in arb_scene(),
        seed in 0u64..u64::MAX,
    ) {
        let list = record(&scene);
        let (fused, _elided) = list.fuse();
        let (ref_exec, ref_fb) = reference_run(&list);
        let mut devices: Vec<Box<dyn RasterDevice>> = vec![
            Box::new(ReferenceDevice::new()),
            Box::new(SimdDevice::new()),
            Box::new(TiledDevice::new(3, 2)),
            Box::new(TiledDevice::new_simd(5, 3)),
        ];
        for dev in &mut devices {
            let exec = dev.execute(&fused).expect("simulated executors are infallible");
            prop_assert_eq!(&exec.stats, &ref_exec.stats, "stats diverged on {:?}", dev);
            prop_assert_eq!(
                &exec.readbacks, &ref_exec.readbacks,
                "readbacks diverged on {:?}", dev
            );
            let fb = dev.snapshot().expect("executed at least once");
            prop_assert!(fb == ref_fb, "framebuffer diverged on {:?}", dev);
        }
        // Identically-seeded fault schedules must be indistinguishable
        // between the fused and unfused lists, outcome for outcome.
        for kind in [FaultKind::ContextLost, FaultKind::ReadbackBitFlip] {
            let plan = FaultPlan::new(seed, kind, FaultTrigger::EveryK(2));
            let run = |l: &CommandList| -> Vec<Result<spatial_raster::Execution, DeviceError>> {
                let mut dev = FaultDevice::new(Box::new(SimdDevice::new()), plan);
                (0..4).map(|_| dev.execute(l)).collect()
            };
            prop_assert_eq!(run(&fused), run(&list), "fault schedule diverged under {:?}", kind);
        }
    }

    /// A failed band worker poisons the whole execution with the same
    /// typed error at every thread count — error reporting is a function
    /// of the faulted band, never of thread scheduling — and the fault
    /// does not stick: the next execute on the same device is clean and
    /// bit-identical to the reference.
    #[test]
    fn band_worker_faults_poison_the_merge_deterministically(
        scene in arb_scene(),
        band in 0usize..5,
        simd_pick in 0usize..2,
    ) {
        let simd = simd_pick == 1;
        let list = record(&scene);
        let (ref_exec, _) = reference_run(&list);
        let mut outcomes: Vec<Result<(), DeviceError>> = Vec::new();
        for threads in [1usize, 2, 3, 8] {
            let mut dev = if simd {
                TiledDevice::new_simd(5, threads)
            } else {
                TiledDevice::new(5, threads)
            };
            dev.inject_band_fault(band, DeviceError::OutOfMemory);
            outcomes.push(dev.execute(&list).map(|_| ()));
            let retry = dev.execute(&list).expect("injected faults are one-shot");
            prop_assert_eq!(&retry.stats, &ref_exec.stats, "threads {}", threads);
            prop_assert_eq!(&retry.readbacks, &ref_exec.readbacks, "threads {}", threads);
        }
        for o in &outcomes[1..] {
            prop_assert_eq!(o, &outcomes[0], "error reporting depends on thread count");
        }
        // Band indices inside the partition must actually fault.
        if band < list.height().min(5) {
            prop_assert_eq!(outcomes[0], Err(DeviceError::OutOfMemory));
        }
    }

    /// A fault-wrapped executor is transparent off-schedule and fails with
    /// exactly the planned error on schedule, deterministically across
    /// repeat runs of the same plan.
    #[test]
    fn fault_device_schedule_is_deterministic(
        scene in arb_scene(),
        seed in 0u64..u64::MAX,
        every in 1u64..4,
    ) {
        let list = record(&scene);
        let (ref_exec, _) = reference_run(&list);
        let plan = FaultPlan::new(seed, FaultKind::ContextLost, FaultTrigger::EveryK(every));
        let run = |n: usize| -> Vec<Result<spatial_raster::Execution, DeviceError>> {
            let mut dev = FaultDevice::new(Box::new(SimdDevice::new()), plan);
            (0..n).map(|_| dev.execute(&list)).collect()
        };
        let first = run(6);
        let second = run(6);
        prop_assert_eq!(&first, &second, "schedule must be reproducible");
        for (i, r) in first.iter().enumerate() {
            if (i as u64 + 1).is_multiple_of(every) {
                prop_assert_eq!(r, &Err(DeviceError::ContextLost), "execute {}", i);
            } else {
                let exec = r.as_ref().expect("off-schedule executes are clean");
                prop_assert_eq!(&exec.readbacks, &ref_exec.readbacks, "execute {}", i);
            }
        }
    }

    /// A sharded ensemble is bit-identical to the reference on every
    /// shard, whatever routing sequence selects them, and merging a fixed
    /// partition order of executions equals executing the concatenation's
    /// parts one by one — sharding is pure fan-out, never a semantic knob.
    #[test]
    fn sharded_device_matches_reference_on_every_route(
        scene in arb_scene(),
        shards in 1usize..5,
        routes in prop::collection::vec(0usize..8, 1..6),
    ) {
        use spatial_raster::{DeviceKind, ShardedDevice};
        let list = record(&scene);
        let (ref_exec, ref_fb) = reference_run(&list);
        for inner in [DeviceKind::Reference, DeviceKind::Simd,
                      DeviceKind::Tiled { tiles: 3, threads: 2 }] {
            let mut dev = ShardedDevice::new(&inner, shards);
            let mut per_route = Vec::new();
            for &r in &routes {
                dev.route(r);
                prop_assert_eq!(dev.active(), r % shards);
                let exec = dev.execute(&list).expect("simulated executors are infallible");
                prop_assert_eq!(&exec.stats, &ref_exec.stats, "stats diverged on {:?}", inner);
                prop_assert_eq!(&exec.readbacks, &ref_exec.readbacks);
                prop_assert!(dev.snapshot().expect("ran") == ref_fb);
                per_route.push(exec);
            }
            // Fixed-order merge: counters sum, readbacks concatenate.
            let n = per_route.len();
            let merged = ShardedDevice::merge(per_route);
            prop_assert_eq!(merged.readbacks.len(), n * ref_exec.readbacks.len());
            prop_assert_eq!(merged.stats.draw_calls, n * ref_exec.stats.draw_calls);
        }
    }

    /// `failover_route` is a stable rehash: the identity when the
    /// desired shard is healthy, otherwise the nearest healthy
    /// successor in cyclic scan order, and `None` exactly when no shard
    /// is healthy. Pure function of (desired, mask) — calling it twice
    /// can never disagree.
    #[test]
    fn failover_route_is_identity_or_nearest_healthy_successor(
        desired in 0usize..64,
        // 0/1 per shard (the vendored proptest has no `any::<bool>()`).
        health_bits in prop::collection::vec(0usize..2, 1..8),
    ) {
        use spatial_raster::failover_route;
        let healthy: Vec<bool> = health_bits.into_iter().map(|b| b == 1).collect();
        let n = healthy.len();
        let d = desired % n;
        let got = failover_route(d, &healthy);
        prop_assert_eq!(got, failover_route(d, &healthy), "must be pure");
        match got {
            None => prop_assert!(healthy.iter().all(|&h| !h)),
            Some(s) => {
                prop_assert!(healthy[s], "routed to an unhealthy shard");
                if healthy[d] {
                    prop_assert_eq!(s, d, "healthy desired shard must be kept");
                }
                // No healthy shard sits strictly between desired and the
                // pick in scan order — the rehash is minimal.
                let steps = (s + n - d) % n;
                for k in 0..steps {
                    prop_assert!(!healthy[(d + k) % n]);
                }
            }
        }
    }

    /// With one shard marked dead, every route still executes — on the
    /// rehashed shard — and stays bit-identical to the reference across
    /// shard counts {1, 2, 4}: the health mask moves work, never
    /// results.
    #[test]
    fn dead_shard_rehash_is_bit_identical(
        scene in arb_scene(),
        dead in 0usize..4,
        routes in prop::collection::vec(0usize..8, 1..5),
    ) {
        use spatial_raster::{DeviceKind, ShardedDevice};
        let list = record(&scene);
        let (ref_exec, ref_fb) = reference_run(&list);
        for shards in [1usize, 2, 4] {
            let mut dev = ShardedDevice::new(&DeviceKind::Simd, shards);
            let dead = dead % shards;
            if shards > 1 {
                dev.set_shard_health(dead, false);
            }
            for &r in &routes {
                dev.route(r);
                if shards > 1 {
                    prop_assert_ne!(
                        dev.active(), dead,
                        "route {} landed on the dead shard of {}", r, shards
                    );
                }
                let exec = dev.execute(&list).expect("simulated executors are infallible");
                prop_assert_eq!(&exec.stats, &ref_exec.stats, "stats diverged, {} shards", shards);
                prop_assert_eq!(&exec.readbacks, &ref_exec.readbacks);
                prop_assert!(dev.snapshot().expect("ran") == ref_fb);
            }
            // Reinstating the shard restores identity routing.
            if shards > 1 {
                dev.set_shard_health(dead, true);
                dev.route(dead);
                prop_assert_eq!(dev.active(), dead);
            }
        }
    }
}
