//! Property tests for the rasterization rules the paper's correctness
//! argument depends on (§2.2, §3.1).

use proptest::prelude::*;
use spatial_geom::predicates::segments_intersect;
use spatial_geom::{Point, Rect, Segment};
use spatial_raster::aa_line::{rasterize_aa_line, DIAGONAL_WIDTH};
use spatial_raster::line_raster::rasterize_line_diamond_exit;
use spatial_raster::point_raster::rasterize_wide_point;
use spatial_raster::{GlContext, HwStats, Viewport};

fn aa_pixels(a: Point, b: Point, w: f64, win: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut st = HwStats::default();
    rasterize_aa_line(a, b, w, win, win, &mut st, &mut |x, y| out.push((x, y)));
    out.sort_unstable();
    out.dedup();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Conservativeness of AA lines: every pixel the mathematical segment
    /// passes through is colored (for any positive width).
    #[test]
    fn aa_line_covers_segment(
        ax in 0.0f64..16.0, ay in 0.0f64..16.0,
        bx in 0.0f64..16.0, by in 0.0f64..16.0,
        w in 0.1f64..4.0,
    ) {
        let a = Point::new(ax, ay);
        let b = Point::new(bx, by);
        prop_assume!(a != b);
        let px = aa_pixels(a, b, w, 16);
        for k in 0..=100 {
            let p = a.lerp(b, k as f64 / 100.0);
            let cell = ((p.x.floor() as usize).min(15), (p.y.floor() as usize).min(15));
            prop_assert!(px.contains(&cell), "segment point {} missed pixel {:?}", p, cell);
        }
    }

    /// The Algorithm 3.1 invariant at rasterizer level: intersecting
    /// segments always share at least one colored pixel — at any window
    /// resolution, any line width.
    #[test]
    fn crossing_segments_always_share_a_pixel(
        ax in 0.0f64..1.0, ay in 0.0f64..1.0,
        bx in 0.0f64..1.0, by in 0.0f64..1.0,
        cx in 0.0f64..1.0, cy in 0.0f64..1.0,
        dx in 0.0f64..1.0, dy in 0.0f64..1.0,
        win in 1usize..33,
    ) {
        let (a, b) = (Point::new(ax, ay), Point::new(bx, by));
        let (c, d) = (Point::new(cx, cy), Point::new(dx, dy));
        prop_assume!(a != b && c != d);
        prop_assume!(segments_intersect(a, b, c, d));
        let s = win as f64;
        let scale = |p: Point| Point::new(p.x * s, p.y * s);
        let p1 = aa_pixels(scale(a), scale(b), DIAGONAL_WIDTH, win);
        let p2 = aa_pixels(scale(c), scale(d), DIAGONAL_WIDTH, win);
        prop_assert!(
            p1.iter().any(|c| p2.contains(c)),
            "intersecting segments share no pixel at {}x{}", win, win
        );
    }

    /// Wide points cover the full disc (no point within the radius falls
    /// into an un-colored pixel).
    #[test]
    fn wide_point_covers_disc(
        px in 1.0f64..15.0, py in 1.0f64..15.0,
        size in 0.2f64..6.0,
        ang in 0.0f64..std::f64::consts::TAU,
        frac in 0.0f64..1.0,
    ) {
        let c = Point::new(px, py);
        let mut pixels = Vec::new();
        let mut st = HwStats::default();
        rasterize_wide_point(c, size, 16, 16, &mut st, &mut |x, y| pixels.push((x, y)));
        let q = Point::new(
            c.x + frac * size / 2.0 * ang.cos(),
            c.y + frac * size / 2.0 * ang.sin(),
        );
        let cell = ((q.x.floor() as usize).min(15), (q.y.floor() as usize).min(15));
        prop_assert!(pixels.contains(&cell), "disc point {} missed pixel {:?}", q, cell);
    }

    /// Diamond-exit at chain joints (§2.2.2's motivation): the pixel whose
    /// diamond contains a joint vertex is colored by at most one of the
    /// two segments meeting there — connected chains never double-color
    /// their joints. (Chains may legitimately revisit *other* pixels; the
    /// spec's guarantee is specifically about the shared endpoint.)
    #[test]
    fn diamond_exit_joints_color_once(
        xs in prop::collection::vec(0.0f64..16.0, 3..8),
        ys in prop::collection::vec(0.0f64..16.0, 3..8),
    ) {
        let n = xs.len().min(ys.len());
        let pts: Vec<Point> = (0..n).map(|i| Point::new(xs[i], ys[i])).collect();
        prop_assume!(pts.windows(2).all(|w| w[0] != w[1]));
        let mut st = HwStats::default();
        for w in pts.windows(3) {
            let joint = w[1];
            // The pixel whose diamond contains the joint (if any).
            let (i, j) = (joint.x.floor() as i64, joint.y.floor() as i64);
            let center = Point::new(i as f64 + 0.5, j as f64 + 0.5);
            let in_diamond =
                (joint.x - center.x).abs() + (joint.y - center.y).abs() < 0.5;
            prop_assume!(in_diamond);
            let mut colored = 0usize;
            for seg in [(w[0], w[1]), (w[1], w[2])] {
                let mut hit = false;
                rasterize_line_diamond_exit(seg.0, seg.1, 16, 16, &mut st, &mut |x, y| {
                    if x as i64 == i && y as i64 == j {
                        hit = true;
                    }
                });
                colored += hit as usize;
            }
            prop_assert!(colored <= 1, "joint diamond pixel colored {} times", colored);
        }
    }

    /// End-to-end context invariant: the full Algorithm 3.1 buffer
    /// choreography reports overlap whenever two segments truly intersect.
    #[test]
    fn context_choreography_is_conservative(
        ax in 0.0f64..100.0, ay in 0.0f64..100.0,
        bx in 0.0f64..100.0, by in 0.0f64..100.0,
        cx in 0.0f64..100.0, cy in 0.0f64..100.0,
        dx in 0.0f64..100.0, dy in 0.0f64..100.0,
        win in 1usize..17,
    ) {
        let s1 = Segment::new(Point::new(ax, ay), Point::new(bx, by));
        let s2 = Segment::new(Point::new(cx, cy), Point::new(dx, dy));
        prop_assume!(!s1.is_degenerate() && !s2.is_degenerate());
        let vp = Viewport::new(Rect::new(0.0, 0.0, 100.0, 100.0), win, win);
        let mut gl = GlContext::new(vp);
        gl.clear_color_buffer();
        gl.clear_accum_buffer();
        gl.draw_segments(&[s1]);
        gl.accum_load();
        gl.clear_color_buffer();
        gl.draw_segments(&[s2]);
        gl.accum_add();
        gl.accum_return();
        let overlap = gl.max_value() >= 1.0;
        if s1.intersects(&s2) {
            prop_assert!(overlap, "true intersection reported as disjoint");
        }
        // The converse may be false (false hits at coarse resolutions) —
        // that is exactly why Algorithm 3.1 keeps the software step 3.
    }
}
