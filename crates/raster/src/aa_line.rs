//! Anti-aliased wide-line rasterization (§2.2.2, Fig. 4) — the load-bearing
//! primitive of the hardware segment test.
//!
//! An anti-aliased line of width `w` is rasterized through its *bounding
//! rectangle*: two edges parallel to the segment at distance `w/2`, two
//! perpendicular edges through the end points. Real hardware assigns each
//! touched pixel an alpha equal to its coverage fraction; with **blending
//! disabled** (the paper's configuration) the alpha is ignored and every
//! pixel with non-zero coverage receives the full line color.
//!
//! That yields the conservativeness guarantee of Algorithm 3.1: "with
//! anti-aliasing enabled, every pixel that intersects the line segment is
//! colored, therefore if two line segments intersect, there exists at least
//! one pixel that is colored twice." We implement coverage exactly as
//! "pixel square ∩ oriented rectangle ≠ ∅" (closed), decided by a
//! separating-axis test.
//!
//! The per-pixel test is the inner loop of every hardware-assisted query,
//! so it is kept lean: the candidate loop bounds already guarantee overlap
//! on the window axes, leaving only the rectangle's two edge normals to
//! check, with all rectangle projections hoisted out of the loop. (This is
//! the simulation's stand-in for the GPU's parallel coverage evaluation.)

use crate::stats::HwStats;
use spatial_geom::Point;

/// The paper's default width for intersection tests: the pixel diagonal.
pub const DIAGONAL_WIDTH: f64 = std::f64::consts::SQRT_2;

/// The four corners of the width-`w` bounding rectangle of segment `a→b`.
/// Returns `None` for a degenerate (zero-length) segment — callers render a
/// wide point instead.
pub fn bounding_rectangle(a: Point, b: Point, w: f64) -> Option<[Point; 4]> {
    let dir = (b - a).normalized()?;
    let n = dir.perp() * (w / 2.0);
    Some([a + n, b + n, b - n, a - n])
}

/// Rasterizes the anti-aliased line `a→b` of width `w` (window
/// coordinates), emitting every pixel whose square intersects the bounding
/// rectangle. Degenerate segments emit nothing.
#[inline]
pub fn rasterize_aa_line(
    a: Point,
    b: Point,
    w: f64,
    width: usize,
    height: usize,
    stats: &mut HwStats,
    sink: &mut impl FnMut(usize, usize),
) {
    rasterize_aa_line_rows(a, b, w, width, 0, height as i64 - 1, stats, sink)
}

/// [`rasterize_aa_line`] restricted to scanlines `row_lo..=row_hi`
/// (inclusive, window coordinates). All per-pixel math stays in *absolute*
/// window coordinates — the clip only narrows the candidate loop — so a
/// partition of the window into row bands emits exactly the full window's
/// fragments, each in exactly one band. The tiled device depends on that
/// for bit-identical framebuffers and counters.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn rasterize_aa_line_rows(
    a: Point,
    b: Point,
    w: f64,
    width: usize,
    row_lo: i64,
    row_hi: i64,
    stats: &mut HwStats,
    sink: &mut impl FnMut(usize, usize),
) {
    debug_assert!(w > 0.0);
    let dir = match (b - a).normalized() {
        Some(d) => d,
        None => return,
    };
    let n = dir.perp() * (w / 2.0);
    let corners = [a + n, b + n, b - n, a - n];

    let mut xmin = f64::INFINITY;
    let mut xmax = f64::NEG_INFINITY;
    let mut ymin = f64::INFINITY;
    let mut ymax = f64::NEG_INFINITY;
    for p in &corners {
        xmin = xmin.min(p.x);
        xmax = xmax.max(p.x);
        ymin = ymin.min(p.y);
        ymax = ymax.max(p.y);
    }
    let x_lo = (xmin.floor() as i64).max(0);
    let x_hi = (xmax.floor() as i64).min(width as i64 - 1);
    let y_lo = (ymin.floor() as i64).max(row_lo.max(0));
    let y_hi = (ymax.floor() as i64).min(row_hi);
    if x_lo > x_hi || y_lo > y_hi {
        return;
    }

    // Separating axes. The candidate loop below only visits pixels whose
    // square overlaps the rectangle's AABB, so the window axes (1,0)/(0,1)
    // can never separate; only the rectangle's own edge normals remain:
    // `dir` (separates beyond the end caps) and `perp` (beyond the sides).
    //
    // Projections of the rectangle onto each axis, hoisted: onto `dir` the
    // rectangle spans [a·dir, b·dir] (a before b by construction); onto
    // `perp` it spans (a·perp) ± w/2.
    let perp = dir.perp();
    let rect_d_lo = a.x * dir.x + a.y * dir.y;
    let rect_d_hi = b.x * dir.x + b.y * dir.y;
    let (rect_d_lo, rect_d_hi) = if rect_d_lo <= rect_d_hi {
        (rect_d_lo, rect_d_hi)
    } else {
        (rect_d_hi, rect_d_lo)
    };
    let center_p = a.x * perp.x + a.y * perp.y; // b projects identically
    let rect_p_lo = center_p - w / 2.0;
    let rect_p_hi = center_p + w / 2.0;
    // A unit square centered at c projects onto axis n as
    // c·n ± (|n.x| + |n.y|) / 2.
    let half_d = (dir.x.abs() + dir.y.abs()) / 2.0;
    let half_p = (perp.x.abs() + perp.y.abs()) / 2.0;

    for j in y_lo..=y_hi {
        let cy = j as f64 + 0.5;
        for i in x_lo..=x_hi {
            stats.fragments_tested += 1;
            let cx = i as f64 + 0.5;
            let c_d = cx * dir.x + cy * dir.y;
            if c_d + half_d < rect_d_lo || c_d - half_d > rect_d_hi {
                continue;
            }
            let c_p = cx * perp.x + cy * perp.y;
            if c_p + half_p < rect_p_lo || c_p - half_p > rect_p_hi {
                continue;
            }
            sink(i as usize, j as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(a: Point, b: Point, w: f64, win: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut st = HwStats::default();
        rasterize_aa_line(a, b, w, win, win, &mut st, &mut |x, y| out.push((x, y)));
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Reference implementation: full 4-axis SAT against the quad, over
    /// the same candidate-pixel range the production rasterizer enumerates
    /// (pixels only *grazed* by the rectangle boundary are latitude — see
    /// `boundary_touch_latitude` — so the ranges must match for the SAT
    /// math to be comparable).
    fn collect_reference(a: Point, b: Point, w: f64, win: usize) -> Vec<(usize, usize)> {
        let quad = match bounding_rectangle(a, b, w) {
            Some(q) => q,
            None => return Vec::new(),
        };
        let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
        for p in &quad {
            xmin = xmin.min(p.x);
            xmax = xmax.max(p.x);
            ymin = ymin.min(p.y);
            ymax = ymax.max(p.y);
        }
        let x_lo = (xmin.floor().max(0.0)) as usize;
        let x_hi = ((xmax.floor() as i64).min(win as i64 - 1)).max(0) as usize;
        let y_lo = (ymin.floor().max(0.0)) as usize;
        let y_hi = ((ymax.floor() as i64).min(win as i64 - 1)).max(0) as usize;
        let mut out = Vec::new();
        for j in y_lo..=y_hi {
            for i in x_lo..=x_hi {
                let sq = [
                    Point::new(i as f64, j as f64),
                    Point::new(i as f64 + 1.0, j as f64),
                    Point::new(i as f64 + 1.0, j as f64 + 1.0),
                    Point::new(i as f64, j as f64 + 1.0),
                ];
                let e0 = quad[1] - quad[0];
                let e1 = quad[2] - quad[1];
                let axes = [
                    Point::new(1.0, 0.0),
                    Point::new(0.0, 1.0),
                    e0.perp(),
                    e1.perp(),
                ];
                let mut overlap = true;
                for axis in axes {
                    if axis.x == 0.0 && axis.y == 0.0 {
                        continue;
                    }
                    let proj = |pts: &[Point]| -> (f64, f64) {
                        let mut lo = f64::INFINITY;
                        let mut hi = f64::NEG_INFINITY;
                        for p in pts {
                            let v = p.dot(axis);
                            lo = lo.min(v);
                            hi = hi.max(v);
                        }
                        (lo, hi)
                    };
                    let (alo, ahi) = proj(&quad);
                    let (blo, bhi) = proj(&sq);
                    if ahi < blo || bhi < alo {
                        overlap = false;
                        break;
                    }
                }
                if overlap {
                    out.push((i, j));
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn optimized_matches_reference_sat() {
        let cases = [
            (Point::new(0.3, 0.7), Point::new(7.6, 5.2), DIAGONAL_WIDTH),
            (Point::new(2.0, 0.0), Point::new(2.0, 8.0), 1.0),
            (Point::new(0.0, 4.0), Point::new(8.0, 4.0), 4.0),
            // Endpoints exactly on pixel corners are latitude (zero-area
            // grazing can flip on f64 rounding), so keep endpoints off the
            // lattice here.
            (Point::new(6.97, 7.03), Point::new(1.0, 2.0), 2.5),
            (
                Point::new(-3.0, -3.0),
                Point::new(12.0, 9.0),
                DIAGONAL_WIDTH,
            ),
            (Point::new(0.1, 0.1), Point::new(0.2, 0.15), 0.5),
        ];
        for (a, b, w) in cases {
            assert_eq!(
                collect(a, b, w, 8),
                collect_reference(a, b, w, 8),
                "a={a} b={b} w={w}"
            );
        }
    }

    #[test]
    fn bounding_rectangle_geometry() {
        let q = bounding_rectangle(Point::new(0.0, 0.0), Point::new(4.0, 0.0), 2.0).unwrap();
        // Horizontal segment: rectangle spans y ∈ [-1, 1], x ∈ [0, 4].
        let ys: Vec<f64> = q.iter().map(|p| p.y).collect();
        assert!(ys.contains(&1.0) && ys.contains(&-1.0));
        let xs: Vec<f64> = q.iter().map(|p| p.x).collect();
        assert_eq!(xs.iter().cloned().fold(f64::INFINITY, f64::min), 0.0);
        assert_eq!(xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max), 4.0);
        assert!(bounding_rectangle(Point::new(1.0, 1.0), Point::new(1.0, 1.0), 2.0).is_none());
    }

    #[test]
    fn no_pixel_touched_by_segment_is_missed() {
        // The conservativeness property: every pixel whose square the raw
        // segment passes through must be emitted (width arbitrary > 0).
        let a = Point::new(0.3, 0.7);
        let b = Point::new(7.6, 5.2);
        let px = collect(a, b, DIAGONAL_WIDTH, 8);
        for k in 0..=200 {
            let t = k as f64 / 200.0;
            let p = a.lerp(b, t);
            let cell = (p.x.floor() as usize, p.y.floor() as usize);
            assert!(
                px.contains(&cell),
                "pixel {cell:?} under the segment missing"
            );
        }
    }

    #[test]
    fn crossing_segments_share_a_pixel() {
        // The Algorithm 3.1 invariant at the rasterizer level.
        let p1 = collect(
            Point::new(0.0, 0.0),
            Point::new(8.0, 8.0),
            DIAGONAL_WIDTH,
            8,
        );
        let p2 = collect(
            Point::new(0.0, 8.0),
            Point::new(8.0, 0.0),
            DIAGONAL_WIDTH,
            8,
        );
        assert!(p1.iter().any(|c| p2.contains(c)));
    }

    #[test]
    fn disjoint_far_segments_share_nothing_at_high_resolution() {
        let p1 = collect(
            Point::new(1.0, 1.0),
            Point::new(1.0, 30.0),
            DIAGONAL_WIDTH,
            32,
        );
        let p2 = collect(
            Point::new(30.0, 1.0),
            Point::new(30.0, 30.0),
            DIAGONAL_WIDTH,
            32,
        );
        assert!(!p1.iter().any(|c| p2.contains(c)));
    }

    #[test]
    fn close_segments_merge_at_low_resolution() {
        // At 1×1 everything overlaps — the resolution-dependent false-hit
        // behaviour of Figure 11's left edge.
        let p1 = collect(
            Point::new(0.1, 0.1),
            Point::new(0.1, 0.9),
            DIAGONAL_WIDTH,
            1,
        );
        let p2 = collect(
            Point::new(0.9, 0.1),
            Point::new(0.9, 0.9),
            DIAGONAL_WIDTH,
            1,
        );
        assert_eq!(p1, vec![(0, 0)]);
        assert_eq!(p2, vec![(0, 0)]);
    }

    #[test]
    fn wide_line_covers_expanded_band() {
        // Width 4 horizontal line through the middle of an 8×8 window.
        let px = collect(Point::new(0.0, 4.0), Point::new(8.0, 4.0), 4.0, 8);
        // Band y ∈ [2, 6] → pixel rows 2..6 contain band points.
        for row in 2..6 {
            assert!(px.contains(&(4, row)), "row {row} missing");
        }
        assert!(!px.contains(&(4, 0)));
        assert!(!px.contains(&(4, 7)));
    }

    #[test]
    fn boundary_touch_latitude() {
        // Rectangle band y ∈ [1, 3]. Pixels *containing* band points (rows
        // 1 and 2) must be colored — that is the conservativeness
        // guarantee. Pixels only grazed by the band boundary (zero-area
        // coverage: rows 0 and 3) may or may not be colored, mirroring the
        // spec's latitude for boundary pixels; they must never be required.
        let px = collect(Point::new(0.0, 2.0), Point::new(4.0, 2.0), 2.0, 4);
        assert!(px.contains(&(2, 1)));
        assert!(px.contains(&(2, 2)));
        // Interior band points in every column.
        for col in 0..4 {
            assert!(px.contains(&(col, 1)), "column {col} row 1 missing");
        }
    }

    #[test]
    fn steep_line_coverage_is_symmetric() {
        let p1 = collect(
            Point::new(2.0, 0.0),
            Point::new(2.0, 8.0),
            DIAGONAL_WIDTH,
            8,
        );
        let p2 = collect(
            Point::new(0.0, 2.0),
            Point::new(8.0, 2.0),
            DIAGONAL_WIDTH,
            8,
        );
        let flipped: Vec<(usize, usize)> = p2.iter().map(|&(x, y)| (y, x)).collect();
        let mut flipped_sorted = flipped;
        flipped_sorted.sort_unstable();
        assert_eq!(p1, flipped_sorted);
    }
}
