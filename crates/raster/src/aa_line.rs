//! Anti-aliased wide-line rasterization (§2.2.2, Fig. 4) — the load-bearing
//! primitive of the hardware segment test.
//!
//! An anti-aliased line of width `w` is rasterized through its *bounding
//! rectangle*: two edges parallel to the segment at distance `w/2`, two
//! perpendicular edges through the end points. Real hardware assigns each
//! touched pixel an alpha equal to its coverage fraction; with **blending
//! disabled** (the paper's configuration) the alpha is ignored and every
//! pixel with non-zero coverage receives the full line color.
//!
//! That yields the conservativeness guarantee of Algorithm 3.1: "with
//! anti-aliasing enabled, every pixel that intersects the line segment is
//! colored, therefore if two line segments intersect, there exists at least
//! one pixel that is colored twice." We implement coverage exactly as
//! "pixel square ∩ oriented rectangle ≠ ∅" (closed), decided by a
//! separating-axis test.
//!
//! The per-pixel test is the inner loop of every hardware-assisted query,
//! so it is kept lean: the candidate loop bounds already guarantee overlap
//! on the window axes, leaving only the rectangle's two edge normals to
//! check, with all rectangle projections hoisted out of the loop. (This is
//! the simulation's stand-in for the GPU's parallel coverage evaluation.)

use crate::stats::HwStats;
use spatial_geom::Point;

/// The paper's default width for intersection tests: the pixel diagonal.
pub const DIAGONAL_WIDTH: f64 = std::f64::consts::SQRT_2;

/// The four corners of the width-`w` bounding rectangle of segment `a→b`.
/// Returns `None` for a degenerate (zero-length) segment — callers render a
/// wide point instead.
pub fn bounding_rectangle(a: Point, b: Point, w: f64) -> Option<[Point; 4]> {
    let dir = (b - a).normalized()?;
    let n = dir.perp() * (w / 2.0);
    Some([a + n, b + n, b - n, a - n])
}

/// Rasterizes the anti-aliased line `a→b` of width `w` (window
/// coordinates), emitting every pixel whose square intersects the bounding
/// rectangle. Degenerate segments emit nothing.
#[inline]
pub fn rasterize_aa_line(
    a: Point,
    b: Point,
    w: f64,
    width: usize,
    height: usize,
    stats: &mut HwStats,
    sink: &mut impl FnMut(usize, usize),
) {
    rasterize_aa_line_rows(a, b, w, width, 0, height as i64 - 1, stats, sink)
}

/// [`rasterize_aa_line`] restricted to scanlines `row_lo..=row_hi`
/// (inclusive, window coordinates). All per-pixel math stays in *absolute*
/// window coordinates — the clip only narrows the candidate loop — so a
/// partition of the window into row bands emits exactly the full window's
/// fragments, each in exactly one band. The tiled device depends on that
/// for bit-identical framebuffers and counters.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn rasterize_aa_line_rows(
    a: Point,
    b: Point,
    w: f64,
    width: usize,
    row_lo: i64,
    row_hi: i64,
    stats: &mut HwStats,
    sink: &mut impl FnMut(usize, usize),
) {
    let Some(cov) = AaLineCover::new(a, b, w, width, row_lo, row_hi) else {
        return;
    };
    for j in cov.rows() {
        stats.fragments_tested += cov.cover_row::<1>(j, &mut |x| sink(x, j as usize));
    }
}

/// The span-oriented entry point of the anti-aliased line rasterizer: the
/// hoisted per-segment setup (bounding-rectangle projections and candidate
/// ranges), from which any executor drives the per-scanline coverage test
/// at its own lane width. [`rasterize_aa_line_rows`] is `cover_row::<1>`
/// over every row; the SIMD device runs `cover_row::<8>` — the per-pixel
/// math is identical expression-for-expression, so every lane width emits
/// exactly the same fragments.
#[derive(Debug, Clone, Copy)]
pub struct AaLineCover {
    x_lo: i64,
    x_hi: i64,
    y_lo: i64,
    y_hi: i64,
    dir: Point,
    perp: Point,
    rect_d_lo: f64,
    rect_d_hi: f64,
    rect_p_lo: f64,
    rect_p_hi: f64,
    half_d: f64,
    half_p: f64,
}

impl AaLineCover {
    /// Coverage setup for the width-`w` line `a→b` over the window columns
    /// `0..width` and the scanlines `row_lo..=row_hi` (absolute window
    /// coordinates). `None` when the segment is degenerate or its bounding
    /// rectangle cannot touch the clipped candidate range.
    pub fn new(a: Point, b: Point, w: f64, width: usize, row_lo: i64, row_hi: i64) -> Option<Self> {
        debug_assert!(w > 0.0);
        let dir = (b - a).normalized()?;
        let n = dir.perp() * (w / 2.0);
        let corners = [a + n, b + n, b - n, a - n];

        let mut xmin = f64::INFINITY;
        let mut xmax = f64::NEG_INFINITY;
        let mut ymin = f64::INFINITY;
        let mut ymax = f64::NEG_INFINITY;
        for p in &corners {
            xmin = xmin.min(p.x);
            xmax = xmax.max(p.x);
            ymin = ymin.min(p.y);
            ymax = ymax.max(p.y);
        }
        let x_lo = (xmin.floor() as i64).max(0);
        let x_hi = (xmax.floor() as i64).min(width as i64 - 1);
        let y_lo = (ymin.floor() as i64).max(row_lo.max(0));
        let y_hi = (ymax.floor() as i64).min(row_hi);
        if x_lo > x_hi || y_lo > y_hi {
            return None;
        }

        // Separating axes. The candidate loop only visits pixels whose
        // square overlaps the rectangle's AABB, so the window axes
        // (1,0)/(0,1) can never separate; only the rectangle's own edge
        // normals remain: `dir` (separates beyond the end caps) and `perp`
        // (beyond the sides).
        //
        // Projections of the rectangle onto each axis, hoisted: onto `dir`
        // the rectangle spans [a·dir, b·dir] (a before b by construction);
        // onto `perp` it spans (a·perp) ± w/2.
        let perp = dir.perp();
        let rect_d_lo = a.x * dir.x + a.y * dir.y;
        let rect_d_hi = b.x * dir.x + b.y * dir.y;
        let (rect_d_lo, rect_d_hi) = if rect_d_lo <= rect_d_hi {
            (rect_d_lo, rect_d_hi)
        } else {
            (rect_d_hi, rect_d_lo)
        };
        let center_p = a.x * perp.x + a.y * perp.y; // b projects identically
        let rect_p_lo = center_p - w / 2.0;
        let rect_p_hi = center_p + w / 2.0;
        // A unit square centered at c projects onto axis n as
        // c·n ± (|n.x| + |n.y|) / 2.
        let half_d = (dir.x.abs() + dir.y.abs()) / 2.0;
        let half_p = (perp.x.abs() + perp.y.abs()) / 2.0;
        Some(AaLineCover {
            x_lo,
            x_hi,
            y_lo,
            y_hi,
            dir,
            perp,
            rect_d_lo,
            rect_d_hi,
            rect_p_lo,
            rect_p_hi,
            half_d,
            half_p,
        })
    }

    /// The candidate scanlines (inclusive, absolute window coordinates).
    #[inline]
    pub fn rows(&self) -> std::ops::RangeInclusive<i64> {
        self.y_lo..=self.y_hi
    }

    /// Runs the coverage test over scanline `j`'s candidate pixels,
    /// `LANES` pixels per step, calling `emit(x)` for every covered column
    /// in ascending order; returns the number of fragments tested (the
    /// candidate count, identical at every lane width). The lane body is a
    /// fixed-width array loop the autovectorizer turns into SIMD compares;
    /// `LANES = 1` is the scalar fallback and exercises the same code.
    ///
    /// Baseline x86-64 has no packed `i64 → f64` conversion, so the pixel
    /// centers are formed as one scalar conversion per chunk plus a
    /// vectorizable lane-offset add: both `(i + k) as f64 + 0.5` and
    /// `i as f64 + (k as f64 + 0.5)` are exactly `i + k + 0.5` for any
    /// in-window column (integers below 2^52), so the per-pixel verdicts
    /// are bit-identical either way.
    ///
    /// The body carries `#[inline(always)]` so that when a caller is
    /// itself compiled under a wider target feature (the band replay's
    /// AVX2 instantiation, see `crate::device`), this loop is recompiled
    /// inside that region and picks up 256-bit registers — same
    /// expressions, strict IEEE semantics, bit-identical verdicts.
    #[inline(always)]
    pub fn cover_row<const LANES: usize>(&self, j: i64, emit: &mut impl FnMut(usize)) -> usize {
        debug_assert!(LANES > 0 && self.rows().contains(&j));
        let cy = j as f64 + 0.5;
        let cy_d = cy * self.dir.y;
        let cy_p = cy * self.perp.y;
        let offs: [f64; LANES] = std::array::from_fn(|k| k as f64 + 0.5);
        let mut i = self.x_lo;
        while i + LANES as i64 - 1 <= self.x_hi {
            let base = i as f64;
            let mut keep = [false; LANES];
            for (keep, off) in keep.iter_mut().zip(offs) {
                let cx = base + off;
                let c_d = cx * self.dir.x + cy_d;
                let c_p = cx * self.perp.x + cy_p;
                // Written as the negated reject test so the verdict (NaN
                // included) matches the scalar remainder loop exactly; the
                // non-short-circuit `|` keeps the lane body branchless
                // (each operand is a pure compare) so it lowers to packed
                // compares + mask ors instead of four branches per lane.
                *keep = !((c_d + self.half_d < self.rect_d_lo)
                    | (c_d - self.half_d > self.rect_d_hi)
                    | (c_p + self.half_p < self.rect_p_lo)
                    | (c_p - self.half_p > self.rect_p_hi));
            }
            // The candidate range is the rectangle's AABB, so rows of a
            // slanted line are mostly empty — skip whole rejected chunks
            // before the branchy emit loop.
            if keep != [false; LANES] {
                for (k, &keep) in keep.iter().enumerate() {
                    if keep {
                        emit(i as usize + k);
                    }
                }
            }
            i += LANES as i64;
        }
        while i <= self.x_hi {
            let cx = i as f64 + 0.5;
            let c_d = cx * self.dir.x + cy_d;
            let c_p = cx * self.perp.x + cy_p;
            if !(c_d + self.half_d < self.rect_d_lo
                || c_d - self.half_d > self.rect_d_hi
                || c_p + self.half_p < self.rect_p_lo
                || c_p - self.half_p > self.rect_p_hi)
            {
                emit(i as usize);
            }
            i += 1;
        }
        (self.x_hi - self.x_lo + 1) as usize
    }

    /// Locates scanline `j`'s covered pixels as one contiguous column span,
    /// returning `(fragments_tested, Some((first, last)))` — window column
    /// indices, inclusive — or `None` when the row is empty.
    ///
    /// Along a scanline the pixel centers `cx` are exact and strictly
    /// increasing, and each of the four reject tests is a rounded monotone
    /// map of `cx` (multiplication by a constant and addition of a constant
    /// are monotone under IEEE rounding) compared against a constant — so
    /// each reject holds on a prefix or a suffix of the row, and the kept
    /// set is always a single contiguous interval. That lets an executor
    /// find the interval's endpoints (scanning chunk-wise from both ends,
    /// skipping the interior entirely) and fill the span in bulk, while
    /// still emitting *exactly* the set of pixels [`AaLineCover::cover_row`]
    /// emits: the endpoint searches reuse the same per-pixel expressions.
    #[inline(always)]
    pub fn cover_row_span<const LANES: usize>(&self, j: i64) -> (usize, Option<(usize, usize)>) {
        debug_assert!(LANES > 0 && self.rows().contains(&j));
        let (cy_d, cy_p) = self.row_consts(j);
        let offs: [f64; LANES] = std::array::from_fn(|k| k as f64 + 0.5);
        let candidates = (self.x_hi - self.x_lo + 1) as usize;
        let span = find_covered_span::<LANES>(
            self.x_lo,
            self.x_hi,
            |i| self.keep_chunk::<LANES>(cy_d, cy_p, &offs, i),
            |i| self.keep_at(cy_d, cy_p, i),
        );
        (candidates, span)
    }

    /// Emits every scanline's covered span — `emit(j, first, last)`, window
    /// coordinates, inclusive — and returns the total fragments tested.
    ///
    /// This is the segment-at-a-time form of [`AaLineCover::cover_row_span`]
    /// exploiting scanline coherence: consecutive rows' intervals overlap
    /// heavily, so each row's endpoint search is seeded with the previous
    /// row's answer (the `SpanTracker` strategy) and usually resolves in a handful
    /// of exact predicate steps instead of a scan over the candidate range.
    #[inline(always)]
    pub fn cover_spans<const LANES: usize>(
        &self,
        mut emit: impl FnMut(i64, usize, usize),
    ) -> usize {
        let offs: [f64; LANES] = std::array::from_fn(|k| k as f64 + 0.5);
        let candidates = (self.x_hi - self.x_lo + 1) as usize;
        let mut tracker = SpanTracker::new(self.x_lo);
        let mut frags = 0usize;
        for j in self.rows() {
            let (cy_d, cy_p) = self.row_consts(j);
            frags += candidates;
            if let Some((lo, hi)) = tracker.row_span::<LANES>(
                self.x_lo,
                self.x_hi,
                |i| self.keep_chunk::<LANES>(cy_d, cy_p, &offs, i),
                |i| self.keep_at(cy_d, cy_p, i),
            ) {
                emit(j, lo, hi);
            }
        }
        frags
    }

    /// The scanline-constant terms of the coverage test: the y components
    /// of the pixel center's projections onto `dir` and `perp`.
    #[inline(always)]
    fn row_consts(&self, j: i64) -> (f64, f64) {
        let cy = j as f64 + 0.5;
        (cy * self.dir.y, cy * self.perp.y)
    }

    /// The chunk-wide coverage verdicts starting at column `i` — the same
    /// expressions as [`AaLineCover::cover_row`]'s lane body.
    #[inline(always)]
    fn keep_chunk<const LANES: usize>(
        &self,
        cy_d: f64,
        cy_p: f64,
        offs: &[f64; LANES],
        i: i64,
    ) -> [bool; LANES] {
        let base = i as f64;
        let mut keep = [false; LANES];
        for (keep, off) in keep.iter_mut().zip(offs) {
            let cx = base + off;
            let c_d = cx * self.dir.x + cy_d;
            let c_p = cx * self.perp.x + cy_p;
            *keep = !((c_d + self.half_d < self.rect_d_lo)
                | (c_d - self.half_d > self.rect_d_hi)
                | (c_p + self.half_p < self.rect_p_lo)
                | (c_p - self.half_p > self.rect_p_hi));
        }
        keep
    }

    /// One column's coverage verdict — the same expressions as
    /// [`AaLineCover::cover_row`]'s scalar remainder.
    #[inline(always)]
    fn keep_at(&self, cy_d: f64, cy_p: f64, i: i64) -> bool {
        let cx = i as f64 + 0.5;
        let c_d = cx * self.dir.x + cy_d;
        let c_p = cx * self.perp.x + cy_p;
        !(c_d + self.half_d < self.rect_d_lo
            || c_d - self.half_d > self.rect_d_hi
            || c_p + self.half_p < self.rect_p_lo
            || c_p - self.half_p > self.rect_p_hi)
    }
}

/// Carries one scanline's covered interval to the next as a search hint.
///
/// Consecutive scanlines of a convex shape have strongly overlapping
/// covered intervals, so starting each row's endpoint search from the
/// previous row's answer turns the per-row cost from "scan the candidate
/// range" into "walk the endpoints a step or two". Every step queries the
/// exact per-pixel predicate, so the tracker is purely a search strategy —
/// the span it returns is identical to what a cold search finds; when the
/// hint misses (first row, disjoint rows, empty rows) it falls back to
/// [`find_covered_span`]'s chunk-wise two-end scan.
pub(crate) struct SpanTracker {
    guess_lo: i64,
    guess_hi: i64,
}

impl SpanTracker {
    /// A tracker with no prior row; the first search starts at `x_lo`.
    pub(crate) fn new(x_lo: i64) -> Self {
        SpanTracker {
            guess_lo: x_lo,
            guess_hi: x_lo,
        }
    }

    /// Finds the covered interval of one scanline (see
    /// [`find_covered_span`] for the contract on `keep_chunk`/`keep_at`
    /// and the contiguity requirement), seeded by the previous row's
    /// interval.
    #[inline(always)]
    pub(crate) fn row_span<const LANES: usize>(
        &mut self,
        x_lo: i64,
        x_hi: i64,
        keep_chunk: impl Fn(i64) -> [bool; LANES],
        keep_at: impl Fn(i64) -> bool,
    ) -> Option<(usize, usize)> {
        let g = self.guess_lo.clamp(x_lo, x_hi);
        if keep_at(g) {
            // The hint is inside this row's interval: walk out to the exact
            // endpoints.
            let mut lo = g;
            while lo > x_lo && keep_at(lo - 1) {
                lo -= 1;
            }
            let mut hi = self.guess_hi.clamp(lo, x_hi);
            if keep_at(hi) {
                while hi < x_hi && keep_at(hi + 1) {
                    hi += 1;
                }
            } else {
                // `hi` overshot the interval; walking left terminates at
                // `lo`, which is covered.
                while !keep_at(hi) {
                    hi -= 1;
                }
            }
            (self.guess_lo, self.guess_hi) = (lo, hi);
            Some((lo as usize, hi as usize))
        } else {
            let span = find_covered_span::<LANES>(x_lo, x_hi, keep_chunk, keep_at);
            if let Some((lo, hi)) = span {
                (self.guess_lo, self.guess_hi) = (lo as i64, hi as i64);
            }
            span
        }
    }
}

/// Endpoint search shared by the span-oriented coverage kernels: finds the
/// first and last `i` in `x_lo..=x_hi` with `keep_at(i)`, walking `LANES`
/// candidates per step from both ends and never testing the interior.
/// Correct only when the kept set is contiguous — which both callers
/// guarantee (see [`AaLineCover::cover_row_span`] and
/// [`crate::point_raster::WidePointCover::cover_row_span`]); `keep_chunk`
/// must agree with `keep_at` on every column.
#[inline(always)]
pub(crate) fn find_covered_span<const LANES: usize>(
    x_lo: i64,
    x_hi: i64,
    keep_chunk: impl Fn(i64) -> [bool; LANES],
    keep_at: impl Fn(i64) -> bool,
) -> Option<(usize, usize)> {
    // Forward: whole chunks on the `x_lo`-anchored grid, then the scalar
    // remainder — mirroring `cover_row`'s chunk layout.
    let mut first: Option<i64> = None;
    let mut i = x_lo;
    while first.is_none() && i + LANES as i64 - 1 <= x_hi {
        let keep = keep_chunk(i);
        if keep != [false; LANES] {
            let k = keep.iter().position(|&b| b).expect("chunk has a set lane");
            first = Some(i + k as i64);
        }
        i += LANES as i64;
    }
    let chunks_end = i; // first column not covered by a full chunk
    while first.is_none() && i <= x_hi {
        if keep_at(i) {
            first = Some(i);
        }
        i += 1;
    }
    let first = first?;
    // Backward: the scalar remainder, then whole chunks down to `first`'s
    // chunk. The interval is non-empty, so the search cannot fall through.
    let mut i = x_hi;
    while i >= chunks_end {
        if keep_at(i) {
            return Some((first as usize, i as usize));
        }
        i -= 1;
    }
    let mut c = chunks_end - LANES as i64;
    loop {
        let keep = keep_chunk(c);
        if keep != [false; LANES] {
            let k = keep.iter().rposition(|&b| b).expect("chunk has a set lane");
            return Some((first as usize, (c + k as i64) as usize));
        }
        c -= LANES as i64;
        debug_assert!(c >= x_lo, "span search passed the known first column");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(a: Point, b: Point, w: f64, win: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut st = HwStats::default();
        rasterize_aa_line(a, b, w, win, win, &mut st, &mut |x, y| out.push((x, y)));
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Reference implementation: full 4-axis SAT against the quad, over
    /// the same candidate-pixel range the production rasterizer enumerates
    /// (pixels only *grazed* by the rectangle boundary are latitude — see
    /// `boundary_touch_latitude` — so the ranges must match for the SAT
    /// math to be comparable).
    fn collect_reference(a: Point, b: Point, w: f64, win: usize) -> Vec<(usize, usize)> {
        let quad = match bounding_rectangle(a, b, w) {
            Some(q) => q,
            None => return Vec::new(),
        };
        let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
        for p in &quad {
            xmin = xmin.min(p.x);
            xmax = xmax.max(p.x);
            ymin = ymin.min(p.y);
            ymax = ymax.max(p.y);
        }
        let x_lo = (xmin.floor().max(0.0)) as usize;
        let x_hi = ((xmax.floor() as i64).min(win as i64 - 1)).max(0) as usize;
        let y_lo = (ymin.floor().max(0.0)) as usize;
        let y_hi = ((ymax.floor() as i64).min(win as i64 - 1)).max(0) as usize;
        let mut out = Vec::new();
        for j in y_lo..=y_hi {
            for i in x_lo..=x_hi {
                let sq = [
                    Point::new(i as f64, j as f64),
                    Point::new(i as f64 + 1.0, j as f64),
                    Point::new(i as f64 + 1.0, j as f64 + 1.0),
                    Point::new(i as f64, j as f64 + 1.0),
                ];
                let e0 = quad[1] - quad[0];
                let e1 = quad[2] - quad[1];
                let axes = [
                    Point::new(1.0, 0.0),
                    Point::new(0.0, 1.0),
                    e0.perp(),
                    e1.perp(),
                ];
                let mut overlap = true;
                for axis in axes {
                    if axis.x == 0.0 && axis.y == 0.0 {
                        continue;
                    }
                    let proj = |pts: &[Point]| -> (f64, f64) {
                        let mut lo = f64::INFINITY;
                        let mut hi = f64::NEG_INFINITY;
                        for p in pts {
                            let v = p.dot(axis);
                            lo = lo.min(v);
                            hi = hi.max(v);
                        }
                        (lo, hi)
                    };
                    let (alo, ahi) = proj(&quad);
                    let (blo, bhi) = proj(&sq);
                    if ahi < blo || bhi < alo {
                        overlap = false;
                        break;
                    }
                }
                if overlap {
                    out.push((i, j));
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn optimized_matches_reference_sat() {
        let cases = [
            (Point::new(0.3, 0.7), Point::new(7.6, 5.2), DIAGONAL_WIDTH),
            (Point::new(2.0, 0.0), Point::new(2.0, 8.0), 1.0),
            (Point::new(0.0, 4.0), Point::new(8.0, 4.0), 4.0),
            // Endpoints exactly on pixel corners are latitude (zero-area
            // grazing can flip on f64 rounding), so keep endpoints off the
            // lattice here.
            (Point::new(6.97, 7.03), Point::new(1.0, 2.0), 2.5),
            (
                Point::new(-3.0, -3.0),
                Point::new(12.0, 9.0),
                DIAGONAL_WIDTH,
            ),
            (Point::new(0.1, 0.1), Point::new(0.2, 0.15), 0.5),
        ];
        for (a, b, w) in cases {
            assert_eq!(
                collect(a, b, w, 8),
                collect_reference(a, b, w, 8),
                "a={a} b={b} w={w}"
            );
        }
    }

    /// The span kernels must reproduce `cover_row`'s emitted set exactly:
    /// per-row chunk search, coherent whole-segment tracking, and every
    /// lane width all agree with the per-pixel scalar walk.
    #[test]
    fn span_kernels_match_per_pixel_coverage() {
        let cases = [
            (Point::new(0.3, 0.7), Point::new(7.6, 5.2), DIAGONAL_WIDTH),
            (Point::new(2.0, 0.0), Point::new(2.0, 8.0), 1.0),
            (Point::new(0.0, 4.0), Point::new(8.0, 4.0), 4.0),
            (Point::new(6.97, 7.03), Point::new(1.0, 2.0), 2.5),
            (
                Point::new(-3.0, -3.0),
                Point::new(12.0, 9.0),
                DIAGONAL_WIDTH,
            ),
            (Point::new(0.1, 0.1), Point::new(0.2, 0.15), 0.5),
            (Point::new(15.8, 0.2), Point::new(0.1, 14.9), DIAGONAL_WIDTH),
            (Point::new(3.0, 9.0), Point::new(13.0, 9.5), 0.7),
        ];
        for (a, b, w) in cases {
            let Some(cov) = AaLineCover::new(a, b, w, 16, 0, 15) else {
                continue;
            };
            let mut spans: Vec<(i64, usize, usize)> = Vec::new();
            let tracked = cov.cover_spans::<4>(|j, lo, hi| spans.push((j, lo, hi)));
            let mut frags = 0usize;
            for j in cov.rows() {
                let mut px: Vec<usize> = Vec::new();
                let row_cands = cov.cover_row::<1>(j, &mut |x| px.push(x));
                frags += row_cands;
                let expect = px.first().map(|&lo| (lo, *px.last().unwrap()));
                // Emitted pixels must be contiguous — the property the span
                // search depends on.
                if let Some((lo, hi)) = expect {
                    assert_eq!(px, (lo..=hi).collect::<Vec<_>>(), "row {j} not contiguous");
                }
                for (cands, span) in [cov.cover_row_span::<1>(j), cov.cover_row_span::<4>(j)] {
                    assert_eq!(cands, row_cands, "candidate count diverges at a={a} b={b}");
                    assert_eq!(span, expect, "a={a} b={b} w={w} row {j}");
                }
                let tracked_row = spans.iter().find(|&&(tj, _, _)| tj == j);
                assert_eq!(
                    tracked_row.map(|&(_, lo, hi)| (lo, hi)),
                    expect,
                    "tracked span diverges at a={a} b={b} w={w} row {j}"
                );
            }
            assert_eq!(tracked, frags, "fragments tested diverge at a={a} b={b}");
        }
    }

    #[test]
    fn bounding_rectangle_geometry() {
        let q = bounding_rectangle(Point::new(0.0, 0.0), Point::new(4.0, 0.0), 2.0).unwrap();
        // Horizontal segment: rectangle spans y ∈ [-1, 1], x ∈ [0, 4].
        let ys: Vec<f64> = q.iter().map(|p| p.y).collect();
        assert!(ys.contains(&1.0) && ys.contains(&-1.0));
        let xs: Vec<f64> = q.iter().map(|p| p.x).collect();
        assert_eq!(xs.iter().cloned().fold(f64::INFINITY, f64::min), 0.0);
        assert_eq!(xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max), 4.0);
        assert!(bounding_rectangle(Point::new(1.0, 1.0), Point::new(1.0, 1.0), 2.0).is_none());
    }

    #[test]
    fn no_pixel_touched_by_segment_is_missed() {
        // The conservativeness property: every pixel whose square the raw
        // segment passes through must be emitted (width arbitrary > 0).
        let a = Point::new(0.3, 0.7);
        let b = Point::new(7.6, 5.2);
        let px = collect(a, b, DIAGONAL_WIDTH, 8);
        for k in 0..=200 {
            let t = k as f64 / 200.0;
            let p = a.lerp(b, t);
            let cell = (p.x.floor() as usize, p.y.floor() as usize);
            assert!(
                px.contains(&cell),
                "pixel {cell:?} under the segment missing"
            );
        }
    }

    #[test]
    fn crossing_segments_share_a_pixel() {
        // The Algorithm 3.1 invariant at the rasterizer level.
        let p1 = collect(
            Point::new(0.0, 0.0),
            Point::new(8.0, 8.0),
            DIAGONAL_WIDTH,
            8,
        );
        let p2 = collect(
            Point::new(0.0, 8.0),
            Point::new(8.0, 0.0),
            DIAGONAL_WIDTH,
            8,
        );
        assert!(p1.iter().any(|c| p2.contains(c)));
    }

    #[test]
    fn disjoint_far_segments_share_nothing_at_high_resolution() {
        let p1 = collect(
            Point::new(1.0, 1.0),
            Point::new(1.0, 30.0),
            DIAGONAL_WIDTH,
            32,
        );
        let p2 = collect(
            Point::new(30.0, 1.0),
            Point::new(30.0, 30.0),
            DIAGONAL_WIDTH,
            32,
        );
        assert!(!p1.iter().any(|c| p2.contains(c)));
    }

    #[test]
    fn close_segments_merge_at_low_resolution() {
        // At 1×1 everything overlaps — the resolution-dependent false-hit
        // behaviour of Figure 11's left edge.
        let p1 = collect(
            Point::new(0.1, 0.1),
            Point::new(0.1, 0.9),
            DIAGONAL_WIDTH,
            1,
        );
        let p2 = collect(
            Point::new(0.9, 0.1),
            Point::new(0.9, 0.9),
            DIAGONAL_WIDTH,
            1,
        );
        assert_eq!(p1, vec![(0, 0)]);
        assert_eq!(p2, vec![(0, 0)]);
    }

    #[test]
    fn wide_line_covers_expanded_band() {
        // Width 4 horizontal line through the middle of an 8×8 window.
        let px = collect(Point::new(0.0, 4.0), Point::new(8.0, 4.0), 4.0, 8);
        // Band y ∈ [2, 6] → pixel rows 2..6 contain band points.
        for row in 2..6 {
            assert!(px.contains(&(4, row)), "row {row} missing");
        }
        assert!(!px.contains(&(4, 0)));
        assert!(!px.contains(&(4, 7)));
    }

    #[test]
    fn boundary_touch_latitude() {
        // Rectangle band y ∈ [1, 3]. Pixels *containing* band points (rows
        // 1 and 2) must be colored — that is the conservativeness
        // guarantee. Pixels only grazed by the band boundary (zero-area
        // coverage: rows 0 and 3) may or may not be colored, mirroring the
        // spec's latitude for boundary pixels; they must never be required.
        let px = collect(Point::new(0.0, 2.0), Point::new(4.0, 2.0), 2.0, 4);
        assert!(px.contains(&(2, 1)));
        assert!(px.contains(&(2, 2)));
        // Interior band points in every column.
        for col in 0..4 {
            assert!(px.contains(&(col, 1)), "column {col} row 1 missing");
        }
    }

    #[test]
    fn steep_line_coverage_is_symmetric() {
        let p1 = collect(
            Point::new(2.0, 0.0),
            Point::new(2.0, 8.0),
            DIAGONAL_WIDTH,
            8,
        );
        let p2 = collect(
            Point::new(0.0, 2.0),
            Point::new(8.0, 2.0),
            DIAGONAL_WIDTH,
            8,
        );
        let flipped: Vec<(usize, usize)> = p2.iter().map(|&(x, y)| (y, x)).collect();
        let mut flipped_sorted = flipped;
        flipped_sorted.sort_unstable();
        assert_eq!(p1, flipped_sorted);
    }
}
