//! Deterministic hardware work counters.
//!
//! Wall-clock time of the simulated rasterizer depends on the host CPU; the
//! counters below do not. They measure exactly the quantities the paper's
//! analysis reasons about — "the finer the window resolution, the more
//! pixels have to be searched, which leads to a larger overhead" (§4.3) —
//! so the resolution/overhead trade-off can be asserted in tests and
//! reported next to wall-clock numbers in the benches.

/// Counters accumulated by a [`crate::GlContext`] over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HwStats {
    /// Fragments written to the color buffer.
    pub pixels_written: usize,
    /// Candidate fragments examined by the rasterizers (including ones that
    /// failed a coverage test).
    pub fragments_tested: usize,
    /// Pixels scanned by whole-buffer operations: clears, accumulation
    /// copies and Minmax queries. The per-test fixed overhead that grows
    /// with window resolution.
    pub pixels_scanned: usize,
    /// Primitives submitted (lines, points, polygons).
    pub primitives: usize,
    /// Draw calls (begin/end batches).
    pub draw_calls: usize,
    /// Minmax queries executed.
    pub minmax_queries: usize,
    /// Batched submission rounds (atlas batches): state setup + command
    /// buffer flush amortized over many candidate pairs.
    pub batches: usize,
}

impl HwStats {
    /// Difference of two snapshots (`later - earlier`), for measuring one
    /// operation within a longer-lived context.
    pub fn delta_since(&self, earlier: &HwStats) -> HwStats {
        HwStats {
            pixels_written: self.pixels_written - earlier.pixels_written,
            fragments_tested: self.fragments_tested - earlier.fragments_tested,
            pixels_scanned: self.pixels_scanned - earlier.pixels_scanned,
            primitives: self.primitives - earlier.primitives,
            draw_calls: self.draw_calls - earlier.draw_calls,
            minmax_queries: self.minmax_queries - earlier.minmax_queries,
            batches: self.batches - earlier.batches,
        }
    }

    /// Accumulates another snapshot into this one.
    pub fn add(&mut self, other: &HwStats) {
        self.pixels_written += other.pixels_written;
        self.fragments_tested += other.fragments_tested;
        self.pixels_scanned += other.pixels_scanned;
        self.primitives += other.primitives;
        self.draw_calls += other.draw_calls;
        self.minmax_queries += other.minmax_queries;
        self.batches += other.batches;
    }

    /// Submission-overhead events: the quantity batching exists to shrink.
    /// Each draw call and each Minmax query is one host↔device round of
    /// fixed cost; each batch adds one state-setup round of its own.
    pub fn submissions(&self) -> usize {
        self.draw_calls + self.minmax_queries + self.batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_and_add_are_inverse() {
        let a = HwStats {
            pixels_written: 10,
            fragments_tested: 20,
            pixels_scanned: 30,
            primitives: 4,
            draw_calls: 2,
            minmax_queries: 1,
            batches: 1,
        };
        let mut b = a;
        let extra = HwStats {
            pixels_written: 1,
            fragments_tested: 2,
            pixels_scanned: 3,
            primitives: 1,
            draw_calls: 1,
            minmax_queries: 0,
            batches: 1,
        };
        b.add(&extra);
        assert_eq!(b.delta_since(&a), extra);
    }

    #[test]
    fn submissions_counts_fixed_cost_rounds() {
        let s = HwStats {
            draw_calls: 2,
            minmax_queries: 1,
            batches: 1,
            ..HwStats::default()
        };
        assert_eq!(s.submissions(), 4);
    }
}
