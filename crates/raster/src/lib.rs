//! Software simulation of the graphics hardware the paper runs on.
//!
//! The paper's accuracy guarantee (§2.2) rests entirely on the *OpenGL
//! specification rasterization rules*, not on any particular GPU:
//!
//! * **point rasterization** — window coordinates are truncated to the
//!   containing pixel ([`point_raster`]);
//! * **line rasterization** — the diamond-exit rule, including the
//!   "disappearing segment" behaviour the paper rejects for its purposes
//!   ([`line_raster`]);
//! * **anti-aliased line rasterization** — a width-`w` bounding rectangle;
//!   with blending disabled, every pixel the rectangle touches receives the
//!   full line color ([`aa_line`]). This is the load-bearing rule: it makes
//!   the hardware segment test conservative (no false "disjoint" answers);
//! * **polygon rasterization** — pixel-center rule with shared edges
//!   rendered exactly once ([`polygon_raster`]);
//! * **frame buffers** — color, accumulation, depth and stencil buffers
//!   with the operations Hoff et al. enumerate for overlap detection, plus
//!   the Minmax query the paper uses to avoid pixel readback (§3.2)
//!   ([`framebuffer`]).
//!
//! [`context::GlContext`] is a stateful OpenGL-style façade over all of the
//! above, so the hardware-assisted algorithms in `hwa-core` read like the
//! paper's pseudo-code. [`stats::HwStats`] counts pixels written, fragments
//! tested and buffer scans — the deterministic cost model that stands in
//! for GPU time and makes the resolution/overhead trade-off of Figures
//! 11–13 reproducible on any host.

pub mod aa_line;
pub mod atlas;
pub mod context;
pub mod cost_model;
pub mod device;
pub mod framebuffer;
pub mod line_raster;
pub mod point_raster;
pub mod polygon_raster;
pub mod ppm;
pub(crate) mod scan;
pub mod stats;
pub mod viewport;
pub mod voronoi;

pub use atlas::{AtlasContext, AtlasJob};
pub use context::{
    GlContext, OverlapStrategy, PixelRect, WriteMode, MAX_AA_LINE_WIDTH, MAX_POINT_SIZE,
};
pub use cost_model::HwCostModel;
pub use device::{
    failover_route, Command, CommandList, DeviceError, DeviceKind, Execution, FaultDevice,
    FaultKind, FaultPlan, FaultTrigger, ListTemplate, RasterDevice, Readback, RecordError,
    Recorder, ReferenceDevice, ShardedDevice, SimdDevice, TiledDevice,
};
pub use framebuffer::FrameBuffer;
pub use stats::HwStats;
pub use viewport::Viewport;
pub use voronoi::VoronoiField;
