//! The simulated-hardware cost model: converts [`HwStats`] work counters
//! into GPU time.
//!
//! # Why a model instead of the rasterizer's wall-clock
//!
//! The paper's economics rest on a ~10–50× throughput gap between a
//! GeForce4-class GPU and an AthlonXP-class CPU for rasterization work.
//! Simulating the GPU *on* the CPU erases that gap: every simulated
//! fragment costs about as much as a plane-sweep event, so wall-clock
//! timing of the simulation would systematically understate the hardware
//! side — a simulation artifact, not a property of the approach. We
//! therefore charge the hardware side from its deterministic work counters
//! with per-operation costs taken from the paper's platform, uniformly
//! rescaled by the CPU speed-up factor between that platform and a modern
//! host. Dividing *both* sides of the comparison by the same hardware
//! generation preserves exactly what the paper's figures measure: the
//! hardware/software cost *ratio* and where the curves cross.
//!
//! # Constants (documented estimates for the paper's platform)
//!
//! | op | 2003 cost | why |
//! |---|---|---|
//! | draw-call submit | 10 µs | AGP command buffer + state validation |
//! | minmax query | 30 µs | pipeline flush + 2-color readback latency |
//! | batch round | 20 µs | viewport/scissor grid setup + command-buffer flush for one atlas submission |
//! | buffer-scan pixel | 16 ns | `GL_ACCUM` ops ran in the driver, not the GPU, on consumer boards of that era |
//! | fragment | 4 ns | AA-line coverage evaluation (fill-rate bound) |
//! | primitive | 8 ns | vertex transform + setup at ~136 M vertices/s |
//!
//! The speed-up factor defaults to 40×: the ratio between the paper's
//! AthlonXP 1800+ and a present-day core on pointer-chasing geometry code
//! (measured against our plane-sweep at the paper's `sw_threshold`
//! calibration points — the paper observed the 8×8 hardware test to break
//! even with a ~300-vertex software sweep and the 16×16 one with ~900
//! vertices; the defaults land in that neighbourhood without further
//! tuning).

use crate::stats::HwStats;
use std::time::Duration;

/// Per-operation GPU costs, in nanoseconds, already divided by the
/// CPU-generation speed-up factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwCostModel {
    pub draw_call_ns: f64,
    pub minmax_ns: f64,
    pub scanned_pixel_ns: f64,
    pub fragment_ns: f64,
    pub primitive_ns: f64,
    /// Fixed cost of one batched (atlas) submission round, on top of its
    /// draw calls: per-cell viewport/scissor setup and the command-buffer
    /// flush. Paid once per batch, amortized over every pair in it.
    pub batch_ns: f64,
}

/// The CPU-generation rescaling applied to the 2003 constants.
pub const CPU_SPEEDUP_FACTOR: f64 = 40.0;

impl Default for HwCostModel {
    fn default() -> Self {
        HwCostModel {
            draw_call_ns: 10_000.0 / CPU_SPEEDUP_FACTOR,
            minmax_ns: 30_000.0 / CPU_SPEEDUP_FACTOR,
            scanned_pixel_ns: 16.0 / CPU_SPEEDUP_FACTOR,
            fragment_ns: 4.0 / CPU_SPEEDUP_FACTOR,
            primitive_ns: 8.0 / CPU_SPEEDUP_FACTOR,
            batch_ns: 20_000.0 / CPU_SPEEDUP_FACTOR,
        }
    }
}

impl HwCostModel {
    /// A model with all 2003-era costs divided by a custom speed-up factor
    /// (sensitivity analyses sweep this).
    pub fn with_speedup(factor: f64) -> Self {
        assert!(factor > 0.0);
        HwCostModel {
            draw_call_ns: 10_000.0 / factor,
            minmax_ns: 30_000.0 / factor,
            scanned_pixel_ns: 16.0 / factor,
            fragment_ns: 4.0 / factor,
            primitive_ns: 8.0 / factor,
            batch_ns: 20_000.0 / factor,
        }
    }

    /// Modeled GPU time of a recorded command stream: replays `list` on a
    /// [`crate::device::ReferenceDevice`] and prices the charged counters.
    /// Because replay is a pure function of the list, so is the returned
    /// time — the same stream costs the same whichever device (or thread
    /// count) executed it for real.
    pub fn replay_cost(&self, list: &crate::device::CommandList) -> Duration {
        let mut device = crate::device::ReferenceDevice::new();
        let exec = crate::device::RasterDevice::execute(&mut device, list)
            .expect("the reference replay is infallible");
        self.time(&exec.stats)
    }

    /// Modeled GPU time for a batch of counted work.
    pub fn time(&self, stats: &HwStats) -> Duration {
        let ns = self.draw_call_ns * stats.draw_calls as f64
            + self.minmax_ns * stats.minmax_queries as f64
            + self.scanned_pixel_ns * stats.pixels_scanned as f64
            + self.fragment_ns * stats.fragments_tested as f64
            + self.primitive_ns * stats.primitives as f64
            + self.batch_ns * stats.batches as f64;
        Duration::from_nanos(ns.max(0.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(
        draw_calls: usize,
        minmax: usize,
        scanned: usize,
        frags: usize,
        prims: usize,
    ) -> HwStats {
        HwStats {
            pixels_written: 0,
            fragments_tested: frags,
            pixels_scanned: scanned,
            primitives: prims,
            draw_calls,
            minmax_queries: minmax,
            batches: 0,
        }
    }

    #[test]
    fn batching_beats_per_pair_fixed_costs() {
        // k pairs per-pair: k × (2 draws + 1 minmax). Batched: 2 draws +
        // 1 minmax + 1 batch round for all k. The batch round costs less
        // than one per-pair test's fixed overhead, so batching wins from
        // k = 2 and the gap grows linearly.
        let m = HwCostModel::default();
        for k in [2usize, 8, 64] {
            let per_pair = m.time(&stats(2 * k, k, 0, 0, 0));
            let mut batched_stats = stats(2, 1, 0, 0, 0);
            batched_stats.batches = 1;
            let batched = m.time(&batched_stats);
            assert!(batched < per_pair, "k={k}: {batched:?} !< {per_pair:?}");
        }
    }

    #[test]
    fn zero_work_is_zero_time() {
        let m = HwCostModel::default();
        assert_eq!(m.time(&HwStats::default()), Duration::ZERO);
    }

    #[test]
    fn fixed_costs_dominate_tiny_windows() {
        // One 8×8 test: 2 draws + 1 minmax + ~6 scans of 64 px.
        let m = HwCostModel::default();
        let t = m.time(&stats(2, 1, 384, 400, 200));
        // 2×250 + 750 + 384×0.4 + 400×0.1 + 200×0.2 ≈ 1.5 µs.
        assert!(
            t > Duration::from_nanos(1_200) && t < Duration::from_nanos(2_000),
            "{t:?}"
        );
    }

    #[test]
    fn per_pixel_term_grows_with_resolution() {
        let m = HwCostModel::default();
        let at8 = m.time(&stats(2, 1, 6 * 64, 0, 0));
        let at32 = m.time(&stats(2, 1, 6 * 1024, 0, 0));
        assert!(at32 > at8);
        let growth = (at32 - at8).as_nanos() as f64;
        // 6 × 960 extra pixels at 0.4 ns each.
        assert!((growth - 6.0 * 960.0 * 0.4).abs() < 100.0, "{growth}");
    }

    #[test]
    fn replay_cost_is_a_pure_function_of_the_list() {
        use crate::device::{DeviceKind, Recorder};
        use crate::viewport::Viewport;
        use spatial_geom::{Point, Rect, Segment};
        let mut r = Recorder::new(8, 8);
        r.set_viewport(Viewport::new(Rect::new(0.0, 0.0, 8.0, 8.0), 8, 8))
            .unwrap();
        r.clear_color();
        r.clear_accum();
        r.draw_segments([Segment::new(Point::new(0.0, 0.0), Point::new(8.0, 8.0))])
            .unwrap();
        r.accum_load();
        r.clear_color();
        r.draw_segments([Segment::new(Point::new(0.0, 8.0), Point::new(8.0, 0.0))])
            .unwrap();
        r.accum_add();
        r.accum_return();
        r.minmax();
        let list = r.finish();
        let m = HwCostModel::default();
        assert_eq!(m.replay_cost(&list), m.replay_cost(&list));
        // The modeled time is device-independent: a tiled execution's
        // counters price out to exactly the replay cost.
        let mut tiled = DeviceKind::Tiled {
            tiles: 3,
            threads: 2,
        }
        .build();
        assert_eq!(
            m.time(&tiled.execute(&list).unwrap().stats),
            m.replay_cost(&list)
        );
        assert!(m.replay_cost(&list) > Duration::ZERO);
    }

    #[test]
    fn speedup_factor_scales_linearly() {
        let base = HwCostModel::with_speedup(1.0);
        let fast = HwCostModel::with_speedup(10.0);
        let s = stats(3, 2, 1000, 500, 100);
        let tb = base.time(&s).as_nanos() as f64;
        let tf = fast.time(&s).as_nanos() as f64;
        assert!((tb / tf - 10.0).abs() < 0.01);
    }

    #[test]
    fn calibration_anchor_sw_threshold() {
        // The paper's Figure 13 anchor: the 8×8 hardware test should cost
        // about as much as a software sweep of a ~300-vertex pair, and the
        // 16×16 one about a ~900-vertex pair. With sweep throughput of
        // roughly 10 ns/vertex on a modern host, that is ~3 µs and ~9 µs.
        let m = HwCostModel::default();
        // A 300-vertex pair at 8×8: ~300 primitives, ~900 fragments,
        // 6×64 scanned, 2 draws + 1 minmax.
        let t8 = m.time(&stats(2, 1, 384, 900, 300));
        assert!(
            t8 > Duration::from_nanos(1_000) && t8 < Duration::from_nanos(4_000),
            "{t8:?}"
        );
        // At 16×16 the scans quadruple and fragments roughly double.
        let t16 = m.time(&stats(2, 1, 1536, 1800, 300));
        assert!(t16 > t8);
    }
}
