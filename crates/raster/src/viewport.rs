//! The data-space → window-space transform.
//!
//! §3.2 of the paper: "Another factor that has a large impact on
//! performance is the projection of the data space to the rendering
//! window" — for intersection tests the MBR-intersection region is
//! projected, for distance tests the expanded MBR of the smaller object.
//! Those *policies* live in `hwa-core`; this module provides the mechanism:
//! an affine map from a data-space rectangle onto the pixel grid.

use spatial_geom::{Point, Rect};

/// Maps a data-space region onto a `width × height` pixel window.
///
/// Window coordinates follow §2.2.1: the window is a grid of unit cells;
/// pixel `(i, j)` occupies `[i, i+1) × [j, j+1)` and a point rasterizes to
/// the cell containing its (truncated) window coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Viewport {
    region: Rect,
    width: usize,
    height: usize,
    sx: f64,
    sy: f64,
}

impl Viewport {
    /// A viewport projecting `region` onto a `width × height` window.
    ///
    /// Degenerate regions (zero width/height, e.g. the MBR of an
    /// axis-aligned sliver) are inflated to a tiny positive extent so the
    /// transform stays finite.
    pub fn new(region: Rect, width: usize, height: usize) -> Self {
        assert!(
            width > 0 && height > 0,
            "window must have at least one pixel"
        );
        assert!(!region.is_empty(), "cannot project an empty region");
        let mut region = region;
        const MIN_EXTENT: f64 = 1e-12;
        if region.width() < MIN_EXTENT {
            region.xmax = region.xmin + MIN_EXTENT;
        }
        if region.height() < MIN_EXTENT {
            region.ymax = region.ymin + MIN_EXTENT;
        }
        Viewport {
            region,
            width,
            height,
            sx: width as f64 / region.width(),
            sy: height as f64 / region.height(),
        }
    }

    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The projected data-space region.
    #[inline]
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Data-space point → continuous window coordinates.
    #[inline]
    pub fn to_window(&self, p: Point) -> Point {
        Point::new(
            (p.x - self.region.xmin) * self.sx,
            (p.y - self.region.ymin) * self.sy,
        )
    }

    /// Data-space length along x → window-space length.
    #[inline]
    pub fn scale_x(&self) -> f64 {
        self.sx
    }

    /// Data-space length along y → window-space length.
    #[inline]
    pub fn scale_y(&self) -> f64 {
        self.sy
    }

    /// A *uniform-scale* viewport: both axes use the same pixels-per-unit
    /// factor (the one that fits the whole region), letterboxing the rest
    /// of the window. Equation (1) of the paper — `LineWidth = ⌈D · n /
    /// max(w, h)⌉` — presumes exactly this aspect-preserving projection:
    /// with anisotropic scaling a line widened by `w` pixels would cover
    /// different data-space distances along x and y. The distance test
    /// therefore always projects uniformly.
    pub fn uniform(region: Rect, width: usize, height: usize) -> Self {
        let mut vp = Viewport::new(region, width, height);
        let s = vp.sx.min(vp.sy);
        vp.sx = s;
        vp.sy = s;
        vp
    }

    /// True when both axes share one scale factor (see [`Viewport::uniform`]).
    #[inline]
    pub fn is_uniform(&self) -> bool {
        self.sx == self.sy
    }

    /// Equation (1) of the paper: the pixel line width needed so that a
    /// line widened by `d` data-space units covers at least `d` on screen.
    ///
    /// Conservative under anisotropy: the *finer* axis (more pixels per
    /// data unit) dictates the width, so the rendered expansion always
    /// contains the data-space expansion. On a [`Viewport::uniform`]
    /// projection this is exactly `⌈d · n / max(w, h)⌉`.
    pub fn line_width_for_distance(&self, d: f64) -> f64 {
        (d * self.sx.max(self.sy)).ceil().max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_mapping() {
        let vp = Viewport::new(Rect::new(0.0, 0.0, 8.0, 8.0), 8, 8);
        assert_eq!(vp.to_window(Point::new(0.0, 0.0)), Point::new(0.0, 0.0));
        assert_eq!(vp.to_window(Point::new(8.0, 8.0)), Point::new(8.0, 8.0));
        assert_eq!(vp.to_window(Point::new(4.0, 2.0)), Point::new(4.0, 2.0));
    }

    #[test]
    fn scaling_and_offset() {
        let vp = Viewport::new(Rect::new(100.0, 200.0, 300.0, 400.0), 16, 32);
        let w = vp.to_window(Point::new(200.0, 300.0)); // region center
        assert_eq!(w, Point::new(8.0, 16.0));
        assert_eq!(vp.scale_x(), 16.0 / 200.0);
        assert_eq!(vp.scale_y(), 32.0 / 200.0);
    }

    #[test]
    fn degenerate_region_is_inflated() {
        let vp = Viewport::new(Rect::new(5.0, 5.0, 5.0, 9.0), 4, 4);
        let w = vp.to_window(Point::new(5.0, 7.0));
        assert!(w.x.is_finite() && w.y.is_finite());
        assert_eq!(w.y, 2.0);
    }

    #[test]
    #[should_panic(expected = "empty region")]
    fn empty_region_panics() {
        let _ = Viewport::new(Rect::EMPTY, 4, 4);
    }

    #[test]
    fn equation_one_line_width() {
        // 100-unit region on an 8-pixel window: 12.5 units per pixel.
        let vp = Viewport::new(Rect::new(0.0, 0.0, 100.0, 100.0), 8, 8);
        // d = 25 units = 2 pixels.
        assert_eq!(vp.line_width_for_distance(25.0), 2.0);
        // Fractional pixel widths round up (conservative).
        assert_eq!(vp.line_width_for_distance(13.0), 2.0);
        assert_eq!(vp.line_width_for_distance(12.5), 1.0);
        // Never below one pixel.
        assert_eq!(vp.line_width_for_distance(0.001), 1.0);
    }

    #[test]
    fn anisotropic_viewport_widens_conservatively() {
        // x: 10 px per 100 units (0.1 px/unit); y: 100 px per 100 units.
        let vp = Viewport::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10, 100);
        assert!(!vp.is_uniform());
        // d = 30 units → 3 px on x but 30 px on y; the conservative width
        // must satisfy the finer axis.
        assert_eq!(vp.line_width_for_distance(30.0), 30.0);
    }

    #[test]
    fn uniform_viewport_matches_equation_one() {
        // 200×100 region on a 10×10 window: uniform scale = 10/200 = 0.05.
        let vp = Viewport::uniform(Rect::new(0.0, 0.0, 200.0, 100.0), 10, 10);
        assert!(vp.is_uniform());
        assert_eq!(vp.scale_x(), 0.05);
        // Equation (1): ceil(d * n / max(w, h)) = ceil(30 * 10 / 200) = 2.
        assert_eq!(vp.line_width_for_distance(30.0), 2.0);
        // The far corner of the region still lands inside the window.
        let w = vp.to_window(Point::new(200.0, 100.0));
        assert!(w.x <= 10.0 && w.y <= 10.0);
    }
}
