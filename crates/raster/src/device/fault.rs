//! Deterministic fault injection: any inner device, a seeded schedule.
//!
//! A real GPU behind [`RasterDevice`] will eventually lose its context,
//! run out of memory, trip the watchdog, or hand back a corrupted
//! readback. [`FaultDevice`] manufactures exactly those failures on a
//! schedule that is a pure function of a [`FaultPlan`] and the submission
//! history — never of wall clock, thread timing, or randomness drawn at
//! execution time — so a test that injects faults is as reproducible as
//! one that doesn't.
//!
//! Two failure shapes exist:
//!
//! * **submission failures** ([`FaultKind::ContextLost`],
//!   [`FaultKind::OutOfMemory`], [`FaultKind::Timeout`]) return `Err`
//!   *without executing* the inner device — the canonical "nothing
//!   happened" failure the supervisor retries;
//! * **readback corruption** ([`FaultKind::ReadbackBitFlip`]) executes
//!   the inner device, then flips the sign and exponent bits of one
//!   float readback chosen by a seeded hash. The execution *looks*
//!   successful; only [`super::Execution::validate`] catches it — which
//!   is precisely the hole that validation exists to close. The flip
//!   turns any valid (finite, non-negative) value negative or
//!   non-finite, so on the non-negative color streams the query
//!   choreographies record, every injected flip is detectable.
//!
//! Faults scheduled onto a list with no float readbacks (e.g. the
//! stencil strategy's streams) surface as an immediate
//! [`DeviceError::ReadbackCorrupt`] instead of silently not firing, so a
//! plan's fault count never depends on the overlap strategy.

use super::command::CommandList;
use super::{DeviceError, Execution, RasterDevice, Readback};
use crate::framebuffer::FrameBuffer;

/// Which failure a scheduled fault manifests as.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The submission fails with [`DeviceError::ContextLost`].
    ContextLost,
    /// The submission fails with [`DeviceError::OutOfMemory`].
    OutOfMemory,
    /// The submission fails with [`DeviceError::Timeout`].
    Timeout,
    /// The submission "succeeds" but one readback float comes back with
    /// flipped sign/exponent bits — detectable only by
    /// [`super::Execution::validate`].
    ReadbackBitFlip,
}

/// When a plan's fault fires, counted over this device's submissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultTrigger {
    /// Fault the `n`-th execute (0-based), once; retries (which are later
    /// executes) succeed.
    OnExecute(u64),
    /// Fault the execute during which the cumulative replayed command
    /// count crosses `n`, once.
    OnCommand(u64),
    /// Fault every `k`-th execute (`k ≥ 1`), forever — the schedule that
    /// drives retries into the circuit breaker when `k = 1`.
    EveryK(u64),
}

/// A seeded, deterministic fault schedule: what fails, when, and the seed
/// that picks *which* float a bit-flip corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Seed for the per-fault choices (corrupted-float selection).
    pub seed: u64,
    /// The failure every scheduled fault manifests as.
    pub kind: FaultKind,
    /// When faults fire.
    pub trigger: FaultTrigger,
    /// Restricts the schedule to one shard of a sharded ensemble: when
    /// [`super::DeviceKind::for_shard`] builds shard `i`, a plan targeting
    /// `Some(s)` with `s != i` is stripped entirely, so only shard `s`
    /// faults. `None` (the default) schedules faults on every shard.
    pub shard: Option<usize>,
}

impl FaultPlan {
    /// A plan faulting as `kind` whenever `trigger` fires, seeded for the
    /// per-fault choices, on every shard it is instantiated for.
    pub fn new(seed: u64, kind: FaultKind, trigger: FaultTrigger) -> Self {
        FaultPlan {
            seed,
            kind,
            trigger,
            shard: None,
        }
    }

    /// The same plan restricted to shard `shard` of a sharded ensemble —
    /// the chaos-test shape "exactly one shard is sick".
    pub fn on_shard(self, shard: usize) -> Self {
        FaultPlan {
            shard: Some(shard),
            ..self
        }
    }

    /// The same schedule with the per-fault choices (which float a
    /// bit-flip corrupts) decorrelated for shard `shard`. The trigger is
    /// untouched — *when* faults fire stays identical across shards —
    /// and shard 0 keeps the original seed, so a one-shard ensemble
    /// replays the flat plan bit for bit.
    pub fn salted(self, shard: usize) -> Self {
        FaultPlan {
            seed: self.seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ..self
        }
    }
}

/// SplitMix64 — the standard 64-bit finalizer; enough to decorrelate the
/// corrupted-float choice from the seed and submission index.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Flips the sign and exponent bits of the `target`-th float across the
/// execution's Minmax/CellMax readbacks. Returns `false` when the
/// execution has no float readbacks to corrupt.
fn flip_float(readbacks: &mut [Readback], mut target: u64) -> bool {
    let floats: u64 = readbacks
        .iter()
        .map(|r| match r {
            Readback::Minmax(..) => 6u64,
            Readback::CellMax(v) => v.len() as u64,
            // Integer readbacks carry no floats: scheduled flips on a
            // stencil-only stream surface as ReadbackCorrupt instead.
            Readback::StencilMax(_) | Readback::StencilCount(_) => 0,
        })
        .sum();
    if floats == 0 {
        return false;
    }
    target %= floats;
    let corrupt = |v: &mut f32| *v = f32::from_bits(v.to_bits() ^ 0xFF80_0000);
    for r in readbacks.iter_mut() {
        match r {
            Readback::Minmax(mn, mx) => {
                if target < 6 {
                    let ch = (target % 3) as usize;
                    corrupt(if target < 3 { &mut mn[ch] } else { &mut mx[ch] });
                    return true;
                }
                target -= 6;
            }
            Readback::CellMax(vals) => {
                if (target as usize) < vals.len() {
                    corrupt(&mut vals[target as usize]);
                    return true;
                }
                target -= vals.len() as u64;
            }
            Readback::StencilMax(_) | Readback::StencilCount(_) => {}
        }
    }
    unreachable!("target reduced modulo the total float count")
}

/// A [`RasterDevice`] wrapper that injects the faults its [`FaultPlan`]
/// schedules and otherwise delegates to the inner device verbatim.
///
/// Submission-failure faults never reach the inner device, so a failed
/// execute charges nothing and leaks nothing — the purity contract of
/// [`RasterDevice::execute`] holds across failures by construction.
#[derive(Debug)]
pub struct FaultDevice {
    inner: Box<dyn RasterDevice>,
    plan: FaultPlan,
    /// Executes attempted so far (faulted ones included).
    executes: u64,
    /// Cumulative command count across attempted executes.
    commands: u64,
}

impl FaultDevice {
    /// Wraps `inner` under the given schedule.
    pub fn new(inner: Box<dyn RasterDevice>, plan: FaultPlan) -> Self {
        FaultDevice {
            inner,
            plan,
            executes: 0,
            commands: 0,
        }
    }

    /// The schedule driving this injector.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// How many executes have been attempted (faulted ones included).
    pub fn executes(&self) -> u64 {
        self.executes
    }
}

impl RasterDevice for FaultDevice {
    fn name(&self) -> &'static str {
        "fault"
    }

    fn execute(&mut self, list: &CommandList) -> Result<Execution, DeviceError> {
        let index = self.executes;
        let before = self.commands;
        self.executes += 1;
        self.commands += list.commands().len() as u64;
        let fires = match self.plan.trigger {
            FaultTrigger::OnExecute(n) => index == n,
            FaultTrigger::OnCommand(n) => before <= n && n < self.commands,
            FaultTrigger::EveryK(k) => k > 0 && (index + 1).is_multiple_of(k),
        };
        if !fires {
            return self.inner.execute(list);
        }
        match self.plan.kind {
            FaultKind::ContextLost => Err(DeviceError::ContextLost),
            FaultKind::OutOfMemory => Err(DeviceError::OutOfMemory),
            FaultKind::Timeout => Err(DeviceError::Timeout),
            FaultKind::ReadbackBitFlip => {
                let mut exec = self.inner.execute(list)?;
                let target = splitmix64(self.plan.seed ^ index.wrapping_mul(0x2545_F491_4F6C_DD1D));
                if flip_float(&mut exec.readbacks, target) {
                    Ok(exec)
                } else {
                    // No float readbacks to corrupt: surface the scheduled
                    // fault as detected-at-readback instead of skipping it.
                    Err(DeviceError::ReadbackCorrupt { slot: 0 })
                }
            }
        }
    }

    fn route(&mut self, shard: usize) {
        // Routing is not a submission: it never advances the fault
        // schedule, it only forwards to whatever the injector wraps.
        self.inner.route(shard);
    }

    fn shards(&self) -> usize {
        self.inner.shards()
    }

    fn set_shard_health(&mut self, shard: usize, healthy: bool) {
        // Health bookkeeping is not a submission either: forward verbatim.
        self.inner.set_shard_health(shard, healthy);
    }

    fn snapshot(&self) -> Option<FrameBuffer> {
        self.inner.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::super::{DeviceKind, Recorder};
    use super::*;
    use crate::framebuffer::HALF_GRAY;
    use crate::viewport::Viewport;
    use spatial_geom::{Rect, Segment};

    fn minmax_list() -> (CommandList, usize) {
        let mut rec = Recorder::new(8, 8);
        rec.set_viewport(Viewport::new(Rect::new(0.0, 0.0, 8.0, 8.0), 8, 8))
            .unwrap();
        rec.set_color(HALF_GRAY);
        rec.clear_color();
        rec.draw_segments([Segment::new((1.0, 1.0).into(), (7.0, 7.0).into())])
            .unwrap();
        let slot = rec.minmax();
        (rec.finish(), slot)
    }

    #[test]
    fn submission_faults_fire_on_schedule_and_clear() {
        let plan = FaultPlan::new(7, FaultKind::ContextLost, FaultTrigger::OnExecute(1));
        let mut dev = FaultDevice::new(DeviceKind::Reference.build(), plan);
        let (list, _) = minmax_list();
        let first = dev.execute(&list).expect("execute 0 is clean");
        assert_eq!(dev.execute(&list), Err(DeviceError::ContextLost));
        let third = dev.execute(&list).expect("faults do not stick");
        assert_eq!(first, third, "failed executes must not leak state");
    }

    #[test]
    fn every_k_faults_repeat() {
        let plan = FaultPlan::new(0, FaultKind::OutOfMemory, FaultTrigger::EveryK(2));
        let mut dev = FaultDevice::new(DeviceKind::Simd.build(), plan);
        let (list, _) = minmax_list();
        for i in 0..6u64 {
            let r = dev.execute(&list);
            assert_eq!(r.is_err(), i % 2 == 1, "execute {i}");
        }
    }

    #[test]
    fn bit_flips_are_caught_by_validation_for_any_seed() {
        let (list, slot) = minmax_list();
        let clean = DeviceKind::Reference
            .build()
            .execute(&list)
            .expect("reference is infallible");
        clean.validate(&list).expect("clean run validates");
        for seed in 0..64u64 {
            let plan = FaultPlan::new(seed, FaultKind::ReadbackBitFlip, FaultTrigger::OnExecute(0));
            let mut dev = FaultDevice::new(DeviceKind::Reference.build(), plan);
            let exec = dev.execute(&list).expect("bit-flip looks successful");
            assert!(
                exec.validate(&list).is_err(),
                "seed {seed}: corrupted execution must not validate"
            );
            // The corrupted value is unusable, but the slot still holds a
            // Minmax readback, so the typed accessor itself succeeds.
            let _ = exec.max_red(slot);
        }
    }

    #[test]
    fn accessors_return_typed_errors_on_kind_mismatch() {
        let (list, slot) = minmax_list();
        let exec = DeviceKind::Reference.build().execute(&list).unwrap();
        assert!(exec.max_red(slot).is_ok());
        assert_eq!(
            exec.stencil_value(slot),
            Err(DeviceError::ReadbackCorrupt { slot })
        );
        assert_eq!(
            exec.cell_max(slot),
            Err(DeviceError::ReadbackCorrupt { slot })
        );
        assert_eq!(
            exec.max_red(slot + 5),
            Err(DeviceError::ReadbackCorrupt { slot: slot + 5 })
        );
    }

    #[test]
    fn fault_device_kind_builds_nested() {
        let plan = FaultPlan::new(3, FaultKind::Timeout, FaultTrigger::EveryK(1));
        let kind = DeviceKind::Tiled {
            tiles: 4,
            threads: 2,
        }
        .with_faults(plan);
        let mut dev = kind.build();
        assert_eq!(dev.name(), "fault");
        let (list, _) = minmax_list();
        assert_eq!(dev.execute(&list), Err(DeviceError::Timeout));
    }
}
