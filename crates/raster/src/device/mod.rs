//! The retained device layer: record → validate → execute → replay-cost.
//!
//! Real GPU stacks decouple *recording* work from *executing* it via
//! command buffers; this module gives the simulated hardware the same
//! shape. A [`Recorder`] validates and captures one submission into an
//! immutable [`CommandList`]; any [`RasterDevice`] executes the list and
//! returns an [`Execution`] — the work counters plus the stream's readback
//! results. Two executors ship:
//!
//! * [`ReferenceDevice`] replays the list onto [`crate::GlContext`]
//!   verbatim — the semantics anchor, bit-identical to driving the
//!   context by hand;
//! * [`TiledDevice`] partitions the window into horizontal bands and
//!   executes the *same list* on every band across scoped worker threads,
//!   merging per-band counters and readbacks deterministically. Results,
//!   framebuffers and [`HwStats`] are bit-identical to the reference
//!   (property-tested) while wall-clock time drops with the thread count.
//!
//! Because execution is a pure function of the list, modeled GPU time is
//! too: [`crate::HwCostModel::replay_cost`] prices a `CommandList` by
//! replaying it, independent of which device (or how many threads) ran it
//! for real.

pub mod command;
mod reference;
mod tiled;

pub use crate::context::PixelRect;
pub use command::{Command, CommandList, RecordError, Recorder};
pub use reference::ReferenceDevice;
pub use tiled::TiledDevice;

use crate::framebuffer::{Color, FrameBuffer};
use crate::stats::HwStats;

/// One readback result, in the order the queries were recorded.
#[derive(Debug, Clone, PartialEq)]
pub enum Readback {
    /// Per-channel (min, max) of the color buffer.
    Minmax(Color, Color),
    /// Maximum stencil value.
    StencilMax(u8),
    /// Per-cell maximum red values, one per recorded rectangle.
    CellMax(Vec<f32>),
}

/// What executing a [`CommandList`] produced: the hardware work charged
/// and every readback slot, indexed by the slot numbers the [`Recorder`]
/// handed out.
#[derive(Debug, Clone, PartialEq)]
pub struct Execution {
    pub stats: HwStats,
    pub readbacks: Vec<Readback>,
}

impl Execution {
    /// The maximum red value of the Minmax readback in `slot`.
    pub fn max_red(&self, slot: usize) -> f32 {
        match &self.readbacks[slot] {
            Readback::Minmax(_, mx) => mx[0],
            other => panic!("slot {slot} holds {other:?}, not a minmax readback"),
        }
    }

    /// The stencil-maximum readback in `slot`.
    pub fn stencil_value(&self, slot: usize) -> u8 {
        match &self.readbacks[slot] {
            Readback::StencilMax(v) => *v,
            other => panic!("slot {slot} holds {other:?}, not a stencil readback"),
        }
    }

    /// The per-cell maxima of the cell-reduction readback in `slot`.
    pub fn cell_max(&self, slot: usize) -> &[f32] {
        match &self.readbacks[slot] {
            Readback::CellMax(v) => v,
            other => panic!("slot {slot} holds {other:?}, not a cell readback"),
        }
    }
}

/// An executor for recorded command streams. Implementations must be
/// semantically interchangeable: same list in, same [`Execution`] out.
pub trait RasterDevice: Send + std::fmt::Debug {
    /// A short human-readable backend name for reports.
    fn name(&self) -> &'static str;

    /// Executes `list` from a cleared window and returns the work charged
    /// plus all readbacks. Counters are a pure function of the list:
    /// executing the same list twice yields equal [`Execution`]s.
    fn execute(&mut self, list: &CommandList) -> Execution;

    /// The final framebuffer of the most recent [`RasterDevice::execute`],
    /// if any — for equivalence tests and debugging dumps, not for the
    /// query hot path (readback is what Minmax exists to avoid).
    fn snapshot(&self) -> Option<FrameBuffer>;
}

/// A buildable device selection — the configuration-level knob `core`'s
/// engine exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeviceKind {
    /// Single-threaded [`ReferenceDevice`] replay.
    #[default]
    Reference,
    /// [`TiledDevice`] with `tiles` horizontal bands executed by up to
    /// `threads` workers.
    Tiled { tiles: usize, threads: usize },
}

impl DeviceKind {
    /// Instantiates the selected executor.
    pub fn build(self) -> Box<dyn RasterDevice> {
        match self {
            DeviceKind::Reference => Box::new(ReferenceDevice::new()),
            DeviceKind::Tiled { tiles, threads } => Box::new(TiledDevice::new(tiles, threads)),
        }
    }
}
