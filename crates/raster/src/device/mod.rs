//! The retained device layer: record → validate → execute → replay-cost.
//!
//! Real GPU stacks decouple *recording* work from *executing* it via
//! command buffers; this module gives the simulated hardware the same
//! shape. The lifecycle has four stations:
//!
//! 1. **Record.** A [`Recorder`] captures one submission — state changes,
//!    draws, readback queries — into flat geometry arenas and a typed
//!    command tape.
//! 2. **Validate.** Every recording call checks its arguments *up front*
//!    (viewport before draws, width/size limits, in-bounds scissors and
//!    cells) and returns [`RecordError`] on violation, so a finished
//!    [`CommandList`] is valid by construction and executors never
//!    re-validate on the hot path.
//! 3. **Execute.** Any [`RasterDevice`] runs the immutable list and
//!    returns an [`Execution`] — the deterministic work counters
//!    ([`HwStats`]) plus the stream's readback results, in recorded
//!    order.
//! 4. **Replay-cost.** Because execution is a pure function of the list,
//!    modeled GPU time is too: [`crate::HwCostModel::replay_cost`] prices
//!    a `CommandList` by replaying it, independent of which device (or
//!    how many threads, or what lane width) ran it for real.
//!
//! Three executors ship:
//!
//! * [`ReferenceDevice`] replays the list onto [`crate::GlContext`]
//!   verbatim — the semantics anchor, bit-identical to driving the
//!   context by hand;
//! * [`TiledDevice`] partitions the window into horizontal bands and
//!   executes the *same list* on every band across scoped worker threads,
//!   merging per-band counters and readbacks deterministically;
//! * [`SimdDevice`] replays through lane-width-generic kernels that test
//!   coverage, fill spans and scan buffers [`simd::SIMD_LANES`] pixels
//!   per step — and composes with the tiled device
//!   ([`TiledDevice::new_simd`]) for threads × lanes.
//!
//! **The bit-identity invariant.** Every executor must produce the same
//! [`Execution`] — every readback value *and* every [`HwStats`] counter —
//! and the same final framebuffer as [`ReferenceDevice`], bit for bit,
//! for every valid list. Not "close enough": equality is what lets the
//! staged query pipelines treat the device as a config knob
//! (`EngineConfig.device`) without re-verifying results, and what makes
//! the replay cost model device-independent. The invariant is
//! property-tested in `crates/raster/tests/device_props.rs` and pinned by
//! the golden command streams in `crates/core/tests/golden/`; see
//! DESIGN.md §7 for the contract a new backend must uphold.

#![warn(missing_docs)]

mod band;
pub mod command;
mod reference;
pub mod simd;
mod tiled;

pub use crate::context::PixelRect;
pub use command::{Command, CommandList, RecordError, Recorder};
pub use reference::ReferenceDevice;
pub use simd::SimdDevice;
pub use tiled::TiledDevice;

use crate::framebuffer::{Color, FrameBuffer};
use crate::stats::HwStats;

/// One readback result, in the order the queries were recorded.
#[derive(Debug, Clone, PartialEq)]
pub enum Readback {
    /// Per-channel (min, max) of the color buffer.
    Minmax(Color, Color),
    /// Maximum stencil value.
    StencilMax(u8),
    /// Per-cell maximum red values, one per recorded rectangle.
    CellMax(Vec<f32>),
}

/// What executing a [`CommandList`] produced: the hardware work charged
/// and every readback slot, indexed by the slot numbers the [`Recorder`]
/// handed out.
#[derive(Debug, Clone, PartialEq)]
pub struct Execution {
    /// The deterministic work counters this execution charged — identical
    /// across executors for the same list (the bit-identity invariant).
    pub stats: HwStats,
    /// Readback results, one per recorded query, in recording order.
    pub readbacks: Vec<Readback>,
}

impl Execution {
    /// The maximum red value of the Minmax readback in `slot`.
    pub fn max_red(&self, slot: usize) -> f32 {
        match &self.readbacks[slot] {
            Readback::Minmax(_, mx) => mx[0],
            other => panic!("slot {slot} holds {other:?}, not a minmax readback"),
        }
    }

    /// The stencil-maximum readback in `slot`.
    pub fn stencil_value(&self, slot: usize) -> u8 {
        match &self.readbacks[slot] {
            Readback::StencilMax(v) => *v,
            other => panic!("slot {slot} holds {other:?}, not a stencil readback"),
        }
    }

    /// The per-cell maxima of the cell-reduction readback in `slot`.
    pub fn cell_max(&self, slot: usize) -> &[f32] {
        match &self.readbacks[slot] {
            Readback::CellMax(v) => v,
            other => panic!("slot {slot} holds {other:?}, not a cell readback"),
        }
    }
}

/// An executor for recorded command streams.
///
/// The contract, in full (see also the module docs):
///
/// * [`RasterDevice::execute`] starts from a cleared window — device
///   history must never leak into results (purity: executing the same
///   list twice yields equal [`Execution`]s);
/// * results must be **bit-identical** to [`ReferenceDevice`]: every
///   readback, every [`HwStats`] counter, and the
///   [`RasterDevice::snapshot`] framebuffer;
/// * counters follow the two-level charging discipline: command-level
///   work (`draw_calls`, `primitives`, `minmax_queries`, `batches`) is
///   charged once per list, fragment-level work (`fragments_tested`,
///   `pixels_written`, `pixels_scanned`) exactly as the reference
///   charges it, however the executor partitions the window.
pub trait RasterDevice: Send + std::fmt::Debug {
    /// A short human-readable backend name for reports.
    fn name(&self) -> &'static str;

    /// Executes `list` from a cleared window and returns the work charged
    /// plus all readbacks. Counters are a pure function of the list:
    /// executing the same list twice yields equal [`Execution`]s.
    fn execute(&mut self, list: &CommandList) -> Execution;

    /// The final framebuffer of the most recent [`RasterDevice::execute`],
    /// if any — for equivalence tests and debugging dumps, not for the
    /// query hot path (readback is what Minmax exists to avoid).
    fn snapshot(&self) -> Option<FrameBuffer>;
}

/// A buildable device selection — the configuration-level knob `core`'s
/// engine exposes (`EngineConfig.device`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeviceKind {
    /// Single-threaded [`ReferenceDevice`] replay.
    #[default]
    Reference,
    /// [`TiledDevice`] with `tiles` horizontal bands executed by up to
    /// `threads` workers.
    Tiled {
        /// Horizontal band count (clamped to the window height).
        tiles: usize,
        /// Worker-thread cap (clamped to the band count).
        threads: usize,
    },
    /// [`SimdDevice`]: single-threaded, vectorized inner loops.
    Simd,
    /// [`TiledDevice::new_simd`]: vectorized inner loops inside each of
    /// `tiles` bands, executed by up to `threads` workers.
    TiledSimd {
        /// Horizontal band count (clamped to the window height).
        tiles: usize,
        /// Worker-thread cap (clamped to the band count).
        threads: usize,
    },
}

impl DeviceKind {
    /// Instantiates the selected executor.
    pub fn build(self) -> Box<dyn RasterDevice> {
        match self {
            DeviceKind::Reference => Box::new(ReferenceDevice::new()),
            DeviceKind::Tiled { tiles, threads } => Box::new(TiledDevice::new(tiles, threads)),
            DeviceKind::Simd => Box::new(SimdDevice::new()),
            DeviceKind::TiledSimd { tiles, threads } => {
                Box::new(TiledDevice::new_simd(tiles, threads))
            }
        }
    }
}
