//! The retained device layer: record → validate → execute → replay-cost.
//!
//! Real GPU stacks decouple *recording* work from *executing* it via
//! command buffers; this module gives the simulated hardware the same
//! shape. The lifecycle has four stations:
//!
//! 1. **Record.** A [`Recorder`] captures one submission — state changes,
//!    draws, readback queries — into flat geometry arenas and a typed
//!    command tape.
//! 2. **Validate.** Every recording call checks its arguments *up front*
//!    (viewport before draws, width/size limits, in-bounds scissors and
//!    cells) and returns [`RecordError`] on violation, so a finished
//!    [`CommandList`] is valid by construction and executors never
//!    re-validate on the hot path.
//! 3. **Execute.** Any [`RasterDevice`] runs the immutable list and
//!    returns an [`Execution`] — the deterministic work counters
//!    ([`HwStats`]) plus the stream's readback results, in recorded
//!    order.
//! 4. **Replay-cost.** Because execution is a pure function of the list,
//!    modeled GPU time is too: [`crate::HwCostModel::replay_cost`] prices
//!    a `CommandList` by replaying it, independent of which device (or
//!    how many threads, or what lane width) ran it for real.
//!
//! Between validation and execution two optional, set-preserving
//! transformations sit on the recording side: [`CommandList::fuse`] elides
//! uncharged dead state from a recorded tape (see [`fuse`]), and a
//! [`ListTemplate`] turns a recorded skeleton into a reusable tape that
//! splices fresh viewports and geometry per instantiation (see
//! [`template`]) — the machinery behind `hwa-core`'s recording cache.
//! Neither changes what an executor observes being charged: framebuffer,
//! readbacks and every `HwStats` counter stay bit-identical.
//!
//! Three executors ship:
//!
//! * [`ReferenceDevice`] replays the list onto [`crate::GlContext`]
//!   verbatim — the semantics anchor, bit-identical to driving the
//!   context by hand;
//! * [`TiledDevice`] partitions the window into horizontal bands and
//!   executes the *same list* on every band across scoped worker threads,
//!   merging per-band counters and readbacks deterministically;
//! * [`SimdDevice`] replays through lane-width-generic kernels that test
//!   coverage, fill spans and scan buffers [`simd::SIMD_LANES`] pixels
//!   per step — and composes with the tiled device
//!   ([`TiledDevice::new_simd`]) for threads × lanes.
//!
//! A fourth, [`FaultDevice`], is not an executor but a wrapper: it injects
//! seeded, deterministic failures ([`FaultPlan`]) into any inner device so
//! the recovery ladder in `core` (retry → software fallback → quarantine)
//! can be property-tested without real hardware. Execution is fallible
//! end to end — [`RasterDevice::execute`] returns
//! `Result<Execution, DeviceError>` and callers must treat any `Err` as
//! "nothing happened": no counters charged, no readbacks usable.
//!
//! **The bit-identity invariant.** Every executor must produce the same
//! [`Execution`] — every readback value *and* every [`HwStats`] counter —
//! and the same final framebuffer as [`ReferenceDevice`], bit for bit,
//! for every valid list. Not "close enough": equality is what lets the
//! staged query pipelines treat the device as a config knob
//! (`EngineConfig.device`) without re-verifying results, and what makes
//! the replay cost model device-independent. The invariant is
//! property-tested in `crates/raster/tests/device_props.rs` and pinned by
//! the golden command streams in `crates/core/tests/golden/`; see
//! DESIGN.md §7 for the contract a new backend must uphold.

#![warn(missing_docs)]

mod band;
pub mod command;
pub mod fault;
pub mod fuse;
mod reference;
pub mod shard;
pub mod simd;
pub mod template;
mod tiled;

pub use crate::context::PixelRect;
pub use command::{Command, CommandList, RecordError, Recorder};
pub use fault::{FaultDevice, FaultKind, FaultPlan, FaultTrigger};
pub use reference::ReferenceDevice;
pub use shard::{failover_route, ShardedDevice};
pub use simd::SimdDevice;
pub use template::ListTemplate;
pub use tiled::TiledDevice;

use crate::framebuffer::{Color, FrameBuffer};
use crate::stats::HwStats;

/// A typed device-execution failure — the errors a real command-buffer
/// backend (driver reset, VRAM pressure, watchdog, DMA corruption) can
/// surface, and the vocabulary the supervisor in `core` recovers from.
///
/// Every variant means "this execution produced nothing usable": no
/// counter of a failed submission may be charged, and the caller either
/// retries, falls back to the exact software test, or quarantines the
/// device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceError {
    /// The rendering context was lost mid-submission (driver reset,
    /// device removal). Nothing of the execution survives.
    ContextLost,
    /// The device could not allocate the buffers the list needs.
    OutOfMemory,
    /// A readback came home malformed: missing slot, wrong slot kind,
    /// wrong cell count, or values outside the range any valid execution
    /// of the list could produce.
    ReadbackCorrupt {
        /// The readback slot where the corruption was detected.
        slot: usize,
    },
    /// The submission did not complete within the watchdog budget.
    Timeout,
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::ContextLost => write!(f, "rendering context lost"),
            DeviceError::OutOfMemory => write!(f, "device out of memory"),
            DeviceError::ReadbackCorrupt { slot } => {
                write!(f, "corrupt readback in slot {slot}")
            }
            DeviceError::Timeout => write!(f, "device execution timed out"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// One readback result, in the order the queries were recorded.
#[derive(Debug, Clone, PartialEq)]
pub enum Readback {
    /// Per-channel (min, max) of the color buffer.
    Minmax(Color, Color),
    /// Maximum stencil value.
    StencilMax(u8),
    /// Number of pixels whose stencil value reached the recorded
    /// threshold — the fragment count the area-of-overlap aggregation
    /// scales to world-space area.
    StencilCount(u64),
    /// Per-cell maximum red values, one per recorded rectangle.
    CellMax(Vec<f32>),
}

/// What executing a [`CommandList`] produced: the hardware work charged
/// and every readback slot, indexed by the slot numbers the [`Recorder`]
/// handed out.
#[derive(Debug, Clone, PartialEq)]
pub struct Execution {
    /// The deterministic work counters this execution charged — identical
    /// across executors for the same list (the bit-identity invariant).
    pub stats: HwStats,
    /// Readback results, one per recorded query, in recording order.
    pub readbacks: Vec<Readback>,
}

impl Execution {
    /// The maximum red value of the Minmax readback in `slot`, or
    /// [`DeviceError::ReadbackCorrupt`] when the slot is missing or holds
    /// a different readback kind.
    pub fn max_red(&self, slot: usize) -> Result<f32, DeviceError> {
        match self.readbacks.get(slot) {
            Some(Readback::Minmax(_, mx)) => Ok(mx[0]),
            _ => Err(DeviceError::ReadbackCorrupt { slot }),
        }
    }

    /// The stencil-maximum readback in `slot`, or
    /// [`DeviceError::ReadbackCorrupt`] when the slot is missing or holds
    /// a different readback kind.
    pub fn stencil_value(&self, slot: usize) -> Result<u8, DeviceError> {
        match self.readbacks.get(slot) {
            Some(Readback::StencilMax(v)) => Ok(*v),
            _ => Err(DeviceError::ReadbackCorrupt { slot }),
        }
    }

    /// The stencil-count readback in `slot`, or
    /// [`DeviceError::ReadbackCorrupt`] when the slot is missing or holds
    /// a different readback kind.
    pub fn stencil_count(&self, slot: usize) -> Result<u64, DeviceError> {
        match self.readbacks.get(slot) {
            Some(Readback::StencilCount(n)) => Ok(*n),
            _ => Err(DeviceError::ReadbackCorrupt { slot }),
        }
    }

    /// The per-cell maxima of the cell-reduction readback in `slot`, or
    /// [`DeviceError::ReadbackCorrupt`] when the slot is missing or holds
    /// a different readback kind.
    pub fn cell_max(&self, slot: usize) -> Result<&[f32], DeviceError> {
        match self.readbacks.get(slot) {
            Some(Readback::CellMax(v)) => Ok(v),
            _ => Err(DeviceError::ReadbackCorrupt { slot }),
        }
    }

    /// Post-execution sanity validation against the list that produced
    /// this execution. Checks what a caller can check without re-executing:
    ///
    /// * the readback count matches the recorded query count (a cell
    ///   readback's value count matches its recorded cell count);
    /// * every slot holds the readback kind its query recorded;
    /// * every color value is finite and inside the range a valid
    ///   execution of this list can produce — clears write black, blending
    ///   and accumulation clamp at 1.0, overwrite writes recorded colors,
    ///   so the brightest recorded `SetColor` channel (at least 1.0)
    ///   bounds every Minmax/CellMax value.
    ///
    /// This is how the supervisor catches corrupted readbacks (bit-flips
    /// on the readback path) that a `Result`-returning `execute` alone
    /// cannot see.
    pub fn validate(&self, list: &CommandList) -> Result<(), DeviceError> {
        if self.readbacks.len() != list.readback_count() {
            return Err(DeviceError::ReadbackCorrupt {
                slot: self.readbacks.len().min(list.readback_count()),
            });
        }
        let mut hi = 1.0f32;
        let mut nonneg = true;
        for cmd in list.commands() {
            if let Command::SetColor(c) = *cmd {
                for v in c.iter().take(3) {
                    hi = hi.max(*v);
                    nonneg &= *v >= 0.0;
                }
            }
        }
        let lo = if nonneg { 0.0f32 } else { f32::NEG_INFINITY };
        let in_range = |v: f32| v.is_finite() && v >= lo && v <= hi;
        let mut slot = 0usize;
        for cmd in list.commands() {
            let ok = match *cmd {
                Command::Minmax => match &self.readbacks[slot] {
                    Readback::Minmax(mn, mx) => {
                        (0..3).all(|ch| in_range(mn[ch]) && in_range(mx[ch]) && mn[ch] <= mx[ch])
                    }
                    _ => false,
                },
                Command::StencilMax => {
                    matches!(&self.readbacks[slot], Readback::StencilMax(_))
                }
                Command::StencilCount { .. } => match &self.readbacks[slot] {
                    // No valid execution can count more covered pixels
                    // than the window holds.
                    Readback::StencilCount(n) => *n <= (list.width() * list.height()) as u64,
                    _ => false,
                },
                Command::CellMax { len, .. } => match &self.readbacks[slot] {
                    Readback::CellMax(vals) => {
                        vals.len() == len && vals.iter().all(|&v| in_range(v))
                    }
                    _ => false,
                },
                _ => continue,
            };
            if !ok {
                return Err(DeviceError::ReadbackCorrupt { slot });
            }
            slot += 1;
        }
        Ok(())
    }
}

/// An executor for recorded command streams.
///
/// The contract, in full (see also the module docs):
///
/// * [`RasterDevice::execute`] starts from a cleared window — device
///   history must never leak into results (purity: executing the same
///   list twice yields equal [`Execution`]s);
/// * results must be **bit-identical** to [`ReferenceDevice`]: every
///   readback, every [`HwStats`] counter, and the
///   [`RasterDevice::snapshot`] framebuffer;
/// * counters follow the two-level charging discipline: command-level
///   work (`draw_calls`, `primitives`, `minmax_queries`, `batches`) is
///   charged once per list, fragment-level work (`fragments_tested`,
///   `pixels_written`, `pixels_scanned`) exactly as the reference
///   charges it, however the executor partitions the window.
pub trait RasterDevice: Send + std::fmt::Debug {
    /// A short human-readable backend name for reports.
    fn name(&self) -> &'static str;

    /// Executes `list` from a cleared window and returns the work charged
    /// plus all readbacks. Counters are a pure function of the list:
    /// executing the same list twice yields equal [`Execution`]s.
    ///
    /// An `Err` means the execution produced nothing usable — none of its
    /// work may be charged, and a later `execute` on the same device must
    /// still start from a cleared window (failures never leak state into
    /// subsequent results). The simulated executors are infallible; the
    /// fallible signature is the seam real backends (and the fault
    /// injector) plug into.
    fn execute(&mut self, list: &CommandList) -> Result<Execution, DeviceError>;

    /// Selects which shard subsequent [`RasterDevice::execute`] calls land
    /// on. Single-backend executors have nothing to route — the default is
    /// a no-op — while [`ShardedDevice`] switches its active inner backend
    /// (modulo its shard count, rehashed over its healthy shards) and
    /// [`FaultDevice`] forwards to whatever it wraps. Callers route by
    /// partition index (`partition % shards`), a pure function of the
    /// partition, so sharded execution stays deterministic.
    fn route(&mut self, _shard: usize) {}

    /// How many independently routable shards this device fans out to.
    /// `1` for single-backend executors (the default); [`ShardedDevice`]
    /// reports its inner-backend count and [`FaultDevice`] forwards. The
    /// supervisor in `core` sizes its per-shard health table from this.
    fn shards(&self) -> usize {
        1
    }

    /// Marks one shard healthy or unhealthy for routing purposes:
    /// [`ShardedDevice::route`] rehashes submissions aimed at an unhealthy
    /// shard onto the next healthy one ([`shard::failover_route`]). A
    /// no-op on unsharded executors (the default) — a single-backend
    /// device has nowhere else to send work, so health lives entirely in
    /// the caller's breaker. Health never affects *what* a shard computes,
    /// only which shard computes it, so the bit-identity invariant is
    /// untouched.
    fn set_shard_health(&mut self, _shard: usize, _healthy: bool) {}

    /// The final framebuffer of the most recent [`RasterDevice::execute`],
    /// if any — for equivalence tests and debugging dumps, not for the
    /// query hot path (readback is what Minmax exists to avoid).
    fn snapshot(&self) -> Option<FrameBuffer>;
}

/// A buildable device selection — the configuration-level knob `core`'s
/// engine exposes (`EngineConfig.device`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum DeviceKind {
    /// Single-threaded [`ReferenceDevice`] replay.
    #[default]
    Reference,
    /// [`TiledDevice`] with `tiles` horizontal bands executed by up to
    /// `threads` workers.
    Tiled {
        /// Horizontal band count (clamped to the window height).
        tiles: usize,
        /// Worker-thread cap (clamped to the band count).
        threads: usize,
    },
    /// [`SimdDevice`]: single-threaded, vectorized inner loops.
    Simd,
    /// [`TiledDevice::new_simd`]: vectorized inner loops inside each of
    /// `tiles` bands, executed by up to `threads` workers.
    TiledSimd {
        /// Horizontal band count (clamped to the window height).
        tiles: usize,
        /// Worker-thread cap (clamped to the band count).
        threads: usize,
    },
    /// [`FaultDevice`]: the selected `inner` device wrapped in a seeded,
    /// deterministic fault injector. Carried through `EngineConfig.device`
    /// and backend `fork`, so parallel refinement workers each get an
    /// identically scheduled injector.
    Fault {
        /// The device kind that executes the lists when the plan does not
        /// fault them.
        inner: Box<DeviceKind>,
        /// The deterministic fault schedule.
        plan: FaultPlan,
    },
    /// [`ShardedDevice`]: `shards` independent instances of the `inner`
    /// kind behind one routing front — the multi-device fan-out the
    /// partitioned query path dispatches to (one shard per partition,
    /// `partition % shards`). Each shard is a full inner device, fault
    /// injector included when `inner` is `Fault`-wrapped.
    Sharded {
        /// The device kind each shard instantiates.
        inner: Box<DeviceKind>,
        /// How many independent inner backends to build.
        shards: usize,
    },
}

impl DeviceKind {
    /// Instantiates the selected executor.
    pub fn build(&self) -> Box<dyn RasterDevice> {
        match self {
            DeviceKind::Reference => Box::new(ReferenceDevice::new()),
            DeviceKind::Tiled { tiles, threads } => Box::new(TiledDevice::new(*tiles, *threads)),
            DeviceKind::Simd => Box::new(SimdDevice::new()),
            DeviceKind::TiledSimd { tiles, threads } => {
                Box::new(TiledDevice::new_simd(*tiles, *threads))
            }
            DeviceKind::Fault { inner, plan } => Box::new(FaultDevice::new(inner.build(), *plan)),
            DeviceKind::Sharded { inner, shards } => Box::new(ShardedDevice::new(inner, *shards)),
        }
    }

    /// Wraps `self` in a fault injector driven by `plan` (convenience for
    /// building [`DeviceKind::Fault`] configurations).
    pub fn with_faults(self, plan: FaultPlan) -> DeviceKind {
        DeviceKind::Fault {
            inner: Box::new(self),
            plan,
        }
    }

    /// Fans `self` out across `shards` independent instances behind one
    /// routing front (convenience for building [`DeviceKind::Sharded`]
    /// configurations).
    pub fn sharded(self, shards: usize) -> DeviceKind {
        DeviceKind::Sharded {
            inner: Box::new(self),
            shards,
        }
    }

    /// The kind shard `shard` of a [`ShardedDevice`] instantiates:
    /// fault plans targeted at a *different* shard ([`FaultPlan::on_shard`])
    /// are stripped, and untargeted plans keep their trigger schedule but
    /// get a shard-salted seed ([`FaultPlan::salted`]) so each shard's
    /// injector draws independent per-fault choices. Shard 0 keeps the
    /// plan verbatim, so a one-shard ensemble faults exactly like the flat
    /// device it wraps.
    pub fn for_shard(&self, shard: usize) -> DeviceKind {
        match self {
            DeviceKind::Fault { inner, plan } => {
                let inner = inner.for_shard(shard);
                match plan.shard {
                    Some(target) if target != shard => inner,
                    _ => DeviceKind::Fault {
                        inner: Box::new(inner),
                        plan: plan.salted(shard),
                    },
                }
            }
            other => other.clone(),
        }
    }
}
