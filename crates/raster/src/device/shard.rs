//! Sharded execution: K independent inner backends behind one device.
//!
//! The partitioned query path (DESIGN.md §11) splits a join into grid
//! cells and dispatches each partition's command lists to its own device
//! instance — its own board, machine, or simulated backend.
//! [`ShardedDevice`] is that fan-out point: it owns `K` inner executors
//! built from one [`DeviceKind`] (any kind, including `Fault`-wrapped
//! ones, so every shard gets its own deterministically seeded injector —
//! see [`DeviceKind::for_shard`] — and the whole ensemble stays
//! deterministic), and routes each submission to the shard selected by
//! the most recent [`RasterDevice::route`] call.
//!
//! Routing is state the *caller* owns: partition `p` routes to shard
//! `p % K`, a pure function of the partition index, never of thread
//! timing. When the caller's breaker marks a shard unhealthy
//! ([`RasterDevice::set_shard_health`]), the requested index is rehashed
//! over the healthy set by [`failover_route`] — still a pure function of
//! (index, mask), so failover is exactly as deterministic as the happy
//! path (DESIGN.md §13). Each shard is an ordinary [`RasterDevice`] and
//! keeps the purity contract (same list → same [`Execution`]), so the
//! ensemble is as deterministic as its parts.
//!
//! Cross-shard results are combined with [`ShardedDevice::merge`], which
//! folds a sequence of per-partition executions *in the order given* —
//! counters summed, readbacks concatenated — exactly the discipline
//! [`super::TiledDevice`] uses to merge its horizontal bands: a fixed
//! walk order makes the merged stats independent of which shard finished
//! first. The staged executor in `core` merges per-partition
//! `TestStats`/`CostBreakdown` the same way, in ascending partition
//! order (invariant 12).
//!
//! # Example
//!
//! ```
//! use spatial_raster::device::{DeviceKind, RasterDevice, Recorder, ShardedDevice};
//!
//! // Record once; execute on whichever shard the partition routes to.
//! let mut rec = Recorder::new(4, 4);
//! rec.clear_color();
//! rec.minmax();
//! let list = rec.finish();
//!
//! let mut dev = ShardedDevice::new(&DeviceKind::Reference, 2);
//! dev.route(3); // partition 3 → shard 3 % 2 = 1, a pure function of the index
//! assert_eq!(dev.active(), 1);
//!
//! let exec = dev.execute(&list).unwrap();
//! assert_eq!(exec.readbacks.len(), 1);
//!
//! // Per-partition executions merge in the order given (ascending
//! // partition order in the engine), so stats are completion-order-free.
//! let merged = ShardedDevice::merge([exec]);
//! assert_eq!(merged.stats.minmax_queries, 1);
//! ```

use super::command::CommandList;
use super::{DeviceError, DeviceKind, Execution, RasterDevice};
use crate::framebuffer::FrameBuffer;
use crate::stats::HwStats;

/// The stable rehash the failover tier routes by: starting at `desired`,
/// walk shard indices in order (wrapping) and return the first healthy
/// one, or `None` when no shard is healthy. A pure function of its
/// arguments — the same desired shard and health mask always pick the
/// same physical shard, so failover never depends on submission history
/// or thread timing, and a fully healthy mask is the identity
/// (`desired % len`).
pub fn failover_route(desired: usize, healthy: &[bool]) -> Option<usize> {
    let n = healthy.len();
    if n == 0 {
        return None;
    }
    (0..n)
        .map(|step| (desired + step) % n)
        .find(|&s| healthy[s])
}

/// K independent inner backends behind one [`RasterDevice`] front.
///
/// Submissions execute on the *active* shard — shard 0 until the first
/// [`RasterDevice::route`] call. Shards share nothing: each has its own
/// framebuffer, its own fault-injection schedule when the inner kind is
/// `Fault`-wrapped, and its own submission history. Shard `i` is built
/// from [`DeviceKind::for_shard`], so an untargeted fault plan salts its
/// per-fault seed per shard and a [`super::FaultPlan::on_shard`] plan
/// faults exactly one shard.
///
/// Each shard also carries a health bit
/// ([`RasterDevice::set_shard_health`], all healthy at construction):
/// [`RasterDevice::route`] resolves the requested shard through
/// [`failover_route`], so submissions aimed at a shard the caller's
/// breaker has opened land on the next healthy shard instead. When every
/// shard is unhealthy, routing falls back to the requested index — the
/// caller is expected to stop submitting (software fallback) before that
/// matters.
#[derive(Debug)]
pub struct ShardedDevice {
    shards: Vec<Box<dyn RasterDevice>>,
    healthy: Vec<bool>,
    active: usize,
}

impl ShardedDevice {
    /// Builds `shards` independent instances of `inner` (clamped to at
    /// least one), all healthy.
    pub fn new(inner: &DeviceKind, shards: usize) -> Self {
        let n = shards.max(1);
        ShardedDevice {
            shards: (0..n).map(|i| inner.for_shard(i).build()).collect(),
            healthy: vec![true; n],
            active: 0,
        }
    }

    /// How many inner backends this device owns.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index submissions currently execute on.
    pub fn active(&self) -> usize {
        self.active
    }

    /// The current health mask, in shard order.
    pub fn healthy(&self) -> &[bool] {
        &self.healthy
    }

    /// Folds per-partition executions into one, **in the order given**:
    /// [`HwStats`] counters are summed and readbacks concatenated exactly
    /// as [`super::TiledDevice`] walks its bands in fixed band order.
    /// Callers merging partitions must iterate in ascending partition
    /// order so the result is independent of shard completion timing.
    pub fn merge(executions: impl IntoIterator<Item = Execution>) -> Execution {
        let mut merged = Execution {
            stats: HwStats::default(),
            readbacks: Vec::new(),
        };
        for exec in executions {
            merged.stats.add(&exec.stats);
            merged.readbacks.extend(exec.readbacks);
        }
        merged
    }
}

impl RasterDevice for ShardedDevice {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn execute(&mut self, list: &CommandList) -> Result<Execution, DeviceError> {
        self.shards[self.active].execute(list)
    }

    fn route(&mut self, shard: usize) {
        let desired = shard % self.shards.len();
        self.active = failover_route(desired, &self.healthy).unwrap_or(desired);
    }

    fn shards(&self) -> usize {
        self.shards.len()
    }

    fn set_shard_health(&mut self, shard: usize, healthy: bool) {
        let n = self.shards.len();
        self.healthy[shard % n] = healthy;
        // Keep the active shard consistent with the new mask: a submission
        // routed before the health change must not land on a shard that
        // just went dark.
        self.active = failover_route(self.active, &self.healthy).unwrap_or(self.active);
    }

    fn snapshot(&self) -> Option<FrameBuffer> {
        self.shards[self.active].snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::super::Recorder;
    use super::*;
    use crate::framebuffer::HALF_GRAY;
    use crate::viewport::Viewport;
    use spatial_geom::{Rect, Segment};

    fn minmax_list() -> CommandList {
        let mut rec = Recorder::new(8, 8);
        rec.set_viewport(Viewport::new(Rect::new(0.0, 0.0, 8.0, 8.0), 8, 8))
            .unwrap();
        rec.set_color(HALF_GRAY);
        rec.clear_color();
        rec.draw_segments([Segment::new((1.0, 1.0).into(), (7.0, 7.0).into())])
            .unwrap();
        rec.minmax();
        rec.finish()
    }

    #[test]
    fn every_shard_matches_the_reference() {
        let list = minmax_list();
        let reference = DeviceKind::Reference.build().execute(&list).unwrap();
        let mut dev = ShardedDevice::new(&DeviceKind::Simd, 3);
        for shard in 0..7 {
            dev.route(shard);
            assert_eq!(dev.active(), shard % 3);
            assert_eq!(dev.execute(&list).unwrap(), reference, "shard {shard}");
        }
    }

    #[test]
    fn shards_have_independent_fault_schedules() {
        use super::super::{FaultKind, FaultPlan, FaultTrigger};
        let plan = FaultPlan::new(11, FaultKind::ContextLost, FaultTrigger::OnExecute(0));
        let kind = DeviceKind::Reference.with_faults(plan);
        let mut dev = ShardedDevice::new(&kind, 2);
        let list = minmax_list();
        // Each shard's injector counts its own submissions: the first
        // execute on *each* shard faults, the second succeeds.
        for shard in 0..2 {
            dev.route(shard);
            assert_eq!(dev.execute(&list), Err(DeviceError::ContextLost));
            assert!(dev.execute(&list).is_ok(), "shard {shard} retry");
        }
    }

    #[test]
    fn merge_sums_counters_and_concatenates_readbacks_in_order() {
        let list = minmax_list();
        let one = DeviceKind::Reference.build().execute(&list).unwrap();
        let merged = ShardedDevice::merge([one.clone(), one.clone(), one.clone()]);
        assert_eq!(merged.readbacks.len(), 3 * one.readbacks.len());
        assert_eq!(merged.stats.draw_calls, 3 * one.stats.draw_calls);
        assert_eq!(merged.readbacks[0], one.readbacks[0]);
    }

    #[test]
    fn zero_shard_request_clamps_to_one() {
        let dev = ShardedDevice::new(&DeviceKind::Reference, 0);
        assert_eq!(dev.shards(), 1);
    }

    #[test]
    fn unhealthy_shards_are_rehashed_around() {
        let list = minmax_list();
        let reference = DeviceKind::Reference.build().execute(&list).unwrap();
        let mut dev = ShardedDevice::new(&DeviceKind::Reference, 4);
        dev.set_shard_health(1, false);
        dev.route(1);
        assert_eq!(dev.active(), 2, "desired shard is sick: next one serves");
        assert_eq!(dev.execute(&list).unwrap(), reference);
        dev.set_shard_health(1, true);
        dev.route(1);
        assert_eq!(dev.active(), 1, "re-admitted shard serves again");
    }

    #[test]
    fn failover_route_is_a_stable_rehash() {
        assert_eq!(failover_route(2, &[true, true, true, true]), Some(2));
        assert_eq!(failover_route(2, &[true, true, false, true]), Some(3));
        assert_eq!(failover_route(3, &[true, false, false, false]), Some(0));
        assert_eq!(failover_route(1, &[false, false]), None);
        assert_eq!(failover_route(0, &[]), None);
        // Indices past the mask length wrap like route() does.
        assert_eq!(failover_route(6, &[true, false, true]), Some(0));
    }

    #[test]
    fn health_change_moves_the_active_shard_off_a_dead_one() {
        let mut dev = ShardedDevice::new(&DeviceKind::Reference, 3);
        dev.route(2);
        assert_eq!(dev.active(), 2);
        dev.set_shard_health(2, false);
        assert_eq!(dev.active(), 0, "active shard rehashed after it died");
    }

    #[test]
    fn targeted_plans_fault_only_their_shard() {
        use super::super::{FaultKind, FaultPlan, FaultTrigger};
        let plan = FaultPlan::new(5, FaultKind::Timeout, FaultTrigger::EveryK(1)).on_shard(1);
        let kind = DeviceKind::Reference.with_faults(plan);
        let mut dev = ShardedDevice::new(&kind, 3);
        let list = minmax_list();
        for shard in 0..3 {
            dev.route(shard);
            let r = dev.execute(&list);
            assert_eq!(r.is_err(), shard == 1, "shard {shard}");
        }
    }

    #[test]
    fn sharded_kind_builds_and_routes() {
        let kind = DeviceKind::Simd.sharded(4);
        let mut dev = kind.build();
        assert_eq!(dev.name(), "sharded");
        let list = minmax_list();
        dev.route(3);
        let reference = DeviceKind::Reference.build().execute(&list).unwrap();
        assert_eq!(dev.execute(&list).unwrap(), reference);
    }
}
