//! The shared band replay engine: one function, every executor.
//!
//! [`run_band`] replays a full [`CommandList`] against one horizontal band
//! of the window (global rows `y0..y1`) and is generic over `LANES`, the
//! number of pixels its inner loops advance per step. Every replaying
//! executor is a composition of this single function:
//!
//! * [`super::TiledDevice`] (scalar): many bands × `run_band::<1>`;
//! * [`super::SimdDevice`]: one full-window band × `run_band::<8>`;
//! * [`super::TiledDevice`] in SIMD mode: many bands × `run_band::<8>`.
//!
//! The per-pixel math inside the lane-generic kernels
//! ([`crate::aa_line::AaLineCover`], [`crate::point_raster::WidePointCover`],
//! [`crate::scan`]) is identical expression-for-expression at every lane
//! width, which is what lets all executors promise bit-identical
//! framebuffers, readbacks and [`HwStats`] against the reference replay.
//! Where the replay restructures *how* fragments are materialized — the
//! Overwrite span fills of [`fill_line_spans`]/[`fill_point_spans`] — the
//! restructuring is set-preserving: the written pixel set and the charged
//! counters are provably the same as the per-pixel path's, only the store
//! pattern changes.
//!
//! Counters split by kind: `run_band` charges only fragment-level work
//! (`fragments_tested`, `pixels_written`, `pixels_scanned`) over its
//! band-sized buffer; command-level work (`draw_calls`, `primitives`,
//! `minmax_queries`, `batches`) is charged once, centrally, by
//! [`command_level_stats`] — never per band.

use super::command::{Command, CommandList};
use super::{DeviceError, Readback};
use crate::aa_line::{AaLineCover, DIAGONAL_WIDTH};
use crate::context::{PixelRect, WriteMode, MAX_AA_LINE_WIDTH, MAX_POINT_SIZE};
use crate::framebuffer::{Color, FrameBuffer, BLACK, HALF_GRAY};
use crate::point_raster::WidePointCover;
use crate::polygon_raster::rasterize_polygon_spans;
use crate::scan;
use crate::stats::HwStats;
use crate::viewport::Viewport;
use spatial_geom::Point;

/// What one band's replay produced: its fragment-level counter share and
/// its partial readback stream (one entry per recorded query, band order
/// preserved).
pub(super) struct BandResult {
    pub(super) stats: HwStats,
    pub(super) readbacks: Vec<Readback>,
}

/// The command-level counter charges of a list — draw calls, primitives,
/// readback queries, batches — independent of how (or how many times per
/// band) the list is executed.
pub(super) fn command_level_stats(list: &CommandList) -> HwStats {
    let mut stats = HwStats::default();
    for cmd in list.commands() {
        match *cmd {
            Command::DrawSegments { len, new_call, .. }
            | Command::DrawPoints { len, new_call, .. } => {
                if new_call {
                    stats.draw_calls += 1;
                }
                stats.primitives += len;
            }
            Command::FillPolygon { .. } => {
                stats.draw_calls += 1;
                stats.primitives += 1;
            }
            Command::Minmax
            | Command::StencilMax
            | Command::StencilCount { .. }
            | Command::CellMax { .. } => {
                stats.minmax_queries += 1;
            }
            Command::BeginBatch => stats.batches += 1,
            _ => {}
        }
    }
    stats
}

/// Folds one band's partial readback into the running merged value.
/// Min/max over a row partition is the min/max of per-part results, so
/// walking bands in a fixed order reconstructs the whole-window answer
/// regardless of which thread ran which band.
pub(super) fn merge_readback(acc: &mut Readback, part: Readback) {
    match (acc, part) {
        (Readback::Minmax(mn, mx), Readback::Minmax(pmn, pmx)) => {
            for ch in 0..3 {
                mn[ch] = mn[ch].min(pmn[ch]);
                mx[ch] = mx[ch].max(pmx[ch]);
            }
        }
        (Readback::StencilMax(v), Readback::StencilMax(pv)) => *v = (*v).max(pv),
        // Rows partition the window across bands, so per-band counts sum
        // to the whole-window count exactly (integer addition).
        (Readback::StencilCount(n), Readback::StencilCount(pn)) => *n += pn,
        (Readback::CellMax(vals), Readback::CellMax(pvals)) => {
            for (a, b) in vals.iter_mut().zip(pvals) {
                *a = a.max(b);
            }
        }
        _ => unreachable!("band readback streams diverged"),
    }
}

/// Runs a line coverage setup over its candidate rows, `LANES` pixels per
/// step, translating emitted window-local pixels into band-buffer
/// coordinates (`ox`/`oy` window origin, `y0` band start).
#[inline(always)]
fn cover_line<const LANES: usize>(
    cov: Option<AaLineCover>,
    (y0, ox, oy): (usize, usize, usize),
    stats: &mut HwStats,
    emit: &mut impl FnMut(usize, usize),
) {
    let Some(cov) = cov else { return };
    for j in cov.rows() {
        let fy = oy + j as usize - y0;
        stats.fragments_tested += cov.cover_row::<LANES>(j, &mut |x| emit(ox + x, fy));
    }
}

/// [`cover_line`]'s twin for the smooth-point disc test.
#[inline(always)]
fn cover_point<const LANES: usize>(
    cov: Option<WidePointCover>,
    (y0, ox, oy): (usize, usize, usize),
    stats: &mut HwStats,
    emit: &mut impl FnMut(usize, usize),
) {
    let Some(cov) = cov else { return };
    for j in cov.rows() {
        let fy = oy + j as usize - y0;
        stats.fragments_tested += cov.cover_row::<LANES>(j, &mut |x| emit(ox + x, fy));
    }
}

/// Overwrite-mode line coverage: a scanline's covered pixels always form
/// one contiguous interval (see [`AaLineCover::cover_row_span`]), so
/// instead of testing and writing pixel-by-pixel, locate the interval's
/// endpoints — chunk-wise from both ends, never touching the interior —
/// and bulk-fill the span. The span is exactly the pixel set the
/// per-pixel path emits and Overwrite writes are idempotent per color, so
/// framebuffer, `fragments_tested` and `pixels_written` all stay
/// bit-identical to the reference replay.
#[inline(always)]
fn fill_line_spans<const LANES: usize>(
    cov: Option<AaLineCover>,
    (y0, ox, oy): (usize, usize, usize),
    color: Color,
    fb: &mut FrameBuffer,
    stats: &mut HwStats,
    written: &mut usize,
) {
    let Some(cov) = cov else { return };
    stats.fragments_tested += cov.cover_spans::<LANES>(|j, lo, hi| {
        let len = hi - lo + 1;
        fb.fill_row_span(oy + j as usize - y0, ox + lo, len, color);
        *written += len;
    });
}

/// [`fill_line_spans`]'s twin for the smooth-point disc test.
#[inline(always)]
fn fill_point_spans<const LANES: usize>(
    cov: Option<WidePointCover>,
    (y0, ox, oy): (usize, usize, usize),
    color: Color,
    fb: &mut FrameBuffer,
    stats: &mut HwStats,
    written: &mut usize,
) {
    let Some(cov) = cov else { return };
    stats.fragments_tested += cov.cover_spans::<LANES>(|j, lo, hi| {
        let len = hi - lo + 1;
        fb.fill_row_span(oy + j as usize - y0, ox + lo, len, color);
        *written += len;
    });
}

/// Replays the whole list against one band (global rows `y0..y1`),
/// charging only fragment-level counters over the band-sized buffer `fb`
/// (pre-reset by the caller), with inner loops advancing `LANES` pixels
/// per step.
///
/// On x86_64 hosts with AVX2, lane-parallel bands (`LANES > 1`) run
/// [`run_band_body`] recompiled under `#[target_feature(enable = "avx2")]`
/// — one runtime dispatch per band, so every `#[inline(always)]` kernel
/// (coverage tests, buffer scans) lands inside a single 256-bit-register
/// compilation region with no per-row call or AVX↔SSE transition
/// boundaries. Rust float semantics are strict IEEE at every vector width
/// (no fused multiply-add, no reassociation beyond what the source spells
/// out), so the wider instantiation is bit-identical — the same code, only
/// wider. `LANES = 1` (the scalar executors) always takes the portable
/// instantiation.
/// The band replay is fallible like everything else on the execute path:
/// today's simulated kernels always return `Ok`, but the `Result` is the
/// seam a fallible band backend (or the tiled device's fault-injection
/// hook) plugs into, and what lets a worker's failure poison the merge
/// deterministically.
pub(super) fn run_band<const LANES: usize>(
    list: &CommandList,
    y0: usize,
    y1: usize,
    fb: &mut FrameBuffer,
) -> Result<BandResult, DeviceError> {
    #[cfg(target_arch = "x86_64")]
    if LANES > 1 && std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: reached only when AVX2 is present at runtime.
        return Ok(unsafe { run_band_avx2::<LANES>(list, y0, y1, fb) });
    }
    Ok(run_band_body::<LANES>(list, y0, y1, fb))
}

/// [`run_band_body`] recompiled with AVX2 codegen (see [`run_band`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn run_band_avx2<const LANES: usize>(
    list: &CommandList,
    y0: usize,
    y1: usize,
    fb: &mut FrameBuffer,
) -> BandResult {
    run_band_body::<LANES>(list, y0, y1, fb)
}

/// The lane-width-generic replay loop behind [`run_band`].
#[inline(always)]
fn run_band_body<const LANES: usize>(
    list: &CommandList,
    y0: usize,
    y1: usize,
    fb: &mut FrameBuffer,
) -> BandResult {
    let width = list.width();
    let full_h = list.height();
    let mut stats = HwStats::default();
    let mut readbacks = Vec::with_capacity(list.readback_count());
    // Scratch fragment buffer shared by all non-overwrite draws.
    let mut frags: Vec<(usize, usize)> = Vec::new();
    // Pipeline state, mirroring GlContext's replay defaults.
    let mut viewport: Option<Viewport> = None;
    let mut scissor: Option<PixelRect> = None;
    let mut color: Color = HALF_GRAY;
    let mut line_width = DIAGONAL_WIDTH;
    let mut point_size = 1.0f64;
    let mut write_mode = WriteMode::Overwrite;

    // The active rasterization window and this band's scanline range in
    // its local coordinates. `None` when the band's rows cannot be
    // touched — the draw is skipped outright.
    let clip = |scissor: Option<PixelRect>| -> Option<(usize, usize, usize, i64, i64)> {
        let (win_w, win_h, ox, oy) = match scissor {
            Some(r) => (r.w, r.h, r.x, r.y),
            None => (width, full_h, 0, 0),
        };
        let row_lo = (y0 as i64 - oy as i64).max(0);
        let row_hi = (y1 as i64 - 1 - oy as i64).min(win_h as i64 - 1);
        if row_lo > row_hi {
            None
        } else {
            Some((win_w, ox, oy, row_lo, row_hi))
        }
    };

    for cmd in list.commands() {
        match *cmd {
            Command::SetColor(c) => color = c,
            Command::SetLineWidth(w) => line_width = w.clamp(1.0, MAX_AA_LINE_WIDTH),
            Command::SetPointSize(s) => point_size = s.clamp(1.0, MAX_POINT_SIZE),
            Command::SetWriteMode(m) => write_mode = m,
            Command::SetViewport(vp) => viewport = Some(vp),
            Command::SetScissor(r) => scissor = r,
            Command::ClearColor => fb.clear_color(BLACK, &mut stats),
            Command::ClearAccum => fb.clear_accum(&mut stats),
            Command::ClearStencil => fb.clear_stencil(&mut stats),
            Command::AccumLoad => fb.accum_load(&mut stats),
            Command::AccumAdd => fb.accum_add(&mut stats),
            Command::AccumReturn => fb.accum_return(&mut stats),
            // Charged centrally by `command_level_stats`.
            Command::BeginBatch => {}
            Command::DrawSegments { start, len, .. } => {
                let Some((win_w, ox, oy, row_lo, row_hi)) = clip(scissor) else {
                    continue;
                };
                let vp = viewport.expect("recorder rejects draws without a viewport");
                let segs = list.seg_run(start, len);
                if write_mode == WriteMode::Overwrite {
                    let mut written = 0usize;
                    for seg in segs {
                        let a = vp.to_window(seg.a);
                        let b = vp.to_window(seg.b);
                        fill_line_spans::<LANES>(
                            AaLineCover::new(a, b, line_width, win_w, row_lo, row_hi),
                            (y0, ox, oy),
                            color,
                            fb,
                            &mut stats,
                            &mut written,
                        );
                        if a == b {
                            // Degenerate after projection: keep coverage
                            // with a point (same rule as GlContext).
                            fill_point_spans::<LANES>(
                                WidePointCover::new(a, line_width, win_w, row_lo, row_hi),
                                (y0, ox, oy),
                                color,
                                fb,
                                &mut stats,
                                &mut written,
                            );
                        }
                    }
                    stats.pixels_written += written;
                } else {
                    frags.clear();
                    let mut emit = |x: usize, y: usize| frags.push((x, y));
                    for seg in segs {
                        let a = vp.to_window(seg.a);
                        let b = vp.to_window(seg.b);
                        cover_line::<LANES>(
                            AaLineCover::new(a, b, line_width, win_w, row_lo, row_hi),
                            (y0, ox, oy),
                            &mut stats,
                            &mut emit,
                        );
                        if a == b {
                            cover_point::<LANES>(
                                WidePointCover::new(a, line_width, win_w, row_lo, row_hi),
                                (y0, ox, oy),
                                &mut stats,
                                &mut emit,
                            );
                        }
                    }
                    write_band_fragments(fb, &mut stats, write_mode, color, &frags);
                }
            }
            Command::DrawPoints { start, len, .. } => {
                let Some((win_w, ox, oy, row_lo, row_hi)) = clip(scissor) else {
                    continue;
                };
                let vp = viewport.expect("recorder rejects draws without a viewport");
                let pts = list.point_run(start, len);
                if write_mode == WriteMode::Overwrite {
                    let mut written = 0usize;
                    for &p in pts {
                        let wp = vp.to_window(p);
                        fill_point_spans::<LANES>(
                            WidePointCover::new(wp, point_size, win_w, row_lo, row_hi),
                            (y0, ox, oy),
                            color,
                            fb,
                            &mut stats,
                            &mut written,
                        );
                    }
                    stats.pixels_written += written;
                } else {
                    frags.clear();
                    for &p in pts {
                        let wp = vp.to_window(p);
                        cover_point::<LANES>(
                            WidePointCover::new(wp, point_size, win_w, row_lo, row_hi),
                            (y0, ox, oy),
                            &mut stats,
                            &mut |x, y| frags.push((x, y)),
                        );
                    }
                    write_band_fragments(fb, &mut stats, write_mode, color, &frags);
                }
            }
            Command::FillPolygon { start, len } => {
                let Some((win_w, ox, oy, row_lo, row_hi)) = clip(scissor) else {
                    continue;
                };
                let vp = viewport.expect("recorder rejects draws without a viewport");
                let win: Vec<Point> = list
                    .poly_run(start, len)
                    .iter()
                    .map(|&p| vp.to_window(p))
                    .collect();
                match write_mode {
                    // Spans cannot self-overlap within a fill, so the
                    // idempotent modes take bulk row writes; per-fragment
                    // charges collapse to the span length.
                    WriteMode::Overwrite => {
                        let mut written = 0usize;
                        rasterize_polygon_spans(
                            &win,
                            win_w,
                            row_lo,
                            row_hi,
                            &mut stats,
                            &mut |j, i_lo, i_hi| {
                                let len = i_hi - i_lo + 1;
                                fb.fill_row_span(oy + j - y0, ox + i_lo, len, color);
                                written += len;
                            },
                        );
                        stats.pixels_written += written;
                    }
                    WriteMode::StencilReplace(v) => {
                        let mut written = 0usize;
                        rasterize_polygon_spans(
                            &win,
                            win_w,
                            row_lo,
                            row_hi,
                            &mut stats,
                            &mut |j, i_lo, i_hi| {
                                let len = i_hi - i_lo + 1;
                                fb.stencil_fill_row_span(oy + j - y0, ox + i_lo, len, v);
                                written += len;
                            },
                        );
                        stats.pixels_written += written;
                    }
                    _ => {
                        frags.clear();
                        rasterize_polygon_spans(
                            &win,
                            win_w,
                            row_lo,
                            row_hi,
                            &mut stats,
                            &mut |j, i_lo, i_hi| {
                                for i in i_lo..=i_hi {
                                    frags.push((ox + i, oy + j - y0));
                                }
                            },
                        );
                        write_band_fragments(fb, &mut stats, write_mode, color, &frags);
                    }
                }
            }
            Command::Minmax => {
                let (mn, mx) = fb.minmax_lanes::<LANES>(&mut stats);
                readbacks.push(Readback::Minmax(mn, mx));
            }
            Command::StencilMax => {
                readbacks.push(Readback::StencilMax(
                    fb.stencil_max_lanes::<LANES>(&mut stats),
                ));
            }
            Command::StencilCount { min } => {
                readbacks.push(Readback::StencilCount(
                    fb.stencil_count_ge_lanes::<LANES>(min, &mut stats),
                ));
            }
            Command::CellMax { start, len } => {
                stats.pixels_scanned += fb.len();
                let vals = list
                    .cell_run(start, len)
                    .iter()
                    .map(|c| {
                        let mut max = 0.0f32;
                        let lo = c.y.max(y0);
                        let hi = (c.y + c.h).min(y1);
                        for gy in lo..hi {
                            max = max.max(scan::row_red_max::<LANES>(fb.row_colors(
                                gy - y0,
                                c.x,
                                c.w,
                            )));
                        }
                        max
                    })
                    .collect();
                readbacks.push(Readback::CellMax(vals));
            }
        }
    }
    BandResult { stats, readbacks }
}

/// The band-local mirror of `GlContext::write_fragments`: identical
/// per-draw-call deduplication rules, applied to this band's fragment
/// subset. Rows partition across bands, so deduplicating per band is the
/// reference's global per-call dedup restricted to the band.
fn write_band_fragments(
    fb: &mut FrameBuffer,
    stats: &mut HwStats,
    mode: WriteMode,
    color: Color,
    frags: &[(usize, usize)],
) {
    match mode {
        WriteMode::Overwrite => {
            for &(x, y) in frags {
                fb.write_pixel(x, y, color, stats);
            }
        }
        WriteMode::Blend => {
            let mut sorted: Vec<(usize, usize)> = frags.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            for &(x, y) in &sorted {
                fb.blend_pixel(x, y, color, stats);
            }
        }
        WriteMode::StencilReplace(v) => {
            for &(x, y) in frags {
                fb.stencil_replace(x, y, v, stats);
            }
        }
        WriteMode::StencilIncrIfEq(r) => {
            let mut sorted: Vec<(usize, usize)> = frags.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            for &(x, y) in &sorted {
                fb.stencil_incr_if_eq(x, y, r, stats);
            }
        }
    }
}
