//! The tiled executor: one command list, many horizontal bands, scoped
//! worker threads — bit-identical to the reference by construction.
//!
//! Correctness argument, in three parts:
//!
//! 1. **Fragments partition by scanline.** Every rasterizer has a
//!    row-clipped span entry point that keeps all per-pixel math in
//!    absolute window coordinates and only narrows the scanline loop.
//!    Partitioning the window's rows into bands therefore partitions the
//!    full fragment set — same pixels, same `fragments_tested`, each
//!    fragment in exactly one band.
//! 2. **Counters split by kind.** Fragment-level counters
//!    (`fragments_tested`, `pixels_written`, `pixels_scanned`) are charged
//!    inside each band over band-sized buffers and summed — the band areas
//!    sum to the window area, so the totals equal the reference's.
//!    Command-level counters (`draw_calls`, `primitives`,
//!    `minmax_queries`, `batches`) are charged **once**, centrally, never
//!    per band.
//! 3. **Readbacks merge exactly.** Min/max over a partition is the
//!    min/max of per-part results (`f32` min/max, no NaN inputs); cell
//!    maxima start at 0.0 with all colors ≥ 0, so per-band partial maxima
//!    combine to exactly the whole-buffer scan's answer. Merging walks
//!    bands in a fixed order — results never depend on thread scheduling.
//!
//! The band replay itself lives in [`super::band`] and is shared with
//! [`super::SimdDevice`]; this module owns the partitioning, the worker
//! threads, and the deterministic merge. Construct with
//! [`TiledDevice::new_simd`] to run the SIMD inner loops inside each band
//! — band decomposition and lane width compose freely because both leave
//! the per-pixel math untouched.
//!
//! The wall-clock win comes from two places: bands rasterize and scan in
//! parallel, and a band whose rows a scissored draw cannot touch skips
//! that draw entirely — on an atlas-sized list almost every cell-scissored
//! draw is skipped by almost every band.

use super::band::{command_level_stats, merge_readback, run_band, BandResult};
use super::command::CommandList;
use super::simd::SIMD_LANES;
use super::{DeviceError, Execution, RasterDevice, Readback};
use crate::framebuffer::FrameBuffer;

/// Executes command lists over `tiles` horizontal bands with up to
/// `threads` scoped workers. `Tiled { tiles: 1, threads: 1 }` degenerates
/// to a reference replay; results are identical at any setting.
///
/// Band buffers persist across executions (reset, never reallocated, while
/// the window shape is stable) and stay small enough to remain
/// cache-resident through a list's clear/accum/readback passes — the same
/// reason real rasterizers tile. The full-window framebuffer is only
/// materialized on [`RasterDevice::snapshot`], never on the execute path.
#[derive(Debug)]
pub struct TiledDevice {
    tiles: usize,
    threads: usize,
    /// Run the SIMD (`LANES = 8`) inner loops inside each band.
    simd: bool,
    /// Band partition of the most recent window, in row order.
    bands: Vec<(usize, usize)>,
    /// One buffer per entry of `bands`, holding that band's final pixels.
    band_bufs: Vec<FrameBuffer>,
    /// Window dimensions the buffers were built for.
    window: (usize, usize),
    /// Test hook: the band index whose next replay fails with the given
    /// error (one-shot, consumed by the next execute).
    fault_band: Option<(usize, DeviceError)>,
}

impl TiledDevice {
    /// A scalar tiled executor over `tiles` bands and up to `threads`
    /// workers (both clamped to at least 1).
    pub fn new(tiles: usize, threads: usize) -> Self {
        TiledDevice {
            tiles: tiles.max(1),
            threads: threads.max(1),
            simd: false,
            bands: Vec::new(),
            band_bufs: Vec::new(),
            window: (0, 0),
            fault_band: None,
        }
    }

    /// Like [`TiledDevice::new`], but each band replays through the
    /// vectorized (`LANES = 8`) kernels of [`super::SimdDevice`] — thread
    /// parallelism across bands, data parallelism within each scanline.
    pub fn new_simd(tiles: usize, threads: usize) -> Self {
        TiledDevice {
            simd: true,
            ..TiledDevice::new(tiles, threads)
        }
    }

    /// The configured band count.
    #[inline]
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// The configured worker-thread cap.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Test hook: make the worker replaying band `band` of the *next*
    /// execute fail with `err` (one-shot). The merge walks bands in band
    /// order and reports the first failure it meets, so the surfaced error
    /// is a pure function of the faulted band set — never of which thread
    /// ran it or when. `device_props` pins that property.
    pub fn inject_band_fault(&mut self, band: usize, err: DeviceError) {
        self.fault_band = Some((band, err));
    }
}

impl RasterDevice for TiledDevice {
    fn name(&self) -> &'static str {
        if self.simd {
            "tiled+simd"
        } else {
            "tiled"
        }
    }

    fn execute(&mut self, list: &CommandList) -> Result<Execution, DeviceError> {
        let (w, h) = (list.width(), list.height());

        // Command-level charges: once, centrally, regardless of tiling.
        let mut stats = command_level_stats(list);

        let tiles = self.tiles.min(h);
        let bands: Vec<(usize, usize)> = (0..tiles)
            .map(|t| (t * h / tiles, (t + 1) * h / tiles))
            .filter(|&(y0, y1)| y1 > y0)
            .collect();

        // Reuse band buffers while the window shape is stable: a reset of
        // warm pages beats refaulting a fresh allocation every execute.
        if self.window != (w, h) || self.bands != bands {
            self.band_bufs = bands
                .iter()
                .map(|&(y0, y1)| FrameBuffer::new(w, y1 - y0))
                .collect();
            self.bands = bands;
            self.window = (w, h);
        } else {
            for buf in &mut self.band_bufs {
                buf.reset();
            }
        }

        let run: fn(
            &CommandList,
            usize,
            usize,
            &mut FrameBuffer,
        ) -> Result<BandResult, DeviceError> = if self.simd {
            run_band::<SIMD_LANES>
        } else {
            run_band::<1>
        };
        let injected = self.fault_band.take();
        let run_one = move |idx: usize, y0: usize, y1: usize, buf: &mut FrameBuffer| {
            if let Some((band, err)) = injected {
                if band == idx {
                    return Err(err);
                }
            }
            run(list, y0, y1, buf)
        };

        let bands = &self.bands;
        let mut results: Vec<Option<Result<BandResult, DeviceError>>> =
            (0..bands.len()).map(|_| None).collect();
        let workers = self.threads.min(bands.len()).max(1);
        if workers <= 1 {
            for (idx, ((slot, &(y0, y1)), buf)) in results
                .iter_mut()
                .zip(bands)
                .zip(&mut self.band_bufs)
                .enumerate()
            {
                *slot = Some(run_one(idx, y0, y1, buf));
            }
        } else {
            let per = bands.len().div_ceil(workers);
            std::thread::scope(|s| {
                for (chunk, ((band_chunk, buf_chunk), res_chunk)) in bands
                    .chunks(per)
                    .zip(self.band_bufs.chunks_mut(per))
                    .zip(results.chunks_mut(per))
                    .enumerate()
                {
                    s.spawn(move || {
                        for (j, ((slot, &(y0, y1)), buf)) in res_chunk
                            .iter_mut()
                            .zip(band_chunk)
                            .zip(buf_chunk)
                            .enumerate()
                        {
                            *slot = Some(run_one(chunk * per + j, y0, y1, buf));
                        }
                    });
                }
            });
        }

        // Deterministic merge: walk bands in order, whatever the workers'
        // schedule was. A failed band poisons the whole execution with the
        // *first* failure in band order — workers always run to completion
        // (the scope joins them), so the reported error cannot depend on
        // thread scheduling.
        let mut merged: Vec<Readback> = Vec::new();
        for (i, res) in results.into_iter().enumerate() {
            let res = res.expect("every band slot filled")?;
            stats.add(&res.stats);
            if i == 0 {
                merged = res.readbacks;
            } else {
                for (acc, part) in merged.iter_mut().zip(res.readbacks) {
                    merge_readback(acc, part);
                }
            }
        }
        Ok(Execution {
            stats,
            readbacks: merged,
        })
    }

    fn snapshot(&self) -> Option<FrameBuffer> {
        if self.band_bufs.is_empty() {
            return None;
        }
        let (w, h) = self.window;
        let mut full = FrameBuffer::new(w, h);
        for (buf, &(y0, _)) in self.band_bufs.iter().zip(&self.bands) {
            full.copy_band_from(buf, y0);
        }
        Some(full)
    }
}
