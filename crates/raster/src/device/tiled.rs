//! The tiled executor: one command list, many horizontal bands, scoped
//! worker threads — bit-identical to the reference by construction.
//!
//! Correctness argument, in three parts:
//!
//! 1. **Fragments partition by scanline.** Every rasterizer has a
//!    `_rows`-clipped variant that keeps all per-pixel math in absolute
//!    window coordinates and only narrows the scanline loop. Partitioning
//!    the window's rows into bands therefore partitions the full
//!    fragment set — same pixels, same `fragments_tested`, each fragment
//!    in exactly one band.
//! 2. **Counters split by kind.** Fragment-level counters
//!    (`fragments_tested`, `pixels_written`, `pixels_scanned`) are charged
//!    inside each band over band-sized buffers and summed — the band areas
//!    sum to the window area, so the totals equal the reference's.
//!    Command-level counters (`draw_calls`, `primitives`,
//!    `minmax_queries`, `batches`) are charged **once**, centrally, never
//!    per band.
//! 3. **Readbacks merge exactly.** Min/max over a partition is the
//!    min/max of per-part results (`f32` min/max, no NaN inputs); cell
//!    maxima start at 0.0 with all colors ≥ 0, so per-band partial maxima
//!    combine to exactly the whole-buffer scan's answer. Merging walks
//!    bands in a fixed order — results never depend on thread scheduling.
//!
//! The wall-clock win comes from two places: bands rasterize and scan in
//! parallel, and a band whose rows a scissored draw cannot touch skips
//! that draw entirely — on an atlas-sized list almost every cell-scissored
//! draw is skipped by almost every band.

use super::command::{Command, CommandList};
use super::{Execution, RasterDevice, Readback};
use crate::aa_line::{rasterize_aa_line_rows, DIAGONAL_WIDTH};
use crate::context::{PixelRect, WriteMode, MAX_AA_LINE_WIDTH, MAX_POINT_SIZE};
use crate::framebuffer::{Color, FrameBuffer, BLACK, HALF_GRAY};
use crate::point_raster::rasterize_wide_point_rows;
use crate::polygon_raster::rasterize_polygon_rows;
use crate::stats::HwStats;
use crate::viewport::Viewport;
use spatial_geom::Point;

/// Executes command lists over `tiles` horizontal bands with up to
/// `threads` scoped workers. `Tiled { tiles: 1, threads: 1 }` degenerates
/// to a reference replay; results are identical at any setting.
///
/// Band buffers persist across executions (reset, never reallocated, while
/// the window shape is stable) and stay small enough to remain
/// cache-resident through a list's clear/accum/readback passes — the same
/// reason real rasterizers tile. The full-window framebuffer is only
/// materialized on [`RasterDevice::snapshot`], never on the execute path.
#[derive(Debug)]
pub struct TiledDevice {
    tiles: usize,
    threads: usize,
    /// Band partition of the most recent window, in row order.
    bands: Vec<(usize, usize)>,
    /// One buffer per entry of `bands`, holding that band's final pixels.
    band_bufs: Vec<FrameBuffer>,
    /// Window dimensions the buffers were built for.
    window: (usize, usize),
}

impl TiledDevice {
    pub fn new(tiles: usize, threads: usize) -> Self {
        TiledDevice {
            tiles: tiles.max(1),
            threads: threads.max(1),
            bands: Vec::new(),
            band_bufs: Vec::new(),
            window: (0, 0),
        }
    }

    #[inline]
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl RasterDevice for TiledDevice {
    fn name(&self) -> &'static str {
        "tiled"
    }

    fn execute(&mut self, list: &CommandList) -> Execution {
        let (w, h) = (list.width(), list.height());

        // Command-level charges: once, centrally, regardless of tiling.
        let mut stats = HwStats::default();
        for cmd in list.commands() {
            match *cmd {
                Command::DrawSegments { len, new_call, .. }
                | Command::DrawPoints { len, new_call, .. } => {
                    if new_call {
                        stats.draw_calls += 1;
                    }
                    stats.primitives += len;
                }
                Command::FillPolygon { .. } => {
                    stats.draw_calls += 1;
                    stats.primitives += 1;
                }
                Command::Minmax | Command::StencilMax | Command::CellMax { .. } => {
                    stats.minmax_queries += 1;
                }
                Command::BeginBatch => stats.batches += 1,
                _ => {}
            }
        }

        let tiles = self.tiles.min(h);
        let bands: Vec<(usize, usize)> = (0..tiles)
            .map(|t| (t * h / tiles, (t + 1) * h / tiles))
            .filter(|&(y0, y1)| y1 > y0)
            .collect();

        // Reuse band buffers while the window shape is stable: a reset of
        // warm pages beats refaulting a fresh allocation every execute.
        if self.window != (w, h) || self.bands != bands {
            self.band_bufs = bands
                .iter()
                .map(|&(y0, y1)| FrameBuffer::new(w, y1 - y0))
                .collect();
            self.bands = bands;
            self.window = (w, h);
        } else {
            for buf in &mut self.band_bufs {
                buf.reset();
            }
        }

        let bands = &self.bands;
        let mut results: Vec<Option<BandResult>> = (0..bands.len()).map(|_| None).collect();
        let workers = self.threads.min(bands.len()).max(1);
        if workers <= 1 {
            for ((slot, &(y0, y1)), buf) in results.iter_mut().zip(bands).zip(&mut self.band_bufs) {
                *slot = Some(run_band(list, y0, y1, buf));
            }
        } else {
            let per = bands.len().div_ceil(workers);
            std::thread::scope(|s| {
                for ((band_chunk, buf_chunk), res_chunk) in bands
                    .chunks(per)
                    .zip(self.band_bufs.chunks_mut(per))
                    .zip(results.chunks_mut(per))
                {
                    s.spawn(move || {
                        for ((slot, &(y0, y1)), buf) in
                            res_chunk.iter_mut().zip(band_chunk).zip(buf_chunk)
                        {
                            *slot = Some(run_band(list, y0, y1, buf));
                        }
                    });
                }
            });
        }

        // Deterministic merge: walk bands in order, whatever the workers'
        // schedule was.
        let mut merged: Vec<Readback> = Vec::new();
        for (i, res) in results.into_iter().enumerate() {
            let res = res.expect("every band executed");
            stats.add(&res.stats);
            if i == 0 {
                merged = res.readbacks;
            } else {
                for (acc, part) in merged.iter_mut().zip(res.readbacks) {
                    merge_readback(acc, part);
                }
            }
        }
        Execution {
            stats,
            readbacks: merged,
        }
    }

    fn snapshot(&self) -> Option<FrameBuffer> {
        if self.band_bufs.is_empty() {
            return None;
        }
        let (w, h) = self.window;
        let mut full = FrameBuffer::new(w, h);
        for (buf, &(y0, _)) in self.band_bufs.iter().zip(&self.bands) {
            full.copy_band_from(buf, y0);
        }
        Some(full)
    }
}

struct BandResult {
    stats: HwStats,
    readbacks: Vec<Readback>,
}

fn merge_readback(acc: &mut Readback, part: Readback) {
    match (acc, part) {
        (Readback::Minmax(mn, mx), Readback::Minmax(pmn, pmx)) => {
            for ch in 0..3 {
                mn[ch] = mn[ch].min(pmn[ch]);
                mx[ch] = mx[ch].max(pmx[ch]);
            }
        }
        (Readback::StencilMax(v), Readback::StencilMax(pv)) => *v = (*v).max(pv),
        (Readback::CellMax(vals), Readback::CellMax(pvals)) => {
            for (a, b) in vals.iter_mut().zip(pvals) {
                *a = a.max(b);
            }
        }
        _ => unreachable!("band readback streams diverged"),
    }
}

/// Replays the whole list against one band (global rows `y0..y1`),
/// charging only fragment-level counters over the band-sized buffer
/// `fb` (pre-reset by the caller).
fn run_band(list: &CommandList, y0: usize, y1: usize, fb: &mut FrameBuffer) -> BandResult {
    let width = list.width();
    let full_h = list.height();
    let mut stats = HwStats::default();
    let mut readbacks = Vec::with_capacity(list.readback_count());
    // Scratch fragment buffer shared by all non-overwrite draws.
    let mut frags: Vec<(usize, usize)> = Vec::new();
    // Pipeline state, mirroring GlContext's replay defaults.
    let mut viewport: Option<Viewport> = None;
    let mut scissor: Option<PixelRect> = None;
    let mut color: Color = HALF_GRAY;
    let mut line_width = DIAGONAL_WIDTH;
    let mut point_size = 1.0f64;
    let mut write_mode = WriteMode::Overwrite;

    // The active rasterization window and this band's scanline range in
    // its local coordinates. `None` when the band's rows cannot be
    // touched — the draw is skipped outright.
    let clip = |scissor: Option<PixelRect>| -> Option<(usize, usize, usize, i64, i64)> {
        let (win_w, win_h, ox, oy) = match scissor {
            Some(r) => (r.w, r.h, r.x, r.y),
            None => (width, full_h, 0, 0),
        };
        let row_lo = (y0 as i64 - oy as i64).max(0);
        let row_hi = (y1 as i64 - 1 - oy as i64).min(win_h as i64 - 1);
        if row_lo > row_hi {
            None
        } else {
            Some((win_w, ox, oy, row_lo, row_hi))
        }
    };

    for cmd in list.commands() {
        match *cmd {
            Command::SetColor(c) => color = c,
            Command::SetLineWidth(w) => line_width = w.clamp(1.0, MAX_AA_LINE_WIDTH),
            Command::SetPointSize(s) => point_size = s.clamp(1.0, MAX_POINT_SIZE),
            Command::SetWriteMode(m) => write_mode = m,
            Command::SetViewport(vp) => viewport = Some(vp),
            Command::SetScissor(r) => scissor = r,
            Command::ClearColor => fb.clear_color(BLACK, &mut stats),
            Command::ClearAccum => fb.clear_accum(&mut stats),
            Command::ClearStencil => fb.clear_stencil(&mut stats),
            Command::AccumLoad => fb.accum_load(&mut stats),
            Command::AccumAdd => fb.accum_add(&mut stats),
            Command::AccumReturn => fb.accum_return(&mut stats),
            // Charged centrally.
            Command::BeginBatch => {}
            Command::DrawSegments { start, len, .. } => {
                let Some((win_w, ox, oy, row_lo, row_hi)) = clip(scissor) else {
                    continue;
                };
                let vp = viewport.expect("recorder rejects draws without a viewport");
                let segs = list.seg_run(start, len);
                if write_mode == WriteMode::Overwrite {
                    let mut written = 0usize;
                    for seg in segs {
                        let a = vp.to_window(seg.a);
                        let b = vp.to_window(seg.b);
                        let mut sink = |x: usize, y: usize| {
                            fb.write_pixel_uncounted(ox + x, oy + y - y0, color);
                            written += 1;
                        };
                        rasterize_aa_line_rows(
                            a, b, line_width, win_w, row_lo, row_hi, &mut stats, &mut sink,
                        );
                        if a == b {
                            // Degenerate after projection: keep coverage
                            // with a point (same rule as GlContext).
                            rasterize_wide_point_rows(
                                a, line_width, win_w, row_lo, row_hi, &mut stats, &mut sink,
                            );
                        }
                    }
                    stats.pixels_written += written;
                } else {
                    frags.clear();
                    for seg in segs {
                        let a = vp.to_window(seg.a);
                        let b = vp.to_window(seg.b);
                        let mut sink = |x: usize, y: usize| frags.push((ox + x, oy + y - y0));
                        rasterize_aa_line_rows(
                            a, b, line_width, win_w, row_lo, row_hi, &mut stats, &mut sink,
                        );
                        if a == b {
                            rasterize_wide_point_rows(
                                a, line_width, win_w, row_lo, row_hi, &mut stats, &mut sink,
                            );
                        }
                    }
                    write_band_fragments(fb, &mut stats, write_mode, color, &frags);
                }
            }
            Command::DrawPoints { start, len, .. } => {
                let Some((win_w, ox, oy, row_lo, row_hi)) = clip(scissor) else {
                    continue;
                };
                let vp = viewport.expect("recorder rejects draws without a viewport");
                let pts = list.point_run(start, len);
                if write_mode == WriteMode::Overwrite {
                    let mut written = 0usize;
                    for &p in pts {
                        let wp = vp.to_window(p);
                        let mut sink = |x: usize, y: usize| {
                            fb.write_pixel_uncounted(ox + x, oy + y - y0, color);
                            written += 1;
                        };
                        rasterize_wide_point_rows(
                            wp, point_size, win_w, row_lo, row_hi, &mut stats, &mut sink,
                        );
                    }
                    stats.pixels_written += written;
                } else {
                    frags.clear();
                    for &p in pts {
                        let wp = vp.to_window(p);
                        rasterize_wide_point_rows(
                            wp,
                            point_size,
                            win_w,
                            row_lo,
                            row_hi,
                            &mut stats,
                            &mut |x, y| frags.push((ox + x, oy + y - y0)),
                        );
                    }
                    write_band_fragments(fb, &mut stats, write_mode, color, &frags);
                }
            }
            Command::FillPolygon { start, len } => {
                let Some((win_w, ox, oy, row_lo, row_hi)) = clip(scissor) else {
                    continue;
                };
                let vp = viewport.expect("recorder rejects draws without a viewport");
                let win: Vec<Point> = list
                    .poly_run(start, len)
                    .iter()
                    .map(|&p| vp.to_window(p))
                    .collect();
                frags.clear();
                rasterize_polygon_rows(&win, win_w, row_lo, row_hi, &mut stats, &mut |x, y| {
                    frags.push((ox + x, oy + y - y0))
                });
                write_band_fragments(fb, &mut stats, write_mode, color, &frags);
            }
            Command::Minmax => {
                let (mn, mx) = fb.minmax(&mut stats);
                readbacks.push(Readback::Minmax(mn, mx));
            }
            Command::StencilMax => {
                readbacks.push(Readback::StencilMax(fb.stencil_max(&mut stats)));
            }
            Command::CellMax { start, len } => {
                stats.pixels_scanned += fb.len();
                let vals = list
                    .cell_run(start, len)
                    .iter()
                    .map(|c| {
                        let mut max = 0.0f32;
                        let lo = c.y.max(y0);
                        let hi = (c.y + c.h).min(y1);
                        for gy in lo..hi {
                            for x in c.x..c.x + c.w {
                                max = max.max(fb.read_pixel(x, gy - y0)[0]);
                            }
                        }
                        max
                    })
                    .collect();
                readbacks.push(Readback::CellMax(vals));
            }
        }
    }
    BandResult { stats, readbacks }
}

/// The band-local mirror of `GlContext::write_fragments`: identical
/// per-draw-call deduplication rules, applied to this band's fragment
/// subset. Rows partition across bands, so deduplicating per band is the
/// reference's global per-call dedup restricted to the band.
fn write_band_fragments(
    fb: &mut FrameBuffer,
    stats: &mut HwStats,
    mode: WriteMode,
    color: Color,
    frags: &[(usize, usize)],
) {
    match mode {
        WriteMode::Overwrite => {
            for &(x, y) in frags {
                fb.write_pixel(x, y, color, stats);
            }
        }
        WriteMode::Blend => {
            let mut sorted: Vec<(usize, usize)> = frags.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            for &(x, y) in &sorted {
                fb.blend_pixel(x, y, color, stats);
            }
        }
        WriteMode::StencilReplace(v) => {
            for &(x, y) in frags {
                fb.stencil_replace(x, y, v, stats);
            }
        }
        WriteMode::StencilIncrIfEq(r) => {
            let mut sorted: Vec<(usize, usize)> = frags.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            for &(x, y) in &sorted {
                fb.stencil_incr_if_eq(x, y, r, stats);
            }
        }
    }
}
