//! The SIMD scanline executor: one full-window band, vectorized inner
//! loops.
//!
//! The paper's speedup is rasterization throughput — fragments per second
//! through the coverage tests and buffer scans — so this backend attacks
//! exactly those inner loops. [`SimdDevice`] replays a recorded
//! [`CommandList`] through the shared band engine (the `band` module) at
//! [`SIMD_LANES`] pixels per step:
//!
//! * **AA wide-line coverage** — [`crate::aa_line::AaLineCover`] evaluates
//!   the bounding-rectangle separating-axis test for `LANES` pixel centers
//!   at once (a fixed-width mask array the autovectorizer lowers to packed
//!   compares). In Overwrite mode it goes further: a scanline's covered
//!   pixels always form one contiguous interval, so the replay locates the
//!   interval endpoints (seeded by the previous row's answer — scanline
//!   coherence) and bulk-fills the span instead of testing and writing
//!   pixel-by-pixel;
//! * **smooth-point discs** — [`crate::point_raster::WidePointCover`],
//!   same shape, for the clamp-to-square distance test;
//! * **polygon fill** — [`crate::polygon_raster::rasterize_polygon_spans`]
//!   hands whole spans over, written with bulk row fills instead of
//!   per-pixel stores;
//! * **buffer scans** — Minmax/stencil/cell-max reductions and
//!   accumulation adds run through the lane-accumulator kernels in
//!   the `scan` module (optionally SSE2 intrinsics behind the
//!   `simd-intrinsics` feature).
//!
//! Bit-identity with [`super::ReferenceDevice`] is a hard contract, not a
//! best effort: the lane kernels evaluate the *same expressions* as the
//! scalar path (no fused operations, no algebraic shortcuts), min/max
//! reductions reassociate exactly over the non-NaN values the framebuffer
//! holds, and the scalar executors instantiate the very same generic code
//! at `LANES = 1` — so every lane-width bug is caught by the same
//! property suite (`crates/raster/tests/device_props.rs`) that checks the
//! tiled device.
//!
//! For thread parallelism *on top of* lane parallelism, use
//! [`super::TiledDevice::new_simd`], which runs these kernels inside each
//! band.

use super::band::{command_level_stats, run_band};
use super::command::CommandList;
use super::{DeviceError, Execution, RasterDevice};
use crate::framebuffer::FrameBuffer;

/// Pixels advanced per inner-loop step by the vectorized kernels. Eight
/// `f64` coverage lanes span two AVX registers (or four SSE2 ones) —
/// enough to keep the ports busy without spilling the mask array.
pub const SIMD_LANES: usize = 8;

/// A [`RasterDevice`] that executes the whole window as a single band
/// through the `LANES = 8` kernels. The framebuffer persists across
/// executions (reset, not reallocated, while the window shape is stable),
/// like the other executors.
#[derive(Debug, Default)]
pub struct SimdDevice {
    fb: Option<FrameBuffer>,
}

impl SimdDevice {
    /// A fresh device; the framebuffer is allocated on first execute.
    pub fn new() -> Self {
        SimdDevice::default()
    }
}

impl RasterDevice for SimdDevice {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn execute(&mut self, list: &CommandList) -> Result<Execution, DeviceError> {
        let (w, h) = (list.width(), list.height());
        match &mut self.fb {
            Some(fb) if fb.width() == w && fb.height() == h => fb.reset(),
            fb => *fb = Some(FrameBuffer::new(w, h)),
        }
        let fb = self.fb.as_mut().expect("framebuffer just ensured");
        let mut stats = command_level_stats(list);
        let band = run_band::<SIMD_LANES>(list, 0, h, fb)?;
        stats.add(&band.stats);
        Ok(Execution {
            stats,
            readbacks: band.readbacks,
        })
    }

    fn snapshot(&self) -> Option<FrameBuffer> {
        self.fb.clone()
    }
}
