//! The reference executor: verbatim replay onto [`GlContext`].
//!
//! In the record→validate→execute→replay-cost lifecycle this is the
//! *executor* every other backend is measured against: one context call
//! per recorded command, nothing reordered, nothing fused. The tiled and
//! SIMD executors are free to restructure the work however they like —
//! their obligation (the bit-identity invariant, see [`crate::device`])
//! is defined as "indistinguishable from this replay".

use super::command::{Command, CommandList};
use super::{DeviceError, Execution, RasterDevice, Readback};
use crate::context::GlContext;
use crate::framebuffer::FrameBuffer;
use crate::viewport::Viewport;
use spatial_geom::Rect;

/// Replays command lists onto today's immediate-mode [`GlContext`], one
/// command per context call — the semantics anchor every other executor is
/// property-tested against. The context (and its pixel allocation) is kept
/// across executions and reused whenever the window size repeats, exactly
/// like the retarget-based hot paths it replaces.
#[derive(Debug, Default)]
pub struct ReferenceDevice {
    gl: Option<GlContext>,
}

impl ReferenceDevice {
    /// A fresh device; the GL context is allocated on first execute.
    pub fn new() -> Self {
        ReferenceDevice { gl: None }
    }
}

impl RasterDevice for ReferenceDevice {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn execute(&mut self, list: &CommandList) -> Result<Execution, DeviceError> {
        let (w, h) = (list.width(), list.height());
        // Placeholder projection until the stream's own SetViewport runs
        // (the recorder guarantees draws come after one).
        let window = Viewport::new(Rect::new(0.0, 0.0, w as f64, h as f64), w, h);
        match self.gl {
            Some(ref mut gl) => gl.retarget(window),
            None => self.gl = Some(GlContext::new(window)),
        }
        let gl = self.gl.as_mut().expect("context installed above");
        // Uncharged: the list's own recorded clears pay for clearing, so
        // the charged stats are a pure function of the list.
        gl.reset_for_replay();
        let before = gl.stats();
        let mut readbacks = Vec::with_capacity(list.readback_count());
        for cmd in list.commands() {
            match *cmd {
                Command::SetColor(c) => gl.set_color(c),
                Command::SetLineWidth(width) => {
                    gl.set_line_width(width);
                }
                Command::SetPointSize(size) => {
                    gl.set_point_size(size);
                }
                Command::SetWriteMode(mode) => gl.set_write_mode(mode),
                Command::SetViewport(vp) => gl.set_projection(vp),
                Command::SetScissor(r) => gl.set_scissor(r),
                Command::ClearColor => gl.clear_color_buffer(),
                Command::ClearAccum => gl.clear_accum_buffer(),
                Command::ClearStencil => gl.clear_stencil_buffer(),
                Command::AccumLoad => gl.accum_load(),
                Command::AccumAdd => gl.accum_add(),
                Command::AccumReturn => gl.accum_return(),
                Command::BeginBatch => gl.begin_batch(),
                Command::DrawSegments {
                    start,
                    len,
                    new_call,
                } => {
                    let segs = list.seg_run(start, len);
                    if new_call {
                        gl.draw_segments(segs);
                    } else {
                        gl.draw_segments_merged(segs);
                    }
                }
                Command::DrawPoints {
                    start,
                    len,
                    new_call,
                } => {
                    let pts = list.point_run(start, len);
                    if new_call {
                        gl.draw_points(pts);
                    } else {
                        gl.draw_points_merged(pts);
                    }
                }
                Command::FillPolygon { start, len } => {
                    gl.draw_filled_polygon(list.poly_run(start, len));
                }
                Command::Minmax => {
                    let (mn, mx) = gl.minmax();
                    readbacks.push(Readback::Minmax(mn, mx));
                }
                Command::StencilMax => {
                    readbacks.push(Readback::StencilMax(gl.stencil_max()));
                }
                Command::StencilCount { min } => {
                    readbacks.push(Readback::StencilCount(gl.stencil_count_ge(min)));
                }
                Command::CellMax { start, len } => {
                    readbacks.push(Readback::CellMax(
                        gl.cell_max_scan(list.cell_run(start, len)),
                    ));
                }
            }
        }
        Ok(Execution {
            stats: gl.stats().delta_since(&before),
            readbacks,
        })
    }

    fn snapshot(&self) -> Option<FrameBuffer> {
        self.gl.as_ref().map(|gl| gl.frame_buffer().clone())
    }
}
