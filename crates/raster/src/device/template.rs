//! Cached recording skeletons: a recorded (typically fused) command tape
//! with its per-pair geometry stripped, re-instantiated by splicing fresh
//! viewports and geometry runs.
//!
//! The per-pair and atlas choreographies re-record a near-identical
//! command tape for every candidate pair: the state setters, clears,
//! accumulation transfers and readback queries depend only on the
//! *strategy*, *resolution*, *line state* and *batch shape* — everything
//! pair-specific lives in the `SetViewport` values and the draw commands'
//! geometry runs. A [`ListTemplate`] captures that split: it keeps the
//! tape (plus the shape-determined polygon-vertex and cell arenas) and
//! drops the segment/point arenas; [`ListTemplate::instantiate`] then
//! walks the tape once, substituting the `i`-th viewport and appending the
//! `i`-th geometry run, skipping the recorder's per-call validation and
//! the fusion analysis entirely.
//!
//! Correctness is positional: the caller must splice runs for the *same
//! choreography shape* the template was recorded from (same number and
//! order of viewport slots and draw runs). The recording cache in
//! `hwa-core` guarantees that by keying templates on exactly the inputs
//! that determine the shape.

use super::command::{Command, CommandList};
use crate::context::PixelRect;
use crate::viewport::Viewport;
use spatial_geom::{Point, Segment};

/// A reusable command-tape skeleton; see the module docs.
#[derive(Debug, Clone)]
pub struct ListTemplate {
    width: usize,
    height: usize,
    commands: Vec<Command>,
    polys: Vec<Point>,
    cells: Vec<PixelRect>,
    readbacks: usize,
    viewport_slots: usize,
    segment_slots: usize,
    point_slots: usize,
    poly_slots: usize,
}

impl ListTemplate {
    /// Builds a template from a recorded list, keeping the command tape
    /// and the shape-determined arenas (polygon vertices, cell rectangles)
    /// and dropping the spliced-per-instantiation segment/point geometry.
    pub fn new(list: &CommandList) -> ListTemplate {
        let mut viewport_slots = 0;
        let mut segment_slots = 0;
        let mut point_slots = 0;
        let mut poly_slots = 0;
        for cmd in list.commands() {
            match cmd {
                Command::SetViewport(_) => viewport_slots += 1,
                Command::DrawSegments { .. } => segment_slots += 1,
                Command::DrawPoints { .. } => point_slots += 1,
                Command::FillPolygon { .. } => poly_slots += 1,
                _ => {}
            }
        }
        ListTemplate {
            width: list.width(),
            height: list.height(),
            commands: list.commands().to_vec(),
            polys: list.polys_arena().to_vec(),
            cells: list.cells_arena().to_vec(),
            readbacks: list.readback_count(),
            viewport_slots,
            segment_slots,
            point_slots,
            poly_slots,
        }
    }

    /// Number of `SetViewport` commands in the tape — the length
    /// [`ListTemplate::instantiate`] requires of its `viewports` slice.
    #[inline]
    pub fn viewport_slots(&self) -> usize {
        self.viewport_slots
    }

    /// Number of segment-draw runs the tape splices.
    #[inline]
    pub fn segment_slots(&self) -> usize {
        self.segment_slots
    }

    /// Number of point-draw runs the tape splices.
    #[inline]
    pub fn point_slots(&self) -> usize {
        self.point_slots
    }

    /// Number of filled-polygon draws in the tape — the run count
    /// [`ListTemplate::instantiate_with_polys`] splices. Plain
    /// [`ListTemplate::instantiate`] keeps these runs verbatim (their
    /// geometry is shape-determined for the segment-based choreographies).
    #[inline]
    pub fn poly_slots(&self) -> usize {
        self.poly_slots
    }

    /// Re-instantiates the skeleton into an executable [`CommandList`]:
    /// the `i`-th `SetViewport` takes `viewports[i]`, the `i`-th
    /// segment/point draw's run is whatever `fill_segments(i, arena)` /
    /// `fill_points(i, arena)` append (draw-call flags are the
    /// skeleton's). Geometry arrives through closures so callers splice
    /// straight from their own storage without intermediate allocations.
    ///
    /// Panics if `viewports` does not match
    /// [`ListTemplate::viewport_slots`] — a shape mismatch is a cache-key
    /// bug, not a runtime condition.
    pub fn instantiate(
        &self,
        viewports: &[Viewport],
        fill_segments: impl FnMut(usize, &mut Vec<Segment>),
        fill_points: impl FnMut(usize, &mut Vec<Point>),
    ) -> CommandList {
        self.splice(
            viewports,
            fill_segments,
            fill_points,
            None::<fn(usize, &mut Vec<Point>)>,
        )
    }

    /// [`ListTemplate::instantiate`] that *also* splices the `i`-th
    /// filled-polygon draw's vertex run from `fill_polys(i, arena)` — the
    /// area-of-overlap choreography's per-pair geometry. The template's
    /// own polygon arena is discarded; every `FillPolygon` run is rebuilt
    /// from the closure.
    pub fn instantiate_with_polys(
        &self,
        viewports: &[Viewport],
        fill_segments: impl FnMut(usize, &mut Vec<Segment>),
        fill_points: impl FnMut(usize, &mut Vec<Point>),
        fill_polys: impl FnMut(usize, &mut Vec<Point>),
    ) -> CommandList {
        self.splice(viewports, fill_segments, fill_points, Some(fill_polys))
    }

    fn splice(
        &self,
        viewports: &[Viewport],
        mut fill_segments: impl FnMut(usize, &mut Vec<Segment>),
        mut fill_points: impl FnMut(usize, &mut Vec<Point>),
        mut fill_polys: Option<impl FnMut(usize, &mut Vec<Point>)>,
    ) -> CommandList {
        assert_eq!(
            viewports.len(),
            self.viewport_slots,
            "viewport splice does not match the template shape"
        );
        let mut commands = Vec::with_capacity(self.commands.len());
        let mut segments: Vec<Segment> = Vec::new();
        let mut points: Vec<Point> = Vec::new();
        let mut polys: Vec<Point> = Vec::new();
        let (mut vi, mut si, mut pi, mut fi) = (0usize, 0usize, 0usize, 0usize);
        for cmd in &self.commands {
            match *cmd {
                Command::SetViewport(_) => {
                    commands.push(Command::SetViewport(viewports[vi]));
                    vi += 1;
                }
                Command::DrawSegments { new_call, .. } => {
                    let start = segments.len();
                    fill_segments(si, &mut segments);
                    si += 1;
                    commands.push(Command::DrawSegments {
                        start,
                        len: segments.len() - start,
                        new_call,
                    });
                }
                Command::DrawPoints { new_call, .. } => {
                    let start = points.len();
                    fill_points(pi, &mut points);
                    pi += 1;
                    commands.push(Command::DrawPoints {
                        start,
                        len: points.len() - start,
                        new_call,
                    });
                }
                Command::FillPolygon { start, len } => match fill_polys.as_mut() {
                    Some(fill) => {
                        let new_start = polys.len();
                        fill(fi, &mut polys);
                        fi += 1;
                        commands.push(Command::FillPolygon {
                            start: new_start,
                            len: polys.len() - new_start,
                        });
                    }
                    // Shape-determined polygon geometry: keep the run and
                    // its arena slice verbatim.
                    None => commands.push(Command::FillPolygon { start, len }),
                },
                ref other => commands.push(other.clone()),
            }
        }
        if fill_polys.is_none() {
            polys = self.polys.clone();
        }
        CommandList::from_parts(
            self.width,
            self.height,
            commands,
            segments,
            points,
            polys,
            self.cells.clone(),
            self.readbacks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceKind, Recorder};
    use crate::framebuffer::HALF_GRAY;
    use spatial_geom::Rect;

    fn record_pair(first: &[Segment], second: &[Segment], region: Rect) -> CommandList {
        let mut r = Recorder::new(8, 8);
        r.set_viewport(Viewport::new(region, 8, 8)).unwrap();
        r.set_color(HALF_GRAY);
        r.clear_color();
        r.clear_accum();
        r.draw_segments(first.iter().copied()).unwrap();
        r.accum_load();
        r.clear_color();
        r.draw_segments(second.iter().copied()).unwrap();
        r.accum_add();
        r.accum_return();
        r.minmax();
        r.finish()
    }

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn instantiation_equals_cold_recording() {
        let region_a = Rect::new(0.0, 0.0, 8.0, 8.0);
        let region_b = Rect::new(2.0, 2.0, 6.0, 6.0);
        let a1 = [seg(0.0, 0.0, 8.0, 8.0)];
        let a2 = [seg(0.0, 8.0, 8.0, 0.0)];
        let b1 = [seg(2.0, 2.0, 6.0, 6.0), seg(2.0, 6.0, 6.0, 2.0)];
        let b2 = [seg(2.0, 4.0, 6.0, 4.0)];

        let cold_a = record_pair(&a1, &a2, region_a);
        let template = ListTemplate::new(&cold_a);
        assert_eq!(template.viewport_slots(), 1);
        assert_eq!(template.segment_slots(), 2);
        assert_eq!(template.point_slots(), 0);

        // Splicing a *different* pair into the skeleton must equal the
        // cold recording of that pair, command for command.
        let spliced = template.instantiate(
            &[Viewport::new(region_b, 8, 8)],
            |i, out| out.extend_from_slice(if i == 0 { &b1 } else { &b2 }),
            |_, _| {},
        );
        let cold_b = record_pair(&b1, &b2, region_b);
        assert_eq!(spliced, cold_b);

        // And it executes identically.
        let mut dev = DeviceKind::Reference.build();
        assert_eq!(
            dev.execute(&spliced).unwrap(),
            dev.execute(&cold_b).unwrap()
        );
    }

    #[test]
    fn templates_survive_fusion() {
        // Template of a fused list: elided no-ops stay elided, splice
        // slots line up with the fused tape.
        let region = Rect::new(0.0, 0.0, 8.0, 8.0);
        let mut r = Recorder::new(8, 8);
        r.set_viewport(Viewport::new(region, 8, 8)).unwrap();
        r.set_color(HALF_GRAY);
        r.set_color(HALF_GRAY); // fused away
        r.draw_segments([seg(0.0, 0.0, 8.0, 8.0)]).unwrap();
        r.extend_draw_points(std::iter::empty()).unwrap(); // fused away
        r.minmax();
        let (fused, elided) = r.finish().fuse();
        assert_eq!(elided, 2);
        let t = ListTemplate::new(&fused);
        assert_eq!((t.segment_slots(), t.point_slots()), (1, 0));
        let run = [seg(1.0, 1.0, 7.0, 7.0)];
        let inst = t.instantiate(
            &[Viewport::new(region, 8, 8)],
            |_, out| out.extend_from_slice(&run),
            |_, _| {},
        );
        assert_eq!(inst.commands().len(), fused.commands().len());
    }

    #[test]
    #[should_panic(expected = "viewport splice does not match")]
    fn viewport_count_mismatch_panics() {
        let list = record_pair(
            &[seg(0.0, 0.0, 1.0, 1.0)],
            &[],
            Rect::new(0.0, 0.0, 8.0, 8.0),
        );
        ListTemplate::new(&list).instantiate(&[], |_, _| {}, |_, _| {});
    }
}
