//! Set-preserving command-stream fusion.
//!
//! Recorded choreography carries state changes that no draw ever observes:
//! a scissor/viewport pair recorded for a cell whose geometry run turned
//! out empty, a write-mode reset at the end of a strategy block, a repeated
//! `set_line_width` with the value already in effect. None of that state is
//! charged — `HwStats` counts draws, clears, scans and queries, and the
//! whole-buffer operations (clears, accumulation transfers, Minmax /
//! stencil-max / cell-max queries) do not observe the scissor, viewport,
//! color or line state at all; only draw commands do. [`CommandList::fuse`]
//! exploits exactly that charging discipline: it elides
//!
//! 1. **dead state** — a setter overwritten by another setter of the same
//!    kind before any draw executes, or never followed by a draw at all
//!    (the `SetScissor`/`SetViewport` churn of a geometry-free atlas cell);
//! 2. **no-op repeats** — a setter whose value equals the value already in
//!    effect in the fused stream (known either from an earlier kept setter
//!    or from the executor's deterministic reset state for write mode and
//!    scissor);
//! 3. **empty extend-draws** — `DrawSegments`/`DrawPoints` runs with
//!    `len == 0 && new_call == false`, which rasterize nothing and charge
//!    nothing (an empty draw with `new_call == true` still charges one
//!    draw call and is always kept).
//!
//! The pass is *set-preserving*: the fused list produces a bit-identical
//! frame buffer, identical readbacks and identical charged `HwStats` on
//! every backend (property-tested in `device_props`), so replay-driven
//! cost accounting is unchanged. Viewports are only ever elided as dead
//! state, never by value comparison — a cached skeleton
//! ([`super::ListTemplate`]) splices fresh viewports into the fused tape,
//! so the elision pattern must not depend on the viewport values
//! themselves.

use super::command::{Command, CommandList};
use crate::context::WriteMode;

/// The state-setter kinds the pass tracks, densely indexed.
const KINDS: usize = 6;

#[inline]
fn kind_of(cmd: &Command) -> Option<usize> {
    match cmd {
        Command::SetColor(_) => Some(0),
        Command::SetLineWidth(_) => Some(1),
        Command::SetPointSize(_) => Some(2),
        Command::SetWriteMode(_) => Some(3),
        Command::SetViewport(_) => Some(4),
        Command::SetScissor(_) => Some(5),
        _ => None,
    }
}

/// Only viewports are exempt from value-based no-op elision: cached
/// skeletons splice fresh viewport values into the fused tape, so the
/// tape's shape must not depend on them.
const KIND_VIEWPORT: usize = 4;

#[inline]
fn is_draw(cmd: &Command) -> bool {
    matches!(
        cmd,
        Command::DrawSegments { .. } | Command::DrawPoints { .. } | Command::FillPolygon { .. }
    )
}

impl CommandList {
    /// Returns a fused copy of this list plus the number of commands
    /// elided. See the module docs for the three elision rules; clears,
    /// accumulation ops, batch markers and every readback command are
    /// always kept, so readback slots keep their recorded indices and all
    /// charged counters are preserved bit for bit.
    pub fn fuse(&self) -> (CommandList, usize) {
        let cmds = self.commands();
        let n = cmds.len();

        // Empty extend-draws rasterize nothing and charge nothing; decide
        // them first so the observation scan below ignores them.
        let mut keep = vec![true; n];
        for (i, cmd) in cmds.iter().enumerate() {
            if let Command::DrawSegments {
                len: 0,
                new_call: false,
                ..
            }
            | Command::DrawPoints {
                len: 0,
                new_call: false,
                ..
            } = cmd
            {
                keep[i] = false;
            }
        }

        // Backward scan: for each setter, whether any kept draw executes
        // before the next setter of the same kind (or the end of the
        // stream). `observed[k]` answers that for the current position.
        let mut observed_here = vec![false; n];
        let mut observed = [false; KINDS];
        for i in (0..n).rev() {
            if keep[i] && is_draw(&cmds[i]) {
                observed = [true; KINDS];
            } else if let Some(k) = kind_of(&cmds[i]) {
                observed_here[i] = observed[k];
                observed[k] = false;
            }
        }

        // Forward scan: drop unobserved setters and observed-but-no-op
        // repeats. `known` tracks the value in effect in the *fused*
        // stream; write mode and scissor start from the executors'
        // deterministic reset state, everything else starts unknown.
        let mut known: [Option<Command>; KINDS] = [
            None,
            None,
            None,
            Some(Command::SetWriteMode(WriteMode::Overwrite)),
            None,
            Some(Command::SetScissor(None)),
        ];
        for (i, cmd) in cmds.iter().enumerate() {
            let Some(k) = kind_of(cmd) else { continue };
            if !observed_here[i] {
                keep[i] = false;
                continue;
            }
            if k != KIND_VIEWPORT && known[k].as_ref() == Some(cmd) {
                keep[i] = false;
                continue;
            }
            known[k] = Some(cmd.clone());
        }

        let fused: Vec<Command> = cmds
            .iter()
            .zip(&keep)
            .filter(|&(_, &k)| k)
            .map(|(c, _)| c.clone())
            .collect();
        let elided = n - fused.len();
        (self.with_commands(fused), elided)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::PixelRect;
    use crate::device::{DeviceKind, Recorder};
    use crate::framebuffer::HALF_GRAY;
    use crate::viewport::Viewport;
    use spatial_geom::{Point, Rect, Segment};

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    fn vp(w: usize, h: usize) -> Viewport {
        Viewport::new(Rect::new(0.0, 0.0, w as f64, h as f64), w, h)
    }

    #[test]
    fn dead_scissor_viewport_pairs_are_elided() {
        // The pre-fix atlas shape: scissor+viewport recorded for a cell,
        // then immediately re-set for the next cell with no draw between.
        let mut r = Recorder::new(16, 16);
        let dead = PixelRect {
            x: 0,
            y: 0,
            w: 4,
            h: 4,
        };
        let live = PixelRect {
            x: 8,
            y: 8,
            w: 4,
            h: 4,
        };
        r.set_scissor(Some(dead)).unwrap();
        r.set_viewport(vp(4, 4)).unwrap();
        r.set_scissor(Some(live)).unwrap();
        r.set_viewport(vp(4, 4)).unwrap();
        r.draw_segments([seg(0.0, 0.0, 4.0, 4.0)]).unwrap();
        r.set_scissor(None).unwrap(); // trailing: nothing observes it
        r.minmax();
        let (fused, elided) = r.finish().fuse();
        assert_eq!(elided, 3, "dead scissor, dead viewport, trailing lift");
        assert_eq!(
            fused.commands().len(),
            4,
            "scissor, viewport, draw, minmax survive: {fused:?}"
        );
    }

    #[test]
    fn no_op_repeats_are_elided_but_viewports_never_by_value() {
        let mut r = Recorder::new(8, 8);
        r.set_write_mode(crate::context::WriteMode::Overwrite); // reset-state no-op
        r.set_color(HALF_GRAY);
        r.set_line_width(2.0).unwrap();
        r.set_viewport(vp(8, 8)).unwrap();
        r.draw_segments([seg(0.0, 0.0, 8.0, 8.0)]).unwrap();
        r.set_color(HALF_GRAY); // repeat
        r.set_line_width(2.0).unwrap(); // repeat
        r.set_viewport(vp(8, 8)).unwrap(); // same value, but observed: kept
        r.draw_segments([seg(8.0, 0.0, 0.0, 8.0)]).unwrap();
        r.minmax();
        let (fused, elided) = r.finish().fuse();
        assert_eq!(elided, 3, "write-mode no-op + two repeats: {fused:?}");
        let viewports = fused
            .commands()
            .iter()
            .filter(|c| matches!(c, Command::SetViewport(_)))
            .count();
        assert_eq!(viewports, 2, "viewport values are never fused");
    }

    #[test]
    fn empty_extends_are_elided_but_empty_draw_calls_are_kept() {
        let mut r = Recorder::new(8, 8);
        r.set_viewport(vp(8, 8)).unwrap();
        r.draw_segments(std::iter::empty()).unwrap(); // charges a draw call
        r.extend_draw_segments(std::iter::empty()).unwrap(); // charges nothing
        r.extend_draw_points(std::iter::empty()).unwrap(); // charges nothing
        r.minmax();
        let (fused, elided) = r.finish().fuse();
        assert_eq!(elided, 2);
        assert!(fused
            .commands()
            .iter()
            .any(|c| matches!(c, Command::DrawSegments { new_call: true, .. })));
    }

    #[test]
    fn fusion_preserves_execution_bit_for_bit() {
        // A list exercising every elision rule at once, checked on the
        // reference device (the cross-backend sweep lives in the
        // device_props property tests).
        let mut r = Recorder::new(16, 16);
        r.set_color(HALF_GRAY);
        r.set_color(HALF_GRAY);
        r.set_line_width(3.0).unwrap();
        r.clear_color();
        r.clear_accum();
        r.set_scissor(Some(PixelRect {
            x: 0,
            y: 0,
            w: 8,
            h: 8,
        }))
        .unwrap();
        r.set_viewport(vp(8, 8)).unwrap();
        r.set_scissor(Some(PixelRect {
            x: 8,
            y: 8,
            w: 8,
            h: 8,
        }))
        .unwrap();
        r.set_viewport(vp(8, 8)).unwrap();
        r.draw_segments([seg(0.0, 0.0, 8.0, 8.0)]).unwrap();
        r.extend_draw_segments(std::iter::empty()).unwrap();
        r.accum_load();
        r.clear_color();
        r.draw_segments([seg(8.0, 0.0, 0.0, 8.0)]).unwrap();
        r.accum_add();
        r.accum_return();
        r.minmax();
        r.cell_max([PixelRect {
            x: 8,
            y: 8,
            w: 8,
            h: 8,
        }])
        .unwrap();
        r.set_scissor(None).unwrap();
        let list = r.finish();
        let (fused, elided) = list.fuse();
        assert!(elided >= 4, "{elided}");
        assert_eq!(fused.readback_count(), list.readback_count());

        let mut reference = DeviceKind::Reference.build();
        let a = reference.execute(&list).unwrap();
        let b = reference.execute(&fused).unwrap();
        assert_eq!(a.stats, b.stats, "charged counters must be preserved");
        assert_eq!(a.readbacks, b.readbacks);
        assert_eq!(reference.execute(&list).unwrap().readbacks, a.readbacks);
    }

    #[test]
    fn fusing_twice_is_idempotent() {
        let mut r = Recorder::new(8, 8);
        r.set_viewport(vp(8, 8)).unwrap();
        r.set_color(HALF_GRAY);
        r.set_color(HALF_GRAY);
        r.draw_segments([seg(0.0, 0.0, 8.0, 8.0)]).unwrap();
        r.minmax();
        let (once, elided) = r.finish().fuse();
        assert_eq!(elided, 1);
        let (twice, again) = once.fuse();
        assert_eq!(again, 0, "a fused list has nothing left to elide");
        assert_eq!(once, twice);
    }
}
