//! Typed, validated command streams — the retained half of the device
//! layer.
//!
//! A [`Recorder`] captures one submission's worth of state changes, draws
//! and readback requests into a [`CommandList`], validating hardware limits
//! (line width, point size, viewport/window agreement, scissor bounds) *at
//! record time* — the moment a GL driver would reject the call — instead of
//! at execution. The list is immutable once finished: executing it twice,
//! or on two different [`crate::device::RasterDevice`]s, performs exactly
//! the same work, which is what makes replay-driven cost accounting and
//! the tiled/reference equivalence property possible.
//!
//! Geometry is stored in flat arenas (one per primitive kind) and commands
//! reference `start/len` runs, so a recorded atlas batch is one contiguous
//! allocation rather than a tree of boxed draws.

use crate::context::{PixelRect, WriteMode, MAX_AA_LINE_WIDTH, MAX_POINT_SIZE};
use crate::framebuffer::Color;
use crate::viewport::Viewport;
use spatial_geom::{Point, Segment};
use std::fmt;

/// One retained device command. Draw commands index runs in the owning
/// [`CommandList`]'s geometry arenas; readback commands are assigned
/// result slots in record order.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Sets the current draw color. No validation: any finite RGB triple
    /// the caller hands over is legal.
    SetColor(Color),
    /// Sets the anti-aliased line width in pixels. The recorder validated
    /// it against [`MAX_AA_LINE_WIDTH`] and pre-clamped it to ≥ 1, so
    /// executors apply the stored value directly.
    SetLineWidth(f64),
    /// Sets the smooth-point diameter in pixels, validated against
    /// [`MAX_POINT_SIZE`] and pre-clamped to ≥ 1 at record time.
    SetPointSize(f64),
    /// Selects how fragments combine with the target plane (overwrite,
    /// additive blend, stencil replace, stencil increment-if-equal).
    SetWriteMode(WriteMode),
    /// Sets the data→window projection. The recorder verified that its
    /// window dimensions match the active rasterization window (the
    /// scissor if one is set, the frame buffer otherwise).
    SetViewport(Viewport),
    /// Restricts rasterization to a sub-rectangle (validated non-empty and
    /// in-bounds at record time), or lifts the restriction with `None`.
    SetScissor(Option<PixelRect>),
    /// Clears the color plane to black; charges one `pixels_scanned` pass.
    ClearColor,
    /// Clears the accumulation plane to black; charges one scan pass.
    ClearAccum,
    /// Clears the stencil plane to zero; charges one scan pass.
    ClearStencil,
    /// `glAccum(GL_LOAD)`: accum ← color; charges one scan pass.
    AccumLoad,
    /// `glAccum(GL_ACCUM)`: accum ← accum + color; charges one scan pass.
    AccumAdd,
    /// `glAccum(GL_RETURN)`: color ← accum clamped to [0, 1]; charges one
    /// scan pass.
    AccumReturn,
    /// Marks the start of a batched submission round (charges the
    /// per-batch fixed cost).
    BeginBatch,
    /// Draws a run of wide anti-aliased segments. `new_call` charges one
    /// draw call; merged continuations (`new_call == false`) extend the
    /// previous submission, the atlas's per-pass batching.
    DrawSegments {
        /// First segment of the run in the segment arena.
        start: usize,
        /// Number of segments (each charges one primitive).
        len: usize,
        /// Whether this submission charges a new draw call.
        new_call: bool,
    },
    /// Draws a run of smooth (anti-aliased) points.
    DrawPoints {
        /// First point of the run in the point arena.
        start: usize,
        /// Number of points (each charges one primitive).
        len: usize,
        /// Whether this submission charges a new draw call.
        new_call: bool,
    },
    /// Fills one polygon given by a run of vertices (one draw call, one
    /// primitive). The recorder verified a viewport was set; executors
    /// ignore runs of fewer than three vertices.
    FillPolygon {
        /// First vertex of the polygon in the vertex arena.
        start: usize,
        /// Vertex count.
        len: usize,
    },
    /// Minmax query over the color buffer → one readback slot.
    Minmax,
    /// Maximum stencil value → one readback slot.
    StencilMax,
    /// Number of pixels with stencil value ≥ `min` → one readback slot.
    /// The fragment-counting query of the area-of-overlap aggregation:
    /// scaled by the viewport's per-pixel world area, the count *is* the
    /// quantized overlap area.
    StencilCount {
        /// The inclusive stencil threshold a pixel must reach to count.
        min: u8,
    },
    /// Per-cell maximum red reduction over a run of pixel rectangles
    /// (validated non-empty and in-bounds at record time) → one readback
    /// slot holding one value per rectangle.
    CellMax {
        /// First rectangle of the run in the cell arena.
        start: usize,
        /// Rectangle count.
        len: usize,
    },
}

impl Command {
    /// Whether executing this command produces a readback slot.
    #[inline]
    pub fn is_readback(&self) -> bool {
        matches!(
            self,
            Command::Minmax
                | Command::StencilMax
                | Command::StencilCount { .. }
                | Command::CellMax { .. }
        )
    }
}

/// An immutable recorded command stream targeting a `width × height`
/// window. Construct one through [`Recorder`].
#[derive(Debug, Clone, PartialEq)]
pub struct CommandList {
    width: usize,
    height: usize,
    commands: Vec<Command>,
    segments: Vec<Segment>,
    points: Vec<Point>,
    polys: Vec<Point>,
    cells: Vec<PixelRect>,
    readbacks: usize,
}

impl CommandList {
    /// Target window width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Target window height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The recorded commands, in submission order.
    #[inline]
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// Number of readback slots the stream produces when executed.
    #[inline]
    pub fn readback_count(&self) -> usize {
        self.readbacks
    }

    /// Rebuilds a list from raw parts — the constructor the fusion pass
    /// ([`CommandList::fuse`]) and [`super::ListTemplate`] use. Callers
    /// are responsible for keeping every command's run indices inside the
    /// arenas; the [`Recorder`] invariants are assumed, not re-checked.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        width: usize,
        height: usize,
        commands: Vec<Command>,
        segments: Vec<Segment>,
        points: Vec<Point>,
        polys: Vec<Point>,
        cells: Vec<PixelRect>,
        readbacks: usize,
    ) -> CommandList {
        CommandList {
            width,
            height,
            commands,
            segments,
            points,
            polys,
            cells,
            readbacks,
        }
    }

    /// Same window, arenas and readback count, different command tape —
    /// how the fusion pass emits its output without copying geometry
    /// semantics it did not touch.
    pub(crate) fn with_commands(&self, commands: Vec<Command>) -> CommandList {
        CommandList {
            width: self.width,
            height: self.height,
            commands,
            segments: self.segments.clone(),
            points: self.points.clone(),
            polys: self.polys.clone(),
            cells: self.cells.clone(),
            readbacks: self.readbacks,
        }
    }

    /// The whole polygon-vertex arena (template construction).
    #[inline]
    pub(crate) fn polys_arena(&self) -> &[Point] {
        &self.polys
    }

    /// The whole cell-rectangle arena (template construction).
    #[inline]
    pub(crate) fn cells_arena(&self) -> &[PixelRect] {
        &self.cells
    }

    #[inline]
    pub(crate) fn seg_run(&self, start: usize, len: usize) -> &[Segment] {
        &self.segments[start..start + len]
    }

    #[inline]
    pub(crate) fn point_run(&self, start: usize, len: usize) -> &[Point] {
        &self.points[start..start + len]
    }

    #[inline]
    pub(crate) fn poly_run(&self, start: usize, len: usize) -> &[Point] {
        &self.polys[start..start + len]
    }

    #[inline]
    pub(crate) fn cell_run(&self, start: usize, len: usize) -> &[PixelRect] {
        &self.cells[start..start + len]
    }

    /// A stable, human-readable one-line-per-command dump, including the
    /// referenced geometry. Coordinates print with `f64`'s shortest
    /// round-trip formatting, so the output is platform-independent —
    /// golden snapshot tests diff it verbatim.
    pub fn serialize(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let mut slot = 0usize;
        let _ = writeln!(out, "window {}x{}", self.width, self.height);
        for cmd in &self.commands {
            match *cmd {
                Command::SetColor(c) => {
                    let _ = writeln!(out, "set_color {} {} {}", c[0], c[1], c[2]);
                }
                Command::SetLineWidth(w) => {
                    let _ = writeln!(out, "set_line_width {w}");
                }
                Command::SetPointSize(s) => {
                    let _ = writeln!(out, "set_point_size {s}");
                }
                Command::SetWriteMode(m) => {
                    let _ = writeln!(out, "set_write_mode {m:?}");
                }
                Command::SetViewport(vp) => {
                    let r = vp.region();
                    let _ = writeln!(
                        out,
                        "set_viewport region=({} {} {} {}) window={}x{} scale=({} {})",
                        r.xmin,
                        r.ymin,
                        r.xmax,
                        r.ymax,
                        vp.width(),
                        vp.height(),
                        vp.scale_x(),
                        vp.scale_y()
                    );
                }
                Command::SetScissor(None) => {
                    let _ = writeln!(out, "set_scissor none");
                }
                Command::SetScissor(Some(r)) => {
                    let _ = writeln!(out, "set_scissor {} {} {}x{}", r.x, r.y, r.w, r.h);
                }
                Command::ClearColor => out.push_str("clear_color\n"),
                Command::ClearAccum => out.push_str("clear_accum\n"),
                Command::ClearStencil => out.push_str("clear_stencil\n"),
                Command::AccumLoad => out.push_str("accum_load\n"),
                Command::AccumAdd => out.push_str("accum_add\n"),
                Command::AccumReturn => out.push_str("accum_return\n"),
                Command::BeginBatch => out.push_str("begin_batch\n"),
                Command::DrawSegments {
                    start,
                    len,
                    new_call,
                } => {
                    let _ = write!(out, "draw_segments new_call={new_call} n={len}:");
                    for s in self.seg_run(start, len) {
                        let _ = write!(out, " ({} {})-({} {})", s.a.x, s.a.y, s.b.x, s.b.y);
                    }
                    out.push('\n');
                }
                Command::DrawPoints {
                    start,
                    len,
                    new_call,
                } => {
                    let _ = write!(out, "draw_points new_call={new_call} n={len}:");
                    for p in self.point_run(start, len) {
                        let _ = write!(out, " ({} {})", p.x, p.y);
                    }
                    out.push('\n');
                }
                Command::FillPolygon { start, len } => {
                    let _ = write!(out, "fill_polygon n={len}:");
                    for p in self.poly_run(start, len) {
                        let _ = write!(out, " ({} {})", p.x, p.y);
                    }
                    out.push('\n');
                }
                Command::Minmax => {
                    let _ = writeln!(out, "minmax slot={slot}");
                    slot += 1;
                }
                Command::StencilMax => {
                    let _ = writeln!(out, "stencil_max slot={slot}");
                    slot += 1;
                }
                Command::StencilCount { min } => {
                    let _ = writeln!(out, "stencil_count min={min} slot={slot}");
                    slot += 1;
                }
                Command::CellMax { start, len } => {
                    let _ = write!(out, "cell_max slot={slot} n={len}:");
                    for c in self.cell_run(start, len) {
                        let _ = write!(out, " [{} {} {}x{}]", c.x, c.y, c.w, c.h);
                    }
                    out.push('\n');
                    slot += 1;
                }
            }
        }
        out
    }
}

/// A record-time validation failure — the retained analogue of a GL error.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordError {
    /// Requested line width is non-finite or above [`MAX_AA_LINE_WIDTH`].
    WidthTooLarge(f64),
    /// Requested point size is non-finite or above [`MAX_POINT_SIZE`].
    PointSizeTooLarge(f64),
    /// Viewport window dimensions disagree with the rasterization window
    /// (the scissor if one is set, the frame buffer otherwise).
    ViewportMismatch {
        /// The active rasterization window's dimensions.
        expected: (usize, usize),
        /// The rejected viewport's window dimensions.
        got: (usize, usize),
    },
    /// Scissor rectangle is empty or exceeds the frame buffer.
    ScissorOutOfBounds(PixelRect),
    /// Cell-reduction rectangle is empty or exceeds the frame buffer.
    CellOutOfBounds(PixelRect),
    /// Merged (`extend_*`) draws are only defined in overwrite mode: the
    /// per-draw-call fragment deduplication of the other modes has no
    /// meaning across a merged run.
    MergedDrawRequiresOverwrite,
    /// A draw was recorded before any viewport was set.
    DrawWithoutViewport,
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::WidthTooLarge(w) => {
                write!(
                    f,
                    "line width {w} exceeds the hardware limit {MAX_AA_LINE_WIDTH}"
                )
            }
            RecordError::PointSizeTooLarge(s) => {
                write!(
                    f,
                    "point size {s} exceeds the hardware limit {MAX_POINT_SIZE}"
                )
            }
            RecordError::ViewportMismatch { expected, got } => write!(
                f,
                "viewport window {}x{} does not match the rasterization window {}x{}",
                got.0, got.1, expected.0, expected.1
            ),
            RecordError::ScissorOutOfBounds(r) => {
                write!(
                    f,
                    "scissor {} {} {}x{} outside the window",
                    r.x, r.y, r.w, r.h
                )
            }
            RecordError::CellOutOfBounds(r) => {
                write!(f, "cell {} {} {}x{} outside the window", r.x, r.y, r.w, r.h)
            }
            RecordError::MergedDrawRequiresOverwrite => {
                write!(f, "merged draws require WriteMode::Overwrite")
            }
            RecordError::DrawWithoutViewport => {
                write!(f, "draw recorded before any viewport was set")
            }
        }
    }
}

impl std::error::Error for RecordError {}

/// Records a validated [`CommandList`] targeting a `width × height`
/// window. State setters mirror [`crate::GlContext`]'s; draw methods take
/// any geometry iterator so callers can stream edges without intermediate
/// buffers.
#[derive(Debug)]
pub struct Recorder {
    list: CommandList,
    write_mode: WriteMode,
    viewport_set: bool,
    scissor: Option<PixelRect>,
}

impl Recorder {
    /// A recorder for a `width × height` pixel window.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(
            width > 0 && height > 0,
            "window must have at least one pixel"
        );
        Recorder {
            list: CommandList {
                width,
                height,
                commands: Vec::new(),
                segments: Vec::new(),
                points: Vec::new(),
                polys: Vec::new(),
                cells: Vec::new(),
                readbacks: 0,
            },
            write_mode: WriteMode::Overwrite,
            viewport_set: false,
            scissor: None,
        }
    }

    /// Records the current draw color.
    pub fn set_color(&mut self, c: Color) {
        self.list.commands.push(Command::SetColor(c));
    }

    /// Validates `w` against [`MAX_AA_LINE_WIDTH`] and records the
    /// effective (≥ 1 pixel) width, which is returned — mirroring
    /// [`crate::GlContext::set_line_width`], except that exceeding the
    /// hardware limit is an upfront error here rather than a silent clamp:
    /// the caller decides on the software fallback *before* the list
    /// exists.
    pub fn set_line_width(&mut self, w: f64) -> Result<f64, RecordError> {
        if !w.is_finite() || w > MAX_AA_LINE_WIDTH {
            return Err(RecordError::WidthTooLarge(w));
        }
        let eff = w.max(1.0);
        self.list.commands.push(Command::SetLineWidth(eff));
        Ok(eff)
    }

    /// Validates `s` against [`MAX_POINT_SIZE`] and records the effective
    /// (≥ 1 pixel) size.
    pub fn set_point_size(&mut self, s: f64) -> Result<f64, RecordError> {
        if !s.is_finite() || s > MAX_POINT_SIZE {
            return Err(RecordError::PointSizeTooLarge(s));
        }
        let eff = s.max(1.0);
        self.list.commands.push(Command::SetPointSize(eff));
        Ok(eff)
    }

    /// Records the fragment write mode. Tracked by the recorder as well:
    /// merged (`extend_*`) draws are rejected outside overwrite mode.
    pub fn set_write_mode(&mut self, mode: WriteMode) {
        self.write_mode = mode;
        self.list.commands.push(Command::SetWriteMode(mode));
    }

    /// Records the data→window projection. Its window dimensions must
    /// match the active rasterization window: the scissor if one is set
    /// (the atlas's cell-local projection), the full frame buffer
    /// otherwise.
    pub fn set_viewport(&mut self, vp: Viewport) -> Result<(), RecordError> {
        let expected = match self.scissor {
            Some(r) => (r.w, r.h),
            None => (self.list.width, self.list.height),
        };
        let got = (vp.width(), vp.height());
        if got != expected {
            return Err(RecordError::ViewportMismatch { expected, got });
        }
        self.viewport_set = true;
        self.list.commands.push(Command::SetViewport(vp));
        Ok(())
    }

    /// Restricts rasterization to `r` (or lifts the restriction). The
    /// rectangle must be non-empty and lie inside the window.
    pub fn set_scissor(&mut self, r: Option<PixelRect>) -> Result<(), RecordError> {
        if let Some(r) = r {
            if r.w == 0 || r.h == 0 || r.x + r.w > self.list.width || r.y + r.h > self.list.height {
                return Err(RecordError::ScissorOutOfBounds(r));
            }
        }
        self.scissor = r;
        self.list.commands.push(Command::SetScissor(r));
        Ok(())
    }

    /// Records a color-plane clear (to black).
    pub fn clear_color(&mut self) {
        self.list.commands.push(Command::ClearColor);
    }

    /// Records an accumulation-plane clear (to black).
    pub fn clear_accum(&mut self) {
        self.list.commands.push(Command::ClearAccum);
    }

    /// Records a stencil-plane clear (to zero).
    pub fn clear_stencil(&mut self) {
        self.list.commands.push(Command::ClearStencil);
    }

    /// Records `glAccum(GL_LOAD)`: accum ← color.
    pub fn accum_load(&mut self) {
        self.list.commands.push(Command::AccumLoad);
    }

    /// Records `glAccum(GL_ACCUM)`: accum ← accum + color.
    pub fn accum_add(&mut self) {
        self.list.commands.push(Command::AccumAdd);
    }

    /// Records `glAccum(GL_RETURN)`: color ← accum clamped to [0, 1].
    pub fn accum_return(&mut self) {
        self.list.commands.push(Command::AccumReturn);
    }

    /// Marks the start of a batched submission round.
    pub fn begin_batch(&mut self) {
        self.list.commands.push(Command::BeginBatch);
    }

    /// Records a draw call over a run of segments.
    pub fn draw_segments(
        &mut self,
        segments: impl IntoIterator<Item = Segment>,
    ) -> Result<(), RecordError> {
        self.push_segments(segments, true)
    }

    /// Extends the previous segment submission without a new draw call —
    /// only meaningful in overwrite mode (see
    /// [`RecordError::MergedDrawRequiresOverwrite`]).
    pub fn extend_draw_segments(
        &mut self,
        segments: impl IntoIterator<Item = Segment>,
    ) -> Result<(), RecordError> {
        if self.write_mode != WriteMode::Overwrite {
            return Err(RecordError::MergedDrawRequiresOverwrite);
        }
        self.push_segments(segments, false)
    }

    fn push_segments(
        &mut self,
        segments: impl IntoIterator<Item = Segment>,
        new_call: bool,
    ) -> Result<(), RecordError> {
        if !self.viewport_set {
            return Err(RecordError::DrawWithoutViewport);
        }
        let start = self.list.segments.len();
        self.list.segments.extend(segments);
        let len = self.list.segments.len() - start;
        self.list.commands.push(Command::DrawSegments {
            start,
            len,
            new_call,
        });
        Ok(())
    }

    /// Records a draw call over a run of points.
    pub fn draw_points(
        &mut self,
        points: impl IntoIterator<Item = Point>,
    ) -> Result<(), RecordError> {
        self.push_points(points, true)
    }

    /// Extends the previous point submission without a new draw call.
    pub fn extend_draw_points(
        &mut self,
        points: impl IntoIterator<Item = Point>,
    ) -> Result<(), RecordError> {
        if self.write_mode != WriteMode::Overwrite {
            return Err(RecordError::MergedDrawRequiresOverwrite);
        }
        self.push_points(points, false)
    }

    fn push_points(
        &mut self,
        points: impl IntoIterator<Item = Point>,
        new_call: bool,
    ) -> Result<(), RecordError> {
        if !self.viewport_set {
            return Err(RecordError::DrawWithoutViewport);
        }
        let start = self.list.points.len();
        self.list.points.extend(points);
        let len = self.list.points.len() - start;
        self.list.commands.push(Command::DrawPoints {
            start,
            len,
            new_call,
        });
        Ok(())
    }

    /// Records one filled-polygon draw.
    pub fn fill_polygon(
        &mut self,
        vertices: impl IntoIterator<Item = Point>,
    ) -> Result<(), RecordError> {
        if !self.viewport_set {
            return Err(RecordError::DrawWithoutViewport);
        }
        let start = self.list.polys.len();
        self.list.polys.extend(vertices);
        let len = self.list.polys.len() - start;
        self.list.commands.push(Command::FillPolygon { start, len });
        Ok(())
    }

    /// Records a Minmax query; returns the readback slot its result
    /// occupies in the [`crate::device::Execution`].
    pub fn minmax(&mut self) -> usize {
        self.list.commands.push(Command::Minmax);
        self.list.readbacks += 1;
        self.list.readbacks - 1
    }

    /// Records a stencil-maximum query; returns its readback slot.
    pub fn stencil_max(&mut self) -> usize {
        self.list.commands.push(Command::StencilMax);
        self.list.readbacks += 1;
        self.list.readbacks - 1
    }

    /// Records a stencil-count query (pixels with stencil ≥ `min`);
    /// returns its readback slot.
    pub fn stencil_count(&mut self, min: u8) -> usize {
        self.list.commands.push(Command::StencilCount { min });
        self.list.readbacks += 1;
        self.list.readbacks - 1
    }

    /// Records one per-cell maximum-red reduction scan; returns its
    /// readback slot. Every rectangle must be non-empty and inside the
    /// window.
    pub fn cell_max(
        &mut self,
        cells: impl IntoIterator<Item = PixelRect>,
    ) -> Result<usize, RecordError> {
        let start = self.list.cells.len();
        for c in cells {
            if c.w == 0 || c.h == 0 || c.x + c.w > self.list.width || c.y + c.h > self.list.height {
                self.list.cells.truncate(start);
                return Err(RecordError::CellOutOfBounds(c));
            }
            self.list.cells.push(c);
        }
        let len = self.list.cells.len() - start;
        self.list.commands.push(Command::CellMax { start, len });
        self.list.readbacks += 1;
        Ok(self.list.readbacks - 1)
    }

    /// Seals the stream.
    pub fn finish(self) -> CommandList {
        self.list
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framebuffer::HALF_GRAY;
    use spatial_geom::Rect;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn width_and_size_limits_are_record_time_errors() {
        let mut r = Recorder::new(8, 8);
        assert_eq!(
            r.set_line_width(MAX_AA_LINE_WIDTH + 0.1),
            Err(RecordError::WidthTooLarge(MAX_AA_LINE_WIDTH + 0.1))
        );
        assert!(matches!(
            r.set_line_width(f64::NAN),
            Err(RecordError::WidthTooLarge(_))
        ));
        assert_eq!(
            r.set_line_width(0.25),
            Ok(1.0),
            "clamped up like glLineWidth"
        );
        assert_eq!(r.set_line_width(MAX_AA_LINE_WIDTH), Ok(MAX_AA_LINE_WIDTH));
        assert!(matches!(
            r.set_point_size(MAX_POINT_SIZE * 2.0),
            Err(RecordError::PointSizeTooLarge(_))
        ));
        assert_eq!(r.set_point_size(3.0), Ok(3.0));
    }

    #[test]
    fn viewport_must_match_active_window() {
        let mut r = Recorder::new(8, 8);
        let bad = Viewport::new(Rect::new(0.0, 0.0, 4.0, 4.0), 4, 4);
        assert_eq!(
            r.set_viewport(bad),
            Err(RecordError::ViewportMismatch {
                expected: (8, 8),
                got: (4, 4)
            })
        );
        // With a 4×4 scissor the same viewport becomes valid (cell-local).
        r.set_scissor(Some(PixelRect {
            x: 2,
            y: 2,
            w: 4,
            h: 4,
        }))
        .unwrap();
        assert_eq!(r.set_viewport(bad), Ok(()));
    }

    #[test]
    fn scissor_and_cells_must_stay_inside() {
        let mut r = Recorder::new(8, 8);
        let overhang = PixelRect {
            x: 6,
            y: 0,
            w: 4,
            h: 4,
        };
        assert_eq!(
            r.set_scissor(Some(overhang)),
            Err(RecordError::ScissorOutOfBounds(overhang))
        );
        let empty = PixelRect {
            x: 0,
            y: 0,
            w: 0,
            h: 4,
        };
        assert_eq!(
            r.set_scissor(Some(empty)),
            Err(RecordError::ScissorOutOfBounds(empty))
        );
        assert!(r
            .set_scissor(Some(PixelRect {
                x: 4,
                y: 4,
                w: 4,
                h: 4
            }))
            .is_ok());
        let tall = PixelRect {
            x: 0,
            y: 7,
            w: 1,
            h: 2,
        };
        assert_eq!(r.cell_max([tall]), Err(RecordError::CellOutOfBounds(tall)));
    }

    #[test]
    fn draws_require_a_viewport() {
        let mut r = Recorder::new(8, 8);
        assert_eq!(
            r.draw_segments([seg(0.0, 0.0, 1.0, 1.0)]),
            Err(RecordError::DrawWithoutViewport)
        );
        r.set_viewport(Viewport::new(Rect::new(0.0, 0.0, 8.0, 8.0), 8, 8))
            .unwrap();
        assert!(r.draw_segments([seg(0.0, 0.0, 1.0, 1.0)]).is_ok());
    }

    #[test]
    fn merged_draws_are_overwrite_only() {
        let mut r = Recorder::new(8, 8);
        r.set_viewport(Viewport::new(Rect::new(0.0, 0.0, 8.0, 8.0), 8, 8))
            .unwrap();
        r.set_write_mode(WriteMode::Blend);
        assert_eq!(
            r.extend_draw_segments([seg(0.0, 0.0, 1.0, 1.0)]),
            Err(RecordError::MergedDrawRequiresOverwrite)
        );
        r.set_write_mode(WriteMode::Overwrite);
        assert!(r.extend_draw_segments([seg(0.0, 0.0, 1.0, 1.0)]).is_ok());
    }

    #[test]
    fn readback_slots_count_up_in_record_order() {
        let mut r = Recorder::new(8, 8);
        assert_eq!(r.minmax(), 0);
        assert_eq!(r.stencil_max(), 1);
        assert_eq!(
            r.cell_max([PixelRect {
                x: 0,
                y: 0,
                w: 2,
                h: 2
            }])
            .unwrap(),
            2
        );
        let list = r.finish();
        assert_eq!(list.readback_count(), 3);
    }

    #[test]
    fn serialization_is_deterministic_and_complete() {
        let build = || {
            let mut r = Recorder::new(8, 8);
            r.set_color(HALF_GRAY);
            r.set_line_width(1.5).unwrap();
            r.set_viewport(Viewport::new(Rect::new(0.0, 0.0, 8.0, 8.0), 8, 8))
                .unwrap();
            r.clear_color();
            r.draw_segments([seg(0.0, 0.0, 8.0, 8.0)]).unwrap();
            r.minmax();
            r.finish()
        };
        let a = build().serialize();
        let b = build().serialize();
        assert_eq!(a, b);
        assert!(a.contains("set_line_width 1.5"));
        assert!(a.contains("draw_segments new_call=true n=1: (0 0)-(8 8)"));
        assert!(a.contains("minmax slot=0"));
        assert_eq!(a.lines().count(), 7, "one line per command plus header");
    }
}
