//! Lane-width-generic buffer-scan kernels shared by every executor.
//!
//! Whole-buffer operations — Minmax reductions, stencil maxima, per-cell
//! red-channel maxima, accumulation adds — are the device layer's other
//! hot loop besides rasterization. Two kernel shapes live here:
//!
//! * **Reductions** take a `const LANES` parameter and keep `LANES`
//!   independent accumulators, folded once at the end. A serial
//!   `acc = acc.min(x)` chain is a loop-carried dependency the
//!   autovectorizer must preserve; `LANES` accumulators break the chain
//!   into fixed-width array arithmetic it reliably turns into SIMD
//!   min/max. `LANES = 1` degenerates to exactly the serial fold — the
//!   scalar fallback and the vector path share this one body.
//! * **Elementwise maps** (accumulation add, clamped return) have no
//!   dependency chain at all; they are written as flat `f32` zips over
//!   [`slice::as_flattened`] views, which vectorize as-is at any width.
//!
//! Reassociating min/max is exact for the values that reach these kernels:
//! `f32` min/max are associative and commutative over non-NaN inputs, and
//! no kernel here produces or consumes NaN (colors are built from finite
//! constants, sums and clamps). That is why a lane-parallel reduction can
//! promise the bit-identical results the device contract demands.
//!
//! With the `simd-intrinsics` feature enabled on x86_64, the color Minmax
//! reduction additionally routes through explicit SSE2 `min_ps`/`max_ps`
//! intrinsics (SSE2 is baseline on x86_64 — no runtime dispatch needed);
//! the portable kernels remain the reference the intrinsics are tested
//! against.
//!
//! Every kernel here carries `#[inline(always)]`: when the caller is the
//! band replay's AVX2 instantiation (see `crate::device`), the same body
//! is recompiled inside that region with 256-bit registers available to
//! the autovectorizer. Rust float semantics are strict IEEE at every
//! vector width (no fused multiply-add, no reassociation beyond what the
//! source spells out), so the wider instantiation computes bit-identical
//! results — it is the same code, only wider.

use crate::framebuffer::Color;

/// Per-channel (min, max) over a color slice, `LANES` colors per step.
#[inline(always)]
pub(crate) fn minmax_colors<const LANES: usize>(colors: &[Color]) -> (Color, Color) {
    #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
    {
        return sse2::minmax_colors(colors);
    }
    #[allow(unreachable_code)]
    minmax_colors_portable::<LANES>(colors)
}

/// The portable lane-accumulator Minmax kernel (see module docs).
#[inline(always)]
fn minmax_colors_portable<const LANES: usize>(colors: &[Color]) -> (Color, Color) {
    let mut mn = [[f32::INFINITY; 3]; LANES];
    let mut mx = [[f32::NEG_INFINITY; 3]; LANES];
    let mut chunks = colors.chunks_exact(LANES);
    for chunk in &mut chunks {
        // Flat 3·LANES elementwise min/max — no loop-carried dependency
        // between lanes, so this compiles to packed min/max.
        for (acc, &v) in mn.as_flattened_mut().iter_mut().zip(chunk.as_flattened()) {
            *acc = acc.min(v);
        }
        for (acc, &v) in mx.as_flattened_mut().iter_mut().zip(chunk.as_flattened()) {
            *acc = acc.max(v);
        }
    }
    let mut out_mn = [f32::INFINITY; 3];
    let mut out_mx = [f32::NEG_INFINITY; 3];
    for k in 0..LANES {
        for ch in 0..3 {
            out_mn[ch] = out_mn[ch].min(mn[k][ch]);
            out_mx[ch] = out_mx[ch].max(mx[k][ch]);
        }
    }
    for c in chunks.remainder() {
        for ch in 0..3 {
            out_mn[ch] = out_mn[ch].min(c[ch]);
            out_mx[ch] = out_mx[ch].max(c[ch]);
        }
    }
    (out_mn, out_mx)
}

/// Maximum stencil value, `LANES` bytes per step.
#[inline(always)]
pub(crate) fn stencil_max<const LANES: usize>(vals: &[u8]) -> u8 {
    let mut acc = [0u8; LANES];
    let mut chunks = vals.chunks_exact(LANES);
    for chunk in &mut chunks {
        for (a, &v) in acc.iter_mut().zip(chunk) {
            *a = (*a).max(v);
        }
    }
    let mut m = acc.iter().copied().max().unwrap_or(0);
    for &v in chunks.remainder() {
        m = m.max(v);
    }
    m
}

/// Number of stencil values ≥ `min`, `LANES` bytes per step — the
/// fragment-counting readback behind the area-of-overlap aggregation.
/// Integer addition is associative, so the lane-accumulator sum is exactly
/// the serial count at every width.
#[inline(always)]
pub(crate) fn stencil_count_ge<const LANES: usize>(vals: &[u8], min: u8) -> u64 {
    let mut acc = [0u64; LANES];
    let mut chunks = vals.chunks_exact(LANES);
    for chunk in &mut chunks {
        for (a, &v) in acc.iter_mut().zip(chunk) {
            *a += (v >= min) as u64;
        }
    }
    let mut count: u64 = acc.iter().sum();
    for &v in chunks.remainder() {
        count += (v >= min) as u64;
    }
    count
}

/// Maximum red channel over a row slice, `LANES` colors per step — the
/// per-cell reduction's inner loop. Returns `NEG_INFINITY` on an empty
/// slice; the cell fold starts at 0.0 and all colors are ≥ 0, so the
/// combined result matches the serial scan exactly.
#[inline(always)]
pub(crate) fn row_red_max<const LANES: usize>(colors: &[Color]) -> f32 {
    let mut acc = [f32::NEG_INFINITY; LANES];
    let mut chunks = colors.chunks_exact(LANES);
    for chunk in &mut chunks {
        for (a, c) in acc.iter_mut().zip(chunk) {
            *a = a.max(c[0]);
        }
    }
    let mut m = f32::NEG_INFINITY;
    for a in acc {
        m = m.max(a);
    }
    for c in chunks.remainder() {
        m = m.max(c[0]);
    }
    m
}

/// `acc[i][ch] += src[i][ch]` — the accumulation-buffer add, as a flat
/// elementwise map.
#[inline(always)]
pub(crate) fn add_assign(acc: &mut [Color], src: &[Color]) {
    for (a, &c) in acc.as_flattened_mut().iter_mut().zip(src.as_flattened()) {
        *a += c;
    }
}

/// `dst[i][ch] = src[i][ch].clamp(0, 1)` — the accumulation return, as a
/// flat elementwise map.
#[inline(always)]
pub(crate) fn copy_clamped(dst: &mut [Color], src: &[Color]) {
    for (d, &s) in dst.as_flattened_mut().iter_mut().zip(src.as_flattened()) {
        *d = s.clamp(0.0, 1.0);
    }
}

#[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
mod sse2 {
    //! Explicit SSE2 kernels. SSE2 is part of the x86_64 baseline, so the
    //! intrinsics are always available — no runtime feature detection.

    use super::Color;
    use core::arch::x86_64::{
        __m128, _mm_loadu_ps, _mm_max_ps, _mm_min_ps, _mm_set1_ps, _mm_storeu_ps,
    };

    /// 4-wide min/max over the flattened channel stream. Steps by 12
    /// floats — lcm(4 lanes, 3 channels) — so each vector position always
    /// holds the same channel (`position mod 3`), making the final fold a
    /// static lane→channel mapping. `min_ps`/`max_ps` are exact for the
    /// non-NaN inputs that reach this kernel, so the result is the same
    /// set of values the portable reduction produces.
    pub(super) fn minmax_colors(colors: &[Color]) -> (Color, Color) {
        let flat = colors.as_flattened();
        let mut mn = [f32::INFINITY; 3];
        let mut mx = [f32::NEG_INFINITY; 3];
        let mut chunks = flat.chunks_exact(12);
        // SAFETY: SSE2 is unconditionally available on x86_64, and every
        // unaligned load reads 4 floats inside the current 12-float chunk.
        unsafe {
            let mut vmn: [__m128; 3] = [_mm_set1_ps(f32::INFINITY); 3];
            let mut vmx: [__m128; 3] = [_mm_set1_ps(f32::NEG_INFINITY); 3];
            for chunk in &mut chunks {
                for v in 0..3 {
                    let x = _mm_loadu_ps(chunk.as_ptr().add(v * 4));
                    vmn[v] = _mm_min_ps(vmn[v], x);
                    vmx[v] = _mm_max_ps(vmx[v], x);
                }
            }
            for v in 0..3 {
                let mut mn_l = [0f32; 4];
                let mut mx_l = [0f32; 4];
                _mm_storeu_ps(mn_l.as_mut_ptr(), vmn[v]);
                _mm_storeu_ps(mx_l.as_mut_ptr(), vmx[v]);
                for lane in 0..4 {
                    let ch = (v * 4 + lane) % 3;
                    mn[ch] = mn[ch].min(mn_l[lane]);
                    mx[ch] = mx[ch].max(mx_l[lane]);
                }
            }
        }
        // 12 divides evenly into channels, so remainder element `i` is
        // channel `i mod 3`.
        for (i, &x) in chunks.remainder().iter().enumerate() {
            let ch = i % 3;
            mn[ch] = mn[ch].min(x);
            mx[ch] = mx[ch].max(x);
        }
        (mn, mx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic pseudo-random color soup (no external RNG).
    fn soup(n: usize) -> Vec<Color> {
        let mut state = 0x9e37u32;
        (0..n)
            .map(|_| {
                let mut c = [0f32; 3];
                for ch in &mut c {
                    state = state.wrapping_mul(48271).wrapping_add(11);
                    *ch = (state >> 16) as f32 / 65536.0;
                }
                c
            })
            .collect()
    }

    fn serial_minmax(colors: &[Color]) -> (Color, Color) {
        let mut mn = [f32::INFINITY; 3];
        let mut mx = [f32::NEG_INFINITY; 3];
        for c in colors {
            for ch in 0..3 {
                mn[ch] = mn[ch].min(c[ch]);
                mx[ch] = mx[ch].max(c[ch]);
            }
        }
        (mn, mx)
    }

    #[test]
    fn minmax_lane_widths_agree_with_serial() {
        // Sizes straddling every chunk boundary for LANES ∈ {1, 4, 8}.
        for n in [0, 1, 2, 3, 4, 7, 8, 9, 15, 16, 17, 64, 100] {
            let colors = soup(n);
            let expect = serial_minmax(&colors);
            assert_eq!(minmax_colors::<1>(&colors), expect, "n={n} lanes=1");
            assert_eq!(minmax_colors::<4>(&colors), expect, "n={n} lanes=4");
            assert_eq!(minmax_colors::<8>(&colors), expect, "n={n} lanes=8");
            assert_eq!(
                minmax_colors_portable::<8>(&colors),
                expect,
                "portable n={n}"
            );
        }
    }

    #[test]
    fn stencil_max_lane_widths_agree() {
        let vals: Vec<u8> = (0..97u32)
            .map(|i| (i.wrapping_mul(131) % 251) as u8)
            .collect();
        let expect = vals.iter().copied().max().unwrap();
        assert_eq!(stencil_max::<1>(&vals), expect);
        assert_eq!(stencil_max::<8>(&vals), expect);
        assert_eq!(stencil_max::<16>(&vals), expect);
        assert_eq!(stencil_max::<8>(&[]), 0);
    }

    #[test]
    fn stencil_count_lane_widths_agree() {
        let vals: Vec<u8> = (0..103u32)
            .map(|i| (i.wrapping_mul(197) % 5) as u8)
            .collect();
        for min in 0..4u8 {
            let expect = vals.iter().filter(|&&v| v >= min).count() as u64;
            assert_eq!(stencil_count_ge::<1>(&vals, min), expect, "min={min}");
            assert_eq!(stencil_count_ge::<8>(&vals, min), expect, "min={min}");
            assert_eq!(stencil_count_ge::<16>(&vals, min), expect, "min={min}");
        }
        assert_eq!(stencil_count_ge::<8>(&[], 2), 0);
    }

    #[test]
    fn row_red_max_lane_widths_agree() {
        for n in [0usize, 1, 5, 8, 13, 40] {
            let colors = soup(n);
            let expect = colors.iter().fold(f32::NEG_INFINITY, |m, c| m.max(c[0]));
            assert_eq!(row_red_max::<1>(&colors), expect, "n={n}");
            assert_eq!(row_red_max::<8>(&colors), expect, "n={n}");
        }
    }

    #[test]
    fn elementwise_maps_match_scalar_ops() {
        let src = soup(37);
        let mut acc = soup(37);
        let mut expect = acc.clone();
        add_assign(&mut acc, &src);
        for (a, c) in expect.iter_mut().zip(&src) {
            for ch in 0..3 {
                a[ch] += c[ch];
            }
        }
        assert_eq!(acc, expect);

        let mut dst = vec![[0f32; 3]; 37];
        copy_clamped(&mut dst, &acc);
        for (d, a) in dst.iter().zip(&acc) {
            for ch in 0..3 {
                assert_eq!(d[ch], a[ch].clamp(0.0, 1.0));
            }
        }
    }
}
