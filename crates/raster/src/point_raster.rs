//! Point rasterization (§2.2.1) — plain and wide (smooth) points.

use crate::stats::HwStats;
use spatial_geom::Point;

/// Rasterizes a point at window coordinates `p`: the window coordinates are
/// truncated and the containing pixel is emitted (if inside the window).
///
/// Matches §2.2.1 exactly: "the window coordinates are then truncated to
/// integers, and the pixel (⌊xw⌋, ⌊yw⌋) is colored" — so distinct data
/// points may land on the same pixel.
pub fn rasterize_point(
    p: Point,
    width: usize,
    height: usize,
    stats: &mut HwStats,
    sink: &mut impl FnMut(usize, usize),
) {
    stats.fragments_tested += 1;
    let x = p.x.floor();
    let y = p.y.floor();
    if x >= 0.0 && y >= 0.0 && (x as usize) < width && (y as usize) < height {
        sink(x as usize, y as usize);
    }
}

/// Rasterizes an anti-aliased ("smooth") point of diameter `size` at window
/// coordinates `p`: every pixel whose unit square intersects the disc of
/// diameter `size` centered at `p` is emitted.
///
/// The distance test widens polygon vertices with these points so that the
/// union of wide lines and wide points covers the full Minkowski expansion
/// of the boundary — the square end caps of the line rectangles miss the
/// round corners, the point discs supply them.
pub fn rasterize_wide_point(
    p: Point,
    size: f64,
    width: usize,
    height: usize,
    stats: &mut HwStats,
    sink: &mut impl FnMut(usize, usize),
) {
    rasterize_wide_point_rows(p, size, width, 0, height as i64 - 1, stats, sink)
}

/// [`rasterize_wide_point`] restricted to scanlines `row_lo..=row_hi`
/// (inclusive). Absolute coordinates, clipped candidate loop — row bands
/// partition the full window's fragments exactly (see
/// [`crate::aa_line::rasterize_aa_line_rows`]).
#[inline]
pub fn rasterize_wide_point_rows(
    p: Point,
    size: f64,
    width: usize,
    row_lo: i64,
    row_hi: i64,
    stats: &mut HwStats,
    sink: &mut impl FnMut(usize, usize),
) {
    let Some(cov) = WidePointCover::new(p, size, width, row_lo, row_hi) else {
        return;
    };
    for j in cov.rows() {
        stats.fragments_tested += cov.cover_row::<1>(j, &mut |x| sink(x, j as usize));
    }
}

/// The span-oriented entry point of the smooth-point rasterizer: the hoisted
/// per-point setup (disc radius and candidate ranges), from which any
/// executor drives the per-scanline disc test at its own lane width.
/// [`rasterize_wide_point_rows`] is `cover_row::<1>` over every row; the
/// SIMD device runs `cover_row::<8>` — the per-pixel math is identical
/// expression-for-expression, so every lane width emits the same fragments.
#[derive(Debug, Clone, Copy)]
pub struct WidePointCover {
    x_lo: i64,
    x_hi: i64,
    y_lo: i64,
    y_hi: i64,
    px: f64,
    py: f64,
    r2: f64,
}

impl WidePointCover {
    /// Coverage setup for the diameter-`size` disc at `p` over the window
    /// columns `0..width` and scanlines `row_lo..=row_hi` (absolute window
    /// coordinates). `None` when the clipped candidate range is empty.
    pub fn new(p: Point, size: f64, width: usize, row_lo: i64, row_hi: i64) -> Option<Self> {
        debug_assert!(size > 0.0);
        let r = size / 2.0;
        let x_lo = ((p.x - r).floor() as i64).max(0);
        let x_hi = ((p.x + r).floor() as i64).min(width as i64 - 1);
        let y_lo = ((p.y - r).floor() as i64).max(row_lo.max(0));
        let y_hi = ((p.y + r).floor() as i64).min(row_hi);
        if x_lo > x_hi || y_lo > y_hi {
            return None;
        }
        Some(WidePointCover {
            x_lo,
            x_hi,
            y_lo,
            y_hi,
            px: p.x,
            py: p.y,
            r2: r * r,
        })
    }

    /// The candidate scanlines (inclusive, absolute window coordinates).
    #[inline]
    pub fn rows(&self) -> std::ops::RangeInclusive<i64> {
        self.y_lo..=self.y_hi
    }

    /// Runs the disc test over scanline `j`'s candidate pixels, `LANES`
    /// pixels per step, calling `emit(x)` for every covered column in
    /// ascending order; returns the number of fragments tested (the
    /// candidate count, identical at every lane width). `LANES = 1` is the
    /// scalar fallback and shares this exact code.
    /// `#[inline(always)]` so the band replay's AVX2 instantiation
    /// recompiles this loop with 256-bit registers (see
    /// [`crate::aa_line::AaLineCover::cover_row`]).
    #[inline(always)]
    pub fn cover_row<const LANES: usize>(&self, j: i64, emit: &mut impl FnMut(usize)) -> usize {
        debug_assert!(LANES > 0 && self.rows().contains(&j));
        // Closest point of the pixel square to the disc center; the y term
        // is constant along a scanline, hoisting it repeats the identical
        // multiplication so the sum stays bit-identical to the scalar path.
        let cy = self.py.clamp(j as f64, j as f64 + 1.0);
        let dy = cy - self.py;
        let dy2 = dy * dy;
        // One scalar i64 → f64 conversion per chunk (baseline x86-64 has no
        // packed form); `i as f64 + k as f64` equals `(i + k) as f64`
        // bit-exactly for in-window columns, so lanes match the scalar tail.
        let offs: [f64; LANES] = std::array::from_fn(|k| k as f64);
        let mut i = self.x_lo;
        while i + LANES as i64 - 1 <= self.x_hi {
            let base = i as f64;
            let mut keep = [false; LANES];
            for (keep, off) in keep.iter_mut().zip(offs) {
                let x = base + off;
                let cx = self.px.clamp(x, x + 1.0);
                let dx = cx - self.px;
                *keep = dx * dx + dy2 <= self.r2;
            }
            if keep != [false; LANES] {
                for (k, &keep) in keep.iter().enumerate() {
                    if keep {
                        emit(i as usize + k);
                    }
                }
            }
            i += LANES as i64;
        }
        while i <= self.x_hi {
            let x = i as f64;
            let cx = self.px.clamp(x, x + 1.0);
            let dx = cx - self.px;
            if dx * dx + dy2 <= self.r2 {
                emit(i as usize);
            }
            i += 1;
        }
        (self.x_hi - self.x_lo + 1) as usize
    }

    /// Locates scanline `j`'s covered pixels as one contiguous column span,
    /// returning `(fragments_tested, Some((first, last)))` — window column
    /// indices, inclusive — or `None` when the row is empty.
    ///
    /// Along a scanline `dx = clamp(px, x, x+1) - px` is a rounded monotone
    /// map of `x`, so `dx² + dy²` is V-shaped (decreasing, then increasing)
    /// and the disc test holds on a single contiguous interval. The
    /// endpoint search reuses the exact per-pixel expressions of
    /// [`WidePointCover::cover_row`], so the span is exactly the set of
    /// pixels that method emits (see
    /// [`crate::aa_line::AaLineCover::cover_row_span`]).
    #[inline(always)]
    pub fn cover_row_span<const LANES: usize>(&self, j: i64) -> (usize, Option<(usize, usize)>) {
        debug_assert!(LANES > 0 && self.rows().contains(&j));
        let dy2 = self.row_dy2(j);
        let offs: [f64; LANES] = std::array::from_fn(|k| k as f64);
        let candidates = (self.x_hi - self.x_lo + 1) as usize;
        let span = crate::aa_line::find_covered_span::<LANES>(
            self.x_lo,
            self.x_hi,
            |i| self.keep_chunk::<LANES>(dy2, &offs, i),
            |i| self.keep_at(dy2, i),
        );
        (candidates, span)
    }

    /// Emits every scanline's covered span — `emit(j, first, last)`, window
    /// coordinates, inclusive — and returns the total fragments tested.
    /// The point-disc twin of [`crate::aa_line::AaLineCover::cover_spans`],
    /// seeding each row's endpoint search with the previous row's interval.
    #[inline(always)]
    pub fn cover_spans<const LANES: usize>(
        &self,
        mut emit: impl FnMut(i64, usize, usize),
    ) -> usize {
        let offs: [f64; LANES] = std::array::from_fn(|k| k as f64);
        let candidates = (self.x_hi - self.x_lo + 1) as usize;
        let mut tracker = crate::aa_line::SpanTracker::new(self.x_lo);
        let mut frags = 0usize;
        for j in self.rows() {
            let dy2 = self.row_dy2(j);
            frags += candidates;
            if let Some((lo, hi)) = tracker.row_span::<LANES>(
                self.x_lo,
                self.x_hi,
                |i| self.keep_chunk::<LANES>(dy2, &offs, i),
                |i| self.keep_at(dy2, i),
            ) {
                emit(j, lo, hi);
            }
        }
        frags
    }

    /// The scanline-constant term of the disc test: the squared vertical
    /// distance from the disc center to row `j`'s pixel squares.
    #[inline(always)]
    fn row_dy2(&self, j: i64) -> f64 {
        let cy = self.py.clamp(j as f64, j as f64 + 1.0);
        let dy = cy - self.py;
        dy * dy
    }

    /// The chunk-wide disc verdicts starting at column `i` — the same
    /// expressions as [`WidePointCover::cover_row`]'s lane body.
    #[inline(always)]
    fn keep_chunk<const LANES: usize>(
        &self,
        dy2: f64,
        offs: &[f64; LANES],
        i: i64,
    ) -> [bool; LANES] {
        let base = i as f64;
        let mut keep = [false; LANES];
        for (keep, off) in keep.iter_mut().zip(offs) {
            let x = base + off;
            let cx = self.px.clamp(x, x + 1.0);
            let dx = cx - self.px;
            *keep = dx * dx + dy2 <= self.r2;
        }
        keep
    }

    /// One column's disc verdict — the same expressions as
    /// [`WidePointCover::cover_row`]'s scalar remainder.
    #[inline(always)]
    fn keep_at(&self, dy2: f64, i: i64) -> bool {
        let x = i as f64;
        let cx = self.px.clamp(x, x + 1.0);
        let dx = cx - self.px;
        dx * dx + dy2 <= self.r2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_point(p: Point, w: usize, h: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut st = HwStats::default();
        rasterize_point(p, w, h, &mut st, &mut |x, y| out.push((x, y)));
        out
    }

    fn collect_wide(p: Point, size: f64, w: usize, h: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut st = HwStats::default();
        rasterize_wide_point(p, size, w, h, &mut st, &mut |x, y| out.push((x, y)));
        out.sort_unstable();
        out
    }

    #[test]
    fn truncation_rule_from_figure_3b() {
        // Both (1.1, 1.1) and (1.9, 1.9) color the center pixel of a 3×3
        // window — the paper's Figure 3(b).
        assert_eq!(collect_point(Point::new(1.1, 1.1), 3, 3), vec![(1, 1)]);
        assert_eq!(collect_point(Point::new(1.9, 1.9), 3, 3), vec![(1, 1)]);
    }

    #[test]
    fn outside_window_is_clipped() {
        assert!(collect_point(Point::new(-0.1, 1.0), 3, 3).is_empty());
        assert!(collect_point(Point::new(3.0, 1.0), 3, 3).is_empty());
        assert!(collect_point(Point::new(1.0, 5.0), 3, 3).is_empty());
    }

    #[test]
    fn wide_point_covers_disc() {
        // Diameter 2 disc centered mid-pixel (2.5, 2.5) reaches into all
        // four-neighbours but not the diagonal-only corners at distance
        // > 1 from the disc.
        let px = collect_wide(Point::new(2.5, 2.5), 2.0, 6, 6);
        assert!(px.contains(&(2, 2)));
        assert!(px.contains(&(1, 2)));
        assert!(px.contains(&(3, 2)));
        assert!(px.contains(&(2, 1)));
        assert!(px.contains(&(2, 3)));
        // Corner pixel (1,1): its nearest square point (2,2) is at distance
        // sqrt(0.5) < 1, so the conservative coverage includes it.
        assert!(px.contains(&(1, 1)));
        // (0,0) is far outside.
        assert!(!px.contains(&(0, 0)));
    }

    #[test]
    fn wide_point_at_corner_is_clipped() {
        let px = collect_wide(Point::new(0.0, 0.0), 4.0, 3, 3);
        assert!(px.contains(&(0, 0)));
        assert!(px.iter().all(|&(x, y)| x < 3 && y < 3));
    }

    #[test]
    fn tiny_point_covers_containing_pixel() {
        let px = collect_wide(Point::new(1.5, 1.5), 0.1, 3, 3);
        assert_eq!(px, vec![(1, 1)]);
    }

    /// The disc span kernels must reproduce `cover_row`'s emitted set
    /// exactly, at every lane width, including the coherent tracker.
    #[test]
    fn span_kernels_match_per_pixel_coverage() {
        let cases = [
            (Point::new(2.5, 2.5), 2.0),
            (Point::new(0.0, 0.0), 4.0),
            (Point::new(3.3, 2.7), 3.0),
            (Point::new(1.5, 1.5), 0.1),
            (Point::new(7.9, 0.2), 5.5),
            (Point::new(4.0, 4.0), 7.9),
        ];
        for (p, size) in cases {
            let Some(cov) = WidePointCover::new(p, size, 8, 0, 7) else {
                continue;
            };
            let mut spans: Vec<(i64, usize, usize)> = Vec::new();
            let tracked = cov.cover_spans::<4>(|j, lo, hi| spans.push((j, lo, hi)));
            let mut frags = 0usize;
            for j in cov.rows() {
                let mut px: Vec<usize> = Vec::new();
                let row_cands = cov.cover_row::<1>(j, &mut |x| px.push(x));
                frags += row_cands;
                let expect = px.first().map(|&lo| (lo, *px.last().unwrap()));
                if let Some((lo, hi)) = expect {
                    assert_eq!(px, (lo..=hi).collect::<Vec<_>>(), "row {j} not contiguous");
                }
                for (cands, span) in [cov.cover_row_span::<1>(j), cov.cover_row_span::<4>(j)] {
                    assert_eq!(cands, row_cands, "candidate count diverges at p={p}");
                    assert_eq!(span, expect, "p={p} size={size} row {j}");
                }
                let tracked_row = spans.iter().find(|&&(tj, _, _)| tj == j);
                assert_eq!(
                    tracked_row.map(|&(_, lo, hi)| (lo, hi)),
                    expect,
                    "tracked span diverges at p={p} size={size} row {j}"
                );
            }
            assert_eq!(tracked, frags, "fragments tested diverge at p={p}");
        }
    }

    #[test]
    fn wide_point_covers_minkowski_disc() {
        // Every sample point within r of the center must land in an emitted
        // pixel (the conservativeness the distance test relies on).
        let c = Point::new(3.3, 2.7);
        let size = 3.0;
        let px = collect_wide(c, size, 8, 8);
        for k in 0..64 {
            let ang = k as f64 * std::f64::consts::TAU / 64.0;
            for &f in &[0.0, 0.5, 0.99] {
                let q = Point::new(
                    c.x + f * size / 2.0 * ang.cos(),
                    c.y + f * size / 2.0 * ang.sin(),
                );
                let cell = (q.x.floor() as usize, q.y.floor() as usize);
                assert!(px.contains(&cell), "sample {q} in pixel {cell:?} missing");
            }
        }
    }
}
