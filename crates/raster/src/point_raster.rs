//! Point rasterization (§2.2.1) — plain and wide (smooth) points.

use crate::stats::HwStats;
use spatial_geom::Point;

/// Rasterizes a point at window coordinates `p`: the window coordinates are
/// truncated and the containing pixel is emitted (if inside the window).
///
/// Matches §2.2.1 exactly: "the window coordinates are then truncated to
/// integers, and the pixel (⌊xw⌋, ⌊yw⌋) is colored" — so distinct data
/// points may land on the same pixel.
pub fn rasterize_point(
    p: Point,
    width: usize,
    height: usize,
    stats: &mut HwStats,
    sink: &mut impl FnMut(usize, usize),
) {
    stats.fragments_tested += 1;
    let x = p.x.floor();
    let y = p.y.floor();
    if x >= 0.0 && y >= 0.0 && (x as usize) < width && (y as usize) < height {
        sink(x as usize, y as usize);
    }
}

/// Rasterizes an anti-aliased ("smooth") point of diameter `size` at window
/// coordinates `p`: every pixel whose unit square intersects the disc of
/// diameter `size` centered at `p` is emitted.
///
/// The distance test widens polygon vertices with these points so that the
/// union of wide lines and wide points covers the full Minkowski expansion
/// of the boundary — the square end caps of the line rectangles miss the
/// round corners, the point discs supply them.
pub fn rasterize_wide_point(
    p: Point,
    size: f64,
    width: usize,
    height: usize,
    stats: &mut HwStats,
    sink: &mut impl FnMut(usize, usize),
) {
    rasterize_wide_point_rows(p, size, width, 0, height as i64 - 1, stats, sink)
}

/// [`rasterize_wide_point`] restricted to scanlines `row_lo..=row_hi`
/// (inclusive). Absolute coordinates, clipped candidate loop — row bands
/// partition the full window's fragments exactly (see
/// [`crate::aa_line::rasterize_aa_line_rows`]).
#[inline]
pub fn rasterize_wide_point_rows(
    p: Point,
    size: f64,
    width: usize,
    row_lo: i64,
    row_hi: i64,
    stats: &mut HwStats,
    sink: &mut impl FnMut(usize, usize),
) {
    debug_assert!(size > 0.0);
    let r = size / 2.0;
    let r2 = r * r;
    let x_lo = ((p.x - r).floor() as i64).max(0);
    let x_hi = ((p.x + r).floor() as i64).min(width as i64 - 1);
    let y_lo = ((p.y - r).floor() as i64).max(row_lo.max(0));
    let y_hi = ((p.y + r).floor() as i64).min(row_hi);
    for j in y_lo..=y_hi {
        for i in x_lo..=x_hi {
            stats.fragments_tested += 1;
            // Closest point of the pixel square to the disc center.
            let cx = p.x.clamp(i as f64, i as f64 + 1.0);
            let cy = p.y.clamp(j as f64, j as f64 + 1.0);
            let dx = cx - p.x;
            let dy = cy - p.y;
            if dx * dx + dy * dy <= r2 {
                sink(i as usize, j as usize);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_point(p: Point, w: usize, h: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut st = HwStats::default();
        rasterize_point(p, w, h, &mut st, &mut |x, y| out.push((x, y)));
        out
    }

    fn collect_wide(p: Point, size: f64, w: usize, h: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut st = HwStats::default();
        rasterize_wide_point(p, size, w, h, &mut st, &mut |x, y| out.push((x, y)));
        out.sort_unstable();
        out
    }

    #[test]
    fn truncation_rule_from_figure_3b() {
        // Both (1.1, 1.1) and (1.9, 1.9) color the center pixel of a 3×3
        // window — the paper's Figure 3(b).
        assert_eq!(collect_point(Point::new(1.1, 1.1), 3, 3), vec![(1, 1)]);
        assert_eq!(collect_point(Point::new(1.9, 1.9), 3, 3), vec![(1, 1)]);
    }

    #[test]
    fn outside_window_is_clipped() {
        assert!(collect_point(Point::new(-0.1, 1.0), 3, 3).is_empty());
        assert!(collect_point(Point::new(3.0, 1.0), 3, 3).is_empty());
        assert!(collect_point(Point::new(1.0, 5.0), 3, 3).is_empty());
    }

    #[test]
    fn wide_point_covers_disc() {
        // Diameter 2 disc centered mid-pixel (2.5, 2.5) reaches into all
        // four-neighbours but not the diagonal-only corners at distance
        // > 1 from the disc.
        let px = collect_wide(Point::new(2.5, 2.5), 2.0, 6, 6);
        assert!(px.contains(&(2, 2)));
        assert!(px.contains(&(1, 2)));
        assert!(px.contains(&(3, 2)));
        assert!(px.contains(&(2, 1)));
        assert!(px.contains(&(2, 3)));
        // Corner pixel (1,1): its nearest square point (2,2) is at distance
        // sqrt(0.5) < 1, so the conservative coverage includes it.
        assert!(px.contains(&(1, 1)));
        // (0,0) is far outside.
        assert!(!px.contains(&(0, 0)));
    }

    #[test]
    fn wide_point_at_corner_is_clipped() {
        let px = collect_wide(Point::new(0.0, 0.0), 4.0, 3, 3);
        assert!(px.contains(&(0, 0)));
        assert!(px.iter().all(|&(x, y)| x < 3 && y < 3));
    }

    #[test]
    fn tiny_point_covers_containing_pixel() {
        let px = collect_wide(Point::new(1.5, 1.5), 0.1, 3, 3);
        assert_eq!(px, vec![(1, 1)]);
    }

    #[test]
    fn wide_point_covers_minkowski_disc() {
        // Every sample point within r of the center must land in an emitted
        // pixel (the conservativeness the distance test relies on).
        let c = Point::new(3.3, 2.7);
        let size = 3.0;
        let px = collect_wide(c, size, 8, 8);
        for k in 0..64 {
            let ang = k as f64 * std::f64::consts::TAU / 64.0;
            for &f in &[0.0, 0.5, 0.99] {
                let q = Point::new(
                    c.x + f * size / 2.0 * ang.cos(),
                    c.y + f * size / 2.0 * ang.sin(),
                );
                let cell = (q.x.floor() as usize, q.y.floor() as usize);
                assert!(px.contains(&cell), "sample {q} in pixel {cell:?} missing");
            }
        }
    }
}
