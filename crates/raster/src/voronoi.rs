//! Hardware-computed (generalized) Voronoi fields — the §5 future-work
//! item: "we also plan to explore other spatial operations such as nearest
//! neighbor queries using hardware calculated Voronoi diagrams \[12\]".
//!
//! Hoff et al. (reference 12 of the paper) render one distance *cone* per point site (one *tent*
//! per edge) into the depth buffer with the site id as color; the depth
//! test leaves each pixel holding the id of its nearest site and the
//! distance to it. We simulate exactly that: for every site primitive,
//! every pixel evaluates its distance and the depth test keeps the
//! minimum — the same O(sites × pixels) fill work the GPU performs, billed
//! through the fragment counter.
//!
//! The field is *approximate* (pixel-center sampling), so exact queries
//! refine through the R-tree — see `hwa_core::nn`.

use crate::stats::HwStats;
use crate::viewport::Viewport;
use spatial_geom::{Point, Segment};

/// A rendered distance/ownership field over a window.
#[derive(Debug, Clone)]
pub struct VoronoiField {
    width: usize,
    height: usize,
    viewport: Viewport,
    /// Per pixel: id of the nearest site (u32::MAX where nothing rendered).
    nearest: Vec<u32>,
    /// Per pixel: distance (in *data* units) to that site.
    depth: Vec<f64>,
}

impl VoronoiField {
    /// An empty (far-plane) field over the viewport's window.
    pub fn new(viewport: Viewport) -> Self {
        let (w, h) = (viewport.width(), viewport.height());
        VoronoiField {
            width: w,
            height: h,
            viewport,
            nearest: vec![u32::MAX; w * h],
            depth: vec![f64::INFINITY; w * h],
        }
    }

    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Renders one site consisting of point and segment primitives (a
    /// polygon boundary is one site made of its edges). Every pixel tests
    /// its distance against the site (the cone/tent evaluation) and the
    /// depth test keeps the minimum.
    pub fn render_site(&mut self, id: u32, segments: &[Segment], stats: &mut HwStats) {
        debug_assert_ne!(id, u32::MAX, "u32::MAX is the empty-pixel sentinel");
        stats.draw_calls += 1;
        stats.primitives += segments.len();
        // The site's MBR gives an O(1) lower bound on any pixel's distance
        // to it; pixels whose current depth already beats that bound skip
        // the cone evaluation entirely — this is the early-z rejection a
        // real depth-tested cone render performs, so the fragment counter
        // still bills the test.
        let site_mbr = segments
            .iter()
            .fold(spatial_geom::Rect::EMPTY, |r, s| r.union(&s.mbr()));
        for j in 0..self.height {
            for i in 0..self.width {
                stats.fragments_tested += 1;
                let center = self.data_point(i, j);
                let idx = j * self.width + i;
                if site_mbr.min_dist_point(center) >= self.depth[idx] {
                    continue; // early-z: cannot win this pixel
                }
                let mut d = f64::INFINITY;
                for s in segments {
                    d = d.min(s.dist_point(center));
                    if d == 0.0 {
                        break;
                    }
                }
                if d < self.depth[idx] {
                    self.depth[idx] = d;
                    self.nearest[idx] = id;
                    stats.pixels_written += 1;
                }
            }
        }
    }

    /// The data-space location of a pixel center.
    fn data_point(&self, i: usize, j: usize) -> Point {
        let r = self.viewport.region();
        Point::new(
            r.xmin + (i as f64 + 0.5) / self.viewport.scale_x(),
            r.ymin + (j as f64 + 0.5) / self.viewport.scale_y(),
        )
    }

    /// Looks up the field at a data-space point: `(site id, distance from
    /// the *pixel center* to that site)`. `None` outside the window or on
    /// never-written pixels.
    pub fn lookup(&self, p: Point) -> Option<(u32, f64)> {
        let w = self.viewport.to_window(p);
        if w.x < 0.0 || w.y < 0.0 {
            return None;
        }
        let (i, j) = (w.x.floor() as usize, w.y.floor() as usize);
        if i >= self.width || j >= self.height {
            return None;
        }
        let idx = j * self.width + i;
        if self.nearest[idx] == u32::MAX {
            return None;
        }
        Some((self.nearest[idx], self.depth[idx]))
    }

    /// Upper bound on how far a point inside a pixel can be from its pixel
    /// center, in data units — the field's discretization error: the true
    /// nearest site of `p` is within `lookup(p).1 + 2 * cell_radius()` of
    /// `p` (one hop from `p` to its pixel center, one back).
    pub fn cell_radius(&self) -> f64 {
        let dx = 0.5 / self.viewport.scale_x();
        let dy = 0.5 / self.viewport.scale_y();
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_geom::Rect;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    fn field_with_two_sites() -> VoronoiField {
        let vp = Viewport::new(Rect::new(0.0, 0.0, 32.0, 32.0), 32, 32);
        let mut f = VoronoiField::new(vp);
        let mut st = HwStats::default();
        // Site 0: left vertical wall; site 1: right vertical wall.
        f.render_site(0, &[seg(2.0, 0.0, 2.0, 32.0)], &mut st);
        f.render_site(1, &[seg(30.0, 0.0, 30.0, 32.0)], &mut st);
        f
    }

    #[test]
    fn ownership_splits_at_the_bisector() {
        let f = field_with_two_sites();
        let (left, _) = f.lookup(Point::new(5.0, 16.0)).unwrap();
        let (right, _) = f.lookup(Point::new(28.0, 16.0)).unwrap();
        assert_eq!(left, 0);
        assert_eq!(right, 1);
    }

    #[test]
    fn depth_is_distance_to_nearest_site() {
        let f = field_with_two_sites();
        let (_, d) = f.lookup(Point::new(6.5, 16.5)).unwrap();
        // Pixel center (6.5, 16.5); distance to x = 2 wall is 4.5.
        assert!((d - 4.5).abs() < 1e-12, "{d}");
    }

    #[test]
    fn lookup_outside_window_is_none() {
        let f = field_with_two_sites();
        assert!(f.lookup(Point::new(-1.0, 5.0)).is_none());
        assert!(f.lookup(Point::new(33.0, 5.0)).is_none());
    }

    #[test]
    fn empty_field_yields_none() {
        let vp = Viewport::new(Rect::new(0.0, 0.0, 8.0, 8.0), 8, 8);
        let f = VoronoiField::new(vp);
        assert!(f.lookup(Point::new(4.0, 4.0)).is_none());
    }

    #[test]
    fn cell_radius_bounds_discretization() {
        let vp = Viewport::new(Rect::new(0.0, 0.0, 32.0, 32.0), 32, 32);
        let f = VoronoiField::new(vp);
        // 1-unit pixels: half-diagonal = sqrt(2)/2.
        assert!((f.cell_radius() - std::f64::consts::SQRT_2 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn stats_count_fill_work() {
        let vp = Viewport::new(Rect::new(0.0, 0.0, 8.0, 8.0), 8, 8);
        let mut f = VoronoiField::new(vp);
        let mut st = HwStats::default();
        f.render_site(0, &[seg(0.0, 0.0, 8.0, 8.0)], &mut st);
        assert_eq!(st.fragments_tested, 64, "every pixel evaluates the cone");
        assert_eq!(st.pixels_written, 64, "first site wins everywhere");
        f.render_site(1, &[seg(100.0, 100.0, 101.0, 101.0)], &mut st);
        assert_eq!(st.fragments_tested, 128);
        assert_eq!(st.pixels_written, 64, "far site loses every depth test");
    }
}
