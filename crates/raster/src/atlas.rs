//! Batched hardware submission: many segment-overlap tests rendered into
//! one frame buffer as a grid of cells ("texture atlas" style), sharing
//! the per-submission fixed costs.
//!
//! The per-pair choreography (Algorithm 3.1) pays two draw calls and one
//! Minmax query per candidate pair — fixed costs that dominate at small
//! window resolutions (§4.3: the 8×8 window's cost is almost entirely
//! submission overhead). A batch of `k` pairs rendered as `k` cells of one
//! window needs **two draw calls and one Minmax scan for the whole batch**:
//! all first-polygon boundaries in one submission, one whole-buffer
//! accumulation round, all second-polygon boundaries in a second
//! submission, then a single scan that reduces each cell to its own max.
//!
//! Exactness is inherited, not re-proved: every cell is rasterized through
//! its **own cell-local window** — the same `res × res` coordinate system
//! the per-pair test uses — and fragments are scissored to that cell, so
//! the pixels colored inside a cell are *bit-identical* to the per-pair
//! rendering of the same pair. A cell's max therefore equals the per-pair
//! max, and the batched test returns exactly the per-pair booleans. Cells
//! are additionally separated by a gutter at least as wide as the line
//! footprint's bleed radius (`width/2 + 1`), so even geometry drawn at the
//! very edge of a cell cannot reach a neighbouring cell's pixels.
//!
//! Cost accounting stays honest both ways: per-primitive and per-fragment
//! work is identical to the per-pair path (same windows, same rasterizer),
//! while the whole-buffer operations (clears, accumulation, the scan) are
//! charged over the *atlas* area — which includes the gutters, so batching
//! pays a real per-pixel overhead in exchange for the amortized fixed
//! costs. All counters are a pure function of the batch contents, never of
//! which thread or in which order batches run.

use crate::context::PixelRect;
use crate::device::{CommandList, RasterDevice, Recorder, ReferenceDevice};
use crate::framebuffer::HALF_GRAY;
use crate::stats::HwStats;
use crate::viewport::Viewport;
use spatial_geom::{Point, Segment};

/// One candidate pair's rendering work within a batch.
#[derive(Debug, Clone)]
pub struct AtlasJob {
    /// Cell-local projection: data space onto a `cell × cell` window. Must
    /// match the atlas cell resolution.
    pub viewport: Viewport,
    /// First boundary: wide anti-aliased segments plus (for the distance
    /// test's Minkowski expansion) smooth vertex points. Intersection
    /// tests leave the point lists empty.
    pub first_segments: Vec<Segment>,
    pub first_points: Vec<Point>,
    /// Second boundary.
    pub second_segments: Vec<Segment>,
    pub second_points: Vec<Point>,
}

/// A reusable batched-submission context: records each batch as one
/// command list and executes it on an owned [`ReferenceDevice`], whose
/// pixel allocation is reused across same-shape batches. Thin sugar over
/// [`record_batch`] — callers that pick their own executor (e.g. a tiled
/// device) record the list themselves.
#[derive(Debug)]
pub struct AtlasContext {
    device: ReferenceDevice,
    stats: HwStats,
    cell: usize,
}

/// Geometry of one batch's grid layout.
#[derive(Debug, Clone, Copy)]
struct Layout {
    cell: usize,
    gutter: usize,
    grid: usize,
    rows: usize,
}

impl Layout {
    fn new(cell: usize, jobs: usize, max_width: f64) -> Layout {
        // Gutter ≥ the widened line's bleed radius: geometry at a cell
        // edge stays out of the neighbouring cell even without the
        // scissor. (The scissor makes this a second line of defense.)
        let gutter = (max_width / 2.0).ceil() as usize + 1;
        let grid = (jobs as f64).sqrt().ceil() as usize;
        // Only as many rows as the jobs fill: a square `grid × grid`
        // window would charge whole rows of clears/accumulation/scans for
        // cells no job occupies (5 jobs on a 3×3 grid is one empty row of
        // `pixels_scanned` over-charged).
        let rows = jobs.div_ceil(grid.max(1));
        Layout {
            cell,
            gutter,
            grid,
            rows,
        }
    }

    /// Pixel origin of cell `i` (row-major).
    fn origin(&self, i: usize) -> (usize, usize) {
        let pitch = self.cell + self.gutter;
        let (row, col) = (i / self.grid, i % self.grid);
        (self.gutter + col * pitch, self.gutter + row * pitch)
    }

    /// Atlas width in pixels (`grid` columns plus gutters).
    fn width(&self) -> usize {
        self.grid * (self.cell + self.gutter) + self.gutter
    }

    /// Atlas height in pixels — only the occupied rows, so whole-buffer
    /// operations are charged over pixels a job can actually touch.
    fn height(&self) -> usize {
        self.rows * (self.cell + self.gutter) + self.gutter
    }
}

impl AtlasContext {
    /// A context for batches of `cell_resolution × cell_resolution` tests.
    pub fn new(cell_resolution: usize) -> Self {
        assert!(cell_resolution > 0, "cells need at least one pixel");
        AtlasContext {
            device: ReferenceDevice::new(),
            stats: HwStats::default(),
            cell: cell_resolution,
        }
    }

    /// Changes the cell resolution (knob sweeps); the device's buffer
    /// regrows lazily when the atlas side changes.
    pub fn set_cell_resolution(&mut self, res: usize) {
        assert!(res > 0, "cells need at least one pixel");
        self.cell = res;
    }

    #[inline]
    pub fn cell_resolution(&self) -> usize {
        self.cell
    }

    /// Lifetime work counters (same convention as `GlContext::stats`).
    #[inline]
    pub fn stats(&self) -> HwStats {
        self.stats
    }

    /// Runs one batched accumulation round over `jobs` and returns, per
    /// job, whether the two renderings share a pixel (the Algorithm 3.1
    /// "full white found" signal). All segments are drawn at `line_width`
    /// and all points at `point_size` — callers group jobs so that one
    /// batch shares one line state, exactly as one GL draw call must.
    pub fn run_batch(&mut self, jobs: &[AtlasJob], line_width: f64, point_size: f64) -> Vec<bool> {
        if jobs.is_empty() {
            return Vec::new();
        }
        for job in jobs {
            assert_eq!(
                (job.viewport.width(), job.viewport.height()),
                (self.cell, self.cell),
                "job viewport must match the atlas cell resolution"
            );
        }
        let (list, slot) = record_batch(jobs, line_width, point_size);
        let exec = self
            .device
            .execute(&list)
            .expect("the owned reference device is infallible");
        self.stats.add(&exec.stats);
        exec.cell_max(slot)
            .expect("record_batch returns its own cell-readback slot")
            .iter()
            .map(|&m| m >= 1.0)
            .collect()
    }
}

/// Records one batched accumulation round over `jobs` as a command
/// stream; returns the list plus the readback slot of its per-cell
/// reduction (a cell's flag is `max ≥ 1.0`, the "full white found" signal
/// of Algorithm 3.1). All jobs must share one square cell resolution, and
/// `line_width`/`point_size` must respect the hardware limits — callers
/// take the software fallback before batching, exactly like the per-pair
/// path.
pub fn record_batch(jobs: &[AtlasJob], line_width: f64, point_size: f64) -> (CommandList, usize) {
    assert!(!jobs.is_empty(), "cannot record an empty batch");
    let cell = jobs[0].viewport.width();
    for job in jobs {
        assert_eq!(
            (job.viewport.width(), job.viewport.height()),
            (cell, cell),
            "all jobs must share one square cell resolution"
        );
    }
    let layout = Layout::new(cell, jobs.len(), line_width.max(point_size));
    let mut rec = Recorder::new(layout.width(), layout.height());
    rec.begin_batch();
    rec.set_color(HALF_GRAY);
    rec.set_line_width(line_width)
        .expect("caller pre-validates the line width");
    rec.set_point_size(point_size)
        .expect("caller pre-validates the point size");

    // Algorithm 3.1 choreography, whole-buffer ops over the atlas.
    rec.clear_color();
    rec.clear_accum();
    record_pass(&mut rec, jobs, &layout, Pass::First);
    rec.accum_load();
    rec.clear_color();
    record_pass(&mut rec, jobs, &layout, Pass::Second);
    rec.accum_add();
    rec.accum_return();

    // One scan reduces every cell to its own maximum — the batched
    // stand-in for per-pair Minmax queries (a histogram/reduction pass
    // over the full buffer).
    let slot = rec
        .cell_max(jobs.iter().enumerate().map(|(i, _)| cell_rect(&layout, i)))
        .expect("cells lie inside the atlas");
    (rec.finish(), slot)
}

/// The splice shape of a batch: for each job, which of its four geometry
/// lists (first segments, first points, second segments, second points)
/// are non-empty. Two batches with equal shapes — plus equal cell
/// resolution and line state — record identical command skeletons,
/// differing only in viewport values and geometry runs. This is the
/// choreography-shape component of the recording cache's key, and the
/// contract [`splice_batch`] relies on.
pub fn batch_shape(jobs: &[AtlasJob]) -> Vec<[bool; 4]> {
    jobs.iter()
        .map(|j| {
            [
                !j.first_segments.is_empty(),
                !j.first_points.is_empty(),
                !j.second_segments.is_empty(),
                !j.second_points.is_empty(),
            ]
        })
        .collect()
}

/// Re-instantiates a cached batch skeleton with `jobs`' viewports and
/// geometry, walking the jobs in exactly the order [`record_batch`]
/// records them (per pass: non-empty segment cells, then non-empty point
/// cells). `template` must come from a [`record_batch`] list (optionally
/// fused) of a batch with the same [`batch_shape`], cell resolution and
/// line state — the cache key guarantees it.
pub fn splice_batch(jobs: &[AtlasJob], template: &crate::device::ListTemplate) -> CommandList {
    let mut viewports: Vec<Viewport> = Vec::new();
    let mut seg_runs: Vec<&[Segment]> = Vec::new();
    let mut point_runs: Vec<&[Point]> = Vec::new();
    for pass in [Pass::First, Pass::Second] {
        for job in jobs {
            let segments: &[Segment] = match pass {
                Pass::First => &job.first_segments,
                Pass::Second => &job.second_segments,
            };
            if segments.is_empty() {
                continue;
            }
            viewports.push(job.viewport);
            seg_runs.push(segments);
        }
        for job in jobs {
            let points: &[Point] = match pass {
                Pass::First => &job.first_points,
                Pass::Second => &job.second_points,
            };
            if points.is_empty() {
                continue;
            }
            viewports.push(job.viewport);
            point_runs.push(points);
        }
    }
    template.instantiate(
        &viewports,
        |i, out| out.extend_from_slice(seg_runs[i]),
        |i, out| out.extend_from_slice(point_runs[i]),
    )
}

#[derive(Clone, Copy, PartialEq)]
enum Pass {
    First,
    Second,
}

fn cell_rect(layout: &Layout, i: usize) -> PixelRect {
    let (x, y) = layout.origin(i);
    PixelRect {
        x,
        y,
        w: layout.cell,
        h: layout.cell,
    }
}

/// Records one side of every job as (at most) two draw calls: all segment
/// lists in one merged submission, all point lists in another. Each job
/// renders through its own cell-local window — scissor plus cell-sized
/// viewport — so its fragments are identical to the per-pair path's.
///
/// Cells with no geometry in a loop are skipped entirely: recording their
/// scissor/viewport churn (and an empty extend-draw) would be exactly the
/// dead state `CommandList::fuse` elides, so the cold recording is already
/// the fused form. The first *non-empty* job opens each loop's draw call
/// — one `draw_calls` charge per loop with work in it, the same total the
/// old open-unconditionally recording charged whenever any geometry
/// existed.
fn record_pass(rec: &mut Recorder, jobs: &[AtlasJob], layout: &Layout, pass: Pass) {
    let mut opened = false;
    for (i, job) in jobs.iter().enumerate() {
        let segments = match pass {
            Pass::First => &job.first_segments,
            Pass::Second => &job.second_segments,
        };
        if segments.is_empty() {
            continue;
        }
        rec.set_scissor(Some(cell_rect(layout, i)))
            .expect("cells lie inside the atlas");
        rec.set_viewport(job.viewport)
            .expect("job viewport matches the cell");
        let recorded = if opened {
            rec.extend_draw_segments(segments.iter().copied())
        } else {
            opened = true;
            rec.draw_segments(segments.iter().copied())
        };
        recorded.expect("viewport recorded above");
    }

    let mut opened = false;
    for (i, job) in jobs.iter().enumerate() {
        let points = match pass {
            Pass::First => &job.first_points,
            Pass::Second => &job.second_points,
        };
        if points.is_empty() {
            continue;
        }
        rec.set_scissor(Some(cell_rect(layout, i)))
            .expect("cells lie inside the atlas");
        rec.set_viewport(job.viewport)
            .expect("job viewport matches the cell");
        let recorded = if opened {
            rec.extend_draw_points(points.iter().copied())
        } else {
            opened = true;
            rec.draw_points(points.iter().copied())
        };
        recorded.expect("viewport recorded above");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aa_line::DIAGONAL_WIDTH;
    use crate::context::GlContext;
    use spatial_geom::Rect;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    fn job(region: Rect, res: usize, first: Vec<Segment>, second: Vec<Segment>) -> AtlasJob {
        AtlasJob {
            viewport: Viewport::new(region, res, res),
            first_segments: first,
            first_points: Vec::new(),
            second_segments: second,
            second_points: Vec::new(),
        }
    }

    /// The per-pair reference: the exact GlContext accumulation
    /// choreography of Algorithm 3.1.
    fn per_pair_overlap(j: &AtlasJob, width: f64) -> bool {
        let mut gl = GlContext::new(j.viewport);
        gl.enable_antialias(true);
        gl.set_color(HALF_GRAY);
        gl.set_line_width(width);
        gl.set_point_size(width);
        gl.clear_color_buffer();
        gl.clear_accum_buffer();
        gl.draw_segments(&j.first_segments);
        if !j.first_points.is_empty() {
            gl.draw_points(&j.first_points);
        }
        gl.accum_load();
        gl.clear_color_buffer();
        gl.draw_segments(&j.second_segments);
        if !j.second_points.is_empty() {
            gl.draw_points(&j.second_points);
        }
        gl.accum_add();
        gl.accum_return();
        gl.max_value() >= 1.0
    }

    fn mixed_jobs(res: usize) -> Vec<AtlasJob> {
        let r = Rect::new(0.0, 0.0, 8.0, 8.0);
        vec![
            // Crossing diagonals: overlap.
            job(
                r,
                res,
                vec![seg(0.0, 0.0, 8.0, 8.0)],
                vec![seg(0.0, 8.0, 8.0, 0.0)],
            ),
            // Far-apart verticals: no overlap (at fine resolutions).
            job(
                r,
                res,
                vec![seg(0.5, 0.5, 0.5, 7.5)],
                vec![seg(7.5, 0.5, 7.5, 7.5)],
            ),
            // Touching at a corner.
            job(
                r,
                res,
                vec![seg(0.0, 0.0, 4.0, 4.0)],
                vec![seg(4.0, 4.0, 8.0, 8.0)],
            ),
            // Parallel and close.
            job(
                r,
                res,
                vec![seg(1.0, 0.0, 1.0, 8.0)],
                vec![seg(1.6, 0.0, 1.6, 8.0)],
            ),
        ]
    }

    #[test]
    fn batched_flags_equal_per_pair_flags() {
        for res in [1usize, 4, 8, 32] {
            let jobs = mixed_jobs(res);
            let mut atlas = AtlasContext::new(res);
            let flags = atlas.run_batch(&jobs, DIAGONAL_WIDTH, 1.0);
            for (i, j) in jobs.iter().enumerate() {
                assert_eq!(
                    flags[i],
                    per_pair_overlap(j, DIAGONAL_WIDTH),
                    "job {i} at res {res}"
                );
            }
        }
    }

    #[test]
    fn wide_lines_and_points_match_per_pair() {
        let r = Rect::new(0.0, 0.0, 16.0, 16.0);
        let res = 16;
        let mk =
            |first: Vec<Segment>, fp: Vec<Point>, second: Vec<Segment>, sp: Vec<Point>| AtlasJob {
                viewport: Viewport::uniform(r, res, res),
                first_segments: first,
                first_points: fp,
                second_segments: second,
                second_points: sp,
            };
        let jobs = vec![
            mk(
                vec![seg(2.0, 2.0, 2.0, 14.0)],
                vec![Point::new(2.0, 2.0), Point::new(2.0, 14.0)],
                vec![seg(6.0, 2.0, 6.0, 14.0)],
                vec![Point::new(6.0, 2.0), Point::new(6.0, 14.0)],
            ),
            mk(
                vec![seg(2.0, 2.0, 2.0, 14.0)],
                vec![Point::new(2.0, 2.0)],
                vec![seg(13.0, 2.0, 13.0, 14.0)],
                vec![Point::new(13.0, 2.0)],
            ),
        ];
        for width in [2.0, 4.0, 6.0] {
            let mut atlas = AtlasContext::new(res);
            let flags = atlas.run_batch(&jobs, width, width);
            for (i, j) in jobs.iter().enumerate() {
                assert_eq!(
                    flags[i],
                    per_pair_overlap(j, width),
                    "job {i} width {width}"
                );
            }
        }
    }

    #[test]
    fn cells_do_not_contaminate_each_other() {
        // Two jobs with geometry hugging the cell edges: job 0 overlaps,
        // job 1 is empty on one side and must stay non-overlapping no
        // matter what its neighbours drew.
        let r = Rect::new(0.0, 0.0, 8.0, 8.0);
        let jobs = vec![
            job(
                r,
                8,
                vec![seg(0.0, 0.0, 8.0, 8.0)],
                vec![seg(0.0, 8.0, 8.0, 0.0)],
            ),
            job(r, 8, vec![seg(7.9, 0.0, 7.9, 8.0)], vec![]),
            job(r, 8, vec![], vec![seg(0.1, 0.0, 0.1, 8.0)]),
            job(
                r,
                8,
                vec![seg(0.0, 7.9, 8.0, 7.9)],
                vec![seg(0.0, 0.1, 8.0, 0.1)],
            ),
        ];
        let mut atlas = AtlasContext::new(8);
        let flags = atlas.run_batch(&jobs, 10.0, 10.0); // maximum width: worst bleed
        assert!(flags[0]);
        assert!(!flags[1], "one-sided cell faked an overlap");
        assert!(!flags[2], "one-sided cell faked an overlap");
        // Job 3's wide lines genuinely overlap inside the cell; the point
        // is that the batched answer matches per-pair exactly.
        assert_eq!(flags[3], per_pair_overlap(&jobs[3], 10.0));
    }

    #[test]
    fn batch_amortizes_draw_calls_and_minmax() {
        let jobs = mixed_jobs(8);
        let mut atlas = AtlasContext::new(8);
        atlas.run_batch(&jobs, DIAGONAL_WIDTH, 1.0);
        let s = atlas.stats();
        assert_eq!(s.batches, 1);
        assert_eq!(s.draw_calls, 2, "one submission per pass, not per pair");
        assert_eq!(s.minmax_queries, 1, "one reduction scan per batch");
        // Per-pair would be 2 draw calls + 1 minmax per job.
        assert!(s.draw_calls + s.minmax_queries < 3 * jobs.len());
    }

    #[test]
    fn per_fragment_work_matches_per_pair() {
        // Batching amortizes submissions; it must not change the rasterized
        // work. Fragments and primitives are counted per cell-local window,
        // so they equal the per-pair totals exactly.
        let jobs = mixed_jobs(8);
        let mut atlas = AtlasContext::new(8);
        atlas.run_batch(&jobs, DIAGONAL_WIDTH, 1.0);
        let batched = atlas.stats();
        let mut per_pair = HwStats::default();
        for j in &jobs {
            let mut gl = GlContext::new(j.viewport);
            gl.enable_antialias(true);
            gl.set_color(HALF_GRAY);
            gl.set_line_width(DIAGONAL_WIDTH);
            gl.clear_color_buffer();
            gl.clear_accum_buffer();
            gl.draw_segments(&j.first_segments);
            gl.accum_load();
            gl.clear_color_buffer();
            gl.draw_segments(&j.second_segments);
            gl.accum_add();
            gl.accum_return();
            gl.max_value();
            per_pair.add(&gl.stats());
        }
        assert_eq!(batched.fragments_tested, per_pair.fragments_tested);
        assert_eq!(batched.primitives, per_pair.primitives);
        assert_eq!(batched.pixels_written, per_pair.pixels_written);
    }

    #[test]
    fn buffer_is_reused_across_same_shape_batches() {
        let jobs = mixed_jobs(8);
        let mut atlas = AtlasContext::new(8);
        let f1 = atlas.run_batch(&jobs, DIAGONAL_WIDTH, 1.0);
        let f2 = atlas.run_batch(&jobs, DIAGONAL_WIDTH, 1.0);
        assert_eq!(f1, f2, "stale pixels leaked between batches");
        assert_eq!(atlas.stats().batches, 2);
    }

    #[test]
    fn empty_batch_is_free() {
        let mut atlas = AtlasContext::new(8);
        assert!(atlas.run_batch(&[], 1.0, 1.0).is_empty());
        assert_eq!(atlas.stats(), HwStats::default());
    }

    #[test]
    fn partial_last_row_is_not_charged() {
        // 5 jobs → a 3-column grid needs only 2 rows; a square 3×3 atlas
        // would charge a whole unused row of clears/accumulation/scans.
        let r = Rect::new(0.0, 0.0, 8.0, 8.0);
        let five: Vec<AtlasJob> = (0..5)
            .map(|i| {
                job(
                    r,
                    8,
                    vec![seg(0.0, i as f64, 8.0, 8.0)],
                    vec![seg(0.0, 8.0, 8.0, i as f64)],
                )
            })
            .collect();
        let (list, _) = record_batch(&five, DIAGONAL_WIDTH, 1.0);
        assert!(
            list.height() < list.width(),
            "5 jobs over 3 columns occupy 2 rows, not 3 ({}x{})",
            list.width(),
            list.height()
        );
        let layout = Layout::new(8, 5, DIAGONAL_WIDTH);
        assert_eq!(layout.grid, 3);
        assert_eq!(layout.rows, 2);
        // Every cell must still fit.
        for i in 0..5 {
            let c = cell_rect(&layout, i);
            assert!(c.x + c.w <= list.width() && c.y + c.h <= list.height());
        }
        // The flags are unchanged by the tighter window.
        let mut atlas = AtlasContext::new(8);
        let flags = atlas.run_batch(&five, DIAGONAL_WIDTH, 1.0);
        for (i, j) in five.iter().enumerate() {
            assert_eq!(flags[i], per_pair_overlap(j, DIAGONAL_WIDTH), "job {i}");
        }
    }

    #[test]
    fn cold_recordings_are_already_fused() {
        // Geometry-free cells are skipped at record time, so the fusion
        // pass finds nothing to elide — the dead scissor/viewport churn it
        // exists for is never recorded in the first place.
        let r = Rect::new(0.0, 0.0, 8.0, 8.0);
        let jobs = vec![
            job(
                r,
                8,
                vec![seg(0.0, 0.0, 8.0, 8.0)],
                vec![seg(0.0, 8.0, 8.0, 0.0)],
            ),
            job(r, 8, vec![seg(1.0, 0.0, 1.0, 8.0)], vec![]),
            job(r, 8, vec![], vec![seg(2.0, 0.0, 2.0, 8.0)]),
        ];
        let (list, _) = record_batch(&jobs, DIAGONAL_WIDTH, 1.0);
        let (fused, elided) = list.fuse();
        assert_eq!(elided, 0, "cold atlas recordings must be minimal");
        assert_eq!(fused, list);
    }

    #[test]
    fn skipping_empty_cells_preserves_counters_and_flags() {
        // The one-sided jobs of the contamination test, re-checked for
        // counter identity: skipping a cell elides only uncharged state.
        let r = Rect::new(0.0, 0.0, 8.0, 8.0);
        let jobs = vec![
            job(
                r,
                8,
                vec![seg(0.0, 0.0, 8.0, 8.0)],
                vec![seg(0.0, 8.0, 8.0, 0.0)],
            ),
            job(r, 8, vec![seg(7.9, 0.0, 7.9, 8.0)], vec![]),
            job(r, 8, vec![], vec![seg(0.1, 0.0, 0.1, 8.0)]),
        ];
        let mut atlas = AtlasContext::new(8);
        let flags = atlas.run_batch(&jobs, DIAGONAL_WIDTH, 1.0);
        assert_eq!(flags, vec![true, false, false]);
        let s = atlas.stats();
        assert_eq!(s.draw_calls, 2, "each pass still opens exactly one call");
        assert_eq!(s.minmax_queries, 1);
    }

    #[test]
    fn splice_batch_equals_cold_recording() {
        use crate::device::ListTemplate;
        let r1 = Rect::new(0.0, 0.0, 8.0, 8.0);
        let r2 = Rect::new(4.0, 4.0, 12.0, 12.0);
        let mk = |r: Rect, a: f64| AtlasJob {
            viewport: Viewport::uniform(r, 8, 8),
            first_segments: vec![seg(a, 0.0, a, 8.0)],
            first_points: vec![Point::new(a, 0.0), Point::new(a, 8.0)],
            second_segments: vec![seg(0.0, a, 8.0, a)],
            second_points: vec![Point::new(0.0, a), Point::new(8.0, a)],
        };
        let batch_a = vec![mk(r1, 1.0), mk(r1, 2.0), mk(r1, 3.0)];
        let batch_b = vec![mk(r2, 5.0), mk(r2, 6.0), mk(r2, 7.0)];
        assert_eq!(batch_shape(&batch_a), batch_shape(&batch_b));

        let (cold_a, slot) = record_batch(&batch_a, 3.0, 3.0);
        let (fused_a, _) = cold_a.fuse();
        let template = ListTemplate::new(&fused_a);

        // Splicing batch B into A's skeleton equals B's own recording.
        let spliced = splice_batch(&batch_b, &template);
        let (cold_b, slot_b) = record_batch(&batch_b, 3.0, 3.0);
        let (fused_b, _) = cold_b.fuse();
        assert_eq!(spliced, fused_b);
        assert_eq!(slot, slot_b);

        let mut dev = ReferenceDevice::new();
        assert_eq!(
            dev.execute(&spliced).unwrap(),
            dev.execute(&cold_b).unwrap()
        );
    }

    #[test]
    fn counters_are_a_pure_function_of_batch_content() {
        let jobs = mixed_jobs(16);
        let mut a = AtlasContext::new(16);
        a.run_batch(&jobs, DIAGONAL_WIDTH, 1.0);
        let mut b = AtlasContext::new(16);
        b.run_batch(&jobs, DIAGONAL_WIDTH, 1.0);
        assert_eq!(a.stats(), b.stats());
    }
}
