//! PPM image output — lets the examples visualize what the "hardware" sees
//! (the repository's stand-in for Figure 5's screenshots).

use crate::framebuffer::FrameBuffer;
use std::io::{self, Write};
use std::path::Path;

/// Writes the color buffer as a binary PPM (P6). The image is flipped
/// vertically so row 0 of the file is the *top* of the window (window
/// coordinates grow upward, image files grow downward).
pub fn write_ppm<W: Write>(fb: &FrameBuffer, mut out: W) -> io::Result<()> {
    write!(out, "P6\n{} {}\n255\n", fb.width(), fb.height())?;
    let mut row = Vec::with_capacity(fb.width() * 3);
    for y in (0..fb.height()).rev() {
        row.clear();
        for x in 0..fb.width() {
            let c = fb.read_pixel(x, y);
            for ch in c {
                row.push((ch.clamp(0.0, 1.0) * 255.0).round() as u8);
            }
        }
        out.write_all(&row)?;
    }
    Ok(())
}

/// Writes the color buffer to a PPM file at `path`.
pub fn save_ppm(fb: &FrameBuffer, path: impl AsRef<Path>) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_ppm(fb, io::BufWriter::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framebuffer::WHITE;
    use crate::stats::HwStats;

    #[test]
    fn header_and_size() {
        let fb = FrameBuffer::new(4, 3);
        let mut buf = Vec::new();
        write_ppm(&fb, &mut buf).unwrap();
        let header = b"P6\n4 3\n255\n";
        assert_eq!(&buf[..header.len()], header);
        assert_eq!(buf.len(), header.len() + 4 * 3 * 3);
    }

    #[test]
    fn vertical_flip() {
        let mut fb = FrameBuffer::new(2, 2);
        let mut st = HwStats::default();
        // Window (0, 1) is the top-left pixel on screen.
        fb.write_pixel(0, 1, WHITE, &mut st);
        let mut buf = Vec::new();
        write_ppm(&fb, &mut buf).unwrap();
        let data = &buf[b"P6\n2 2\n255\n".len()..];
        assert_eq!(&data[0..3], &[255, 255, 255], "top-left of the image");
        assert_eq!(&data[3..6], &[0, 0, 0]);
    }

    #[test]
    fn save_to_disk() {
        let fb = FrameBuffer::new(8, 8);
        let dir = std::env::temp_dir().join("hwspatial_ppm_test.ppm");
        save_ppm(&fb, &dir).unwrap();
        let meta = std::fs::metadata(&dir).unwrap();
        assert!(meta.len() > 0);
        let _ = std::fs::remove_file(&dir);
    }
}
