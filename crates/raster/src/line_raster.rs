//! Basic (aliased) line rasterization with the diamond-exit rule (§2.2.2).
//!
//! This rasterizer exists to demonstrate *why the paper cannot use it*: a
//! segment that never exits a pixel diamond simply disappears (the paper's
//! Figure 3(d)), which would make the hardware segment test lossy. The
//! anti-aliased rasterizer in [`crate::aa_line`] is the one Algorithm 3.1
//! uses; this one is kept for spec fidelity, tests and the ablation bench.

use crate::stats::HwStats;
use spatial_geom::Point;

/// Minimum L1 distance from the point set of segment `a→b` to `c`,
/// exploiting that `t ↦ |x(t) − cx| + |y(t) − cy|` is piecewise-linear and
/// convex: the minimum is attained at an endpoint or where a term vanishes.
fn min_l1_dist_to_segment(a: Point, b: Point, c: Point) -> f64 {
    let d = b - a;
    let mut best = f64::INFINITY;
    let mut candidates = [0.0f64, 1.0, f64::NAN, f64::NAN];
    if d.x != 0.0 {
        candidates[2] = ((c.x - a.x) / d.x).clamp(0.0, 1.0);
    }
    if d.y != 0.0 {
        candidates[3] = ((c.y - a.y) / d.y).clamp(0.0, 1.0);
    }
    for &t in &candidates {
        if t.is_nan() {
            continue;
        }
        let p = a + d * t;
        best = best.min((p.x - c.x).abs() + (p.y - c.y).abs());
    }
    best
}

/// True when the segment intersects the open diamond `R_f` of the pixel
/// whose lower-left corner is `(i, j)`: `R_f = {p : ‖p − center‖₁ < ½}`
/// with center `(i + ½, j + ½)`.
pub fn segment_enters_diamond(a: Point, b: Point, i: i64, j: i64) -> bool {
    let c = Point::new(i as f64 + 0.5, j as f64 + 0.5);
    min_l1_dist_to_segment(a, b, c) < 0.5
}

/// Rasterizes the segment `a→b` (window coordinates) under the diamond-exit
/// rule: every pixel whose diamond the segment intersects is emitted,
/// *except* the pixel whose diamond contains the end point `b`.
pub fn rasterize_line_diamond_exit(
    a: Point,
    b: Point,
    width: usize,
    height: usize,
    stats: &mut HwStats,
    sink: &mut impl FnMut(usize, usize),
) {
    let x_lo = (a.x.min(b.x).floor() as i64 - 1).max(0);
    let x_hi = (a.x.max(b.x).floor() as i64 + 1).min(width as i64 - 1);
    let y_lo = (a.y.min(b.y).floor() as i64 - 1).max(0);
    let y_hi = (a.y.max(b.y).floor() as i64 + 1).min(height as i64 - 1);
    for j in y_lo..=y_hi {
        for i in x_lo..=x_hi {
            stats.fragments_tested += 1;
            if !segment_enters_diamond(a, b, i, j) {
                continue;
            }
            // Diamond-exit: skip the pixel whose diamond holds the endpoint.
            let c = Point::new(i as f64 + 0.5, j as f64 + 0.5);
            if (b.x - c.x).abs() + (b.y - c.y).abs() < 0.5 {
                continue;
            }
            sink(i as usize, j as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(a: Point, b: Point, w: usize, h: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut st = HwStats::default();
        rasterize_line_diamond_exit(a, b, w, h, &mut st, &mut |x, y| out.push((x, y)));
        out.sort_unstable();
        out
    }

    #[test]
    fn horizontal_line_drops_tail_pixel() {
        // Segment along the pixel-center row from (0.5, 0.5) to (3.5, 0.5):
        // enters diamonds of pixels 0..3, but ends inside pixel 3's diamond.
        let px = collect(Point::new(0.5, 0.5), Point::new(3.5, 0.5), 5, 1);
        assert_eq!(px, vec![(0, 0), (1, 0), (2, 0)]);
    }

    #[test]
    fn connected_segments_color_each_pixel_once() {
        // The motivation for the rule (§2.2.2): chaining segments does not
        // double-color the joints.
        let a = Point::new(0.5, 0.5);
        let m = Point::new(3.5, 0.5);
        let b = Point::new(6.5, 0.5);
        let mut all = collect(a, m, 8, 1);
        all.extend(collect(m, b, 8, 1));
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(all.len(), dedup.len(), "no pixel colored twice");
    }

    #[test]
    fn short_segment_disappears() {
        // Figure 3(d): a segment that intersects no diamond, or only the
        // diamond containing its endpoint, produces nothing.
        // Wholly inside one diamond:
        let px = collect(Point::new(1.4, 1.5), Point::new(1.6, 1.5), 3, 3);
        assert!(px.is_empty(), "got {px:?}");
        // Along a pixel corner region, missing all diamonds:
        let px = collect(Point::new(0.9, 0.95), Point::new(1.1, 0.95), 3, 3);
        assert!(px.is_empty(), "got {px:?}");
    }

    #[test]
    fn diagonal_line() {
        let px = collect(Point::new(0.5, 0.5), Point::new(3.5, 3.5), 4, 4);
        // Diagonal through pixel centers: all diamonds on the diagonal are
        // entered; the final one contains the endpoint.
        assert!(px.contains(&(0, 0)));
        assert!(px.contains(&(1, 1)));
        assert!(px.contains(&(2, 2)));
        assert!(!px.contains(&(3, 3)));
    }

    #[test]
    fn vertical_segment() {
        let px = collect(Point::new(1.5, 0.5), Point::new(1.5, 2.5), 3, 3);
        assert_eq!(px, vec![(1, 0), (1, 1)]);
    }

    #[test]
    fn clipping_to_window() {
        let px = collect(Point::new(-5.5, 0.5), Point::new(2.5, 0.5), 3, 1);
        assert!(px.iter().all(|&(x, _)| x < 3));
        assert!(px.contains(&(0, 0)));
    }

    #[test]
    fn l1_distance_kernel() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 0.0);
        assert_eq!(min_l1_dist_to_segment(a, b, Point::new(2.0, 1.0)), 1.0);
        assert_eq!(min_l1_dist_to_segment(a, b, Point::new(6.0, 0.0)), 2.0);
        assert_eq!(min_l1_dist_to_segment(a, b, Point::new(2.0, 0.0)), 0.0);
        // Degenerate segment.
        assert_eq!(
            min_l1_dist_to_segment(a, a, Point::new(1.0, 1.0)),
            2.0,
            "L1 distance from a point"
        );
    }
}
