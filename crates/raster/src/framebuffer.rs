//! The frame buffer: color, accumulation, depth and stencil planes, with
//! the buffer-level operations the paper and Hoff et al. use (§2.1).
//!
//! Colors are RGB `f32` triples. The paper's Algorithm 3.1 renders both
//! polygons at `(0.5, 0.5, 0.5)` and searches for `(1, 1, 1)` after
//! accumulation, so half-intensity values must add exactly — `f32` holds
//! 0.5 and 1.0 exactly, as 2003-era 8-bit-per-channel buffers held 128 and
//! 255.

use crate::scan;
use crate::stats::HwStats;

/// An RGB color.
pub type Color = [f32; 3];

/// Pure black — the clear color.
pub const BLACK: Color = [0.0, 0.0, 0.0];
/// The half-intensity gray Algorithm 3.1 renders with.
pub const HALF_GRAY: Color = [0.5, 0.5, 0.5];
/// Full white — the overlap signature Algorithm 3.1 searches for.
pub const WHITE: Color = [1.0, 1.0, 1.0];

/// A rectangular array of pixels with all four buffer planes.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameBuffer {
    width: usize,
    height: usize,
    color: Vec<Color>,
    accum: Vec<Color>,
    depth: Vec<f32>,
    stencil: Vec<u8>,
}

impl FrameBuffer {
    /// Allocates a cleared `width × height` frame buffer.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(
            width > 0 && height > 0,
            "window must have at least one pixel"
        );
        FrameBuffer {
            width,
            height,
            color: vec![BLACK; width * height],
            accum: vec![BLACK; width * height],
            depth: vec![1.0; width * height],
            stencil: vec![0; width * height],
        }
    }

    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total pixel count.
    #[inline]
    pub fn len(&self) -> usize {
        self.color.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        false // a frame buffer always has ≥ 1 pixel
    }

    #[inline]
    fn idx(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.width && y < self.height);
        y * self.width + x
    }

    /// Writes a color fragment (no blending: overwrite).
    #[inline]
    pub fn write_pixel(&mut self, x: usize, y: usize, c: Color, stats: &mut HwStats) {
        let i = self.idx(x, y);
        self.color[i] = c;
        stats.pixels_written += 1;
    }

    /// Overwrite without touching counters — the hot rasterization path
    /// counts written pixels in bulk instead of per fragment.
    #[inline]
    pub(crate) fn write_pixel_uncounted(&mut self, x: usize, y: usize, c: Color) {
        let i = self.idx(x, y);
        self.color[i] = c;
    }

    /// Additive-blend a color fragment (`glBlendFunc(GL_ONE, GL_ONE)`),
    /// one of Hoff et al.'s overlap-detection variants.
    #[inline]
    pub fn blend_pixel(&mut self, x: usize, y: usize, c: Color, stats: &mut HwStats) {
        let i = self.idx(x, y);
        for (dst, src) in self.color[i].iter_mut().zip(c.iter()) {
            *dst = (*dst + src).min(1.0);
        }
        stats.pixels_written += 1;
    }

    /// Increments the stencil value of a pixel (saturating), the
    /// stencil-buffer overlap-counting variant.
    #[inline]
    pub fn stencil_incr(&mut self, x: usize, y: usize, stats: &mut HwStats) {
        let i = self.idx(x, y);
        self.stencil[i] = self.stencil[i].saturating_add(1);
        stats.pixels_written += 1;
    }

    /// `glStencilOp(GL_REPLACE)`: writes `val` into the stencil plane.
    #[inline]
    pub fn stencil_replace(&mut self, x: usize, y: usize, val: u8, stats: &mut HwStats) {
        let i = self.idx(x, y);
        self.stencil[i] = val;
        stats.pixels_written += 1;
    }

    /// `glStencilFunc(GL_EQUAL, reference)` + `GL_INCR`: increments only
    /// where the current value equals `reference`. This is what makes the
    /// stencil overlap strategy immune to a boundary's self-overlap at
    /// shared vertices: the second object's fragments only count on pixels
    /// the *first* object marked, and only once.
    #[inline]
    pub fn stencil_incr_if_eq(&mut self, x: usize, y: usize, reference: u8, stats: &mut HwStats) {
        let i = self.idx(x, y);
        if self.stencil[i] == reference {
            self.stencil[i] = self.stencil[i].saturating_add(1);
        }
        stats.pixels_written += 1;
    }

    /// Writes a depth fragment with `GL_LESS` testing; returns whether the
    /// fragment passed. The depth-buffer overlap variant draws the second
    /// object at a nearer depth and checks for surviving fragments.
    #[inline]
    pub fn depth_test_write(&mut self, x: usize, y: usize, z: f32, stats: &mut HwStats) -> bool {
        let i = self.idx(x, y);
        if z < self.depth[i] {
            self.depth[i] = z;
            stats.pixels_written += 1;
            true
        } else {
            false
        }
    }

    /// Reads one pixel's color (CPU-side debug path; real readback is what
    /// the Minmax function exists to avoid).
    #[inline]
    pub fn read_pixel(&self, x: usize, y: usize) -> Color {
        self.color[self.idx(x, y)]
    }

    #[inline]
    pub fn read_stencil(&self, x: usize, y: usize) -> u8 {
        self.stencil[self.idx(x, y)]
    }

    /// Clears the color buffer to `c`.
    pub fn clear_color(&mut self, c: Color, stats: &mut HwStats) {
        self.color.fill(c);
        stats.pixels_scanned += self.len();
    }

    /// Clears the accumulation buffer to black.
    pub fn clear_accum(&mut self, stats: &mut HwStats) {
        self.accum.fill(BLACK);
        stats.pixels_scanned += self.len();
    }

    /// Clears the depth buffer to the far plane (1.0).
    pub fn clear_depth(&mut self, stats: &mut HwStats) {
        self.depth.fill(1.0);
        stats.pixels_scanned += self.len();
    }

    /// Clears the stencil buffer to zero.
    pub fn clear_stencil(&mut self, stats: &mut HwStats) {
        self.stencil.fill(0);
        stats.pixels_scanned += self.len();
    }

    /// `glAccum(GL_LOAD, 1.0)`: accum ← color.
    pub fn accum_load(&mut self, stats: &mut HwStats) {
        self.accum.copy_from_slice(&self.color);
        stats.pixels_scanned += self.len();
    }

    /// `glAccum(GL_ACCUM, 1.0)`: accum ← accum + color. An elementwise map
    /// with no dependency chain — see the `scan` module for why it is shared
    /// by every executor at every lane width.
    #[inline(always)]
    pub fn accum_add(&mut self, stats: &mut HwStats) {
        scan::add_assign(&mut self.accum, &self.color);
        stats.pixels_scanned += self.len();
    }

    /// `glAccum(GL_RETURN, 1.0)`: color ← accum (clamped to [0, 1]).
    #[inline(always)]
    pub fn accum_return(&mut self, stats: &mut HwStats) {
        scan::copy_clamped(&mut self.color, &self.accum);
        stats.pixels_scanned += self.len();
    }

    /// The hardware Minmax query (§3.2): per-channel minimum and maximum of
    /// the color buffer, computed "on the card" — i.e. without transferring
    /// pixels back — at the cost of one scan over the window. The serial
    /// fold; `minmax_lanes` is the same kernel at any lane
    /// width.
    pub fn minmax(&self, stats: &mut HwStats) -> (Color, Color) {
        self.minmax_lanes::<1>(stats)
    }

    /// [`FrameBuffer::minmax`] with `LANES` independent accumulators (see
    /// [`crate::scan::minmax_colors`]) — bit-identical results, one scan
    /// charged either way.
    #[inline(always)]
    pub(crate) fn minmax_lanes<const LANES: usize>(&self, stats: &mut HwStats) -> (Color, Color) {
        stats.pixels_scanned += self.len();
        scan::minmax_colors::<LANES>(&self.color)
    }

    /// Maximum stencil value (for the stencil overlap strategy).
    pub fn stencil_max(&self, stats: &mut HwStats) -> u8 {
        self.stencil_max_lanes::<1>(stats)
    }

    /// [`FrameBuffer::stencil_max`] with `LANES` independent accumulators —
    /// identical result (integer max), one scan charged either way.
    #[inline(always)]
    pub(crate) fn stencil_max_lanes<const LANES: usize>(&self, stats: &mut HwStats) -> u8 {
        stats.pixels_scanned += self.len();
        scan::stencil_max::<LANES>(&self.stencil)
    }

    /// Number of pixels whose stencil value is at least `min` — the
    /// fragment-counting readback of the area-of-overlap aggregation.
    pub fn stencil_count_ge(&self, min: u8, stats: &mut HwStats) -> u64 {
        self.stencil_count_ge_lanes::<1>(min, stats)
    }

    /// [`FrameBuffer::stencil_count_ge`] with `LANES` independent
    /// accumulators — identical count (integer sum), one scan charged
    /// either way.
    #[inline(always)]
    pub(crate) fn stencil_count_ge_lanes<const LANES: usize>(
        &self,
        min: u8,
        stats: &mut HwStats,
    ) -> u64 {
        stats.pixels_scanned += self.len();
        scan::stencil_count_ge::<LANES>(&self.stencil, min)
    }

    /// The colors of row `y`, columns `x0 .. x0 + len` — a contiguous slice
    /// the per-cell reduction feeds through the lane kernels.
    #[inline]
    pub(crate) fn row_colors(&self, y: usize, x0: usize, len: usize) -> &[Color] {
        let i = self.idx(x0, y);
        &self.color[i..i + len]
    }

    /// Overwrites `len` pixels of row `y` starting at `x0` without touching
    /// counters — the polygon fill's bulk span write (the caller charges
    /// `pixels_written` from the span length).
    #[inline]
    pub(crate) fn fill_row_span(&mut self, y: usize, x0: usize, len: usize, c: Color) {
        let i = self.idx(x0, y);
        self.color[i..i + len].fill(c);
    }

    /// Replaces `len` stencil values of row `y` starting at `x0` without
    /// touching counters — the `StencilReplace` span write.
    #[inline]
    pub(crate) fn stencil_fill_row_span(&mut self, y: usize, x0: usize, len: usize, v: u8) {
        let i = self.idx(x0, y);
        self.stencil[i..i + len].fill(v);
    }

    /// Resets every plane to its cleared state without charging any
    /// counter. Device replay uses this to make execution a pure function
    /// of the command list: the paper's choreography pays for its own
    /// explicit clears, this one is bookkeeping between replays.
    pub(crate) fn reset(&mut self) {
        self.color.fill(BLACK);
        self.accum.fill(BLACK);
        self.depth.fill(1.0);
        self.stencil.fill(0);
    }

    /// Copies a full-width horizontal band (`src` must span the same width)
    /// into this buffer starting at row `y_off` — all four planes. The
    /// tiled device stitches its per-band buffers back into one window
    /// with this.
    pub(crate) fn copy_band_from(&mut self, src: &FrameBuffer, y_off: usize) {
        assert_eq!(src.width, self.width, "band width must match");
        assert!(y_off + src.height <= self.height, "band exceeds window");
        let lo = y_off * self.width;
        let hi = lo + src.height * self.width;
        self.color[lo..hi].copy_from_slice(&src.color);
        self.accum[lo..hi].copy_from_slice(&src.accum);
        self.depth[lo..hi].copy_from_slice(&src.depth);
        self.stencil[lo..hi].copy_from_slice(&src.stencil);
    }

    /// Iterates over `(x, y, color)` for all pixels — used by the PPM dump.
    pub fn pixels(&self) -> impl Iterator<Item = (usize, usize, Color)> + '_ {
        (0..self.height)
            .flat_map(move |y| (0..self.width).map(move |x| (x, y, self.color[y * self.width + x])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one pixel")]
    fn zero_size_panics() {
        let _ = FrameBuffer::new(0, 4);
    }

    #[test]
    fn write_and_read() {
        let mut fb = FrameBuffer::new(4, 3);
        let mut st = HwStats::default();
        fb.write_pixel(2, 1, HALF_GRAY, &mut st);
        assert_eq!(fb.read_pixel(2, 1), HALF_GRAY);
        assert_eq!(fb.read_pixel(0, 0), BLACK);
        assert_eq!(st.pixels_written, 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut fb = FrameBuffer::new(2, 2);
        let mut st = HwStats::default();
        fb.write_pixel(0, 0, WHITE, &mut st);
        fb.clear_color(BLACK, &mut st);
        assert_eq!(fb.read_pixel(0, 0), BLACK);
        assert_eq!(st.pixels_scanned, 4);
    }

    #[test]
    fn accumulation_pipeline_finds_overlap() {
        // The exact buffer choreography of Algorithm 3.1 steps 2.2–2.8.
        let mut fb = FrameBuffer::new(4, 4);
        let mut st = HwStats::default();
        fb.clear_color(BLACK, &mut st);
        fb.clear_accum(&mut st);
        // "Polygon 1" covers pixels (0..2, 0..2).
        for y in 0..2 {
            for x in 0..2 {
                fb.write_pixel(x, y, HALF_GRAY, &mut st);
            }
        }
        fb.accum_load(&mut st);
        fb.clear_color(BLACK, &mut st);
        // "Polygon 2" covers pixels (1..3, 1..3): overlap at (1,1).
        for y in 1..3 {
            for x in 1..3 {
                fb.write_pixel(x, y, HALF_GRAY, &mut st);
            }
        }
        fb.accum_add(&mut st);
        fb.accum_return(&mut st);
        let (_, mx) = fb.minmax(&mut st);
        assert_eq!(mx, [1.0, 1.0, 1.0], "overlap pixel must reach full white");
        assert_eq!(fb.read_pixel(1, 1), WHITE);
        assert_eq!(fb.read_pixel(0, 0), HALF_GRAY);
        assert_eq!(st.minmax_queries, 0, "minmax counter belongs to GlContext");
    }

    #[test]
    fn accumulation_no_overlap_stays_gray() {
        let mut fb = FrameBuffer::new(4, 1);
        let mut st = HwStats::default();
        fb.write_pixel(0, 0, HALF_GRAY, &mut st);
        fb.accum_load(&mut st);
        fb.clear_color(BLACK, &mut st);
        fb.write_pixel(3, 0, HALF_GRAY, &mut st);
        fb.accum_add(&mut st);
        fb.accum_return(&mut st);
        let (_, mx) = fb.minmax(&mut st);
        assert_eq!(mx, [0.5, 0.5, 0.5]);
    }

    #[test]
    fn blending_saturates() {
        let mut fb = FrameBuffer::new(1, 1);
        let mut st = HwStats::default();
        fb.blend_pixel(0, 0, [0.7, 0.7, 0.7], &mut st);
        fb.blend_pixel(0, 0, [0.7, 0.7, 0.7], &mut st);
        assert_eq!(fb.read_pixel(0, 0), [1.0, 1.0, 1.0]);
    }

    #[test]
    fn stencil_counts_overdraw() {
        let mut fb = FrameBuffer::new(2, 1);
        let mut st = HwStats::default();
        fb.stencil_incr(0, 0, &mut st);
        fb.stencil_incr(0, 0, &mut st);
        fb.stencil_incr(1, 0, &mut st);
        assert_eq!(fb.read_stencil(0, 0), 2);
        assert_eq!(fb.stencil_max(&mut st), 2);
        fb.clear_stencil(&mut st);
        assert_eq!(fb.stencil_max(&mut st), 0);
    }

    #[test]
    fn depth_test_less() {
        let mut fb = FrameBuffer::new(1, 1);
        let mut st = HwStats::default();
        assert!(fb.depth_test_write(0, 0, 0.5, &mut st));
        assert!(
            !fb.depth_test_write(0, 0, 0.7, &mut st),
            "farther fragment fails"
        );
        assert!(fb.depth_test_write(0, 0, 0.2, &mut st));
        fb.clear_depth(&mut st);
        assert!(fb.depth_test_write(0, 0, 0.99, &mut st));
    }

    #[test]
    fn accum_return_clamps() {
        let mut fb = FrameBuffer::new(1, 1);
        let mut st = HwStats::default();
        fb.write_pixel(0, 0, WHITE, &mut st);
        fb.accum_load(&mut st);
        fb.accum_add(&mut st); // accum = 2.0
        fb.accum_return(&mut st);
        assert_eq!(fb.read_pixel(0, 0), WHITE, "clamped to 1.0");
    }

    #[test]
    fn pixels_iterator_covers_window() {
        let fb = FrameBuffer::new(3, 2);
        assert_eq!(fb.pixels().count(), 6);
    }
}
