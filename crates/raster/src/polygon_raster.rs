//! Filled-polygon rasterization (§2.2.3): pixel-center rule.
//!
//! The spec's two rules: (1) a pixel is colored only if its center lies
//! inside the polygon; (2) a pixel center on a *shared* edge of two
//! polygons is colored exactly once. The half-open crossing rule delivers
//! both. Hardware only fills convex polygons, so `hwa-core`'s
//! filled-polygon ablation triangulates first and feeds triangles here.

use crate::stats::HwStats;
use spatial_geom::Point;

/// Scanline-fills a convex or concave simple polygon given by `vertices`
/// (window coordinates, either winding). Pixels are emitted when their
/// center `(i + ½, j + ½)` is inside under the half-open crossing rule
/// (edges owned downward: a center exactly on a shared edge belongs to
/// exactly one of the two polygons).
pub fn rasterize_polygon(
    vertices: &[Point],
    width: usize,
    height: usize,
    stats: &mut HwStats,
    sink: &mut impl FnMut(usize, usize),
) {
    rasterize_polygon_rows(vertices, width, 0, height as i64 - 1, stats, sink)
}

/// [`rasterize_polygon`] restricted to scanlines `row_lo..=row_hi`
/// (inclusive). The span/crossing math per scanline is identical to the
/// full fill — only the scanline loop narrows — so row bands partition the
/// full window's emitted pixels and fragment counts exactly.
#[inline]
pub fn rasterize_polygon_rows(
    vertices: &[Point],
    width: usize,
    row_lo: i64,
    row_hi: i64,
    stats: &mut HwStats,
    sink: &mut impl FnMut(usize, usize),
) {
    rasterize_polygon_spans(
        vertices,
        width,
        row_lo,
        row_hi,
        stats,
        &mut |j, i_lo, i_hi| {
            for i in i_lo..=i_hi {
                sink(i, j);
            }
        },
    )
}

/// The span-oriented entry point of the polygon fill, shared by every
/// executor: crossing detection and span arithmetic happen once per
/// scanline, and each filled span `[i_lo, i_hi]` (inclusive columns, both
/// in-window) is handed to `span(j, i_lo, i_hi)` whole. The reference path
/// ([`rasterize_polygon_rows`]) expands spans pixel-by-pixel; the SIMD
/// device fills them with bulk row writes — same pixels, same
/// `fragments_tested` total (charged here, one span at a time), so the two
/// stay bit-identical by construction.
#[inline]
pub fn rasterize_polygon_spans(
    vertices: &[Point],
    width: usize,
    row_lo: i64,
    row_hi: i64,
    stats: &mut HwStats,
    span: &mut impl FnMut(usize, usize, usize),
) {
    if vertices.len() < 3 {
        return;
    }
    let mut ymin = f64::INFINITY;
    let mut ymax = f64::NEG_INFINITY;
    for p in vertices {
        ymin = ymin.min(p.y);
        ymax = ymax.max(p.y);
    }
    let j_lo = (ymin.floor() as i64).max(row_lo.max(0));
    let j_hi = (ymax.ceil() as i64).min(row_hi);
    if j_lo > j_hi {
        return;
    }
    let n = vertices.len();
    let mut xs: Vec<f64> = Vec::with_capacity(8);

    for j in j_lo..=j_hi {
        let yc = j as f64 + 0.5;
        xs.clear();
        for k in 0..n {
            let a = vertices[k];
            let b = vertices[(k + 1) % n];
            // Half-open rule: the edge spans the scanline when exactly one
            // endpoint is strictly above it.
            if (a.y > yc) != (b.y > yc) {
                let t = (yc - a.y) / (b.y - a.y);
                xs.push(a.x + t * (b.x - a.x));
            }
        }
        xs.sort_unstable_by(|p, q| p.total_cmp(q));
        // Fill between crossing pairs, half-open in x: centers in [x0, x1).
        for pair in xs.chunks_exact(2) {
            let (x0, x1) = (pair[0], pair[1]);
            // Smallest i with i + 0.5 >= x0, largest i with i + 0.5 < x1.
            let i_lo = ((x0 - 0.5).ceil() as i64).max(0);
            let i_hi = (((x1 - 0.5).ceil() as i64) - 1).min(width as i64 - 1);
            if i_lo <= i_hi {
                stats.fragments_tested += (i_hi - i_lo + 1) as usize;
                span(j as usize, i_lo as usize, i_hi as usize);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(coords: &[(f64, f64)], win: usize) -> Vec<(usize, usize)> {
        let pts: Vec<Point> = coords.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let mut out = Vec::new();
        let mut st = HwStats::default();
        rasterize_polygon(&pts, win, win, &mut st, &mut |x, y| out.push((x, y)));
        out.sort_unstable();
        out
    }

    #[test]
    fn pixel_aligned_square_fills_exactly() {
        // Square [1,3]²: centers (1.5,1.5), (1.5,2.5), (2.5,1.5), (2.5,2.5).
        let px = collect(&[(1.0, 1.0), (3.0, 1.0), (3.0, 3.0), (1.0, 3.0)], 4);
        assert_eq!(px, vec![(1, 1), (1, 2), (2, 1), (2, 2)]);
    }

    #[test]
    fn center_rule_excludes_partial_pixels() {
        // Square [1.6, 2.4]²: only the center (2.5, 2.5)? No — (2.5 > 2.4)
        // so *no* pixel center falls inside: nothing is filled. The paper's
        // point that polygon fill is not conservative.
        let px = collect(&[(1.6, 1.6), (2.4, 1.6), (2.4, 2.4), (1.6, 2.4)], 4);
        assert!(px.is_empty(), "got {px:?}");
    }

    #[test]
    fn shared_edge_fills_exactly_once() {
        // Two rectangles sharing the edge x = 2, which passes through no
        // pixel centers... make it x = 2.5 (through centers of column 2).
        let left = collect(&[(0.0, 0.0), (2.5, 0.0), (2.5, 4.0), (0.0, 4.0)], 4);
        let right = collect(&[(2.5, 0.0), (4.0, 0.0), (4.0, 4.0), (2.5, 4.0)], 4);
        let mut both = left.clone();
        both.extend(right.iter().copied());
        let total = both.len();
        both.sort_unstable();
        both.dedup();
        assert_eq!(total, both.len(), "shared-edge pixels double-filled");
        // Column 2 centers (x = 2.5) belong to exactly one side.
        let col2: Vec<_> = both.iter().filter(|&&(x, _)| x == 2).collect();
        assert_eq!(col2.len(), 4);
    }

    #[test]
    fn triangle_fill() {
        let px = collect(&[(0.0, 0.0), (4.0, 0.0), (0.0, 4.0)], 4);
        assert!(px.contains(&(0, 0)));
        assert!(px.contains(&(1, 1)));
        assert!(!px.contains(&(3, 3)), "outside the hypotenuse");
    }

    #[test]
    fn concave_polygon_fill() {
        // C-shape: pocket column must stay empty.
        let px = collect(
            &[
                (0.0, 0.0),
                (4.0, 0.0),
                (4.0, 1.0),
                (1.0, 1.0),
                (1.0, 3.0),
                (4.0, 3.0),
                (4.0, 4.0),
                (0.0, 4.0),
            ],
            4,
        );
        assert!(px.contains(&(0, 2)), "spine filled");
        assert!(px.contains(&(3, 0)), "bottom arm filled");
        assert!(px.contains(&(3, 3)), "top arm filled");
        assert!(!px.contains(&(2, 2)), "pocket must stay empty");
        assert!(!px.contains(&(3, 1)), "pocket row above bottom arm");
    }

    #[test]
    fn winding_invariance() {
        let ccw = collect(&[(0.0, 0.0), (3.0, 0.0), (3.0, 3.0), (0.0, 3.0)], 4);
        let cw = collect(&[(0.0, 0.0), (0.0, 3.0), (3.0, 3.0), (3.0, 0.0)], 4);
        assert_eq!(ccw, cw);
    }

    #[test]
    fn clipping_to_window() {
        let px = collect(&[(-5.0, -5.0), (10.0, -5.0), (10.0, 10.0), (-5.0, 10.0)], 3);
        assert_eq!(px.len(), 9, "entire 3×3 window filled");
    }

    #[test]
    fn degenerate_input_is_ignored() {
        let pts = [Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let mut st = HwStats::default();
        let mut hits = 0;
        rasterize_polygon(&pts, 4, 4, &mut st, &mut |_, _| hits += 1);
        assert_eq!(hits, 0);
    }
}
