//! An OpenGL-style stateful rendering context over the simulated hardware,
//! so the hardware-assisted algorithms read like the paper's pseudo-code
//! (Algorithm 3.1: set color, render edges, accumulate, minmax).

use crate::aa_line::rasterize_aa_line;
use crate::framebuffer::{Color, FrameBuffer, BLACK};
use crate::line_raster::rasterize_line_diamond_exit;
use crate::point_raster::{rasterize_point, rasterize_wide_point};
use crate::polygon_raster::rasterize_polygon;
use crate::stats::HwStats;
use crate::viewport::Viewport;
use spatial_geom::{Point, Segment};

/// Maximum anti-aliased line width, in pixels. The paper reports a 10-pixel
/// limit on its GeForce4 platform (§4.4); exceeding it forces the software
/// fallback.
pub const MAX_AA_LINE_WIDTH: f64 = 10.0;

/// Maximum (smooth) point size, in pixels — same platform limit.
pub const MAX_POINT_SIZE: f64 = 10.0;

/// How overlapping fragments are detected — the implementation variants
/// Hoff et al. suggest (§3). The paper's Algorithm 3.1 uses the
/// accumulation buffer; the others exist for the ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverlapStrategy {
    /// Render both at half intensity, add via the accumulation buffer,
    /// search for full white (the paper's choice).
    #[default]
    Accumulation,
    /// Additive color blending directly in the color buffer.
    Blending,
    /// Count overdraw per pixel in the stencil buffer.
    Stencil,
}

/// Where fragments land and how they combine — the write half of the
/// OpenGL state Algorithm 3.1 and the Hoff variants manipulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteMode {
    /// Color buffer, overwrite (blending disabled — the paper's setting).
    #[default]
    Overwrite,
    /// Color buffer, additive blending. Fragments of one *draw call* are
    /// deduplicated first, mirroring GL's rule that a primitive batch
    /// writes each covered pixel once per pass.
    Blend,
    /// Stencil plane, `GL_REPLACE` with this reference value.
    StencilReplace(u8),
    /// Stencil plane, increment where the current value equals the
    /// reference (`glStencilFunc(GL_EQUAL, ref)` + `GL_INCR`).
    StencilIncrIfEq(u8),
}

/// An axis-aligned pixel rectangle in window coordinates — the scissor
/// unit and the atlas cell-reduction unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PixelRect {
    pub x: usize,
    pub y: usize,
    pub w: usize,
    pub h: usize,
}

/// A rendering window plus the pipeline state Algorithm 3.1 manipulates.
#[derive(Debug)]
pub struct GlContext {
    fb: FrameBuffer,
    viewport: Viewport,
    stats: HwStats,
    color: Color,
    line_width: f64,
    point_size: f64,
    antialias: bool,
    write_mode: WriteMode,
    scissor: Option<PixelRect>,
}

impl GlContext {
    /// A context rendering through `viewport` into a matching window.
    pub fn new(viewport: Viewport) -> Self {
        GlContext {
            fb: FrameBuffer::new(viewport.width(), viewport.height()),
            viewport,
            stats: HwStats::default(),
            color: crate::framebuffer::HALF_GRAY,
            line_width: crate::aa_line::DIAGONAL_WIDTH,
            point_size: 1.0,
            antialias: true,
            write_mode: WriteMode::Overwrite,
            scissor: None,
        }
    }

    /// Re-targets the context at a new viewport, keeping the accumulated
    /// statistics and reusing the pixel allocation when the window size is
    /// unchanged — a per-candidate-pair reallocation would dominate at
    /// small resolutions. Buffers are **not** cleared: every overlap
    /// choreography starts with its own explicit clears (Algorithm 3.1
    /// step 2.2), exactly like the GL program would.
    pub fn retarget(&mut self, viewport: Viewport) {
        if viewport.width() != self.fb.width() || viewport.height() != self.fb.height() {
            self.fb = FrameBuffer::new(viewport.width(), viewport.height());
        }
        self.viewport = viewport;
        self.scissor = None;
    }

    #[inline]
    pub fn viewport(&self) -> &Viewport {
        &self.viewport
    }

    #[inline]
    pub fn frame_buffer(&self) -> &FrameBuffer {
        &self.fb
    }

    #[inline]
    pub fn stats(&self) -> HwStats {
        self.stats
    }

    // -- pipeline state ----------------------------------------------------

    pub fn set_color(&mut self, c: Color) {
        self.color = c;
    }

    /// Sets the line width in pixels; clamped to [`MAX_AA_LINE_WIDTH`] like
    /// real hardware clamps `glLineWidth`. Returns the effective width so
    /// callers can detect clamping and fall back to software.
    pub fn set_line_width(&mut self, w: f64) -> f64 {
        self.line_width = w.clamp(1.0, MAX_AA_LINE_WIDTH);
        self.line_width
    }

    /// Sets the point size in pixels; clamped to [`MAX_POINT_SIZE`].
    pub fn set_point_size(&mut self, s: f64) -> f64 {
        self.point_size = s.clamp(1.0, MAX_POINT_SIZE);
        self.point_size
    }

    pub fn enable_antialias(&mut self, on: bool) {
        self.antialias = on;
    }

    /// Convenience for the common on/off blending toggle.
    pub fn enable_blending(&mut self, on: bool) {
        self.write_mode = if on {
            WriteMode::Blend
        } else {
            WriteMode::Overwrite
        };
    }

    /// Full write-mode control (stencil strategies need it).
    pub fn set_write_mode(&mut self, mode: WriteMode) {
        self.write_mode = mode;
    }

    /// Restricts rasterization to `r` (or lifts the restriction): draws
    /// project through the viewport into an `r.w × r.h` window whose
    /// pixels land at offset `(r.x, r.y)` in the frame buffer — the
    /// atlas's cell-local rendering. All per-pixel math happens in the
    /// scissor-local window, so a cell renders bit-identically to a
    /// standalone window of the same size.
    pub fn set_scissor(&mut self, r: Option<PixelRect>) {
        if let Some(r) = r {
            debug_assert!(r.w > 0 && r.h > 0, "empty scissor");
            debug_assert!(
                r.x + r.w <= self.fb.width() && r.y + r.h <= self.fb.height(),
                "scissor outside the window"
            );
        }
        self.scissor = r;
    }

    #[inline]
    pub fn scissor(&self) -> Option<PixelRect> {
        self.scissor
    }

    /// Replaces the data→window projection without touching the frame
    /// buffer: device replay renders into a window whose size (the atlas
    /// side) can differ from the recorded viewport's (one cell).
    pub fn set_projection(&mut self, viewport: Viewport) {
        self.viewport = viewport;
    }

    /// Marks the start of a batched submission round (the atlas's shared
    /// fixed cost).
    pub fn begin_batch(&mut self) {
        self.stats.batches += 1;
    }

    /// Restores the context to its just-constructed state — cleared
    /// planes, default pipeline state — without charging any counter.
    /// Device replay uses this so execution is a pure function of the
    /// command list: the list's own recorded clears carry the charges.
    pub(crate) fn reset_for_replay(&mut self) {
        self.fb.reset();
        self.color = crate::framebuffer::HALF_GRAY;
        self.line_width = crate::aa_line::DIAGONAL_WIDTH;
        self.point_size = 1.0;
        self.antialias = true;
        self.write_mode = WriteMode::Overwrite;
        self.scissor = None;
    }

    /// The active rasterization window: scissor-local dimensions plus the
    /// pixel offset of its origin in the frame buffer.
    #[inline]
    fn window(&self) -> (usize, usize, usize, usize) {
        match self.scissor {
            Some(r) => (r.w, r.h, r.x, r.y),
            None => (self.fb.width(), self.fb.height(), 0, 0),
        }
    }

    // -- clears and accumulation ops ----------------------------------------

    pub fn clear_color_buffer(&mut self) {
        self.fb.clear_color(BLACK, &mut self.stats);
    }

    pub fn clear_accum_buffer(&mut self) {
        self.fb.clear_accum(&mut self.stats);
    }

    pub fn clear_stencil_buffer(&mut self) {
        self.fb.clear_stencil(&mut self.stats);
    }

    /// `glAccum(GL_LOAD)`: accumulation ← color.
    pub fn accum_load(&mut self) {
        self.fb.accum_load(&mut self.stats);
    }

    /// `glAccum(GL_ACCUM)`: accumulation += color.
    pub fn accum_add(&mut self) {
        self.fb.accum_add(&mut self.stats);
    }

    /// `glAccum(GL_RETURN)`: color ← accumulation.
    pub fn accum_return(&mut self) {
        self.fb.accum_return(&mut self.stats);
    }

    // -- drawing -------------------------------------------------------------

    /// Draws a batch of segments (data coordinates) with the current line
    /// state; vertices are *not* widened — call [`GlContext::draw_points`]
    /// for end-cap coverage when the line width exceeds one pixel.
    pub fn draw_segments(&mut self, segments: &[Segment]) {
        self.stats.draw_calls += 1;
        self.draw_segments_merged(segments);
    }

    /// [`GlContext::draw_segments`] without the draw-call charge: the
    /// device layer coalesces several recorded geometry runs into one
    /// logical hardware submission (the atlas's per-pass batching).
    pub fn draw_segments_merged(&mut self, segments: &[Segment]) {
        let (w, h, ox, oy) = self.window();
        if self.write_mode == WriteMode::Overwrite {
            // Hot path (Algorithm 3.1 renders everything in this mode):
            // fragments go straight into the color buffer, no collection.
            let GlContext {
                ref mut fb,
                ref mut stats,
                ref viewport,
                color,
                line_width,
                antialias,
                ..
            } = *self;
            let mut written = 0usize;
            for seg in segments {
                stats.primitives += 1;
                let a = viewport.to_window(seg.a);
                let b = viewport.to_window(seg.b);
                let mut sink = |x: usize, y: usize| {
                    fb.write_pixel_uncounted(ox + x, oy + y, color);
                    written += 1;
                };
                if antialias {
                    rasterize_aa_line(a, b, line_width, w, h, stats, &mut sink);
                    if a == b {
                        // Degenerate after projection: keep coverage with a
                        // point.
                        rasterize_wide_point(a, line_width, w, h, stats, &mut sink);
                    }
                } else {
                    rasterize_line_diamond_exit(a, b, w, h, stats, &mut sink);
                }
            }
            self.stats.pixels_written += written;
            return;
        }
        // Fragments are collected for the whole batch and written once:
        // blending must not double-add where a boundary's own edges share
        // vertex pixels within one draw call.
        let mut frags: Vec<(usize, usize)> = Vec::new();
        for seg in segments {
            self.stats.primitives += 1;
            let a = self.viewport.to_window(seg.a);
            let b = self.viewport.to_window(seg.b);
            if self.antialias {
                rasterize_aa_line(a, b, self.line_width, w, h, &mut self.stats, &mut |x, y| {
                    frags.push((ox + x, oy + y))
                });
                if a == b {
                    // Degenerate after projection: keep coverage with a point.
                    rasterize_wide_point(a, self.line_width, w, h, &mut self.stats, &mut |x, y| {
                        frags.push((ox + x, oy + y))
                    });
                }
            } else {
                rasterize_line_diamond_exit(a, b, w, h, &mut self.stats, &mut |x, y| {
                    frags.push((ox + x, oy + y))
                });
            }
        }
        self.write_fragments(&frags);
    }

    /// Draws points (data coordinates) with the current point size. With
    /// anti-aliasing enabled (`GL_POINT_SMOOTH`) a point is a *disc* of the
    /// given diameter at any size — including 1.0, where the disc can bleed
    /// into up to four pixels. The distance test's conservativeness depends
    /// on this: a vertex cap centered just outside the window must still
    /// color the window pixels its disc reaches. Without anti-aliasing the
    /// truncation rule of §2.2.1 applies.
    pub fn draw_points(&mut self, points: &[Point]) {
        self.stats.draw_calls += 1;
        self.draw_points_merged(points);
    }

    /// [`GlContext::draw_points`] without the draw-call charge (see
    /// [`GlContext::draw_segments_merged`]).
    pub fn draw_points_merged(&mut self, points: &[Point]) {
        let (w, h, ox, oy) = self.window();
        if self.write_mode == WriteMode::Overwrite {
            let GlContext {
                ref mut fb,
                ref mut stats,
                ref viewport,
                color,
                point_size,
                antialias,
                ..
            } = *self;
            let mut written = 0usize;
            for &p in points {
                stats.primitives += 1;
                let wp = viewport.to_window(p);
                let mut sink = |x: usize, y: usize| {
                    fb.write_pixel_uncounted(ox + x, oy + y, color);
                    written += 1;
                };
                if antialias {
                    rasterize_wide_point(wp, point_size, w, h, stats, &mut sink);
                } else {
                    rasterize_point(wp, w, h, stats, &mut sink);
                }
            }
            self.stats.pixels_written += written;
            return;
        }
        let mut frags: Vec<(usize, usize)> = Vec::new();
        for &p in points {
            self.stats.primitives += 1;
            let wp = self.viewport.to_window(p);
            if self.antialias {
                rasterize_wide_point(wp, self.point_size, w, h, &mut self.stats, &mut |x, y| {
                    frags.push((ox + x, oy + y))
                });
            } else {
                rasterize_point(wp, w, h, &mut self.stats, &mut |x, y| {
                    frags.push((ox + x, oy + y))
                });
            }
        }
        self.write_fragments(&frags);
    }

    /// Fills a polygon (data coordinates, must be convex for "hardware"
    /// fidelity — the ablation triangulates concave input first).
    pub fn draw_filled_polygon(&mut self, vertices: &[Point]) {
        self.stats.draw_calls += 1;
        self.stats.primitives += 1;
        let win: Vec<Point> = vertices
            .iter()
            .map(|&p| self.viewport.to_window(p))
            .collect();
        let (w, h, ox, oy) = self.window();
        let mut frags: Vec<(usize, usize)> = Vec::new();
        rasterize_polygon(&win, w, h, &mut self.stats, &mut |x, y| {
            frags.push((ox + x, oy + y))
        });
        self.write_fragments(&frags);
    }

    fn write_fragments(&mut self, frags: &[(usize, usize)]) {
        match self.write_mode {
            WriteMode::Overwrite => {
                for &(x, y) in frags {
                    self.fb.write_pixel(x, y, self.color, &mut self.stats);
                }
            }
            WriteMode::Blend => {
                // One blend per covered pixel per batch: a boundary's own
                // edges share vertex pixels, and double-adding them would
                // fake an overlap.
                let mut sorted: Vec<(usize, usize)> = frags.to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                for &(x, y) in &sorted {
                    self.fb.blend_pixel(x, y, self.color, &mut self.stats);
                }
            }
            WriteMode::StencilReplace(v) => {
                for &(x, y) in frags {
                    self.fb.stencil_replace(x, y, v, &mut self.stats);
                }
            }
            WriteMode::StencilIncrIfEq(r) => {
                let mut sorted: Vec<(usize, usize)> = frags.to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                for &(x, y) in &sorted {
                    self.fb.stencil_incr_if_eq(x, y, r, &mut self.stats);
                }
            }
        }
    }

    // -- queries -------------------------------------------------------------

    /// The hardware Minmax query over the color buffer.
    pub fn minmax(&mut self) -> (Color, Color) {
        self.stats.minmax_queries += 1;
        self.fb.minmax(&mut self.stats)
    }

    /// Convenience: the maximum red-channel value (all our draws are gray).
    pub fn max_value(&mut self) -> f32 {
        self.minmax().1[0]
    }

    /// Maximum stencil count.
    pub fn stencil_max(&mut self) -> u8 {
        self.stats.minmax_queries += 1;
        self.fb.stencil_max(&mut self.stats)
    }

    /// Number of pixels whose stencil value is at least `min` — one
    /// whole-buffer scan, the counting readback the area-of-overlap
    /// choreography reads back instead of transferring pixels.
    pub fn stencil_count_ge(&mut self, min: u8) -> u64 {
        self.stats.minmax_queries += 1;
        self.fb.stencil_count_ge(min, &mut self.stats)
    }

    /// One whole-buffer scan reducing each of `cells` to the maximum red
    /// value inside it — the batched stand-in for per-cell Minmax queries
    /// (a histogram/reduction pass over the full buffer).
    pub fn cell_max_scan(&mut self, cells: &[PixelRect]) -> Vec<f32> {
        self.stats.minmax_queries += 1;
        self.stats.pixels_scanned += self.fb.len();
        cells
            .iter()
            .map(|c| {
                let mut max = 0.0f32;
                for y in c.y..c.y + c.h {
                    for x in c.x..c.x + c.w {
                        max = max.max(self.fb.read_pixel(x, y)[0]);
                    }
                }
                max
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_geom::Rect;

    fn ctx(n: usize) -> GlContext {
        GlContext::new(Viewport::new(Rect::new(0.0, 0.0, n as f64, n as f64), n, n))
    }

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn algorithm_31_choreography_detects_overlap() {
        let mut gl = ctx(8);
        gl.enable_antialias(true);
        gl.enable_blending(false);
        gl.set_color(crate::framebuffer::HALF_GRAY);
        gl.clear_color_buffer();
        gl.clear_accum_buffer();
        gl.draw_segments(&[seg(0.0, 0.0, 8.0, 8.0)]);
        gl.accum_load();
        gl.clear_color_buffer();
        gl.draw_segments(&[seg(0.0, 8.0, 8.0, 0.0)]);
        gl.accum_add();
        gl.accum_return();
        assert_eq!(gl.max_value(), 1.0, "crossing segments must reach white");
    }

    #[test]
    fn algorithm_31_choreography_no_overlap() {
        let mut gl = ctx(8);
        gl.clear_color_buffer();
        gl.clear_accum_buffer();
        gl.draw_segments(&[seg(0.5, 0.5, 0.5, 7.5)]);
        gl.accum_load();
        gl.clear_color_buffer();
        gl.draw_segments(&[seg(7.5, 0.5, 7.5, 7.5)]);
        gl.accum_add();
        gl.accum_return();
        assert_eq!(gl.max_value(), 0.5, "disjoint segments stay half gray");
    }

    #[test]
    fn blending_strategy_detects_overlap_in_one_pass() {
        let mut gl = ctx(8);
        gl.enable_blending(true);
        gl.set_color(crate::framebuffer::HALF_GRAY);
        gl.draw_segments(&[seg(0.0, 0.0, 8.0, 8.0)]);
        gl.draw_segments(&[seg(0.0, 8.0, 8.0, 0.0)]);
        assert_eq!(gl.max_value(), 1.0);
    }

    #[test]
    fn blending_single_primitive_does_not_self_overlap() {
        let mut gl = ctx(8);
        gl.enable_blending(true);
        gl.set_color(crate::framebuffer::HALF_GRAY);
        gl.draw_segments(&[seg(0.0, 0.0, 8.0, 8.0)]);
        assert_eq!(gl.max_value(), 0.5);
    }

    #[test]
    fn stencil_strategy_counts_overdraw() {
        let mut gl = ctx(8);
        gl.set_write_mode(WriteMode::StencilReplace(1));
        gl.draw_segments(&[seg(0.0, 0.0, 8.0, 8.0)]);
        gl.set_write_mode(WriteMode::StencilIncrIfEq(1));
        gl.draw_segments(&[seg(0.0, 8.0, 8.0, 0.0)]);
        assert_eq!(gl.stencil_max(), 2);
        gl.clear_stencil_buffer();
        assert_eq!(gl.stencil_max(), 0);
    }

    #[test]
    fn stencil_incr_if_eq_ignores_self_overlap() {
        // The second object's own edges share vertex pixels; EQUAL+INCR
        // must count each marked pixel at most once per draw call.
        let mut gl = ctx(8);
        gl.set_write_mode(WriteMode::StencilReplace(1));
        gl.draw_segments(&[seg(0.0, 4.0, 8.0, 4.0)]);
        gl.set_write_mode(WriteMode::StencilIncrIfEq(1));
        // A chain of two touching segments far from the first object.
        gl.draw_segments(&[seg(0.0, 7.5, 4.0, 7.5), seg(4.0, 7.5, 8.0, 7.5)]);
        assert!(gl.stencil_max() < 2, "self-touching chain faked an overlap");
    }

    #[test]
    fn line_width_clamps_at_hardware_limit() {
        let mut gl = ctx(4);
        assert_eq!(gl.set_line_width(25.0), MAX_AA_LINE_WIDTH);
        assert_eq!(gl.set_line_width(3.0), 3.0);
        assert_eq!(gl.set_point_size(99.0), MAX_POINT_SIZE);
    }

    #[test]
    fn retarget_keeps_buffers_for_explicit_clears() {
        let mut gl = ctx(8);
        gl.draw_segments(&[seg(0.0, 0.0, 8.0, 8.0)]);
        assert!(gl.max_value() > 0.0);
        // Retarget does NOT clear (Algorithm 3.1 clears explicitly)...
        gl.retarget(Viewport::new(Rect::new(10.0, 10.0, 20.0, 20.0), 8, 8));
        assert!(gl.max_value() > 0.0, "stale pixels remain until cleared");
        // ...and the explicit clear wipes them.
        gl.clear_color_buffer();
        assert_eq!(gl.max_value(), 0.0);
        // Different size reallocates (fresh buffers start clear).
        gl.retarget(Viewport::new(Rect::new(0.0, 0.0, 1.0, 1.0), 16, 16));
        assert_eq!(gl.frame_buffer().width(), 16);
        assert_eq!(gl.max_value(), 0.0);
    }

    #[test]
    fn stats_grow_monotonically() {
        let mut gl = ctx(8);
        let s0 = gl.stats();
        gl.draw_segments(&[seg(0.0, 0.0, 8.0, 8.0)]);
        let s1 = gl.stats();
        assert!(s1.pixels_written > s0.pixels_written);
        assert!(s1.primitives == s0.primitives + 1);
        gl.minmax();
        let s2 = gl.stats();
        assert_eq!(s2.minmax_queries, s1.minmax_queries + 1);
        assert_eq!(s2.pixels_scanned, s1.pixels_scanned + 64);
    }

    #[test]
    fn smooth_point_disc_bleeds_across_pixel_rows() {
        // Regression: a size-1 smooth point centered just below the window
        // must still color row 0 (its disc reaches 0.09 into the window).
        // The aliased truncation rule would clip it entirely — and that
        // once caused the distance test to drop a vertex cap and reject a
        // truly-within-distance pair.
        let vp = Viewport::new(Rect::new(0.0, 0.0, 8.0, 8.0), 8, 8);
        let mut gl = GlContext::new(vp);
        gl.enable_antialias(true);
        gl.set_point_size(1.0);
        // Window coords = data coords here; y = -0.41 is outside.
        gl.draw_points(&[Point::new(3.5, -0.41)]);
        assert!(
            gl.frame_buffer().read_pixel(3, 0)[0] > 0.0,
            "disc must bleed into row 0"
        );
        // Aliased: same point colors nothing.
        let mut gl2 = GlContext::new(vp);
        gl2.enable_antialias(false);
        gl2.set_point_size(1.0);
        gl2.draw_points(&[Point::new(3.5, -0.41)]);
        assert_eq!(gl2.frame_buffer().read_pixel(3, 0)[0], 0.0);
    }

    #[test]
    fn wide_points_cover_vertices() {
        let mut gl = ctx(8);
        gl.set_point_size(4.0);
        gl.draw_points(&[Point::new(4.0, 4.0)]);
        // A 4-pixel disc around window (4,4) must cover several pixels.
        let covered = gl
            .frame_buffer()
            .pixels()
            .filter(|&(_, _, c)| c[0] > 0.0)
            .count();
        assert!(covered >= 4, "got {covered}");
    }

    #[test]
    fn data_space_projection_applies() {
        // Viewport over [100, 200]²: a segment at data x = 150 lands mid-window.
        let vp = Viewport::new(Rect::new(100.0, 100.0, 200.0, 200.0), 8, 8);
        let mut gl = GlContext::new(vp);
        gl.draw_segments(&[seg(150.0, 100.0, 150.0, 200.0)]);
        let mid_col_covered = gl
            .frame_buffer()
            .pixels()
            .filter(|&(x, _, c)| c[0] > 0.0 && (x == 3 || x == 4))
            .count();
        assert!(mid_col_covered > 0);
    }
}
