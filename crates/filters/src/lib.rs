//! The runtime intermediate filters the paper implements for its baseline
//! pipelines (§4.1.1) — the middle stage of Fig. 8:
//!
//! * [`interior`] — the **interior filter** for intersection selections: a
//!   `2^l × 2^l` tiling of the query polygon whose fully-interior tiles
//!   identify *positive* candidates without geometry comparison (Fig. 9(a),
//!   swept over `l` in Figure 10);
//! * [`object_filters`] — the **0-object** and **1-object** filters for
//!   within-distance joins: cheap upper bounds on the object distance that
//!   confirm positive pairs early (Fig. 14's breakdown).
//!
//! Both are *runtime* filters: they need only MBRs and (for the 1-object
//! filter) one actual geometry — no pre-processing, matching the paper's
//! constraint that nothing about storage or indexes may change.
//!
//! Soundness contracts (property-tested):
//! * every candidate the interior filter accepts truly intersects the query
//!   polygon (it may accept fewer than possible, never wrong ones);
//! * the 0/1-object bounds are true upper bounds on the polygon distance.

pub mod interior;
pub mod object_filters;

pub use interior::InteriorFilter;
pub use object_filters::{one_object_upper_bound, zero_object_upper_bound};
