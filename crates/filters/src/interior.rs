//! The interior filter (§4.1.1, Fig. 9(a)).
//!
//! "The interior filter partitions the query polygon into 2^l × 2^l tiles,
//! and keeps the tiles that are completely inside the query polygon as an
//! approximation of the polygon interior. Given an object, the interior
//! filter identifies the object as a positive result if the MBR of the
//! object is completely covered by the interior tiles."
//!
//! The filter can only *confirm* intersections (a covered MBR implies the
//! object is inside the polygon); candidates it does not confirm still go
//! to geometry comparison. Figure 10 shows why its payoff is limited: the
//! positives it finds are exactly the containment cases that the cheap
//! point-in-polygon step would resolve anyway.
//!
//! Construction is conservative: a tile is marked interior only when its
//! center is inside the polygon *and* no polygon edge's MBR overlaps the
//! tile. Over-marking boundary tiles can only shrink the interior
//! approximation, never break soundness.

use spatial_geom::pip::point_strictly_in_polygon;
use spatial_geom::{Polygon, Rect};

/// A tiling-based interior approximation of one query polygon.
#[derive(Debug, Clone)]
pub struct InteriorFilter {
    mbr: Rect,
    level: u32,
    tiles_per_side: usize,
    /// Row-major interior bitmap.
    interior: Vec<bool>,
    /// Interior tiles found (for reporting / tests).
    interior_count: usize,
}

impl InteriorFilter {
    /// Builds the filter for `query` at tiling level `level` (`2^level`
    /// tiles per side). Level 0 is a single tile — interior only for
    /// rectangle-filling polygons — matching the left edge of Figure 10.
    ///
    /// Cost is O(edges + 4^level), amortized over all objects the filter
    /// screens (the paper's footnote 2).
    pub fn build(query: &Polygon, level: u32) -> Self {
        assert!(level <= 12, "4^{level} tiles would be absurd");
        let mbr = query.mbr();
        let n = 1usize << level;
        let mut boundary = vec![false; n * n];
        let w = mbr.width().max(f64::MIN_POSITIVE);
        let h = mbr.height().max(f64::MIN_POSITIVE);
        let tw = w / n as f64;
        let th = h / n as f64;

        // Mark every tile overlapped by an edge MBR as boundary.
        for e in query.edges() {
            let em = e.mbr();
            let c0 = (((em.xmin - mbr.xmin) / tw).floor() as i64).clamp(0, n as i64 - 1);
            let c1 = (((em.xmax - mbr.xmin) / tw).floor() as i64).clamp(0, n as i64 - 1);
            let r0 = (((em.ymin - mbr.ymin) / th).floor() as i64).clamp(0, n as i64 - 1);
            let r1 = (((em.ymax - mbr.ymin) / th).floor() as i64).clamp(0, n as i64 - 1);
            for r in r0..=r1 {
                for c in c0..=c1 {
                    boundary[r as usize * n + c as usize] = true;
                }
            }
        }

        // Non-boundary tiles are uniformly inside or outside; classify by
        // their center.
        let mut interior = vec![false; n * n];
        let mut interior_count = 0;
        for r in 0..n {
            for c in 0..n {
                if boundary[r * n + c] {
                    continue;
                }
                let cx = mbr.xmin + (c as f64 + 0.5) * tw;
                let cy = mbr.ymin + (r as f64 + 0.5) * th;
                if point_strictly_in_polygon(spatial_geom::Point::new(cx, cy), query) {
                    interior[r * n + c] = true;
                    interior_count += 1;
                }
            }
        }
        InteriorFilter {
            mbr,
            level,
            tiles_per_side: n,
            interior,
            interior_count,
        }
    }

    /// The tiling level this filter was built at.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Number of tiles marked interior.
    pub fn interior_tile_count(&self) -> usize {
        self.interior_count
    }

    /// True when `candidate_mbr` is completely covered by interior tiles —
    /// a guaranteed-positive intersection (the object lies inside the query
    /// polygon).
    pub fn covers(&self, candidate_mbr: &Rect) -> bool {
        if self.interior_count == 0 {
            return false;
        }
        if !self.mbr.contains_rect(candidate_mbr) {
            return false;
        }
        let n = self.tiles_per_side;
        let tw = self.mbr.width().max(f64::MIN_POSITIVE) / n as f64;
        let th = self.mbr.height().max(f64::MIN_POSITIVE) / n as f64;
        // Every tile the candidate MBR overlaps must be interior.
        let c0 =
            (((candidate_mbr.xmin - self.mbr.xmin) / tw).floor() as i64).clamp(0, n as i64 - 1);
        let c1 =
            (((candidate_mbr.xmax - self.mbr.xmin) / tw).floor() as i64).clamp(0, n as i64 - 1);
        let r0 =
            (((candidate_mbr.ymin - self.mbr.ymin) / th).floor() as i64).clamp(0, n as i64 - 1);
        let r1 =
            (((candidate_mbr.ymax - self.mbr.ymin) / th).floor() as i64).clamp(0, n as i64 - 1);
        for r in r0..=r1 {
            for c in c0..=c1 {
                if !self.interior[r as usize * n + c as usize] {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_geom::Polygon;

    fn big_square() -> Polygon {
        Polygon::from_coords(&[(0.0, 0.0), (16.0, 0.0), (16.0, 16.0), (0.0, 16.0)])
    }

    #[test]
    fn level_zero_has_no_interior_tiles() {
        // The single tile equals the MBR, and the boundary edges overlap it.
        let f = InteriorFilter::build(&big_square(), 0);
        assert_eq!(f.interior_tile_count(), 0);
        assert!(!f.covers(&Rect::new(4.0, 4.0, 5.0, 5.0)));
    }

    #[test]
    fn square_interior_grows_with_level() {
        let mut prev = 0.0;
        for level in 1..=5 {
            let f = InteriorFilter::build(&big_square(), level);
            let frac = f.interior_tile_count() as f64 / ((1usize << (2 * level)) as f64);
            assert!(
                frac >= prev,
                "interior fraction should not shrink: {frac} < {prev} at level {level}"
            );
            prev = frac;
        }
        // At level 5 a square's interior fraction approaches (30/32)^2.
        assert!(prev > 0.8, "interior fraction {prev}");
    }

    #[test]
    fn deep_interior_candidate_is_confirmed() {
        let f = InteriorFilter::build(&big_square(), 4);
        assert!(f.covers(&Rect::new(6.0, 6.0, 10.0, 10.0)));
    }

    #[test]
    fn boundary_straddling_candidate_is_not_confirmed() {
        let f = InteriorFilter::build(&big_square(), 4);
        assert!(!f.covers(&Rect::new(-1.0, 6.0, 3.0, 10.0)), "sticks out");
        assert!(
            !f.covers(&Rect::new(0.1, 0.1, 2.0, 2.0)),
            "touches boundary tiles"
        );
    }

    #[test]
    fn concave_pocket_is_not_interior() {
        // C-shape: the pocket is inside the MBR but outside the polygon.
        let c = Polygon::from_coords(&[
            (0.0, 0.0),
            (16.0, 0.0),
            (16.0, 4.0),
            (4.0, 4.0),
            (4.0, 12.0),
            (16.0, 12.0),
            (16.0, 16.0),
            (0.0, 16.0),
        ]);
        let f = InteriorFilter::build(&c, 5);
        // Candidate wholly in the pocket must NOT be confirmed.
        assert!(!f.covers(&Rect::new(8.0, 6.0, 12.0, 10.0)));
        // Candidate in the spine is confirmed at this resolution.
        assert!(f.covers(&Rect::new(1.0, 6.0, 2.5, 10.0)));
    }

    #[test]
    fn soundness_on_sampled_candidates() {
        // Every confirmed candidate must truly intersect the polygon.
        let c = Polygon::from_coords(&[
            (0.0, 0.0),
            (16.0, 0.0),
            (16.0, 4.0),
            (4.0, 4.0),
            (4.0, 12.0),
            (16.0, 12.0),
            (16.0, 16.0),
            (0.0, 16.0),
        ]);
        let f = InteriorFilter::build(&c, 4);
        let mut confirmed = 0;
        for i in 0..40 {
            for j in 0..40 {
                let x = i as f64 * 0.45;
                let y = j as f64 * 0.45;
                let cand = Rect::new(x, y, x + 1.2, y + 1.2);
                if f.covers(&cand) {
                    confirmed += 1;
                    // The candidate rect corners are all inside the polygon.
                    for corner in cand.corners() {
                        assert!(
                            spatial_geom::point_in_polygon(corner, &c),
                            "confirmed candidate {cand:?} leaks outside"
                        );
                    }
                }
            }
        }
        assert!(confirmed > 0, "filter should confirm something");
    }

    #[test]
    fn degenerate_flat_polygon() {
        // A sliver triangle with (near) zero area: no interior tiles, no
        // confirmations, no panics.
        let sliver = Polygon::from_coords(&[(0.0, 0.0), (10.0, 0.001), (20.0, 0.0)]);
        let f = InteriorFilter::build(&sliver, 3);
        assert_eq!(f.interior_tile_count(), 0);
        assert!(!f.covers(&Rect::new(5.0, 0.0, 6.0, 0.0005)));
    }
}
