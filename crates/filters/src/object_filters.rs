//! The 0-object and 1-object filters for within-distance joins (Chan,
//! §4.1.1): cheap *upper bounds* on the distance between two polygons. A
//! candidate pair whose upper bound is ≤ D is a confirmed positive and
//! skips geometry comparison entirely.
//!
//! Both bounds exploit the defining property of an MBR: the object touches
//! all four of its sides.
//!
//! * **0-object** (MBRs only): for any side `s1` of `R1` and `s2` of `R2`,
//!   there are object points on both sides, so
//!   `dist(A, B) ≤ maxDist(s1, s2)`; minimizing over the 16 side pairs
//!   gives the bound. `maxDist` of two segments is attained at endpoint
//!   pairs because the distance is convex in each argument.
//!
//! * **1-object** (actual geometry of one object, the paper retrieves the
//!   *larger* one): `B` touches each side `s2 = q1q2` of `R2` somewhere, and
//!   `q ↦ dist(A, q)` is 1-Lipschitz, so along the side
//!   `max_q dist(A, q) ≤ (dist(A, q1) + dist(A, q2) + |q1q2|) / 2`;
//!   minimizing over the four sides (and capping by the 0-object bound)
//!   gives a tighter bound. This is a conservative variant of Chan's
//!   filter — identical contract, simpler geometry.

use spatial_geom::distance::point_boundary_min_dist;
use spatial_geom::{Point, Polygon, Rect, Segment};

/// Maximum distance between two segments: the farthest endpoint pair.
fn seg_max_dist(a: (Point, Point), b: (Point, Point)) -> f64 {
    a.0.dist(b.0)
        .max(a.0.dist(b.1))
        .max(a.1.dist(b.0))
        .max(a.1.dist(b.1))
}

/// The 0-object upper bound on `dist(A, B)` from the MBRs alone.
pub fn zero_object_upper_bound(r1: &Rect, r2: &Rect) -> f64 {
    let mut best = f64::INFINITY;
    for s1 in r1.sides() {
        for s2 in r2.sides() {
            best = best.min(seg_max_dist(s1, s2));
        }
    }
    best
}

/// The 1-object upper bound: uses the actual boundary of `a` (whose edges
/// are passed pre-collected, since the engine caches them) against the MBR
/// of the other object. The Lipschitz cap can exceed the 0-object bound on
/// skewed sides, so the 0-object bound is applied internally as a floor.
///
/// `a_edges` may be any *subset* of `a`'s boundary: distances to a subset
/// only grow, and the bound stays valid (just weaker). The engine exploits
/// this by sampling a few hundred edges of huge polygons — an unsampled
/// 39k-vertex boundary would make the filter cost more than the geometry
/// comparison it exists to avoid.
pub fn one_object_upper_bound(a: &Polygon, a_edges: &[Segment], r2: &Rect) -> f64 {
    let mut best = zero_object_upper_bound(&a.mbr(), r2);
    for (q1, q2) in r2.sides() {
        let d1 = point_boundary_min_dist(q1, a_edges);
        let d2 = point_boundary_min_dist(q2, a_edges);
        let side = (d1 + d2 + q1.dist(q2)) / 2.0;
        best = best.min(side);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_geom::min_dist_brute;

    fn square(x: f64, y: f64, s: f64) -> Polygon {
        Polygon::from_coords(&[(x, y), (x + s, y), (x + s, y + s), (x, y + s)])
    }

    #[test]
    fn zero_object_on_aligned_squares() {
        // Unit squares 3 apart in x: facing sides are (1,0)-(1,1) and
        // (4,0)-(4,1); their max endpoint distance is sqrt(9 + 1).
        let r1 = Rect::new(0.0, 0.0, 1.0, 1.0);
        let r2 = Rect::new(4.0, 0.0, 5.0, 1.0);
        let ub = zero_object_upper_bound(&r1, &r2);
        assert!((ub - 10.0f64.sqrt()).abs() < 1e-12, "got {ub}");
    }

    #[test]
    fn zero_object_is_an_upper_bound() {
        let a = square(0.0, 0.0, 2.0);
        let b = square(5.0, 1.0, 3.0);
        let ub = zero_object_upper_bound(&a.mbr(), &b.mbr());
        assert!(ub >= min_dist_brute(&a, &b));
    }

    #[test]
    fn one_object_tightens_zero_object() {
        // A spiky polygon whose MBR is mostly empty: the 1-object bound
        // (which sees the actual boundary) must be no worse.
        let spiky = Polygon::from_coords(&[
            (0.0, 0.0),
            (10.0, 0.0),
            (0.1, 0.1), // deep concavity: MBR is mostly empty space
            (0.0, 10.0),
        ]);
        let other = square(20.0, 0.0, 2.0);
        let edges: Vec<Segment> = spiky.edges().collect();
        let ub0 = zero_object_upper_bound(&spiky.mbr(), &other.mbr());
        let ub1 = one_object_upper_bound(&spiky, &edges, &other.mbr());
        assert!(ub1 <= ub0, "1-object {ub1} must not exceed 0-object {ub0}");
        assert!(
            ub1 >= min_dist_brute(&spiky, &other),
            "still an upper bound"
        );
    }

    #[test]
    fn bounds_confirm_touching_squares() {
        // Two adjacent unit squares: distance 0; both bounds stay small
        // enough to confirm reasonable query distances.
        let a = square(0.0, 0.0, 1.0);
        let b = square(1.0, 0.0, 1.0);
        let ub0 = zero_object_upper_bound(&a.mbr(), &b.mbr());
        // Shared side: maxDist of the coincident sides is the side length.
        assert!(ub0 <= 2.0f64.sqrt() + 1e-12);
        let edges: Vec<Segment> = a.edges().collect();
        let ub1 = one_object_upper_bound(&a, &edges, &b.mbr());
        assert!(ub1 <= ub0);
        assert!(ub1 >= 0.0);
    }

    #[test]
    fn upper_bounds_on_battery_of_pairs() {
        // Deterministic battery: bounds must always dominate the true
        // distance.
        let shapes: Vec<Polygon> = (0..6)
            .map(|i| {
                let x = i as f64 * 4.0;
                Polygon::from_coords(&[
                    (x, 0.0),
                    (x + 2.0, 0.5),
                    (x + 3.0, 2.5),
                    (x + 1.0, 3.0),
                    (x + 0.2, 1.5),
                ])
            })
            .collect();
        for i in 0..shapes.len() {
            for j in (i + 1)..shapes.len() {
                let (a, b) = (&shapes[i], &shapes[j]);
                let true_d = min_dist_brute(a, b);
                let ub0 = zero_object_upper_bound(&a.mbr(), &b.mbr());
                let edges: Vec<Segment> = a.edges().collect();
                let ub1 = one_object_upper_bound(a, &edges, &b.mbr());
                assert!(ub0 + 1e-9 >= true_d, "0-object violated: {ub0} < {true_d}");
                assert!(ub1 + 1e-9 >= true_d, "1-object violated: {ub1} < {true_d}");
                assert!(ub1 <= ub0 + 1e-9, "1-object must cap at 0-object");
            }
        }
    }
}
