//! Criterion microbenchmarks for the area-of-overlap aggregation
//! pipeline (DESIGN.md §14) on the LANDC ⋈ LANDO join: the recorded
//! stencil choreography across the resolution ladder, against the exact
//! polygon-clipping oracle over the same candidate pairs. Quantization
//! is the whole trade — per-pair hardware cost grows with the stencil
//! raster area while the oracle pays per clipped triangle pair — so the
//! two groups together price the §14 envelope. Small scale and sample
//! counts keep `cargo bench --workspace` in minutes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hwa_core::{EngineConfig, HwConfig, PreparedDataset, SpatialEngine};
use spatial_geom::overlap_area_exact;
use std::hint::black_box;
use std::time::Duration;

const SCALE: f64 = 0.01;
const SEED: u64 = 42;

fn pair() -> (PreparedDataset, PreparedDataset) {
    let a = spatial_datagen::landc(SCALE, SEED);
    let b = spatial_datagen::lando(SCALE, SEED);
    (
        PreparedDataset::new(a.name, a.polygons),
        PreparedDataset::new(b.name, b.polygons),
    )
}

fn hw_base() -> EngineConfig {
    EngineConfig::hardware(HwConfig::at_resolution(8).with_threshold(0))
}

/// The hardware choreography across the contractual resolution ladder:
/// cost per pair scales with the stencil raster, precision with the
/// per-pixel cell area.
fn bench_overlap_resolution(c: &mut Criterion) {
    let (a, b) = pair();
    let mut g = c.benchmark_group("overlap_area_resolution");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for res in [4usize, 8, 16, 32, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(res), &res, |bch, &res| {
            let mut e = SpatialEngine::new(hw_base());
            bch.iter(|| {
                let (rows, _) = e.overlap_area_join(black_box(&a), black_box(&b), res);
                rows.len()
            })
        });
    }
    g.finish();
}

/// The exact polygon-clipping oracle over the same candidate pairs —
/// what an application pays in software when it cannot accept
/// quantization. The candidate set is computed once outside the timed
/// region: the MBR filter stage is shared by both sides, so only the
/// per-pair area work is measured.
fn bench_overlap_exact_baseline(c: &mut Criterion) {
    let (a, b) = pair();
    let (pairs, _) = SpatialEngine::new(EngineConfig::software()).intersection_join(&a, &b);
    let mut g = c.benchmark_group("overlap_area_exact_baseline");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("clip_all_pairs", |bch| {
        bch.iter(|| {
            pairs
                .iter()
                .filter_map(|&(i, j)| {
                    overlap_area_exact(black_box(a.polygon(i)), black_box(b.polygon(j)))
                })
                .sum::<f64>()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_overlap_resolution,
    bench_overlap_exact_baseline
);
criterion_main!(benches);
