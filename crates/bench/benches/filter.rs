//! Criterion microbenchmark for the stage-1 MBR filter: the synchronized
//! tree self-join (the filter side of Fig. 12's join workload) under every
//! kernel/scheduler combination — scalar vs SIMD node kernels × sequential
//! vs threaded page-pair scheduling — at three dataset scales. The
//! acceptance figure is the vectorized threaded configuration beating the
//! scalar sequential traversal (the seed behaviour); candidates and order
//! are bit-identical by contract (property-tested in `spatial-index` and
//! cross-checked in `verify`), so the only thing left to measure is
//! filter throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hwa_core::PreparedDataset;
use spatial_index::{join_intersecting_with, FilterConfig, FilterStats};
use std::hint::black_box;
use std::time::Duration;

fn bench_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    for scale in [0.01f64, 0.05, 0.2] {
        let ds = spatial_datagen::landc(scale, 17);
        let ds = PreparedDataset::new(ds.name, ds.polygons);
        let configs = [
            ("scalar-1t", FilterConfig::scalar()),
            (
                "simd-1t",
                FilterConfig {
                    threads: 1,
                    simd: true,
                    ..FilterConfig::default()
                },
            ),
            (
                "scalar-4t",
                FilterConfig {
                    threads: 4,
                    simd: false,
                    ..FilterConfig::default()
                },
            ),
            (
                "simd-4t",
                FilterConfig {
                    threads: 4,
                    simd: true,
                    ..FilterConfig::default()
                },
            ),
        ];
        for (name, cfg) in configs {
            group.bench_with_input(
                BenchmarkId::new(name, format!("landc-{}", ds.len())),
                &(&ds, cfg),
                |b, (ds, cfg)| {
                    b.iter(|| {
                        let mut stats = FilterStats::default();
                        let pairs = join_intersecting_with(
                            black_box(&ds.tree),
                            black_box(&ds.tree),
                            cfg,
                            &mut stats,
                        );
                        (pairs.len(), stats.node_tests)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_filter);
criterion_main!(benches);
