//! Criterion microbenchmarks for the kernels underneath the figures:
//! point-in-polygon, the two sweeps, minDist, the AA-line rasterizer, the
//! R-tree, and one full Algorithm 3.1 call. Kept short (small sample
//! count) so `cargo bench --workspace` finishes in minutes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hwa_core::hw_intersect::HwTester;
use hwa_core::{HwConfig, TestStats};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spatial_datagen::shapes::harmonic_star;
use spatial_geom::intersect::{polygons_intersect_with, IntersectStats, SweepAlgo};
use spatial_geom::{point_in_polygon, within_distance, Point, Polygon, Rect, Segment};
use spatial_index::RTree;
use spatial_raster::aa_line::{rasterize_aa_line, DIAGONAL_WIDTH};
use spatial_raster::HwStats;
use std::hint::black_box;
use std::time::Duration;

fn star(n: usize, seed: u64, cx: f64, cy: f64) -> Polygon {
    let mut rng = StdRng::seed_from_u64(seed);
    harmonic_star(Point::new(cx, cy), 50.0, n, 0.5, 0.3, 1.0, 0.0, &mut rng)
}

fn bench_pip(c: &mut Criterion) {
    let mut g = c.benchmark_group("point_in_polygon");
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for n in [64usize, 512, 4096] {
        let poly = star(n, 1, 0.0, 0.0);
        let p = Point::new(10.0, 10.0);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| point_in_polygon(black_box(p), black_box(&poly)))
        });
    }
    g.finish();
}

fn bench_sweeps(c: &mut Criterion) {
    let mut g = c.benchmark_group("polygon_intersect");
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for n in [64usize, 512, 2048] {
        // Overlapping pair: the expensive path.
        let p = star(n, 2, 0.0, 0.0);
        let q = star(n, 3, 40.0, 0.0);
        for (name, algo) in [("tree", SweepAlgo::Tree), ("forward", SweepAlgo::Forward)] {
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| {
                    let mut st = IntersectStats::default();
                    polygons_intersect_with(black_box(&p), black_box(&q), algo, &mut st)
                })
            });
        }
    }
    g.finish();
}

fn bench_mindist(c: &mut Criterion) {
    let mut g = c.benchmark_group("within_distance");
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for n in [64usize, 512] {
        let p = star(n, 4, 0.0, 0.0);
        let q = star(n, 5, 150.0, 0.0);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| within_distance(black_box(&p), black_box(&q), 30.0))
        });
    }
    g.finish();
}

fn bench_aa_line(c: &mut Criterion) {
    let mut g = c.benchmark_group("aa_line_raster");
    g.sample_size(30);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for res in [8usize, 32, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(res), &res, |b, &res| {
            let a = Point::new(0.3, 0.7);
            let e = Point::new(res as f64 - 0.3, res as f64 - 1.1);
            b.iter(|| {
                let mut st = HwStats::default();
                let mut count = 0usize;
                rasterize_aa_line(
                    black_box(a),
                    black_box(e),
                    DIAGONAL_WIDTH,
                    res,
                    res,
                    &mut st,
                    &mut |_, _| count += 1,
                );
                count
            })
        });
    }
    g.finish();
}

fn bench_rtree(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtree");
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    let items: Vec<(Rect, usize)> = (0..10_000)
        .map(|i| {
            let x = (i % 100) as f64 * 10.0;
            let y = (i / 100) as f64 * 10.0;
            (Rect::new(x, y, x + 8.0, y + 8.0), i)
        })
        .collect();
    g.bench_function("bulk_load_10k", |b| {
        b.iter(|| RTree::bulk_load(black_box(items.clone())))
    });
    let tree = RTree::bulk_load(items);
    g.bench_function("window_query", |b| {
        let w = Rect::new(200.0, 200.0, 400.0, 400.0);
        b.iter(|| tree.search_intersects(black_box(&w)).len())
    });
    g.finish();
}

fn bench_hw_test(c: &mut Criterion) {
    let mut g = c.benchmark_group("hw_intersect_pair");
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    // Near-miss pair (the case hardware accelerates) at two resolutions.
    let p = star(512, 6, 0.0, 0.0);
    let q = star(512, 7, 103.0, 0.0);
    for res in [8usize, 16] {
        g.bench_with_input(BenchmarkId::new("hw", res), &res, |b, &res| {
            let mut t = HwTester::new(HwConfig::at_resolution(res));
            b.iter(|| {
                let mut st = TestStats::default();
                t.intersects(black_box(&p), black_box(&q), &mut st)
            })
        });
    }
    g.bench_function("sw", |b| {
        b.iter(|| {
            let mut st = IntersectStats::default();
            polygons_intersect_with(black_box(&p), black_box(&q), SweepAlgo::Tree, &mut st)
        })
    });
    g.finish();
}

fn bench_segment_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("segment_kernels");
    g.sample_size(30);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    let a = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 7.0));
    let b_seg = Segment::new(Point::new(3.0, 9.0), Point::new(12.0, 1.0));
    g.bench_function("intersects", |bch| {
        bch.iter(|| black_box(a).intersects(black_box(&b_seg)))
    });
    g.bench_function("distance", |bch| {
        bch.iter(|| black_box(a).dist_segment(black_box(&b_seg)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_pip,
    bench_sweeps,
    bench_mindist,
    bench_aa_line,
    bench_rtree,
    bench_hw_test,
    bench_segment_kernel
);
criterion_main!(benches);
