//! Criterion microbenchmarks for the staged executor's two scheduling
//! knobs on the Fig. 12 workload (LANDC ⋈ LANDO): per-pair vs batched
//! hardware submission, and refinement thread scaling. Small scale and
//! sample counts keep `cargo bench --workspace` in minutes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hwa_core::{EngineConfig, HwConfig, PreparedDataset, SpatialEngine};
use std::hint::black_box;
use std::time::Duration;

const SCALE: f64 = 0.01;
const SEED: u64 = 42;

fn fig12_pair() -> (PreparedDataset, PreparedDataset) {
    let a = spatial_datagen::landc(SCALE, SEED);
    let b = spatial_datagen::lando(SCALE, SEED);
    (
        PreparedDataset::new(a.name, a.polygons),
        PreparedDataset::new(b.name, b.polygons),
    )
}

fn hw_base() -> EngineConfig {
    EngineConfig::hardware(HwConfig::at_resolution(8).with_threshold(500))
}

/// Per-pair choreography vs atlas batching at several batch sizes. The
/// interesting figure is the submission count (the modeled fixed costs);
/// the wall clock here is dominated by the simulated rasterizer.
fn bench_batched_submission(c: &mut Criterion) {
    let (a, b) = fig12_pair();
    let mut g = c.benchmark_group("staged_join_batch");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for batch in [1usize, 16, 64, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |bch, &batch| {
            let mut e = SpatialEngine::new(EngineConfig {
                hw_batch: batch,
                ..hw_base()
            });
            bch.iter(|| {
                let (results, cost) = e.intersection_join(black_box(&a), black_box(&b));
                (results.len(), cost.tests.hw.submissions())
            })
        });
    }
    g.finish();
}

/// Refinement thread scaling at the recommended batch size.
fn bench_thread_scaling(c: &mut Criterion) {
    let (a, b) = fig12_pair();
    let mut g = c.benchmark_group("staged_join_threads");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |bch, &threads| {
                let mut e = SpatialEngine::new(EngineConfig {
                    hw_batch: 64,
                    refine_threads: threads,
                    ..hw_base()
                });
                bch.iter(|| {
                    let (results, _) = e.intersection_join(black_box(&a), black_box(&b));
                    results.len()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_batched_submission, bench_thread_scaling);
criterion_main!(benches);
