//! Criterion microbenchmark for the recording cache & fusion layer: the
//! same atlas-scale batch prepared three ways — cold recording (walk the
//! choreography and emit every command), cold recording plus a fusion
//! pass, and a warm-cache splice (instantiate a fused skeleton with
//! fresh viewports and geometry). The acceptance figure is the splice
//! beating cold recording: execution is bit-identical by contract
//! (property-tested in `spatial-raster` and cross-checked in `verify`),
//! so the only thing left to measure is preparation time.
//!
//! A fourth row times executing the fused list against the unfused one
//! on the reference backend, pinning the claim that fusion never *costs*
//! execution time (it only removes uncharged state churn).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spatial_geom::{Point, Rect, Segment};
use spatial_raster::{AtlasJob, DeviceKind, ListTemplate, Viewport};
use std::hint::black_box;
use std::time::Duration;

/// An atlas-scale batch: many cells of dense random boundary work, the
/// shape one batched `hw_batch` round submits on a real join.
fn atlas_scale_jobs(jobs: usize, segments_per_side: usize, cell: usize) -> Vec<AtlasJob> {
    let mut rng = StdRng::seed_from_u64(7);
    let seg = |rng: &mut StdRng| {
        let p = Point::new(rng.gen_range(0.0..16.0), rng.gen_range(0.0..16.0));
        let q = Point::new(rng.gen_range(0.0..16.0), rng.gen_range(0.0..16.0));
        Segment::new(p, q)
    };
    (0..jobs)
        .map(|_| AtlasJob {
            viewport: Viewport::new(Rect::new(0.0, 0.0, 16.0, 16.0), cell, cell),
            first_segments: (0..segments_per_side).map(|_| seg(&mut rng)).collect(),
            first_points: Vec::new(),
            second_segments: (0..segments_per_side).map(|_| seg(&mut rng)).collect(),
            second_points: Vec::new(),
        })
        .collect()
}

fn bench_recording(c: &mut Criterion) {
    let width = spatial_raster::aa_line::DIAGONAL_WIDTH;
    let jobs = atlas_scale_jobs(256, 48, 32);
    let (cold, _) = spatial_raster::atlas::record_batch(&jobs, width, 1.0);
    let (fused, _) = cold.fuse();
    let template = ListTemplate::new(&fused);

    let mut group = c.benchmark_group("recording");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    group.bench_with_input(BenchmarkId::new("record", "cold"), &jobs, |b, jobs| {
        b.iter(|| {
            let (list, layout) = spatial_raster::atlas::record_batch(black_box(jobs), width, 1.0);
            (list.width(), layout)
        })
    });
    group.bench_with_input(BenchmarkId::new("record", "cold+fuse"), &jobs, |b, jobs| {
        b.iter(|| {
            let (list, _) = spatial_raster::atlas::record_batch(black_box(jobs), width, 1.0);
            let (fused, elided) = list.fuse();
            (fused.width(), elided)
        })
    });
    group.bench_with_input(
        BenchmarkId::new("record", "cached-splice"),
        &(&jobs, &template),
        |b, (jobs, template)| {
            b.iter(|| {
                let list = spatial_raster::atlas::splice_batch(black_box(jobs), template);
                list.width()
            })
        },
    );

    // Execution side: the fused list must not be slower to execute.
    for (name, list) in [("unfused", &cold), ("fused", &fused)] {
        let mut device = DeviceKind::Reference.build();
        group.bench_with_input(BenchmarkId::new("execute", name), list, |b, list| {
            b.iter(|| {
                let exec = device
                    .execute(black_box(list))
                    .expect("clean devices never fault");
                (exec.stats.fragments_tested, exec.readbacks.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recording);
criterion_main!(benches);
