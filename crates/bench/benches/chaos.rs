//! Criterion microbenchmarks for the resilience ladder: what does a
//! shard failover cost relative to a clean sharded run, and what does
//! the floor — every shard quarantined, pure software fallback — look
//! like?
//!
//! One group, `chaos_failover`, four engines over the same selection
//! workload on a 4-way sharded reference device:
//!
//! * `clean`            — no faults; the sharded baseline.
//! * `one_dead`         — shard 0 permanently dead, no probation: after
//!   the breaker opens every route-0 submission pays one stable rehash.
//! * `one_dead_probation` — same, with a 5 µs modeled cool-down: the
//!   failover path plus periodic (failing) half-open probes.
//! * `all_quarantined`  — every shard dead: the ladder's floor, all
//!   refinement in software fallback.
//!
//! Before measuring, each engine runs one warm-up query and prints its
//! resilience counters — those lines are the EXPERIMENTS.md "Failover
//! overhead" table. Small scales keep `cargo bench --workspace` in
//! minutes; CI runs these with `-- --test` (compile + one iteration).

use criterion::{criterion_group, criterion_main, Criterion};
use hwa_core::engine::{EngineConfig, PreparedDataset, SpatialEngine};
use hwa_core::{DeviceKind, FaultKind, FaultPlan, FaultTrigger, HwConfig, RecoveryPolicy};
use std::hint::black_box;
use std::time::Duration;

const SCALE: f64 = 0.01;
const SEED: u64 = 42;
const SHARDS: usize = 4;

fn policy(probation_ns: Option<u64>) -> RecoveryPolicy {
    RecoveryPolicy {
        max_retries: 1,
        backoff_ns: 1_000,
        quarantine_after: 2,
        probation_ns,
    }
}

fn engine(device: DeviceKind, probation_ns: Option<u64>) -> SpatialEngine {
    SpatialEngine::new(EngineConfig {
        device,
        use_object_filters: true,
        recovery: policy(probation_ns),
        ..EngineConfig::hardware(HwConfig::at_resolution(8).with_threshold(0))
    })
}

/// A permanent timeout on one shard (or, untargeted, on all of them).
fn dead(shard: Option<usize>) -> FaultPlan {
    let plan = FaultPlan::new(7, FaultKind::Timeout, FaultTrigger::EveryK(1));
    match shard {
        Some(s) => plan.on_shard(s),
        None => plan,
    }
}

fn bench_failover(c: &mut Criterion) {
    let mut g = c.benchmark_group("chaos_failover");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    let ds = PreparedDataset::new("landc", spatial_datagen::landc(SCALE, SEED).polygons);
    let queries = spatial_datagen::states50(SEED);
    let cases: [(&str, DeviceKind, Option<u64>); 4] = [
        ("clean", DeviceKind::Reference.sharded(SHARDS), None),
        (
            "one_dead",
            DeviceKind::Reference
                .with_faults(dead(Some(0)))
                .sharded(SHARDS),
            None,
        ),
        (
            "one_dead_probation",
            DeviceKind::Reference
                .with_faults(dead(Some(0)))
                .sharded(SHARDS),
            Some(5_000),
        ),
        (
            "all_quarantined",
            DeviceKind::Reference
                .with_faults(dead(None))
                .sharded(SHARDS),
            None,
        ),
    ];
    for (name, device, probation_ns) in cases {
        let mut e = engine(device, probation_ns);
        // One warm query opens whatever breakers the schedule will open
        // and surfaces the per-query resilience counters — this line is
        // the EXPERIMENTS.md "Failover overhead" table.
        let (rows, cost) = e.intersection_selection(&ds, &queries.polygons[0]);
        let t = &cost.tests;
        println!(
            "failover: {name:>18} rows {:>4} | hw {:>5} fallback {:>5} \
             failovers {:>5} quarantined {:>2} probes {:>4} refusals {:>5}",
            rows.len(),
            t.hw_tests,
            t.fallback_tests,
            t.shard_failovers,
            t.shard_quarantined,
            t.probes,
            t.quarantined,
        );
        let mut i = 0usize;
        g.bench_function(name, |b| {
            b.iter(|| {
                let q = &queries.polygons[i % queries.polygons.len()];
                i += 1;
                let (r, _) = e.intersection_selection(&ds, black_box(q));
                black_box(r.len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_failover);
criterion_main!(benches);
