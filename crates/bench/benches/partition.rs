//! Criterion microbenchmarks for PBSM spatial partitioning on the
//! LANDC self-join: the unpartitioned engine vs grid² partitions fanned
//! across device shards. Partitioning never changes results (DESIGN.md
//! invariant 12), so the interesting comparison is pure scheduling
//! overhead/benefit at identical work. Small scale and sample counts
//! keep `cargo bench --workspace` in minutes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hwa_core::engine::PartitionConfig;
use hwa_core::{EngineConfig, HwConfig, PreparedDataset, SpatialEngine};
use std::hint::black_box;
use std::time::Duration;

const SCALE: f64 = 0.01;
const SEED: u64 = 42;

fn landc() -> PreparedDataset {
    let a = spatial_datagen::landc(SCALE, SEED);
    PreparedDataset::new(a.name, a.polygons)
}

fn hw_base() -> EngineConfig {
    EngineConfig::hardware(HwConfig::at_resolution(8).with_threshold(500))
}

/// Unpartitioned vs grid ∈ {2, 4} on a single shard: what the PBSM
/// binning and per-partition dispatch cost on top of an identical test
/// schedule (grid 1 is the unpartitioned baseline).
fn bench_partition_grid(c: &mut Criterion) {
    let a = landc();
    let mut g = c.benchmark_group("partitioned_join_grid");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for grid in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(grid), &grid, |bch, &grid| {
            let mut e = SpatialEngine::new(EngineConfig {
                hw_batch: 64,
                partition: PartitionConfig::grid(grid),
                ..hw_base()
            });
            bch.iter(|| {
                let (results, cost) = e.intersection_join(black_box(&a), black_box(&a));
                (results.len(), cost.partitions_used)
            })
        });
    }
    g.finish();
}

/// Shard fan-out at a fixed 4×4 grid: each partition's submissions land
/// on its own device instance (round-robin partition % shards).
fn bench_partition_shards(c: &mut Criterion) {
    let a = landc();
    let mut g = c.benchmark_group("partitioned_join_shards");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for shards in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |bch, &shards| {
                let mut e = SpatialEngine::new(EngineConfig {
                    hw_batch: 64,
                    partition: PartitionConfig::grid(4).with_shards(shards),
                    ..hw_base()
                });
                bch.iter(|| {
                    let (results, _) = e.intersection_join(black_box(&a), black_box(&a));
                    results.len()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_partition_grid, bench_partition_shards);
criterion_main!(benches);
