//! Criterion microbenchmarks for the serving layer: what does online
//! replay-cost planning cost, and where does the planner put the
//! hw-vs-sw crossover as the candidate set grows?
//!
//! Three groups:
//!
//! * `service_planner_overhead` — the same selection served with the
//!   adaptive planner vs forced-software: the delta is admission +
//!   probe + pricing (the memo makes repeat shapes nearly free).
//! * `service_crossover` — an intersection join over synthetic rings of
//!   growing vertex count, adaptive mode: prints which plan the planner
//!   picked per complexity point (the data behind the EXPERIMENTS.md
//!   "Planner crossover" table).
//! * `service_throughput` — queries/sec through one engine at default
//!   admission capacity, selection workload.
//!
//! Small scales and sample counts keep `cargo bench --workspace` in
//! minutes; CI runs these with `-- --test` (compile + one iteration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hwa_core::service::{
    PlannerConfig, PlannerMode, QueryEngine, QueryRequest, ServiceConfig, ServiceSnapshot,
};
use hwa_core::{EngineConfig, HwConfig, PreparedDataset};
use spatial_geom::Polygon;
use std::hint::black_box;
use std::time::Duration;

const SCALE: f64 = 0.01;
const SEED: u64 = 42;

fn snapshot() -> ServiceSnapshot {
    ServiceSnapshot::new()
        .with(PreparedDataset::new(
            "landc",
            spatial_datagen::landc(SCALE, SEED).polygons,
        ))
        .with(PreparedDataset::new(
            "lando",
            spatial_datagen::lando(SCALE, SEED).polygons,
        ))
}

fn service_config(mode: PlannerMode) -> ServiceConfig {
    ServiceConfig {
        base: EngineConfig::hardware(HwConfig::at_resolution(8).with_threshold(0)),
        planner: PlannerConfig {
            mode,
            ..PlannerConfig::default()
        },
        ..ServiceConfig::default()
    }
}

/// A ring polygon with `n` vertices — complexity dial for the crossover.
fn ring(cx: f64, cy: f64, r: f64, n: usize) -> Polygon {
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let t = i as f64 / n as f64 * std::f64::consts::TAU;
            (cx + r * t.cos(), cy + r * t.sin())
        })
        .collect();
    Polygon::from_coords(&pts)
}

fn bench_planner_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("service_planner_overhead");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    let queries = spatial_datagen::states50(SEED);
    for (name, mode) in [
        ("adaptive", PlannerMode::Adaptive),
        ("forced_sw", PlannerMode::ForceSoftware),
    ] {
        g.bench_function(name, |b| {
            let engine = QueryEngine::new(service_config(mode), snapshot());
            let q = queries.polygons[0].clone();
            b.iter(|| {
                let resp = engine
                    .execute(&QueryRequest::intersection_selection(
                        "landc",
                        black_box(q.clone()),
                    ))
                    .unwrap();
                resp.rows.len()
            })
        });
    }
    g.finish();
}

/// The Figure-13 crossover, served: joins over rings of growing vertex
/// count. Prints the plan chosen at each complexity so the
/// EXPERIMENTS.md table can be read straight off the bench output.
fn bench_crossover(c: &mut Criterion) {
    let mut g = c.benchmark_group("service_crossover");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    // Probe the full verts × candidate-count grid first: one served join
    // per point, printing the plan the adaptive planner picked. These
    // lines are the EXPERIMENTS.md "Planner crossover" table.
    for verts in [4usize, 16, 64, 256, 1024] {
        for per_side in [2usize, 8, 32] {
            let a: Vec<_> = (0..per_side)
                .map(|i| ring(i as f64 * 0.5, 0.0, 4.0, verts))
                .collect();
            let b: Vec<_> = (0..per_side)
                .map(|i| ring(i as f64 * 0.5, 1.0, 4.0, verts))
                .collect();
            let snap = ServiceSnapshot::new()
                .with(PreparedDataset::new("a", a))
                .with(PreparedDataset::new("b", b));
            let engine = QueryEngine::new(service_config(PlannerMode::Adaptive), snap);
            let probe = engine
                .execute(&QueryRequest::intersection_join("a", "b"))
                .unwrap();
            println!(
                "crossover: verts/poly {verts:>5} candidates {:>5} -> plan {:?}",
                probe.candidates, probe.plan
            );
        }
    }
    for verts in [4usize, 16, 64, 256, 1024] {
        let a: Vec<_> = (0..8)
            .map(|i| ring(i as f64 * 0.5, 0.0, 4.0, verts))
            .collect();
        let b: Vec<_> = (0..8)
            .map(|i| ring(i as f64 * 0.5, 1.0, 4.0, verts))
            .collect();
        let snap = ServiceSnapshot::new()
            .with(PreparedDataset::new("a", a))
            .with(PreparedDataset::new("b", b));
        let engine = QueryEngine::new(service_config(PlannerMode::Adaptive), snap);
        g.bench_with_input(BenchmarkId::from_parameter(verts), &verts, |bch, _| {
            bch.iter(|| {
                let resp = engine
                    .execute(&QueryRequest::intersection_join(
                        black_box("a"),
                        black_box("b"),
                    ))
                    .unwrap();
                resp.rows.len()
            })
        });
    }
    g.finish();
}

fn bench_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("service_throughput");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    let queries = spatial_datagen::states50(SEED);
    g.bench_function("selection_stream", |b| {
        let engine = QueryEngine::new(service_config(PlannerMode::Adaptive), snapshot());
        let mut i = 0usize;
        b.iter(|| {
            let q = queries.polygons[i % queries.polygons.len()].clone();
            i += 1;
            let resp = engine
                .execute(&QueryRequest::intersection_selection("landc", q))
                .unwrap();
            black_box(resp.rows.len())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_planner_overhead,
    bench_crossover,
    bench_throughput
);
criterion_main!(benches);
