//! Criterion microbenchmark for the retained device layer: one
//! atlas-scale command list executed by every backend — single-threaded
//! reference replay, tiled multi-threaded, SIMD, and SIMD-inside-tiled.
//! The acceptance figure for the device layer is this wall-clock gap —
//! results, readbacks and counters are bit-identical by contract
//! (property-tested in `spatial-raster`), so the only thing left to
//! measure is time.
//!
//! Each Criterion id carries the backend name as the function and the
//! `tiles=…,threads=…` configuration as the parameter (e.g.
//! `device_execute/tiled/tiles=8,threads=4`), so `summary --json` rows
//! stay unambiguous when the same backend appears at several configs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spatial_geom::{Point, Rect, Segment};
use spatial_raster::{AtlasJob, CommandList, DeviceKind, Viewport};
use std::hint::black_box;
use std::time::Duration;

/// An atlas-scale list: many cells of dense random boundary work, the
/// shape one batched `hw_batch` round submits on a real join.
fn atlas_scale_list(jobs: usize, segments_per_side: usize, cell: usize) -> CommandList {
    let mut rng = StdRng::seed_from_u64(7);
    let seg = |rng: &mut StdRng| {
        let p = Point::new(rng.gen_range(0.0..16.0), rng.gen_range(0.0..16.0));
        let q = Point::new(rng.gen_range(0.0..16.0), rng.gen_range(0.0..16.0));
        Segment::new(p, q)
    };
    let jobs: Vec<AtlasJob> = (0..jobs)
        .map(|_| AtlasJob {
            viewport: Viewport::new(Rect::new(0.0, 0.0, 16.0, 16.0), cell, cell),
            first_segments: (0..segments_per_side).map(|_| seg(&mut rng)).collect(),
            first_points: Vec::new(),
            second_segments: (0..segments_per_side).map(|_| seg(&mut rng)).collect(),
            second_points: Vec::new(),
        })
        .collect();
    let (list, _) =
        spatial_raster::atlas::record_batch(&jobs, spatial_raster::aa_line::DIAGONAL_WIDTH, 1.0);
    list
}

fn bench_devices(c: &mut Criterion) {
    // 256 cells of 32×32 with 48 segments per boundary: a ~600×600 window
    // with enough fragment and scan work for banding to pay.
    let list = atlas_scale_list(256, 48, 32);
    let mut group = c.benchmark_group("device_execute");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    // `tiled` at `threads=1` isolates the banding win itself (L2-resident
    // bands across the list's full-window clear/accum/scan passes,
    // scissored draws skipped per band); the threaded configs add parallel
    // speedup on multi-core hosts; `simd` isolates the lane-parallel
    // kernel win; `tiled+simd` stacks all three.
    let kinds = [
        ("reference", "tiles=1,threads=1", DeviceKind::Reference),
        ("simd", "tiles=1,threads=1", DeviceKind::Simd),
        (
            "tiled",
            "tiles=8,threads=1",
            DeviceKind::Tiled {
                tiles: 8,
                threads: 1,
            },
        ),
        (
            "tiled",
            "tiles=8,threads=4",
            DeviceKind::Tiled {
                tiles: 8,
                threads: 4,
            },
        ),
        (
            "tiled",
            "tiles=16,threads=8",
            DeviceKind::Tiled {
                tiles: 16,
                threads: 8,
            },
        ),
        (
            "tiled+simd",
            "tiles=8,threads=1",
            DeviceKind::TiledSimd {
                tiles: 8,
                threads: 1,
            },
        ),
        (
            "tiled+simd",
            "tiles=8,threads=4",
            DeviceKind::TiledSimd {
                tiles: 8,
                threads: 4,
            },
        ),
    ];
    for (name, config, kind) in kinds {
        let mut device = kind.build();
        group.bench_with_input(BenchmarkId::new(name, config), &list, |b, list| {
            b.iter(|| {
                let exec = device
                    .execute(black_box(list))
                    .expect("clean devices never fault");
                (exec.stats.fragments_tested, exec.readbacks.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_devices);
criterion_main!(benches);
