//! Shared experiment harness: every `src/bin/fig*.rs` binary regenerates
//! one table or figure of the paper's §4 evaluation through this module,
//! so workloads, scaling and reporting are identical across experiments.
//!
//! All binaries accept:
//!
//! * `--scale <f64>` — dataset size factor (default 0.05 ≈ 1/20 of the
//!   paper's object counts; `--scale 1` reproduces full sizes);
//! * `--seed <u64>` — generator seed (default 42);
//! * `--queries <n>` — cap on selection queries (default: all 31).
//!
//! Reported wall-clock numbers are averages over the workload, like the
//! paper's "average cost per query". Hardware counters (pixels written,
//! fragments, scans) are printed alongside: they are deterministic and
//! host-independent, and they are what the resolution/overhead trade-off
//! arguments of §4.2–4.4 are really about.

use hwa_core::engine::{EngineConfig, GeometryTest, PreparedDataset, SpatialEngine};
use hwa_core::{CostBreakdown, HwConfig};
use spatial_datagen::Dataset;
use std::time::Duration;

/// Parsed command-line options shared by all experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct BenchOpts {
    pub scale: f64,
    pub seed: u64,
    pub queries: usize,
    /// `--faults`: run the fault-injection sweep (verify harness only) —
    /// fault-injected engines must match clean ones bit for bit.
    pub faults: bool,
    /// `--partition`: run the PBSM partition sweep (verify harness only) —
    /// grid × shard partitioned engines must match the unpartitioned one
    /// bit for bit, on every device kind and (with `--faults`) under
    /// injected fault schedules.
    pub partition: bool,
    /// `--service`: run the serving-layer sweep (verify harness only) —
    /// adaptive, forced-software and forced-hardware planner modes must
    /// return bit-identical rows on every device kind and all four
    /// pipelines (DESIGN.md invariant 13), with a balanced
    /// `ServiceStats` ledger; with `--faults` the same matrix runs on
    /// fault-wrapped devices.
    pub service: bool,
    /// `--chaos`: run the shard-failover chaos sweep (verify harness
    /// only) — per-shard seeded fault plans × probation configs across
    /// all four pipelines must match the clean run bit for bit with a
    /// balanced failover ledger (DESIGN.md invariant 14); with
    /// `--service` a browned-out engine is cross-checked row-for-row
    /// against an undegraded one.
    pub chaos: bool,
    /// `--aggregate`: run the area-of-overlap aggregation sweep (verify
    /// harness only) — every device kind × partition grid × seeded
    /// fault plan must report bit-identical `(i, j, area)` rows, a
    /// balanced degradation ledger, and areas within the DESIGN.md §14
    /// quantization envelope of the exact clipped-polygon oracle.
    pub aggregate: bool,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            scale: 0.05,
            seed: 42,
            queries: usize::MAX,
            faults: false,
            partition: false,
            service: false,
            chaos: false,
            aggregate: false,
        }
    }
}

impl BenchOpts {
    /// Parses `--scale`, `--seed`, `--queries`, `--faults`,
    /// `--partition`, `--service`, `--chaos`, `--aggregate` from
    /// `std::env::args`.
    pub fn from_args() -> Self {
        let mut opts = BenchOpts::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            let take = |i: usize| -> Option<&str> { args.get(i + 1).map(|s| s.as_str()) };
            match args[i].as_str() {
                "--scale" => {
                    opts.scale = take(i).and_then(|v| v.parse().ok()).unwrap_or(opts.scale);
                    i += 2;
                }
                "--seed" => {
                    opts.seed = take(i).and_then(|v| v.parse().ok()).unwrap_or(opts.seed);
                    i += 2;
                }
                "--queries" => {
                    opts.queries = take(i).and_then(|v| v.parse().ok()).unwrap_or(opts.queries);
                    i += 2;
                }
                "--faults" => {
                    opts.faults = true;
                    i += 1;
                }
                "--partition" => {
                    opts.partition = true;
                    i += 1;
                }
                "--service" => {
                    opts.service = true;
                    i += 1;
                }
                "--chaos" => {
                    opts.chaos = true;
                    i += 1;
                }
                "--aggregate" => {
                    opts.aggregate = true;
                    i += 1;
                }
                _ => i += 1,
            }
        }
        opts
    }
}

/// Converts a generated dataset into an engine-ready one.
pub fn prepare(ds: Dataset) -> PreparedDataset {
    PreparedDataset::new(ds.name, ds.polygons)
}

/// The standard workload bundle most figures draw from.
pub struct Workloads {
    pub landc: PreparedDataset,
    pub lando: PreparedDataset,
    pub water: PreparedDataset,
    pub prism: PreparedDataset,
    pub states50: Dataset,
    /// Eq. 2 BaseD for LANDC ⋈ LANDO.
    pub base_d_landc_lando: f64,
    /// Eq. 2 BaseD for WATER ⋈ PRISM.
    pub base_d_water_prism: f64,
}

impl Workloads {
    pub fn generate(opts: BenchOpts) -> Self {
        let landc = spatial_datagen::landc(opts.scale, opts.seed);
        let lando = spatial_datagen::lando(opts.scale, opts.seed);
        let water = spatial_datagen::water(opts.scale, opts.seed);
        let prism = spatial_datagen::prism(opts.scale, opts.seed);
        let states50 = spatial_datagen::states50(opts.seed);
        let base_d_landc_lando = spatial_datagen::base_distance(&landc, &lando);
        let base_d_water_prism = spatial_datagen::base_distance(&water, &prism);
        Workloads {
            landc: prepare(landc),
            lando: prepare(lando),
            water: prepare(water),
            prism: prepare(prism),
            states50,
            base_d_landc_lando,
            base_d_water_prism,
        }
    }
}

/// Milliseconds with two decimals (the paper reports milliseconds/seconds).
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1_000.0
}

/// Runs the full STATES50 query set as intersection selections and returns
/// the summed cost breakdown plus total result count.
pub fn run_selection_set(
    engine: &mut SpatialEngine,
    ds: &PreparedDataset,
    queries: &Dataset,
    limit: usize,
) -> (usize, CostBreakdown, usize) {
    let mut total = CostBreakdown::default();
    let mut results = 0usize;
    let n = queries.polygons.len().min(limit);
    for q in queries.polygons.iter().take(n) {
        let (r, cost) = engine.intersection_selection(ds, q);
        results += r.len();
        total.add(&cost);
    }
    (n, total, results)
}

/// Builds a software-refinement engine.
pub fn software_engine() -> SpatialEngine {
    SpatialEngine::new(EngineConfig::software())
}

/// Builds a hardware-refinement engine at the given resolution/threshold.
pub fn hardware_engine(resolution: usize, sw_threshold: usize) -> SpatialEngine {
    SpatialEngine::new(EngineConfig::hardware(
        HwConfig::at_resolution(resolution).with_threshold(sw_threshold),
    ))
}

/// Builds an engine with explicit settings (used by the distance benches).
pub fn engine_with(
    test: GeometryTest,
    hw: HwConfig,
    interior_level: Option<u32>,
    object_filters: bool,
) -> SpatialEngine {
    SpatialEngine::new(EngineConfig {
        geometry_test: test,
        hw,
        interior_filter_level: interior_level,
        use_object_filters: object_filters,
        ..EngineConfig::default()
    })
}

/// Prints a standard experiment header.
pub fn header(figure: &str, what: &str, opts: BenchOpts) {
    println!("==================================================================");
    println!("{figure}: {what}");
    println!(
        "scale {} | seed {} | paper: SIGMOD'03 Hardware Acceleration for Spatial Selections and Joins",
        opts.scale, opts.seed
    );
    println!("==================================================================");
}

/// The resolutions the paper sweeps in Figures 11, 12 and 15.
pub const RESOLUTIONS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// The distance multipliers of Figures 14 and 16.
pub const DISTANCE_FACTORS: [f64; 5] = [0.1, 0.5, 1.0, 2.0, 4.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opts_default() {
        let o = BenchOpts::default();
        assert_eq!(o.scale, 0.05);
        assert_eq!(o.seed, 42);
    }

    #[test]
    fn workloads_generate_at_tiny_scale() {
        let opts = BenchOpts {
            scale: 0.002,
            seed: 1,
            queries: 2,
            faults: false,
            partition: false,
            service: false,
            chaos: false,
            aggregate: false,
        };
        let w = Workloads::generate(opts);
        assert!(w.landc.len() >= 12);
        assert!(w.base_d_landc_lando > 0.0);
        assert_eq!(w.states50.polygons.len(), 31);
    }

    #[test]
    fn selection_set_runs() {
        let opts = BenchOpts {
            scale: 0.002,
            seed: 1,
            queries: 2,
            faults: false,
            partition: false,
            service: false,
            chaos: false,
            aggregate: false,
        };
        let w = Workloads::generate(opts);
        let mut e = software_engine();
        let (n, cost, _) = run_selection_set(&mut e, &w.water, &w.states50, 2);
        assert_eq!(n, 2);
        assert!(cost.total() > Duration::ZERO);
    }
}
