//! Figure 1 analogue: render the first 100 polygons of the LANDC and LANDO
//! stand-ins to PPM images, like the paper's "Sample Objects from Two
//! Datasets" figure — a visual sanity check that the synthetic shapes are
//! concave, irregular and dendritic like real land-cover data.
//!
//! Writes `fig1_landc.ppm` and `fig1_lando.ppm` to the working directory.

use spatial_bench::{header, BenchOpts};
use spatial_datagen::Dataset;
use spatial_geom::{Rect, Segment};
use spatial_raster::framebuffer::HALF_GRAY;
use spatial_raster::ppm::save_ppm;
use spatial_raster::{GlContext, Viewport};

fn render(ds: &Dataset, take: usize, path: &str) -> std::io::Result<()> {
    let polys: Vec<_> = ds.polygons.iter().take(take).collect();
    let bbox = polys.iter().fold(Rect::EMPTY, |r, p| r.union(&p.mbr()));
    let mut gl = GlContext::new(Viewport::uniform(bbox, 1024, 1024));
    gl.set_color(HALF_GRAY);
    for p in &polys {
        let edges: Vec<Segment> = p.edges().collect();
        gl.draw_segments(&edges);
    }
    save_ppm(gl.frame_buffer(), path)
}

fn main() -> std::io::Result<()> {
    let opts = BenchOpts::from_args();
    header(
        "Figure 1",
        "sample objects from two datasets (PPM renderings)",
        opts,
    );
    let landc = spatial_datagen::landc(opts.scale, opts.seed);
    let lando = spatial_datagen::lando(opts.scale, opts.seed);
    render(&landc, 100, "fig1_landc.ppm")?;
    render(&lando, 100, "fig1_lando.ppm")?;
    println!("wrote fig1_landc.ppm and fig1_lando.ppm (first 100 polygons each)");
    Ok(())
}
