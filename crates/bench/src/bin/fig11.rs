//! Figure 11: intersection-selection geometry-comparison cost, software
//! vs hardware-assisted, as a function of window resolution (1×1 … 32×32),
//! `sw_threshold = 0`, datasets (a) WATER and (b) PRISM.
//!
//! Expected shape: the hardware cost first falls with resolution (more
//! near-miss candidates rejected without a sweep), then rises (per-pixel
//! overhead); the paper reports 42–56% savings on WATER and 46–64% on
//! PRISM with the best window at 16×16, and notes the hardware wins even
//! at 1×1 thanks to the MBR-intersection-region projection.

use spatial_bench::{
    hardware_engine, header, ms, run_selection_set, software_engine, BenchOpts, Workloads,
    RESOLUTIONS,
};

fn main() {
    let opts = BenchOpts::from_args();
    header(
        "Figure 11",
        "selection geometry-comparison cost: software vs hardware vs resolution",
        opts,
    );
    let w = Workloads::generate(opts);

    for ds in [&w.water, &w.prism] {
        println!(
            "\n--- dataset {} | queries STATES50, avg geometry cost per query (ms) ---",
            ds.name
        );
        let mut sw = software_engine();
        let (n, sw_cost, sw_results) = run_selection_set(&mut sw, ds, &w.states50, opts.queries);
        let nq = n as f64;
        let sw_ms = ms(sw_cost.geometry_comparison) / nq;
        println!("software: {sw_ms:>10.3} ms/query ({sw_results} results)");
        println!(
            "{:>6} {:>12} {:>9} {:>12} {:>12} {:>12}",
            "res", "hw ms/query", "vs sw", "hw rejects", "sw tests", "pix scanned"
        );
        for res in RESOLUTIONS {
            let mut hw = hardware_engine(res, 0);
            let (_, cost, results) = run_selection_set(&mut hw, ds, &w.states50, opts.queries);
            assert_eq!(results, sw_results, "hardware must not change results");
            let hw_ms = ms(cost.geometry_comparison) / nq;
            println!(
                "{:>4}x{:<2} {:>12.3} {:>8.0}% {:>12} {:>12} {:>12}",
                res,
                res,
                hw_ms,
                100.0 * hw_ms / sw_ms,
                cost.tests.rejected_by_hw,
                cost.tests.software_tests,
                cost.tests.hw.pixels_scanned,
            );
        }
    }
}
