//! Figure 12: intersection-join geometry-comparison cost, software vs
//! hardware-assisted vs window resolution, joins (a) LANDC ⋈ LANDO and
//! (b) WATER ⋈ PRISM, `sw_threshold = 0`.
//!
//! Expected shape: 68–80% savings on WATER ⋈ PRISM; up to 38% on
//! LANDC ⋈ LANDO, where at high resolutions the hardware becomes *slower*
//! than software (simple geometry can't amortize the per-pixel overhead)
//! — the observation that motivates the `sw_threshold` of Figure 13.

use hwa_core::engine::PreparedDataset;
use spatial_bench::{
    hardware_engine, header, ms, software_engine, BenchOpts, Workloads, RESOLUTIONS,
};

fn run_join(a: &PreparedDataset, b: &PreparedDataset, opts: BenchOpts) {
    println!(
        "\n--- join {} ⋈ {} | geometry-comparison cost (ms total) ---",
        a.name, b.name
    );
    let mut sw = software_engine();
    let (sw_results, sw_cost) = sw.intersection_join(a, b);
    let sw_ms = ms(sw_cost.geometry_comparison);
    println!(
        "software: {:>10.1} ms | candidates {} results {}",
        sw_ms,
        sw_cost.candidates,
        sw_results.len()
    );
    println!(
        "{:>6} {:>12} {:>9} {:>12} {:>12} {:>14}",
        "res", "hw ms", "vs sw", "hw rejects", "sw tests", "pix scanned"
    );
    for res in RESOLUTIONS {
        let mut hw = hardware_engine(res, 0);
        let (hw_results, cost) = hw.intersection_join(a, b);
        assert_eq!(hw_results, sw_results, "hardware must not change results");
        let hw_ms = ms(cost.geometry_comparison);
        println!(
            "{:>4}x{:<2} {:>12.1} {:>8.0}% {:>12} {:>12} {:>14}",
            res,
            res,
            hw_ms,
            100.0 * hw_ms / sw_ms,
            cost.tests.rejected_by_hw,
            cost.tests.software_tests,
            cost.tests.hw.pixels_scanned,
        );
    }
    let _ = opts;
}

fn main() {
    let opts = BenchOpts::from_args();
    header(
        "Figure 12",
        "intersection-join geometry-comparison cost: software vs hardware vs resolution",
        opts,
    );
    let w = Workloads::generate(opts);
    run_join(&w.landc, &w.lando, opts);
    run_join(&w.water, &w.prism, opts);
}
