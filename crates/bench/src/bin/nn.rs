//! Future-work bench (§5): nearest-neighbor queries via hardware-computed
//! Voronoi fields, versus the software best-first R-tree search.
//!
//! The field is rendered once per dataset and amortized over the query
//! stream; each query reads one texel for a candidate + upper bound and
//! refines through the tree only within that bound. Reported: per-query
//! cost (software vs field-assisted at several field resolutions), the
//! one-time field cost (modeled GPU time), and how many exact distance
//! evaluations the field saves.

use hwa_core::engine::PreparedDataset;
use hwa_core::nn::{sw_nearest, VoronoiNn};
use hwa_core::TestStats;
use spatial_bench::{header, ms, prepare, BenchOpts};
use spatial_geom::Point;
use std::time::Instant;

fn main() {
    let opts = BenchOpts::from_args();
    header(
        "Future work (§5)",
        "nearest-neighbor queries via hardware Voronoi fields",
        opts,
    );
    let ds: PreparedDataset = prepare(spatial_datagen::water(opts.scale, opts.seed));
    println!("dataset {} ({} polygons)", ds.name, ds.len());

    // A deterministic query battery spread over the data space.
    let queries: Vec<Point> = (0..500u64)
        .map(|k| {
            Point::new(
                (k.wrapping_mul(48271) % 100_000) as f64,
                (k.wrapping_mul(69621) % 100_000) as f64,
            )
        })
        .collect();

    // Software baseline.
    let t0 = Instant::now();
    let sw_answers: Vec<(usize, f64)> = queries
        .iter()
        .map(|&q| sw_nearest(&ds, q).expect("non-empty dataset"))
        .collect();
    let sw_ms = ms(t0.elapsed());
    println!(
        "\nsoftware best-first: {:.3} ms/query",
        sw_ms / queries.len() as f64
    );

    println!(
        "{:>6} {:>14} {:>12} {:>14} {:>14}",
        "field", "build gpu ms", "query us", "exact evals", "vs sw"
    );
    for res in [32usize, 64, 128] {
        let nn = VoronoiNn::build(&ds, res);
        let mut stats = TestStats::default();
        let t1 = Instant::now();
        for (&q, expected) in queries.iter().zip(sw_answers.iter()) {
            let got = nn.nearest(&ds, q, &mut stats).expect("non-empty dataset");
            assert!(
                (got.1 - expected.1).abs() < 1e-9,
                "field-assisted NN must stay exact"
            );
        }
        let q_ms = ms(t1.elapsed());
        println!(
            "{:>4}px {:>14.1} {:>12.2} {:>14} {:>13.0}%",
            res,
            ms(nn.build_gpu),
            q_ms * 1000.0 / queries.len() as f64,
            stats.software_tests,
            100.0 * q_ms / sw_ms,
        );
    }
    println!("\n(exact evals = refinement distance computations after the texel hint)");
    println!(
        "note: with an R-tree already present, the best-first search needs ~1 exact\n         evaluation per query, so the field's hint cannot save much — the Voronoi\n         approach pays off for index-free datasets or map-wide distance fields,\n         which is why the paper left it as future work."
    );
}
