//! Figure 15: within-distance join geometry-comparison cost, software vs
//! hardware-assisted vs window resolution, D = 1 × BaseD,
//! `sw_threshold = 0`, joins (a) LANDC ⋈ LANDO and (b) WATER ⋈ PRISM.
//!
//! Expected shape: like the intersection sweeps, cost falls then rises
//! with resolution; widened lines are pricier to render than unit-width
//! ones, so the hardware "barely outperforms" software on the simpler
//! LANDC ⋈ LANDO but saves 60–81% on WATER ⋈ PRISM. Width-limit
//! fallbacks (Eq. 1 > 10 px) are reported — they revert pairs to software.

use hwa_core::engine::{GeometryTest, PreparedDataset};
use hwa_core::HwConfig;
use spatial_bench::{engine_with, header, ms, BenchOpts, Workloads, RESOLUTIONS};

fn run(a: &PreparedDataset, b: &PreparedDataset, base_d: f64) {
    let d = base_d;
    println!(
        "\n--- join {} ⋈dist {} | D = 1×BaseD = {:.1} | geometry cost (ms total) ---",
        a.name, b.name, d
    );
    let mut sw = engine_with(GeometryTest::Software, HwConfig::recommended(), None, true);
    let (sw_results, sw_cost) = sw.within_distance_join(a, b, d);
    let sw_ms = ms(sw_cost.geometry_comparison);
    println!(
        "software: {:>10.1} ms | candidates {} results {}",
        sw_ms,
        sw_cost.candidates,
        sw_results.len()
    );
    println!(
        "{:>6} {:>12} {:>9} {:>11} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "res",
        "hw ms",
        "vs sw",
        "hw rejects",
        "sw tests",
        "wid.fall",
        "hw tests",
        "gpu ms",
        "sim ms"
    );
    for res in RESOLUTIONS {
        let mut hw = engine_with(
            GeometryTest::Hardware,
            HwConfig::at_resolution(res),
            None,
            true,
        );
        let (results, cost) = hw.within_distance_join(a, b, d);
        assert_eq!(results, sw_results, "hardware must not change results");
        let hw_ms = ms(cost.geometry_comparison);
        println!(
            "{:>4}x{:<2} {:>12.1} {:>8.0}% {:>11} {:>10} {:>10} {:>10} {:>9.1} {:>9.1}",
            res,
            res,
            hw_ms,
            100.0 * hw_ms / sw_ms,
            cost.tests.rejected_by_hw,
            cost.tests.software_tests,
            cost.tests.width_limit_fallbacks,
            cost.tests.hw_tests,
            ms(cost.tests.gpu_modeled),
            ms(cost.tests.sim_wall),
        );
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    header(
        "Figure 15",
        "within-distance geometry cost: software vs hardware vs resolution (D = BaseD)",
        opts,
    );
    let w = Workloads::generate(opts);
    run(&w.landc, &w.lando, w.base_d_landc_lando);
    run(&w.water, &w.prism, w.base_d_water_prism);
}
