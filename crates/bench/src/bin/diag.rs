//! Workload diagnostic (not a paper figure): composition of the MBR-filter
//! candidate set and per-pair costs, used to validate that the synthetic
//! workloads exercise the same regime the paper's datasets do — a healthy
//! share of near-miss negatives that finer windows can reject.

use spatial_bench::{header, BenchOpts, Workloads};
use spatial_geom::intersect::{
    polygons_intersect_with, restricted_edges, IntersectStats, SweepAlgo,
};
use spatial_geom::point_in_polygon;
use std::time::Instant;

fn main() {
    let opts = BenchOpts::from_args();
    header(
        "Diagnostic",
        "candidate composition of the intersection joins",
        opts,
    );
    let w = Workloads::generate(opts);

    for (a, b) in [(&w.landc, &w.lando), (&w.water, &w.prism)] {
        let candidates: Vec<(usize, usize)> = spatial_index::join_intersecting(&a.tree, &b.tree)
            .into_iter()
            .map(|(x, y)| (*x, *y))
            .collect();
        let mut pip_pos = 0usize;
        let mut rss_empty = 0usize;
        let mut sweep_pos = 0usize;
        let mut sweep_neg = 0usize;
        let mut edge_hist = [0usize; 6]; // restricted edge-count buckets
        let mut sweep_time_pos = 0.0f64;
        let mut sweep_time_neg = 0.0f64;
        let mut pip_time = 0.0f64;
        let mut rss_time = 0.0f64;
        for &(i, j) in &candidates {
            let p = a.polygon(i);
            let q = b.polygon(j);
            let region = p.mbr().intersection(&q.mbr()).unwrap();
            let t_pip = Instant::now();
            let pip_hit =
                point_in_polygon(p.vertices()[0], q) || point_in_polygon(q.vertices()[0], p);
            pip_time += t_pip.elapsed().as_secs_f64() * 1e3;
            if pip_hit {
                pip_pos += 1;
                continue;
            }
            let t_rss = Instant::now();
            let ep = restricted_edges(p, &region);
            let eq = restricted_edges(q, &region);
            rss_time += t_rss.elapsed().as_secs_f64() * 1e3;
            if ep.is_empty() || eq.is_empty() {
                rss_empty += 1;
                continue;
            }
            let total_edges = ep.len() + eq.len();
            let bucket = match total_edges {
                0..=20 => 0,
                21..=50 => 1,
                51..=100 => 2,
                101..=300 => 3,
                301..=1000 => 4,
                _ => 5,
            };
            edge_hist[bucket] += 1;
            let t = Instant::now();
            let hit =
                polygons_intersect_with(p, q, SweepAlgo::Tree, &mut IntersectStats::default());
            let dt = t.elapsed().as_secs_f64() * 1e6;
            if hit {
                sweep_pos += 1;
                sweep_time_pos += dt;
            } else {
                sweep_neg += 1;
                sweep_time_neg += dt;
            }
        }
        println!("\n{} ⋈ {}: {} candidates", a.name, b.name, candidates.len());
        println!("  pip positives:   {pip_pos}");
        println!("  rss-empty rejects: {rss_empty}");
        println!(
            "  sweep positives: {sweep_pos} (avg {:.1} us)",
            sweep_time_pos / sweep_pos.max(1) as f64
        );
        println!(
            "  sweep negatives: {sweep_neg} (avg {:.1} us)  <- what hardware can save",
            sweep_time_neg / sweep_neg.max(1) as f64
        );
        println!("  restricted-edge histogram (<=20/50/100/300/1000/more): {edge_hist:?}");
        println!(
            "  phase totals: pip {:.1} ms | rss {:.1} ms | sweep+ {:.1} ms | sweep- {:.1} ms",
            pip_time,
            rss_time,
            sweep_time_pos / 1e3,
            sweep_time_neg / 1e3
        );
    }
}
