//! End-to-end verification harness (not a paper figure): runs every query
//! pipeline in software and hardware-assisted mode over the full generated
//! workload and asserts bit-identical result sets. Exits non-zero on any
//! disagreement. This is the "the hardware path is a pure optimization"
//! guarantee, checked at workload scale rather than per-pair.

use hwa_core::engine::{EngineConfig, GeometryTest};
use hwa_core::HwConfig;
use spatial_bench::{engine_with, header, software_engine, BenchOpts, Workloads};
use spatial_raster::OverlapStrategy;

fn main() {
    let opts = BenchOpts::from_args();
    header("Verify", "software vs hardware result equality across all pipelines", opts);
    let w = Workloads::generate(opts);
    let mut failures = 0usize;

    // Selections (intersection + containment) over both datasets.
    for ds in [&w.water, &w.prism] {
        let mut sw = software_engine();
        for (ri, res) in [1usize, 8, 32].iter().enumerate() {
            let mut hw = engine_with(
                GeometryTest::Hardware,
                HwConfig::at_resolution(*res).with_threshold(if ri == 1 { 500 } else { 0 }),
                Some(4),
                false,
            );
            for q in w.states50.polygons.iter().take(opts.queries.min(31)) {
                let (a, _) = sw.intersection_selection(ds, q);
                let (b, _) = hw.intersection_selection(ds, q);
                if a != b {
                    println!("FAIL intersection_selection {} res {res}", ds.name);
                    failures += 1;
                }
                let (a, _) = sw.containment_selection(ds, q);
                let (b, _) = hw.containment_selection(ds, q);
                if a != b {
                    println!("FAIL containment_selection {} res {res}", ds.name);
                    failures += 1;
                }
            }
        }
        println!("selections over {} verified", ds.name);
    }

    // Joins under every strategy at the recommended operating point.
    for (a, b) in [(&w.landc, &w.lando), (&w.water, &w.prism)] {
        let mut sw = software_engine();
        let (expected, _) = sw.intersection_join(a, b);
        for strategy in [
            OverlapStrategy::Accumulation,
            OverlapStrategy::Blending,
            OverlapStrategy::Stencil,
        ] {
            let mut hw = engine_with(
                GeometryTest::Hardware,
                HwConfig {
                    resolution: 8,
                    sw_threshold: 500,
                    strategy,
                },
                None,
                false,
            );
            let (got, _) = hw.intersection_join(a, b);
            if got != expected {
                println!("FAIL intersection_join {} ⋈ {} {strategy:?}", a.name, b.name);
                failures += 1;
            }
        }
        println!("intersection join {} ⋈ {} verified ({} results)", a.name, b.name, expected.len());
    }

    // Within-distance joins across the distance sweep.
    for (a, b, base) in [
        (&w.landc, &w.lando, w.base_d_landc_lando),
        (&w.water, &w.prism, w.base_d_water_prism),
    ] {
        for f in [0.1, 1.0, 4.0] {
            let d = f * base;
            let mut sw = engine_with(GeometryTest::Software, HwConfig::recommended(), None, true);
            let (expected, _) = sw.within_distance_join(a, b, d);
            let mut hw = engine_with(
                GeometryTest::Hardware,
                HwConfig::at_resolution(8).with_threshold(500),
                None,
                true,
            );
            let (got, _) = hw.within_distance_join(a, b, d);
            if got != expected {
                println!("FAIL within_distance_join {} ⋈ {} D={f}×BaseD", a.name, b.name);
                failures += 1;
            }
        }
        println!("within-distance join {} ⋈ {} verified", a.name, b.name);
    }

    // Engine config must not change results either.
    {
        let mut e1 = spatial_bench::engine_with(
            GeometryTest::Software,
            HwConfig::recommended(),
            Some(5),
            true,
        );
        let mut e2 = spatial_bench::software_engine();
        let q = &w.states50.polygons[0];
        let (a, _) = e1.intersection_selection(&w.water, q);
        let (b, _) = e2.intersection_selection(&w.water, q);
        if a != b {
            println!("FAIL interior filter changed selection results");
            failures += 1;
        }
        let _ = EngineConfig::default();
    }

    if failures == 0 {
        println!("\nALL PIPELINES VERIFIED: hardware assistance never changes results.");
    } else {
        println!("\n{failures} FAILURES");
        std::process::exit(1);
    }
}
