//! End-to-end verification harness (not a paper figure): runs every query
//! pipeline in software and hardware-assisted mode over the full generated
//! workload and asserts bit-identical result sets. Exits non-zero on any
//! disagreement. This is the "the hardware path is a pure optimization"
//! guarantee, checked at workload scale rather than per-pair.

use hwa_core::engine::{EngineConfig, GeometryTest, PartitionConfig, SpatialEngine};
use hwa_core::service::{
    BrownoutConfig, BrownoutRung, PlannerConfig, PlannerMode, QueryBudget, QueryEngine,
    QueryRequest, ServiceConfig, ServiceSnapshot,
};
use hwa_core::{
    overlap_cell_area, CostBreakdown, DeviceKind, FaultKind, FaultPlan, FaultTrigger, HwConfig,
    RecordingOptions, RecoveryPolicy,
};
use spatial_bench::{engine_with, header, software_engine, BenchOpts, Workloads};
use spatial_geom::overlap_area_exact;
use spatial_raster::OverlapStrategy;

/// Asserts a reference-device run and an alternate-device run (tiled,
/// SIMD, or both) of the same query agree on results and on every hardware
/// counter (the whole `HwStats` plus test/batch tallies and the modeled
/// GPU time derived from them).
fn check_device_pair<R: PartialEq>(
    label: &str,
    reference: (R, CostBreakdown),
    tiled: (R, CostBreakdown),
    failures: &mut usize,
) {
    if reference.0 != tiled.0 {
        println!("FAIL device cross-check {label}: results differ");
        *failures += 1;
    }
    let (r, t) = (&reference.1.tests, &tiled.1.tests);
    if r.hw != t.hw
        || r.hw_tests != t.hw_tests
        || r.hw_batches != t.hw_batches
        || r.width_limit_fallbacks != t.width_limit_fallbacks
        || r.gpu_modeled != t.gpu_modeled
    {
        println!(
            "FAIL device cross-check {label}: counters diverged\n  \
             reference: {:?} tests {} batches {} modeled {:?}\n  \
             tiled:     {:?} tests {} batches {} modeled {:?}",
            r.hw,
            r.hw_tests,
            r.hw_batches,
            r.gpu_modeled,
            t.hw,
            t.hw_tests,
            t.hw_batches,
            t.gpu_modeled
        );
        *failures += 1;
    }
}

/// Asserts two runs differing only in stage-1 filter knobs
/// (`filter_simd` / `filter_threads`) agree on results, on the candidate
/// stream the refinement stage saw, on the deterministic `node_tests`
/// counter, and on every refinement counter — the "filter configs are
/// pure optimizations" guarantee. Only the routing diagnostics
/// (`simd_node_tests`, `filter_work_units`) may differ.
fn check_filter_pair<R: PartialEq>(
    label: &str,
    reference: &(R, CostBreakdown),
    tuned: &(R, CostBreakdown),
    failures: &mut usize,
) {
    if reference.0 != tuned.0 {
        println!("FAIL filter cross-check {label}: results differ");
        *failures += 1;
    }
    let (r, t) = (&reference.1, &tuned.1);
    if r.candidates != t.candidates
        || r.filter_hits != t.filter_hits
        || r.results != t.results
        || r.node_tests != t.node_tests
    {
        println!(
            "FAIL filter cross-check {label}: stage-1 counters diverged\n  \
             reference: candidates {} hits {} results {} node_tests {}\n  \
             tuned:     candidates {} hits {} results {} node_tests {}",
            r.candidates,
            r.filter_hits,
            r.results,
            r.node_tests,
            t.candidates,
            t.filter_hits,
            t.results,
            t.node_tests
        );
        *failures += 1;
    }
    let (rt, tt) = (&r.tests, &t.tests);
    if rt.hw != tt.hw
        || rt.hw_tests != tt.hw_tests
        || rt.hw_batches != tt.hw_batches
        || rt.software_tests != tt.software_tests
        || rt.decided_by_pip != tt.decided_by_pip
        || rt.width_limit_fallbacks != tt.width_limit_fallbacks
        || rt.gpu_modeled != tt.gpu_modeled
    {
        println!("FAIL filter cross-check {label}: refinement counters diverged");
        *failures += 1;
    }
}

/// Widens a selection run to the join result shape so the fault sweep can
/// treat all four pipelines uniformly.
fn lift_selection(run: (Vec<usize>, CostBreakdown)) -> (Vec<(usize, usize)>, CostBreakdown) {
    (run.0.into_iter().map(|i| (i, 0)).collect(), run.1)
}

/// Asserts a fault-injected run agrees with the clean run on results and
/// on every counter the faults cannot legitimately change, and that the
/// test ledger accounts each stolen hardware test as a software fallback.
fn check_fault_pair(
    label: &str,
    clean: &(Vec<(usize, usize)>, CostBreakdown),
    faulty: &(Vec<(usize, usize)>, CostBreakdown),
    failures: &mut usize,
) {
    if clean.0 != faulty.0 {
        println!("FAIL fault sweep {label}: results differ");
        *failures += 1;
    }
    let (c, f) = (&clean.1, &faulty.1);
    if c.candidates != f.candidates || c.filter_hits != f.filter_hits || c.results != f.results {
        println!("FAIL fault sweep {label}: filter-stage counters diverged");
        *failures += 1;
    }
    let (ct, ft) = (&c.tests, &f.tests);
    if ct.decided_by_pip != ft.decided_by_pip
        || ct.skipped_by_threshold != ft.skipped_by_threshold
        || ct.width_limit_fallbacks != ft.width_limit_fallbacks
    {
        println!("FAIL fault sweep {label}: routing counters diverged");
        *failures += 1;
    }
    if ft.hw_tests + ft.fallback_tests != ct.hw_tests {
        println!(
            "FAIL fault sweep {label}: ledger leak — hw {} + fallback {} != clean hw {}",
            ft.hw_tests, ft.fallback_tests, ct.hw_tests
        );
        *failures += 1;
    }
    // Fallbacks come either from exhausted retries (device_faults) or
    // from the breaker refusing submissions (quarantined) — the breaker
    // outlives a query, so a run may see only refusals.
    if ft.fallback_tests > 0 && ft.device_faults == 0 && ft.quarantined == 0 {
        println!("FAIL fault sweep {label}: fallbacks charged without any fault");
        *failures += 1;
    }
}

/// Asserts two area-of-overlap row sets are bit-identical: same pairs in
/// the same order with the same quantized f64 area bits (DESIGN.md §14).
fn check_aggregate_rows(
    label: &str,
    reference: &[(usize, usize, f64)],
    got: &[(usize, usize, f64)],
    failures: &mut usize,
) {
    if reference.len() != got.len() {
        println!(
            "FAIL aggregate rows {label}: {} rows vs {} in reference",
            got.len(),
            reference.len()
        );
        *failures += 1;
        return;
    }
    for ((i, j, a), (ri, rj, ra)) in got.iter().zip(reference) {
        if (i, j) != (ri, rj) || a.to_bits() != ra.to_bits() {
            println!(
                "FAIL aggregate rows {label}: ({i}, {j}, {a}) vs reference ({ri}, {rj}, {ra})"
            );
            *failures += 1;
            return;
        }
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    header(
        "Verify",
        "software vs hardware result equality across all pipelines",
        opts,
    );
    let w = Workloads::generate(opts);
    let mut failures = 0usize;

    // Selections (intersection + containment) over both datasets.
    for ds in [&w.water, &w.prism] {
        let mut sw = software_engine();
        for (ri, res) in [1usize, 8, 32].iter().enumerate() {
            let mut hw = engine_with(
                GeometryTest::Hardware,
                HwConfig::at_resolution(*res).with_threshold(if ri == 1 { 500 } else { 0 }),
                Some(4),
                false,
            );
            for q in w.states50.polygons.iter().take(opts.queries.min(31)) {
                let (a, _) = sw.intersection_selection(ds, q);
                let (b, _) = hw.intersection_selection(ds, q);
                if a != b {
                    println!("FAIL intersection_selection {} res {res}", ds.name);
                    failures += 1;
                }
                let (a, _) = sw.containment_selection(ds, q);
                let (b, _) = hw.containment_selection(ds, q);
                if a != b {
                    println!("FAIL containment_selection {} res {res}", ds.name);
                    failures += 1;
                }
            }
        }
        println!("selections over {} verified", ds.name);
    }

    // Joins under every strategy at the recommended operating point.
    for (a, b) in [(&w.landc, &w.lando), (&w.water, &w.prism)] {
        let mut sw = software_engine();
        let (expected, _) = sw.intersection_join(a, b);
        for strategy in [
            OverlapStrategy::Accumulation,
            OverlapStrategy::Blending,
            OverlapStrategy::Stencil,
        ] {
            let mut hw = engine_with(
                GeometryTest::Hardware,
                HwConfig {
                    resolution: 8,
                    sw_threshold: 500,
                    strategy,
                    ..HwConfig::recommended()
                },
                None,
                false,
            );
            let (got, _) = hw.intersection_join(a, b);
            if got != expected {
                println!(
                    "FAIL intersection_join {} ⋈ {} {strategy:?}",
                    a.name, b.name
                );
                failures += 1;
            }
        }
        println!(
            "intersection join {} ⋈ {} verified ({} results)",
            a.name,
            b.name,
            expected.len()
        );
    }

    // Within-distance joins across the distance sweep.
    for (a, b, base) in [
        (&w.landc, &w.lando, w.base_d_landc_lando),
        (&w.water, &w.prism, w.base_d_water_prism),
    ] {
        for f in [0.1, 1.0, 4.0] {
            let d = f * base;
            let mut sw = engine_with(GeometryTest::Software, HwConfig::recommended(), None, true);
            let (expected, _) = sw.within_distance_join(a, b, d);
            let mut hw = engine_with(
                GeometryTest::Hardware,
                HwConfig::at_resolution(8).with_threshold(500),
                None,
                true,
            );
            let (got, _) = hw.within_distance_join(a, b, d);
            if got != expected {
                println!(
                    "FAIL within_distance_join {} ⋈ {} D={f}×BaseD",
                    a.name, b.name
                );
                failures += 1;
            }
        }
        println!("within-distance join {} ⋈ {} verified", a.name, b.name);
    }

    // Engine config must not change results either.
    {
        let mut e1 = spatial_bench::engine_with(
            GeometryTest::Software,
            HwConfig::recommended(),
            Some(5),
            true,
        );
        let mut e2 = spatial_bench::software_engine();
        let q = &w.states50.polygons[0];
        let (a, _) = e1.intersection_selection(&w.water, q);
        let (b, _) = e2.intersection_selection(&w.water, q);
        if a != b {
            println!("FAIL interior filter changed selection results");
            failures += 1;
        }
        let _ = EngineConfig::default();
    }

    // Staged-executor cross-check: every backend × submission mode ×
    // thread count must agree on the Fig. 12 workload (LANDC ⋈ LANDO),
    // and batching must strictly reduce the draw-call-equivalent
    // submissions (draw calls + Minmax queries) of the hardware path.
    {
        let hw = HwConfig::at_resolution(8).with_threshold(500);
        let mut sw = software_engine();
        let (expected, _) = sw.intersection_join(&w.landc, &w.lando);
        let mut per_pair = SpatialEngine::new(EngineConfig::hardware(hw));
        let (pp_results, pp_cost) = per_pair.intersection_join(&w.landc, &w.lando);
        if pp_results != expected {
            println!("FAIL per-pair hardware intersection join vs software");
            failures += 1;
        }
        let pp_submissions = pp_cost.tests.hw.draw_calls + pp_cost.tests.hw.minmax_queries;
        let mut batched_submissions = usize::MAX;
        for base in [
            EngineConfig::hardware(hw),
            EngineConfig::hybrid(hw, 40),
            EngineConfig::software(),
        ] {
            for (batch, threads) in [(1, 2), (1, 4), (64, 1), (64, 2), (64, 4)] {
                let mut e = SpatialEngine::new(EngineConfig {
                    hw_batch: batch,
                    refine_threads: threads,
                    ..base.clone()
                });
                let (got, cost) = e.intersection_join(&w.landc, &w.lando);
                if got != expected {
                    println!(
                        "FAIL staged executor {:?} batch {batch} threads {threads}",
                        base.geometry_test
                    );
                    failures += 1;
                }
                if base.geometry_test == GeometryTest::Hardware && batch > 1 {
                    batched_submissions = batched_submissions
                        .min(cost.tests.hw.draw_calls + cost.tests.hw.minmax_queries);
                }
            }
        }
        if pp_cost.tests.hw_tests > 0 && batched_submissions >= pp_submissions {
            println!(
                "FAIL batching did not reduce submissions: batched {batched_submissions} >= per-pair {pp_submissions}"
            );
            failures += 1;
        }
        println!(
            "staged executor verified on {} ⋈ {}: submissions {} (batched) vs {} (per-pair)",
            w.landc.name, w.lando.name, batched_submissions, pp_submissions
        );
    }

    // Same cross-check for the within-distance join at BaseD.
    {
        let d = w.base_d_landc_lando;
        let mut sw = engine_with(GeometryTest::Software, HwConfig::recommended(), None, true);
        let (expected, _) = sw.within_distance_join(&w.landc, &w.lando, d);
        for (batch, threads) in [(1, 4), (32, 1), (32, 4)] {
            let mut e = SpatialEngine::new(EngineConfig {
                use_object_filters: true,
                hw_batch: batch,
                refine_threads: threads,
                ..EngineConfig::hardware(HwConfig::at_resolution(8).with_threshold(500))
            });
            let (got, _) = e.within_distance_join(&w.landc, &w.lando, d);
            if got != expected {
                println!(
                    "FAIL batched/threaded within-distance join batch {batch} threads {threads}"
                );
                failures += 1;
            }
        }
        println!("staged within-distance join verified at BaseD");
    }

    // Device cross-check: every alternative executor — tiled, SIMD, and
    // SIMD-inside-tiled-bands — must be indistinguishable from the
    // reference replay: identical result sets AND identical values in
    // every hardware counter, on all four pipelines, both per-pair and
    // batched+threaded (the threaded path forks per-worker devices,
    // exercising fork's device-kind preservation).
    {
        let hw = HwConfig::at_resolution(8).with_threshold(0);
        let make = |device, batch: usize, threads: usize| {
            SpatialEngine::new(EngineConfig {
                device,
                hw_batch: batch,
                refine_threads: threads,
                use_object_filters: true,
                ..EngineConfig::hardware(hw)
            })
        };
        let q = &w.states50.polygons[0];
        let d = w.base_d_landc_lando;
        let alternates = [
            (
                "tiled",
                DeviceKind::Tiled {
                    tiles: 5,
                    threads: 3,
                },
            ),
            ("simd", DeviceKind::Simd),
            (
                "tiled+simd",
                DeviceKind::TiledSimd {
                    tiles: 4,
                    threads: 2,
                },
            ),
        ];
        for (batch, threads) in [(1usize, 1usize), (64, 2)] {
            for (dev_name, device) in alternates.clone() {
                let mut r = make(DeviceKind::Reference, batch, threads);
                let mut t = make(device, batch, threads);
                let label = format!("{dev_name} batch {batch} threads {threads}");
                check_device_pair(
                    &format!("intersection_selection {label}"),
                    r.intersection_selection(&w.water, q),
                    t.intersection_selection(&w.water, q),
                    &mut failures,
                );
                check_device_pair(
                    &format!("containment_selection {label}"),
                    r.containment_selection(&w.water, q),
                    t.containment_selection(&w.water, q),
                    &mut failures,
                );
                check_device_pair(
                    &format!("intersection_join {label}"),
                    r.intersection_join(&w.landc, &w.lando),
                    t.intersection_join(&w.landc, &w.lando),
                    &mut failures,
                );
                check_device_pair(
                    &format!("within_distance_join {label}"),
                    r.within_distance_join(&w.landc, &w.lando, d),
                    t.within_distance_join(&w.landc, &w.lando, d),
                    &mut failures,
                );
            }
        }
        println!("device cross-check verified: tiled/simd/tiled+simd ≡ reference on all pipelines");
    }

    // Recording cache & fusion cross-check: reusing cached command-list
    // skeletons and fusing uncharged dead state are pure recording-side
    // optimizations, so every pipeline must produce bit-identical results
    // AND bit-identical charged counters with any combination of the two
    // knobs — on every device kind, per-pair and batched+threaded, and
    // (under `--faults`) with a fault schedule firing underneath, since
    // neither knob changes how many times the device executes.
    {
        let base_hw = HwConfig::at_resolution(8).with_threshold(0);
        let make = |recording, device, batch: usize, threads: usize| {
            SpatialEngine::new(EngineConfig {
                device,
                hw_batch: batch,
                refine_threads: threads,
                use_object_filters: true,
                ..EngineConfig::hardware(base_hw.with_recording(recording))
            })
        };
        let cache_only = RecordingOptions {
            fuse: false,
            ..RecordingOptions::recommended()
        };
        let fuse_only = RecordingOptions {
            cache: false,
            cache_entries: 0,
            fuse: true,
        };
        let mut sweep = vec![
            ("cache+fuse", "reference", DeviceKind::Reference),
            (
                "cache+fuse",
                "tiled",
                DeviceKind::Tiled {
                    tiles: 5,
                    threads: 3,
                },
            ),
            ("cache+fuse", "simd", DeviceKind::Simd),
            (
                "cache+fuse",
                "tiled+simd",
                DeviceKind::TiledSimd {
                    tiles: 4,
                    threads: 2,
                },
            ),
            // The partial knobs only change recording-side behaviour, so
            // one device kind suffices to pin their counter discipline.
            ("cache-only", "reference", DeviceKind::Reference),
            ("fuse-only", "reference", DeviceKind::Reference),
        ];
        if opts.faults {
            sweep.push((
                "cache+fuse",
                "faulty reference",
                DeviceKind::Reference.with_faults(FaultPlan::new(
                    21,
                    FaultKind::ContextLost,
                    FaultTrigger::EveryK(3),
                )),
            ));
            sweep.push((
                "cache+fuse",
                "faulty tiled+simd",
                DeviceKind::TiledSimd {
                    tiles: 4,
                    threads: 2,
                }
                .with_faults(FaultPlan::new(
                    22,
                    FaultKind::ReadbackBitFlip,
                    FaultTrigger::EveryK(2),
                )),
            ));
        }
        let q = &w.states50.polygons[0];
        let d = w.base_d_landc_lando;
        for (opt_name, dev_name, device) in &sweep {
            let recording = match *opt_name {
                "cache+fuse" => RecordingOptions::recommended(),
                "cache-only" => cache_only,
                _ => fuse_only,
            };
            for (batch, threads) in [(1usize, 1usize), (64, 2)] {
                let mut off = make(RecordingOptions::disabled(), device.clone(), batch, threads);
                let mut on = make(recording, device.clone(), batch, threads);
                let label = format!("{opt_name} on {dev_name} batch {batch} threads {threads}");
                check_device_pair(
                    &format!("intersection_selection {label}"),
                    off.intersection_selection(&w.water, q),
                    on.intersection_selection(&w.water, q),
                    &mut failures,
                );
                check_device_pair(
                    &format!("containment_selection {label}"),
                    off.containment_selection(&w.water, q),
                    on.containment_selection(&w.water, q),
                    &mut failures,
                );
                check_device_pair(
                    &format!("intersection_join {label}"),
                    off.intersection_join(&w.landc, &w.lando),
                    on.intersection_join(&w.landc, &w.lando),
                    &mut failures,
                );
                check_device_pair(
                    &format!("within_distance_join {label}"),
                    off.within_distance_join(&w.landc, &w.lando, d),
                    on.within_distance_join(&w.landc, &w.lando, d),
                    &mut failures,
                );
            }
        }
        println!(
            "recording cache & fusion verified: the knobs never change results or charged counters"
        );
    }

    // Filter-config cross-check: the stage-1 knobs (`filter_simd`,
    // `filter_threads`) must never change results, the candidate stream,
    // or any refinement counter, on all four pipelines — the vectorized
    // threaded MBR filter is a pure optimization, like the device knobs.
    // Under `--faults` the same sweep runs with a fault schedule firing
    // underneath: the filter stage is upstream of the device, so recovery
    // behaviour must be untouched by filter routing.
    {
        let hw = HwConfig::at_resolution(8).with_threshold(0);
        let make = |filter_simd: bool, filter_threads: usize, device: DeviceKind| {
            SpatialEngine::new(EngineConfig {
                filter_simd,
                filter_threads,
                device,
                use_object_filters: true,
                interior_filter_level: Some(4),
                ..EngineConfig::hardware(hw)
            })
        };
        let mut devices = vec![("reference", DeviceKind::Reference)];
        if opts.faults {
            devices.push((
                "faulty tiled+simd",
                DeviceKind::TiledSimd {
                    tiles: 4,
                    threads: 2,
                }
                .with_faults(FaultPlan::new(
                    31,
                    FaultKind::ContextLost,
                    FaultTrigger::EveryK(3),
                )),
            ));
        }
        let q = &w.states50.polygons[0];
        let d = w.base_d_landc_lando;
        let mut simd_tests_seen = 0usize;
        for (dev_name, device) in &devices {
            let mut reference = make(false, 1, device.clone());
            let ref_sel = reference.intersection_selection(&w.water, q);
            let ref_con = reference.containment_selection(&w.water, q);
            let ref_join = reference.intersection_join(&w.landc, &w.lando);
            let ref_within = reference.within_distance_join(&w.landc, &w.lando, d);
            if ref_sel.1.simd_node_tests != 0 {
                println!("FAIL filter cross-check: scalar path charged SIMD tests");
                failures += 1;
            }
            for filter_simd in [false, true] {
                for filter_threads in [1usize, 4] {
                    let mut e = make(filter_simd, filter_threads, device.clone());
                    let label =
                        format!("simd {filter_simd} threads {filter_threads} on {dev_name}");
                    let got = e.intersection_selection(&w.water, q);
                    simd_tests_seen += got.1.simd_node_tests;
                    check_filter_pair(
                        &format!("intersection_selection {label}"),
                        &ref_sel,
                        &got,
                        &mut failures,
                    );
                    check_filter_pair(
                        &format!("containment_selection {label}"),
                        &ref_con,
                        &e.containment_selection(&w.water, q),
                        &mut failures,
                    );
                    check_filter_pair(
                        &format!("intersection_join {label}"),
                        &ref_join,
                        &e.intersection_join(&w.landc, &w.lando),
                        &mut failures,
                    );
                    check_filter_pair(
                        &format!("within_distance_join {label}"),
                        &ref_within,
                        &e.within_distance_join(&w.landc, &w.lando, d),
                        &mut failures,
                    );
                }
            }
        }
        if simd_tests_seen == 0 {
            println!("FAIL filter cross-check: SIMD kernels never routed any test");
            failures += 1;
        }
        println!(
            "filter configs verified: scalar/SIMD × sequential/threaded MBR filter ≡ reference on all pipelines"
        );
    }

    // Fault-injection sweep (`--faults`): every seeded fault schedule —
    // transient submission errors, corrupted readbacks, and a permanent
    // failure that drives the circuit breaker — must leave results AND
    // every fault-independent counter bit-identical to the clean run,
    // with the degradation fully accounted in the test ledger
    // (hw_tests + fallback_tests == clean hw_tests).
    if opts.faults {
        let hw = HwConfig::at_resolution(8).with_threshold(0);
        let make = |device: DeviceKind, batch: usize, threads: usize| {
            SpatialEngine::new(EngineConfig {
                device,
                hw_batch: batch,
                refine_threads: threads,
                use_object_filters: true,
                // Tight policy so permanent schedules reach the breaker
                // quickly instead of burning retries per submission.
                recovery: RecoveryPolicy {
                    max_retries: 1,
                    backoff_ns: 1_000,
                    quarantine_after: 4,
                    probation_ns: None,
                },
                ..EngineConfig::hardware(hw)
            })
        };
        let q = &w.states50.polygons[0];
        let d = w.base_d_landc_lando;
        let plans = [
            (
                "transient context loss",
                FaultPlan::new(11, FaultKind::ContextLost, FaultTrigger::EveryK(3)),
            ),
            (
                "readback bit-flips",
                FaultPlan::new(12, FaultKind::ReadbackBitFlip, FaultTrigger::EveryK(2)),
            ),
            (
                "early OOM",
                FaultPlan::new(13, FaultKind::OutOfMemory, FaultTrigger::OnExecute(0)),
            ),
            (
                "permanent timeout (quarantine)",
                FaultPlan::new(14, FaultKind::Timeout, FaultTrigger::EveryK(1)),
            ),
        ];
        let inners = [
            ("reference", DeviceKind::Reference),
            (
                "tiled+simd",
                DeviceKind::TiledSimd {
                    tiles: 4,
                    threads: 2,
                },
            ),
        ];
        let mut faults_seen = 0usize;
        for (batch, threads) in [(1usize, 1usize), (64, 3)] {
            for (dev_name, inner) in inners.clone() {
                for (plan_name, plan) in plans {
                    let mut clean = make(inner.clone(), batch, threads);
                    let mut faulty = make(inner.clone().with_faults(plan), batch, threads);
                    let label =
                        format!("{plan_name} on {dev_name} batch {batch} threads {threads}");
                    let runs = [
                        (
                            "intersection_selection",
                            lift_selection(clean.intersection_selection(&w.water, q)),
                            lift_selection(faulty.intersection_selection(&w.water, q)),
                        ),
                        (
                            "containment_selection",
                            lift_selection(clean.containment_selection(&w.water, q)),
                            lift_selection(faulty.containment_selection(&w.water, q)),
                        ),
                        (
                            "intersection_join",
                            clean.intersection_join(&w.landc, &w.lando),
                            faulty.intersection_join(&w.landc, &w.lando),
                        ),
                        (
                            "within_distance_join",
                            clean.within_distance_join(&w.landc, &w.lando, d),
                            faulty.within_distance_join(&w.landc, &w.lando, d),
                        ),
                    ];
                    for (pipeline, c, f) in runs {
                        faults_seen += f.1.tests.device_faults;
                        check_fault_pair(&format!("{pipeline} {label}"), &c, &f, &mut failures);
                    }
                }
            }
        }
        if faults_seen == 0 {
            println!("FAIL fault sweep: no injected fault ever fired");
            failures += 1;
        }
        println!(
            "fault sweep verified: {faults_seen} injected faults absorbed with identical results"
        );
    }

    // Partition sweep (`--partition`): PBSM grid partitioning with
    // sharded device execution must be invisible in every observable —
    // for grid ∈ {1, 2, 4} × shards ∈ {1, 2, 4}, on reference, SIMD and
    // tiled devices, all four pipelines must return bit-identical results
    // and hardware counters to the unpartitioned engine (per-pair mode,
    // so even the batching diagnostics have nowhere to move). With
    // `--faults` the same matrix runs against per-shard fault schedules
    // and the degradation ledger must balance per pipeline.
    if opts.partition {
        let hw = HwConfig::at_resolution(8).with_threshold(0);
        let make = |device: DeviceKind, grid: usize, shards: usize| {
            SpatialEngine::new(EngineConfig {
                device,
                partition: PartitionConfig::grid(grid).with_shards(shards),
                use_object_filters: true,
                ..EngineConfig::hardware(hw)
            })
        };
        let q = &w.states50.polygons[0];
        let d = w.base_d_landc_lando;
        let devices = [
            ("reference", DeviceKind::Reference),
            ("simd", DeviceKind::Simd),
            (
                "tiled",
                DeviceKind::Tiled {
                    tiles: 3,
                    threads: 2,
                },
            ),
        ];
        let mut partitions_seen = 0usize;
        for (dev_name, device) in &devices {
            let mut flat = make(device.clone(), 1, 1);
            let ref_sel = flat.intersection_selection(&w.water, q);
            let ref_con = flat.containment_selection(&w.water, q);
            let ref_join = flat.intersection_join(&w.landc, &w.lando);
            let ref_within = flat.within_distance_join(&w.landc, &w.lando, d);
            for grid in [1usize, 2, 4] {
                for shards in [1usize, 2, 4] {
                    let mut e = make(device.clone(), grid, shards);
                    let label = format!("{dev_name} grid {grid} shards {shards}");
                    check_device_pair(
                        &format!("partition intersection_selection {label}"),
                        ref_sel.clone(),
                        e.intersection_selection(&w.water, q),
                        &mut failures,
                    );
                    check_device_pair(
                        &format!("partition containment_selection {label}"),
                        ref_con.clone(),
                        e.containment_selection(&w.water, q),
                        &mut failures,
                    );
                    let join = e.intersection_join(&w.landc, &w.lando);
                    partitions_seen += join.1.partitions_used;
                    check_device_pair(
                        &format!("partition intersection_join {label}"),
                        ref_join.clone(),
                        join,
                        &mut failures,
                    );
                    check_device_pair(
                        &format!("partition within_distance_join {label}"),
                        ref_within.clone(),
                        e.within_distance_join(&w.landc, &w.lando, d),
                        &mut failures,
                    );
                }
            }
        }
        if partitions_seen == 0 {
            println!("FAIL partition sweep: no partition ever held a candidate");
            failures += 1;
        }
        println!("partition sweep verified: grid × shard engines ≡ unpartitioned on all pipelines");

        // Fault overlay: each shard carries its own independently-seeded
        // copy of the plan; results must match the clean partitioned run
        // and every stolen hardware test must reappear as a fallback.
        if opts.faults {
            let plans = [
                (
                    "transient context loss",
                    FaultPlan::new(41, FaultKind::ContextLost, FaultTrigger::EveryK(3)),
                ),
                (
                    "readback bit-flips",
                    FaultPlan::new(42, FaultKind::ReadbackBitFlip, FaultTrigger::EveryK(2)),
                ),
            ];
            for (dev_name, device) in &devices {
                for grid in [2usize, 4] {
                    for shards in [2usize, 4] {
                        for (plan_name, plan) in plans {
                            let mut clean = make(device.clone(), grid, shards);
                            let mut faulty = make(device.clone().with_faults(plan), grid, shards);
                            let label =
                                format!("{plan_name} on {dev_name} grid {grid} shards {shards}");
                            let runs = [
                                (
                                    "intersection_selection",
                                    lift_selection(clean.intersection_selection(&w.water, q)),
                                    lift_selection(faulty.intersection_selection(&w.water, q)),
                                ),
                                (
                                    "containment_selection",
                                    lift_selection(clean.containment_selection(&w.water, q)),
                                    lift_selection(faulty.containment_selection(&w.water, q)),
                                ),
                                (
                                    "intersection_join",
                                    clean.intersection_join(&w.landc, &w.lando),
                                    faulty.intersection_join(&w.landc, &w.lando),
                                ),
                                (
                                    "within_distance_join",
                                    clean.within_distance_join(&w.landc, &w.lando, d),
                                    faulty.within_distance_join(&w.landc, &w.lando, d),
                                ),
                            ];
                            for (pipeline, c, f) in runs {
                                check_fault_pair(
                                    &format!("partition {pipeline} {label}"),
                                    &c,
                                    &f,
                                    &mut failures,
                                );
                            }
                        }
                    }
                }
            }
            println!(
                "partitioned fault sweep verified: per-shard fault schedules absorbed exactly"
            );
        }
    }

    // Serving-layer sweep (`--service`): the online replay-cost planner
    // must be invisible in rows (DESIGN.md invariant 13) — for every
    // device kind, serving all four pipelines under the adaptive planner
    // returns bit-identical rows to forcing software and to forcing
    // hardware, and every engine's ServiceStats ledger balances. With
    // `--faults` the same matrix runs on fault-wrapped devices, where
    // the supervisor's exact fallback keeps the invariant intact.
    if opts.service {
        let make_snapshot = || {
            ServiceSnapshot::new()
                .with(hwa_core::PreparedDataset::new(
                    "landc",
                    spatial_datagen::landc(opts.scale, opts.seed).polygons,
                ))
                .with(hwa_core::PreparedDataset::new(
                    "lando",
                    spatial_datagen::lando(opts.scale, opts.seed).polygons,
                ))
        };
        let queries: Vec<_> = w
            .states50
            .polygons
            .iter()
            .take(opts.queries.min(2))
            .collect();
        let d = w.base_d_landc_lando;
        let devices = [
            ("reference", DeviceKind::Reference),
            ("simd", DeviceKind::Simd),
            (
                "tiled",
                DeviceKind::Tiled {
                    tiles: 3,
                    threads: 2,
                },
            ),
        ];
        let modes = [
            ("adaptive", PlannerMode::Adaptive),
            ("forced-sw", PlannerMode::ForceSoftware),
            ("forced-hw", PlannerMode::ForceHardware),
        ];
        let fault_plan = FaultPlan::new(73, FaultKind::ContextLost, FaultTrigger::EveryK(3));
        for (dev_name, device) in &devices {
            let mut variants = vec![(dev_name.to_string(), device.clone())];
            if opts.faults {
                variants.push((
                    format!("{dev_name}+faults"),
                    device.clone().with_faults(fault_plan),
                ));
            }
            for (variant_name, dev) in variants {
                let mut serve = |mode: PlannerMode, mode_name: &str| -> Vec<Vec<(usize, usize)>> {
                    let engine = QueryEngine::new(
                        ServiceConfig {
                            base: EngineConfig {
                                device: dev.clone(),
                                use_object_filters: true,
                                ..EngineConfig::hardware(
                                    HwConfig::at_resolution(8).with_threshold(0),
                                )
                            },
                            planner: PlannerConfig {
                                mode,
                                ..PlannerConfig::default()
                            },
                            ..ServiceConfig::default()
                        },
                        make_snapshot(),
                    );
                    let mut rows = Vec::new();
                    for q in &queries {
                        let reqs = [
                            QueryRequest::intersection_selection("landc", (*q).clone()),
                            QueryRequest::containment_selection("landc", (*q).clone()),
                            QueryRequest::intersection_join("landc", "lando"),
                            QueryRequest::within_distance_join("landc", "lando", d),
                        ];
                        for req in reqs {
                            match engine.execute(&req) {
                                Ok(resp) => rows.push(resp.rows.as_pairs()),
                                Err(e) => {
                                    println!(
                                        "FAIL service {variant_name} {mode_name}: \
                                         unbudgeted query errored: {e}"
                                    );
                                    failures += 1;
                                    rows.push(Vec::new());
                                }
                            }
                        }
                    }
                    let stats = engine.stats();
                    if !stats.balanced() {
                        println!(
                            "FAIL service {variant_name} {mode_name}: unbalanced ledger {stats:?}"
                        );
                        failures += 1;
                    }
                    rows
                };
                let [adaptive, forced_sw, forced_hw] =
                    modes.map(|(mode_name, mode)| serve(mode, mode_name));
                for (i, ((ad, sw), hw)) in
                    adaptive.iter().zip(&forced_sw).zip(&forced_hw).enumerate()
                {
                    let pipeline = ["isect_sel", "contain_sel", "isect_join", "within_join"][i % 4];
                    if ad != sw {
                        println!(
                            "FAIL service {variant_name} {pipeline}: adaptive != forced-software"
                        );
                        failures += 1;
                    }
                    if ad != hw {
                        println!(
                            "FAIL service {variant_name} {pipeline}: adaptive != forced-hardware"
                        );
                        failures += 1;
                    }
                }
            }
        }
        println!(
            "service sweep verified: planner modes ≡ on all pipelines across {} devices{}",
            devices.len(),
            if opts.faults {
                " (clean + faulted)"
            } else {
                ""
            }
        );
    }

    // Chaos sweep (`--chaos`): shard failover, probation and quarantine
    // under seeded per-shard fault schedules (DESIGN.md §13). For every
    // inner device × shard count × probation config, a sharded engine
    // with one permanently dead shard — and one with every shard dead —
    // must return bit-identical results to the clean sharded engine on
    // all four pipelines, with the failover ledger balanced (invariant
    // 14: per-shard hw_tests summed across failovers + fallback_tests
    // == clean hw_tests, which `check_fault_pair` states as
    // hw + fallback == clean hw).
    if opts.chaos {
        let hw = HwConfig::at_resolution(8).with_threshold(0);
        let make = |device: DeviceKind, probation_ns: Option<u64>| {
            SpatialEngine::new(EngineConfig {
                device,
                use_object_filters: true,
                recovery: RecoveryPolicy {
                    max_retries: 1,
                    backoff_ns: 1_000,
                    quarantine_after: 2,
                    probation_ns,
                },
                ..EngineConfig::hardware(hw)
            })
        };
        let q = &w.states50.polygons[0];
        let d = w.base_d_landc_lando;
        let inners = [
            ("reference", DeviceKind::Reference),
            ("simd", DeviceKind::Simd),
            (
                "tiled",
                DeviceKind::Tiled {
                    tiles: 3,
                    threads: 2,
                },
            ),
        ];
        let probations = [("no-probation", None), ("probation-5us", Some(5_000u64))];
        let mut failovers_seen = 0usize;
        let mut probes_seen = 0usize;
        let mut quarantines_seen = 0usize;
        for (dev_name, inner) in &inners {
            for shards in [2usize, 4] {
                for (prob_name, probation_ns) in probations {
                    // One permanently dead shard: work routed at it must
                    // deterministically fail over to the next healthy
                    // shard (after the breaker opens); with probation,
                    // ripe breakers are probed and re-opened.
                    let dead_shard =
                        FaultPlan::new(91, FaultKind::Timeout, FaultTrigger::EveryK(1)).on_shard(0);
                    // Every shard dead: the supervisor quarantines the
                    // whole device and the ladder bottoms out in exact
                    // software.
                    let all_dead = FaultPlan::new(92, FaultKind::Timeout, FaultTrigger::EveryK(1));
                    let cases = [("dead shard 0", dead_shard), ("all shards dead", all_dead)];
                    for (case_name, plan) in cases {
                        let mut clean = make(inner.clone().sharded(shards), probation_ns);
                        let mut chaotic = make(
                            inner.clone().with_faults(plan).sharded(shards),
                            probation_ns,
                        );
                        let label =
                            format!("{case_name} on {dev_name} shards {shards} {prob_name}");
                        let runs = [
                            (
                                "intersection_selection",
                                lift_selection(clean.intersection_selection(&w.water, q)),
                                lift_selection(chaotic.intersection_selection(&w.water, q)),
                            ),
                            (
                                "containment_selection",
                                lift_selection(clean.containment_selection(&w.water, q)),
                                lift_selection(chaotic.containment_selection(&w.water, q)),
                            ),
                            (
                                "intersection_join",
                                clean.intersection_join(&w.landc, &w.lando),
                                chaotic.intersection_join(&w.landc, &w.lando),
                            ),
                            (
                                "within_distance_join",
                                clean.within_distance_join(&w.landc, &w.lando, d),
                                chaotic.within_distance_join(&w.landc, &w.lando, d),
                            ),
                        ];
                        for (pipeline, c, f) in runs {
                            let t = &f.1.tests;
                            failovers_seen += t.shard_failovers;
                            probes_seen += t.probes;
                            quarantines_seen += t.shard_quarantined;
                            if t.probe_reinstates > 0 {
                                // Both schedules are permanent: a probe
                                // can never succeed.
                                println!(
                                    "FAIL chaos sweep {pipeline} {label}: \
                                     permanent fault was reinstated"
                                );
                                failures += 1;
                            }
                            check_fault_pair(
                                &format!("chaos {pipeline} {label}"),
                                &c,
                                &f,
                                &mut failures,
                            );
                        }
                    }
                }
            }
        }
        if failovers_seen == 0 {
            println!("FAIL chaos sweep: no submission ever failed over");
            failures += 1;
        }
        if probes_seen == 0 {
            println!("FAIL chaos sweep: probation never probed an open breaker");
            failures += 1;
        }
        if quarantines_seen == 0 {
            println!("FAIL chaos sweep: no shard was ever quarantined");
            failures += 1;
        }
        println!(
            "chaos sweep verified: {failovers_seen} failovers, {probes_seen} probes, \
             {quarantines_seen} shard quarantines absorbed with identical results"
        );
    }

    // Brownout cross-check (`--chaos --service`): drive a browned-out
    // engine through the full ladder (deadline pressure up to Shed,
    // then clean traffic back down to Normal) and require every query
    // that completes on the way to return exactly the rows an
    // undegraded engine returns (invariant 13 at every rung), with both
    // ledgers balanced and the shed rung observed as a typed error.
    if opts.chaos && opts.service {
        let window = 4u32;
        let make_snapshot = || {
            ServiceSnapshot::new()
                .with(hwa_core::PreparedDataset::new(
                    "landc",
                    spatial_datagen::landc(opts.scale, opts.seed).polygons,
                ))
                .with(hwa_core::PreparedDataset::new(
                    "lando",
                    spatial_datagen::lando(opts.scale, opts.seed).polygons,
                ))
        };
        let service_config = |brownout: Option<BrownoutConfig>| ServiceConfig {
            base: EngineConfig {
                use_object_filters: true,
                ..EngineConfig::hardware(HwConfig::at_resolution(8).with_threshold(0))
            },
            brownout,
            ..ServiceConfig::default()
        };
        let reference = QueryEngine::new(service_config(None), make_snapshot());
        let browned = QueryEngine::new(
            service_config(Some(BrownoutConfig {
                window,
                ..BrownoutConfig::default()
            })),
            make_snapshot(),
        );
        let q = w.states50.polygons[0].clone();
        let d = w.base_d_landc_lando;
        let reqs = [
            QueryRequest::intersection_selection("landc", q.clone()),
            QueryRequest::containment_selection("landc", q.clone()),
            QueryRequest::intersection_join("landc", "lando"),
            QueryRequest::within_distance_join("landc", "lando", d),
        ];
        let expected: Vec<Vec<(usize, usize)>> = reqs
            .iter()
            .map(|r| {
                reference
                    .execute(r)
                    .expect("reference engine serves unbudgeted queries")
                    .rows
                    .as_pairs()
            })
            .collect();
        // Phase 1 — climb: zero-deadline queries abort deterministically
        // between stages, breaching every window until the ladder sheds.
        let doomed = reqs[0].clone().with_budget(QueryBudget {
            deadline: Some(std::time::Duration::ZERO),
            max_candidates: None,
        });
        let mut sheds_observed = 0usize;
        for _ in 0..window * 5 {
            if let Err(hwa_core::service::ServiceError::Overloaded { .. }) =
                browned.execute(&doomed)
            {
                sheds_observed += 1;
            }
        }
        if sheds_observed == 0 {
            println!("FAIL brownout cross-check: ladder never reached the shed rung");
            failures += 1;
        }
        // Phase 2 — recover: clean traffic steps the ladder back down;
        // every completion must be row-identical to the reference.
        let mut completions = 0usize;
        for i in 0..(16 * window as usize) {
            let req = &reqs[i % reqs.len()];
            match browned.execute(req) {
                Ok(resp) => {
                    completions += 1;
                    if resp.rows.as_pairs() != expected[i % reqs.len()] {
                        println!(
                            "FAIL brownout cross-check: degraded rows differ on {}",
                            req.kind.name()
                        );
                        failures += 1;
                    }
                }
                Err(hwa_core::service::ServiceError::Overloaded { .. }) => {}
                Err(e) => {
                    println!("FAIL brownout cross-check: unexpected error {e}");
                    failures += 1;
                }
            }
            if browned.brownout_rung() == BrownoutRung::Normal {
                break;
            }
        }
        let stats = browned.stats();
        if browned.brownout_rung() != BrownoutRung::Normal {
            println!("FAIL brownout cross-check: ladder never recovered ({stats:?})");
            failures += 1;
        }
        if completions == 0 {
            println!("FAIL brownout cross-check: no query ever completed during recovery");
            failures += 1;
        }
        if !stats.balanced() {
            println!("FAIL brownout cross-check: unbalanced browned ledger {stats:?}");
            failures += 1;
        }
        let ref_stats = reference.stats();
        if !ref_stats.balanced() {
            println!("FAIL brownout cross-check: unbalanced reference ledger {ref_stats:?}");
            failures += 1;
        }
        println!(
            "brownout cross-check verified: {} steps up, {} recoveries, {} sheds, \
             {completions} degraded completions row-identical to reference",
            stats.brownout_steps, stats.brownout_recoveries, stats.overload_sheds
        );
    }

    // Aggregation sweep (`--aggregate`): the area-of-overlap pipeline
    // (DESIGN.md §14) is a *measurement*, so it carries two contracts at
    // once — every backend × partition grid × seeded fault plan must
    // report bit-identical `(i, j, area)` rows with a balanced
    // degradation ledger, and every reported area must sit inside the
    // quantization envelope of the exact clipped-polygon oracle.
    if opts.aggregate {
        let hw = HwConfig::at_resolution(8).with_threshold(0);
        let make = |device: DeviceKind, grid: usize, shards: usize| {
            SpatialEngine::new(EngineConfig {
                device,
                partition: PartitionConfig::grid(grid).with_shards(shards),
                use_object_filters: true,
                ..EngineConfig::hardware(hw)
            })
        };
        let devices = [
            ("reference", DeviceKind::Reference),
            ("simd", DeviceKind::Simd),
            (
                "tiled",
                DeviceKind::Tiled {
                    tiles: 3,
                    threads: 2,
                },
            ),
            (
                "tiled+simd",
                DeviceKind::TiledSimd {
                    tiles: 4,
                    threads: 2,
                },
            ),
        ];
        let plans = [
            (
                "transient context loss",
                FaultPlan::new(51, FaultKind::ContextLost, FaultTrigger::EveryK(3)),
            ),
            (
                "readback bit-flips",
                FaultPlan::new(52, FaultKind::ReadbackBitFlip, FaultTrigger::EveryK(2)),
            ),
        ];
        let mut pairs_checked = 0usize;
        for res in [4usize, 16, 48] {
            let (base, base_cost) =
                make(DeviceKind::Reference, 1, 1).overlap_area_join(&w.landc, &w.lando, res);
            if base.is_empty() {
                println!("FAIL aggregate sweep: no overlapping pairs at res {res}");
                failures += 1;
                continue;
            }
            // Oracle envelope: the fill rule emits a cell iff its center
            // lies inside P ∩ Q, so hardware and oracle can disagree
            // only on cells the clipped boundary crosses — at most
            // 2·res + 3 per segment over at most 2·(Vp + Vq) segments.
            for &(i, j, area) in &base {
                let (p, q) = (w.landc.polygon(i), w.lando.polygon(j));
                let Some(exact) = overlap_area_exact(p, q) else {
                    continue;
                };
                let region = p
                    .mbr()
                    .intersection(&q.mbr())
                    .expect("measured pairs overlap on MBRs");
                let bound = 2.0
                    * (p.vertex_count() + q.vertex_count()) as f64
                    * (2.0 * res as f64 + 3.0)
                    * overlap_cell_area(region, res);
                if (area - exact).abs() > bound {
                    println!(
                        "FAIL aggregate oracle res {res} pair ({i}, {j}): \
                         hw {area} exact {exact} envelope {bound}"
                    );
                    failures += 1;
                }
                pairs_checked += 1;
            }
            for (dev_name, device) in &devices {
                for grid in [1usize, 2, 4] {
                    for shards in [1usize, 4] {
                        let label = format!("res {res} {dev_name} grid {grid} shards {shards}");
                        let (rows, cost) = make(device.clone(), grid, shards)
                            .overlap_area_join(&w.landc, &w.lando, res);
                        check_aggregate_rows(&label, &base, &rows, &mut failures);
                        if cost.tests.overlap_tests != base_cost.tests.overlap_tests
                            || cost.tests.hw_tests != base_cost.tests.hw_tests
                        {
                            println!(
                                "FAIL aggregate counters {label}: overlap {} hw {} vs \
                                 reference overlap {} hw {}",
                                cost.tests.overlap_tests,
                                cost.tests.hw_tests,
                                base_cost.tests.overlap_tests,
                                base_cost.tests.hw_tests
                            );
                            failures += 1;
                        }
                        for (plan_name, plan) in plans {
                            let flabel = format!("{label} under {plan_name}");
                            let (frows, fcost) =
                                make(device.clone().with_faults(plan), grid, shards)
                                    .overlap_area_join(&w.landc, &w.lando, res);
                            check_aggregate_rows(&flabel, &base, &frows, &mut failures);
                            if fcost.tests.overlap_tests != base_cost.tests.overlap_tests {
                                println!(
                                    "FAIL aggregate faulted counters {flabel}: overlap {} vs {}",
                                    fcost.tests.overlap_tests, base_cost.tests.overlap_tests
                                );
                                failures += 1;
                            }
                            if fcost.tests.hw_tests + fcost.tests.fallback_tests
                                != base_cost.tests.hw_tests
                            {
                                println!(
                                    "FAIL aggregate faulted {flabel}: ledger leak — hw {} + \
                                     fallback {} != clean hw {}",
                                    fcost.tests.hw_tests,
                                    fcost.tests.fallback_tests,
                                    base_cost.tests.hw_tests
                                );
                                failures += 1;
                            }
                        }
                    }
                }
            }
        }
        println!(
            "aggregate sweep verified: {pairs_checked} areas inside the §14 envelope, \
             backends × partitions × faults row-identical"
        );
    }

    if failures == 0 {
        println!("\nALL PIPELINES VERIFIED: hardware assistance never changes results.");
    } else {
        println!("\n{failures} FAILURES");
        std::process::exit(1);
    }
}
