//! §5 headline numbers: best-case speedups of the hardware-assisted
//! refinement over the software baseline — the paper reports up to 4.8×
//! for intersection joins and 5.9× for within-distance joins at the 8×8
//! operating point (with threshold tuning).

use hwa_core::engine::{GeometryTest, PreparedDataset};
use hwa_core::HwConfig;
use spatial_bench::{
    engine_with, hardware_engine, header, ms, software_engine, BenchOpts, Workloads,
};

fn best_intersection_speedup(a: &PreparedDataset, b: &PreparedDataset) -> (f64, usize, usize) {
    let mut sw = software_engine();
    let (_, sw_cost) = sw.intersection_join(a, b);
    let sw_ms = ms(sw_cost.geometry_comparison);
    let mut best = (0.0f64, 0usize, 0usize);
    for res in [4usize, 8, 16] {
        for t in [0usize, 300, 500, 900] {
            let mut hw = hardware_engine(res, t);
            let (_, cost) = hw.intersection_join(a, b);
            let speedup = sw_ms / ms(cost.geometry_comparison);
            if speedup > best.0 {
                best = (speedup, res, t);
            }
        }
    }
    best
}

fn best_distance_speedup(a: &PreparedDataset, b: &PreparedDataset, d: f64) -> (f64, usize, usize) {
    let mut sw = engine_with(GeometryTest::Software, HwConfig::recommended(), None, true);
    let (_, sw_cost) = sw.within_distance_join(a, b, d);
    let sw_ms = ms(sw_cost.geometry_comparison);
    let mut best = (0.0f64, 0usize, 0usize);
    for res in [4usize, 8, 16] {
        for t in [0usize, 500] {
            let mut hw = engine_with(
                GeometryTest::Hardware,
                HwConfig::at_resolution(res).with_threshold(t),
                None,
                true,
            );
            let (_, cost) = hw.within_distance_join(a, b, d);
            let speedup = sw_ms / ms(cost.geometry_comparison);
            if speedup > best.0 {
                best = (speedup, res, t);
            }
        }
    }
    best
}

/// One best-operating-point row, shared by the text and JSON outputs.
struct Row {
    kind: &'static str,
    left: String,
    right: String,
    speedup: f64,
    resolution: usize,
    threshold: usize,
}

impl Row {
    fn to_json(&self) -> String {
        format!(
            "{{\"kind\": \"{}\", \"left\": \"{}\", \"right\": \"{}\", \
             \"speedup\": {:.4}, \"resolution\": {}, \"threshold\": {}}}",
            self.kind, self.left, self.right, self.speedup, self.resolution, self.threshold
        )
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    let json = std::env::args().any(|a| a == "--json");
    header(
        "Summary (§5)",
        "best-case hardware speedups over the software baseline",
        opts,
    );
    let w = Workloads::generate(opts);
    let mut rows: Vec<Row> = Vec::new();

    println!("\nintersection joins (paper: up to 4.8x):");
    for (a, b) in [(&w.landc, &w.lando), (&w.water, &w.prism)] {
        let (s, res, t) = best_intersection_speedup(a, b);
        println!(
            "  {} ⋈ {}: {:.2}x  (window {}x{}, threshold {})",
            a.name, b.name, s, res, res, t
        );
        rows.push(Row {
            kind: "intersection",
            left: a.name.clone(),
            right: b.name.clone(),
            speedup: s,
            resolution: res,
            threshold: t,
        });
    }

    println!("\nwithin-distance joins at D = 0.5×BaseD (paper: up to 5.9x):");
    for (a, b, d) in [
        (&w.landc, &w.lando, 0.5 * w.base_d_landc_lando),
        (&w.water, &w.prism, 0.5 * w.base_d_water_prism),
    ] {
        let (s, res, t) = best_distance_speedup(a, b, d);
        println!(
            "  {} ⋈dist {}: {:.2}x  (window {}x{}, threshold {})",
            a.name, b.name, s, res, res, t
        );
        rows.push(Row {
            kind: "within_distance",
            left: a.name.clone(),
            right: b.name.clone(),
            speedup: s,
            resolution: res,
            threshold: t,
        });
    }

    if json {
        let body: Vec<String> = rows
            .iter()
            .map(|r| format!("    {}", r.to_json()))
            .collect();
        let doc = format!(
            "{{\n  \"bench\": \"summary\",\n  \"scale\": {},\n  \"seed\": {},\n  \"joins\": [\n{}\n  ]\n}}\n",
            opts.scale,
            opts.seed,
            body.join(",\n")
        );
        let path = "BENCH_summary.json";
        std::fs::write(path, doc).expect("write JSON output");
        println!("\nwrote {path}");
    }
}
