//! Figure 13: effect of the software threshold on the LANDC ⋈ LANDO
//! intersection join at 8×8 and 16×16 windows.
//!
//! Expected shape: cost falls from threshold 0 to an optimum (the paper
//! finds ≈300 at 8×8 and ≈900 at 16×16 — finer windows carry more
//! per-test overhead, so more pairs are worth keeping in software), then
//! degrades slowly toward the pure-software cost as the threshold routes
//! everything away from the hardware. A wide range of thresholds is within
//! ~12% of optimal — the knob is forgiving.

use spatial_bench::{hardware_engine, header, ms, software_engine, BenchOpts, Workloads};

const THRESHOLDS: [usize; 9] = [0, 100, 200, 300, 500, 700, 900, 1400, 2000];

fn main() {
    let opts = BenchOpts::from_args();
    header(
        "Figure 13",
        "effect of sw_threshold on LANDC ⋈ LANDO at 8x8 and 16x16",
        opts,
    );
    let w = Workloads::generate(opts);
    let (a, b) = (&w.landc, &w.lando);

    let mut sw = software_engine();
    let (sw_results, sw_cost) = sw.intersection_join(a, b);
    println!(
        "software baseline: {:.1} ms ({} results)\n",
        ms(sw_cost.geometry_comparison),
        sw_results.len()
    );

    for res in [8usize, 16] {
        println!("--- window {res}x{res} | geometry-comparison cost (ms total) ---");
        println!(
            "{:>9} {:>12} {:>12} {:>12} {:>12}",
            "threshold", "hw ms", "hw tests", "skipped", "hw rejects"
        );
        for t in THRESHOLDS {
            let mut hw = hardware_engine(res, t);
            let (results, cost) = hw.intersection_join(a, b);
            assert_eq!(results, sw_results);
            println!(
                "{:>9} {:>12.1} {:>12} {:>12} {:>12}",
                t,
                ms(cost.geometry_comparison),
                cost.tests.hw_tests,
                cost.tests.skipped_by_threshold,
                cost.tests.rejected_by_hw,
            );
        }
        println!();
    }
}
