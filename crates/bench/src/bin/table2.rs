//! Table 2: statistics of the polygon datasets.
//!
//! Regenerates the paper's dataset-statistics table for the synthetic
//! stand-ins at the chosen scale. The vertex min/max columns match the
//! paper exactly (they are pinned by the generators); N scales with
//! `--scale`; the average is statistical.

use spatial_bench::{header, BenchOpts};

fn main() {
    let opts = BenchOpts::from_args();
    header("Table 2", "Statistics of Some Polygon Datasets", opts);

    let datasets = [
        spatial_datagen::landc(opts.scale, opts.seed),
        spatial_datagen::lando(opts.scale, opts.seed),
        spatial_datagen::states50(opts.seed),
        spatial_datagen::prism(opts.scale, opts.seed),
        spatial_datagen::water(opts.scale, opts.seed),
    ];
    let paper: [(usize, usize, usize, usize); 5] = [
        (14_731, 3, 4_397, 192),
        (33_860, 3, 8_807, 20),
        (31, 4, 10_744, 1_380),
        (6_243, 3, 29_556, 68),
        (21_866, 3, 39_360, 91),
    ];

    println!(
        "{:<10} {:>8} {:>6} {:>8} {:>8} | {:>8} {:>6} {:>8} {:>8}",
        "Dataset", "N", "min", "max", "avg", "paper N", "min", "max", "avg"
    );
    println!(
        "{:-<10} {:-<8} {:-<6} {:-<8} {:-<8}-+-{:-<7} {:-<6} {:-<8} {:-<8}",
        "", "", "", "", "", "", "", "", ""
    );
    for (ds, (pn, pmin, pmax, pavg)) in datasets.iter().zip(paper.iter()) {
        let s = ds.stats();
        println!(
            "{:<10} {:>8} {:>6} {:>8} {:>8.0} | {:>8} {:>6} {:>8} {:>8}",
            ds.name, s.n, s.min_vertices, s.max_vertices, s.avg_vertices, pn, pmin, pmax, pavg
        );
    }
    println!();
    println!(
        "BaseD (Eq. 2)  LANDC⋈LANDO = {:.1}   WATER⋈PRISM = {:.1}",
        spatial_datagen::base_distance(&datasets[0], &datasets[1]),
        spatial_datagen::base_distance(&datasets[4], &datasets[3]),
    );
}
