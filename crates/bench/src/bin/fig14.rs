//! Figure 14: within-distance join cost breakdown with *software* distance
//! testing, D ∈ {0.1, 0.5, 1, 2, 4} × BaseD, with the MBR filter and the
//! 0/1-object filters in front, joins (a) LANDC ⋈ LANDO and
//! (b) WATER ⋈ PRISM.
//!
//! Expected shape: within-distance joins cost more than intersection
//! joins; cost grows with D (more candidates, longer frontier chains); and
//! despite aggressive filtering, geometry comparison dominates the total —
//! the premise of the hardware distance test.

use hwa_core::engine::{GeometryTest, PreparedDataset};
use hwa_core::HwConfig;
use spatial_bench::{engine_with, header, ms, BenchOpts, Workloads, DISTANCE_FACTORS};

fn run(a: &PreparedDataset, b: &PreparedDataset, base_d: f64) {
    println!(
        "\n--- join {} ⋈dist {} | BaseD = {:.1} | software minDist + 0/1-object filters ---",
        a.name, b.name, base_d
    );
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9} {:>8}",
        "D/BaseD", "mbr ms", "filter ms", "geom ms", "total ms", "cands", "flt hits", "results"
    );
    for f in DISTANCE_FACTORS {
        let d = f * base_d;
        let mut engine = engine_with(GeometryTest::Software, HwConfig::recommended(), None, true);
        let (results, cost) = engine.within_distance_join(a, b, d);
        println!(
            "{:>6.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10} {:>9} {:>8}",
            f,
            ms(cost.mbr_filter),
            ms(cost.intermediate_filter),
            ms(cost.geometry_comparison),
            ms(cost.total()),
            cost.candidates,
            cost.filter_hits,
            results.len(),
        );
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    header(
        "Figure 14",
        "within-distance join cost breakdown vs query distance (software)",
        opts,
    );
    let w = Workloads::generate(opts);
    run(&w.landc, &w.lando, w.base_d_landc_lando);
    run(&w.water, &w.prism, w.base_d_water_prism);
}
