//! Phase-level profile of one hardware segment test (not a paper figure):
//! where the simulated-GPU microseconds go, per window resolution.

use spatial_bench::BenchOpts;
use spatial_datagen::shapes::harmonic_star;
use spatial_geom::intersect::restricted_edges;
use spatial_geom::{Point, Segment};
use spatial_raster::framebuffer::HALF_GRAY;
use spatial_raster::{GlContext, Viewport};
use std::time::Instant;

fn time_us(iters: usize, mut f: impl FnMut()) -> f64 {
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    t.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn main() {
    let _ = BenchOpts::from_args();
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    // A near-miss pair, ~512 vertices each.
    let p = harmonic_star(
        Point::new(0.0, 0.0),
        50.0,
        512,
        0.5,
        0.3,
        1.0,
        0.0,
        &mut rng,
    );
    let q = harmonic_star(
        Point::new(103.0, 0.0),
        50.0,
        512,
        0.5,
        0.3,
        1.0,
        0.0,
        &mut rng,
    );
    let region = p.mbr().intersection(&q.mbr()).unwrap();
    let ep = restricted_edges(&p, &region);
    let eq = restricted_edges(&q, &region);
    println!("restricted edges: {} + {}", ep.len(), eq.len());

    for res in [8usize, 16, 32] {
        let vp = Viewport::new(region, res, res);
        let mut gl = GlContext::new(vp);
        gl.set_color(HALF_GRAY);
        let n = 2000;

        let t_clear = time_us(n, || gl.clear_color_buffer());
        let t_draw = time_us(n, || gl.draw_segments(&ep));
        let t_load = time_us(n, || gl.accum_load());
        let t_add = time_us(n, || gl.accum_add());
        let t_ret = time_us(n, || gl.accum_return());
        let t_minmax = time_us(n, || {
            gl.minmax();
        });
        let t_retarget = time_us(n, || gl.retarget(Viewport::new(region, res, res)));
        // Whole choreography.
        let t_all = time_us(n, || {
            gl.retarget(Viewport::new(region, res, res));
            gl.clear_color_buffer();
            gl.clear_accum_buffer();
            gl.draw_segments(&ep);
            gl.accum_load();
            gl.clear_color_buffer();
            gl.draw_segments(&eq);
            gl.accum_add();
            gl.accum_return();
            gl.max_value();
        });
        println!(
            "res {res:>2}: clear {t_clear:.2} draw({}) {t_draw:.2} load {t_load:.2} add {t_add:.2} \
             return {t_ret:.2} minmax {t_minmax:.2} retarget {t_retarget:.2} | full test {t_all:.2} us",
            ep.len()
        );
    }

    // Edge-throughput isolation: long batch, big window.
    let segs: Vec<Segment> = (0..10_000)
        .map(|i| {
            let x = (i % 100) as f64;
            Segment::new(Point::new(x, 0.0), Point::new(x + 0.8, 99.0))
        })
        .collect();
    let vp = Viewport::new(spatial_geom::Rect::new(0.0, 0.0, 100.0, 100.0), 8, 8);
    let mut gl = GlContext::new(vp);
    gl.set_color(HALF_GRAY);
    let t = time_us(100, || gl.draw_segments(&segs));
    println!(
        "edge throughput at 8x8: {:.1} ns/edge",
        t * 1000.0 / segs.len() as f64
    );
}
