//! Figure 16: within-distance join performance as a function of the query
//! distance D, hardware at 8×8 with `sw_threshold = 500` vs software,
//! joins (a) LANDC ⋈ LANDO and (b) WATER ⋈ PRISM.
//!
//! Expected shape: the hardware margin narrows as D grows — wider lines
//! cost more to render, and once Eq. 1 exceeds the 10-pixel line-width
//! limit pairs revert to software, collapsing the margin (the paper: from
//! 43% to ≈0 on LANDC ⋈ LANDO, from 83% to 74% on WATER ⋈ PRISM).

use hwa_core::engine::{GeometryTest, PreparedDataset};
use hwa_core::HwConfig;
use spatial_bench::{engine_with, header, ms, BenchOpts, Workloads, DISTANCE_FACTORS};

fn run(a: &PreparedDataset, b: &PreparedDataset, base_d: f64) {
    println!(
        "\n--- join {} ⋈dist {} | window 8x8, sw_threshold 500 | geometry cost (ms total) ---",
        a.name, b.name
    );
    println!(
        "{:>7} {:>11} {:>11} {:>8} {:>11} {:>10} {:>8}",
        "D/BaseD", "sw ms", "hw ms", "vs sw", "hw rejects", "wid.fall", "results"
    );
    for f in DISTANCE_FACTORS {
        let d = f * base_d;
        let mut sw = engine_with(GeometryTest::Software, HwConfig::recommended(), None, true);
        let (sw_results, sw_cost) = sw.within_distance_join(a, b, d);
        let mut hw = engine_with(
            GeometryTest::Hardware,
            HwConfig::at_resolution(8).with_threshold(500),
            None,
            true,
        );
        let (hw_results, hw_cost) = hw.within_distance_join(a, b, d);
        assert_eq!(sw_results, hw_results);
        let (s, h) = (
            ms(sw_cost.geometry_comparison),
            ms(hw_cost.geometry_comparison),
        );
        println!(
            "{:>7.1} {:>11.1} {:>11.1} {:>7.0}% {:>11} {:>10} {:>8}",
            f,
            s,
            h,
            100.0 * h / s,
            hw_cost.tests.rejected_by_hw,
            hw_cost.tests.width_limit_fallbacks,
            hw_results.len(),
        );
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    header(
        "Figure 16",
        "within-distance join vs query distance (hardware 8x8, threshold 500)",
        opts,
    );
    let w = Workloads::generate(opts);
    run(&w.landc, &w.lando, w.base_d_landc_lando);
    run(&w.water, &w.prism, w.base_d_water_prism);
}
