//! Ablation benches for the design decisions DESIGN.md calls out:
//!
//! 1. **Overlap strategy** (accumulation vs blending vs stencil, the Hoff
//!    variants) — same results, different buffer traffic;
//! 2. **Boundary rendering vs filled polygons** — the §3 argument: filled
//!    polygons need software triangulation and are not exact;
//! 3. **Restricted search space** (§4.1.1) — the paper credits it with
//!    30–40% on the software sweep; measured here directly;
//! 4. **minDist optimizations** — frontier clipping + early exit vs the
//!    plain pruned scan (paper: 2–6×).

use hwa_core::ablation::{filled_intersects_approx, FilledResult};
use hwa_core::{HwConfig, TestStats};
use spatial_bench::{hardware_engine, header, ms, BenchOpts, Workloads};
use spatial_geom::intersect::{polygons_intersect_with, IntersectStats, SweepAlgo};
use spatial_geom::sweep::tree_sweep_intersects;
use spatial_geom::{min_dist_brute, within_distance, within_distance_sweep, Segment};
use spatial_raster::OverlapStrategy;
use std::time::Instant;

fn strategies(w: &Workloads) {
    println!("\n[1] overlap strategies on LANDC ⋈ LANDO (8x8, threshold 0):");
    println!(
        "{:>14} {:>10} {:>12} {:>14} {:>12}",
        "strategy", "geom ms", "results", "pix written", "pix scanned"
    );
    let mut baseline = None;
    for strategy in [
        OverlapStrategy::Accumulation,
        OverlapStrategy::Blending,
        OverlapStrategy::Stencil,
    ] {
        let mut e = hardware_engine(8, 0);
        let mut cfg = e.config().clone();
        cfg.hw.strategy = strategy;
        e.set_config(cfg);
        let (results, cost) = e.intersection_join(&w.landc, &w.lando);
        match &baseline {
            None => baseline = Some(results.clone()),
            Some(b) => assert_eq!(b, &results, "strategies must agree"),
        }
        println!(
            "{:>14} {:>10.1} {:>12} {:>14} {:>12}",
            format!("{strategy:?}"),
            ms(cost.geometry_comparison),
            results.len(),
            cost.tests.hw.pixels_written,
            cost.tests.hw.pixels_scanned,
        );
    }
}

fn filled_vs_boundary(w: &Workloads) {
    println!("\n[2] filled-polygon (Hoff) vs boundary rendering (Algorithm 3.1):");
    // Run both over the LANDC ⋈ LANDO candidate pairs; count wrong
    // verdicts and time the triangulation-burdened path.
    let a = &w.landc;
    let b = &w.lando;
    let candidates: Vec<(usize, usize)> = spatial_index::join_intersecting(&a.tree, &b.tree)
        .into_iter()
        .map(|(x, y)| (*x, *y))
        .collect();
    let sample: Vec<(usize, usize)> = candidates.into_iter().take(400).collect();

    let t0 = Instant::now();
    let mut wrong = 0usize;
    let mut failed = 0usize;
    let mut st = TestStats::default();
    for &(i, j) in &sample {
        let truth = polygons_intersect_with(
            a.polygon(i),
            b.polygon(j),
            SweepAlgo::Tree,
            &mut IntersectStats::default(),
        );
        match filled_intersects_approx(
            a.polygon(i),
            b.polygon(j),
            HwConfig::at_resolution(8),
            &mut st,
        ) {
            FilledResult::OverlapFound => {
                if !truth {
                    wrong += 1;
                }
            }
            FilledResult::NoOverlap => {
                if truth {
                    wrong += 1;
                }
            }
            FilledResult::TriangulationFailed => failed += 1,
        }
    }
    let filled_ms = ms(t0.elapsed());

    let mut hw = hwa_core::hw_intersect::HwTester::new(HwConfig::at_resolution(8));
    let t1 = Instant::now();
    let mut st2 = TestStats::default();
    for &(i, j) in &sample {
        let _ = hw.intersects(a.polygon(i), b.polygon(j), &mut st2);
    }
    let boundary_ms = ms(t1.elapsed());

    println!(
        "  filled (approx):   {:>8.1} ms over {} pairs, {} wrong verdicts, {} triangulation failures",
        filled_ms,
        sample.len(),
        wrong,
        failed
    );
    println!(
        "  boundary (exact):  {:>8.1} ms over {} pairs, 0 wrong by construction",
        boundary_ms,
        sample.len()
    );
}

fn restricted_search_space(w: &Workloads) {
    println!("\n[3] restricted search space on the software sweep (LANDC ⋈ LANDO candidates):");
    let a = &w.landc;
    let b = &w.lando;
    let candidates: Vec<(usize, usize)> = spatial_index::join_intersecting(&a.tree, &b.tree)
        .into_iter()
        .map(|(x, y)| (*x, *y))
        .collect();

    // With restriction (the engine's normal path).
    let t0 = Instant::now();
    for &(i, j) in &candidates {
        let mut st = IntersectStats::default();
        let _ = polygons_intersect_with(a.polygon(i), b.polygon(j), SweepAlgo::Tree, &mut st);
    }
    let with_ms = ms(t0.elapsed());

    // Without restriction: sweep the full boundaries.
    let t1 = Instant::now();
    for &(i, j) in &candidates {
        let p = a.polygon(i);
        let q = b.polygon(j);
        if spatial_geom::point_in_polygon(p.vertices()[0], q)
            || spatial_geom::point_in_polygon(q.vertices()[0], p)
        {
            continue;
        }
        let ep: Vec<Segment> = p.edges().collect();
        let eq: Vec<Segment> = q.edges().collect();
        let _ = tree_sweep_intersects(&ep, &eq);
    }
    let without_ms = ms(t1.elapsed());
    println!(
        "  restricted {:>8.1} ms vs full {:>8.1} ms  ({:.0}% saved; paper reports 30-40%)",
        with_ms,
        without_ms,
        100.0 * (1.0 - with_ms / without_ms)
    );
}

fn mindist_optimizations(w: &Workloads) {
    println!("\n[4] minDist kernels at D = BaseD (paper pairwise vs sweep vs brute force):");
    let a = &w.water;
    let b = &w.prism;
    let d = w.base_d_water_prism;
    let candidates: Vec<(usize, usize)> = spatial_index::join_within_distance(&a.tree, &b.tree, d)
        .into_iter()
        .map(|(x, y)| (*x, *y))
        .take(300)
        .collect();

    let t0 = Instant::now();
    for &(i, j) in &candidates {
        let _ = within_distance(a.polygon(i), b.polygon(j), d);
    }
    let pairwise_ms = ms(t0.elapsed());

    let t2 = Instant::now();
    for &(i, j) in &candidates {
        let _ = within_distance_sweep(a.polygon(i), b.polygon(j), d);
    }
    let sweep_ms = ms(t2.elapsed());

    let t1 = Instant::now();
    for &(i, j) in &candidates {
        let _ = min_dist_brute(a.polygon(i), b.polygon(j)) <= d;
    }
    let brute_ms = ms(t1.elapsed());
    println!(
        "  paper pairwise   {:>8.1} ms ({:.1}x over brute {:.1} ms; paper credits 2-6x)",
        pairwise_ms,
        brute_ms / pairwise_ms,
        brute_ms
    );
    println!(
        "  sweep variant    {:>8.1} ms ({:.1}x over the paper kernel) — modern improvement",
        sweep_ms,
        pairwise_ms / sweep_ms
    );
}

fn main() {
    let opts = BenchOpts::from_args();
    header(
        "Ablations",
        "design-decision benches (strategies, filled vs boundary, RSS, minDist)",
        opts,
    );
    let w = Workloads::generate(opts);
    strategies(&w);
    filled_vs_boundary(&w);
    restricted_search_space(&w);
    mindist_optimizations(&w);
}
