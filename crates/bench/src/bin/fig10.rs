//! Figure 10: intersection-selection cost breakdown vs interior-filter
//! tiling level, software geometry comparison, query set STATES50,
//! datasets (a) WATER and (b) PRISM.
//!
//! The paper's observations this should reproduce: the MBR-filter curve
//! hugs zero; geometry comparison falls only mildly with the tiling level
//! (< 10% even at level 4, because the filter only confirms containment
//! cases the point-in-polygon step handles cheaply anyway); at high levels
//! the filter's own cost pushes the total back up.

use hwa_core::engine::GeometryTest;
use hwa_core::HwConfig;
use spatial_bench::{engine_with, header, ms, run_selection_set, BenchOpts, Workloads};

fn main() {
    let opts = BenchOpts::from_args();
    header(
        "Figure 10",
        "selection cost breakdown vs interior-filter tiling level (software refinement)",
        opts,
    );
    let w = Workloads::generate(opts);

    for ds in [&w.water, &w.prism] {
        println!(
            "\n--- dataset {} | queries STATES50, avg cost per query (ms) ---",
            ds.name
        );
        println!(
            "{:>5} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8}",
            "level", "mbr", "interior", "geometry", "total", "flt hits", "results"
        );
        for level in 0..=6u32 {
            let mut engine = engine_with(
                GeometryTest::Software,
                HwConfig::recommended(),
                Some(level),
                false,
            );
            let (n, cost, results) = run_selection_set(&mut engine, ds, &w.states50, opts.queries);
            let nq = n as f64;
            println!(
                "{:>5} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10} {:>8}",
                level,
                ms(cost.mbr_filter) / nq,
                ms(cost.intermediate_filter) / nq,
                ms(cost.geometry_comparison) / nq,
                ms(cost.total()) / nq,
                cost.filter_hits,
                results,
            );
        }
    }
}
