//! Property tests: the R-tree's answers equal linear scans for every query
//! type, under both construction methods, on arbitrary rectangle soups.

use proptest::prelude::*;
use spatial_geom::{Point, Rect};
use spatial_index::{
    join_intersecting, join_intersecting_with, join_within_distance, join_within_distance_with,
    FilterConfig, FilterStats, RTree,
};

prop_compose! {
    fn arb_rect()(
        x in -100.0f64..100.0,
        y in -100.0f64..100.0,
        w in 0.0f64..40.0,
        h in 0.0f64..40.0,
    ) -> Rect {
        Rect::new(x, y, x + w, y + h)
    }
}

prop_compose! {
    fn arb_items(max: usize)(
        rects in prop::collection::vec(arb_rect(), 1..max),
    ) -> Vec<(Rect, usize)> {
        rects.into_iter().enumerate().map(|(i, r)| (r, i)).collect()
    }
}

fn sorted(v: Vec<&usize>) -> Vec<usize> {
    let mut v: Vec<usize> = v.into_iter().copied().collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Window queries equal a linear scan, for bulk-loaded and inserted
    /// trees alike.
    #[test]
    fn search_matches_scan(items in arb_items(120), window in arb_rect()) {
        let bulk = RTree::bulk_load(items.clone());
        let mut incr = RTree::new();
        for (r, v) in items.clone() {
            incr.insert(r, v);
        }
        bulk.check_invariants();
        incr.check_invariants();
        let mut expected: Vec<usize> = items
            .iter()
            .filter(|(r, _)| r.intersects(&window))
            .map(|&(_, v)| v)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(sorted(bulk.search_intersects(&window)), expected.clone());
        prop_assert_eq!(sorted(incr.search_intersects(&window)), expected);
    }

    /// Within-distance queries equal a linear scan.
    #[test]
    fn within_matches_scan(items in arb_items(100), q in arb_rect(), d in 0.0f64..80.0) {
        let tree = RTree::bulk_load(items.clone());
        let mut expected: Vec<usize> = items
            .iter()
            .filter(|(r, _)| r.min_dist(&q) <= d)
            .map(|&(_, v)| v)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(sorted(tree.search_within(&q, d)), expected);
    }

    /// Joins equal the quadratic scan.
    #[test]
    fn joins_match_scan(a in arb_items(60), b in arb_items(60), d in 0.0f64..50.0) {
        let ta = RTree::bulk_load(a.clone());
        let tb = RTree::bulk_load(b.clone());
        let mut got: Vec<(usize, usize)> = join_intersecting(&ta, &tb)
            .into_iter()
            .map(|(x, y)| (*x, *y))
            .collect();
        got.sort_unstable();
        let mut expected: Vec<(usize, usize)> = Vec::new();
        for (ra, va) in &a {
            for (rb, vb) in &b {
                if ra.intersects(rb) {
                    expected.push((*va, *vb));
                }
            }
        }
        expected.sort_unstable();
        prop_assert_eq!(got, expected);

        let mut got_d: Vec<(usize, usize)> = join_within_distance(&ta, &tb, d)
            .into_iter()
            .map(|(x, y)| (*x, *y))
            .collect();
        got_d.sort_unstable();
        let mut expected_d: Vec<(usize, usize)> = Vec::new();
        for (ra, va) in &a {
            for (rb, vb) in &b {
                if ra.min_dist(rb) <= d {
                    expected_d.push((*va, *vb));
                }
            }
        }
        expected_d.sort_unstable();
        prop_assert_eq!(got_d, expected_d);
    }

    /// Structural invariants — including every node's SoA mirror matching
    /// its entry list bit for bit — hold after bulk loading and after
    /// every step of an incremental insert sequence (the insert/split
    /// path rebuilds the mirrors on the way back up).
    #[test]
    fn invariants_and_soa_mirror_hold_under_construction(items in arb_items(150)) {
        let bulk = RTree::bulk_load(items.clone());
        bulk.check_invariants();
        let mut incr = RTree::new();
        for (i, (r, v)) in items.into_iter().enumerate() {
            incr.insert(r, v);
            // Checking at every prefix would be quadratic; sample the
            // prefixes (always including the final tree).
            if i % 17 == 0 {
                incr.check_invariants();
            }
        }
        incr.check_invariants();
        prop_assert_eq!(bulk.len(), incr.len());
    }

    /// The filter knobs never change observable behaviour: for both join
    /// predicates, the candidate *sequence* and the deterministic
    /// `node_tests` counter are identical across scalar/SIMD kernels,
    /// thread counts and work-unit sizes — and the candidate set equals
    /// the brute-force nested-loop oracle.
    #[test]
    fn join_configs_bit_identical_and_match_oracle(
        a in arb_items(50),
        b in arb_items(50),
        d in 0.0f64..50.0,
    ) {
        let ta = RTree::bulk_load(a.clone());
        let tb = RTree::bulk_load(b.clone());

        let mut oracle_int: Vec<(usize, usize)> = Vec::new();
        let mut oracle_dist: Vec<(usize, usize)> = Vec::new();
        for (ra, va) in &a {
            for (rb, vb) in &b {
                if ra.intersects(rb) {
                    oracle_int.push((*va, *vb));
                }
                if ra.min_dist(rb) <= d {
                    oracle_dist.push((*va, *vb));
                }
            }
        }
        oracle_int.sort_unstable();
        oracle_dist.sort_unstable();

        let deref = |v: Vec<(&usize, &usize)>| -> Vec<(usize, usize)> {
            v.into_iter().map(|(x, y)| (*x, *y)).collect()
        };
        let mut ref_int_stats = FilterStats::default();
        let mut ref_dist_stats = FilterStats::default();
        let ref_int = deref(join_intersecting_with(
            &ta, &tb, &FilterConfig::scalar(), &mut ref_int_stats,
        ));
        let ref_dist = deref(join_within_distance_with(
            &ta, &tb, d, &FilterConfig::scalar(), &mut ref_dist_stats,
        ));
        let mut sorted_int = ref_int.clone();
        sorted_int.sort_unstable();
        prop_assert_eq!(sorted_int, oracle_int);
        let mut sorted_dist = ref_dist.clone();
        sorted_dist.sort_unstable();
        prop_assert_eq!(sorted_dist, oracle_dist);

        for threads in [1usize, 2, 8] {
            for unit_pairs in [1usize, 7, 64] {
                for simd in [false, true] {
                    let cfg = FilterConfig { threads, simd, unit_pairs };
                    let mut s_int = FilterStats::default();
                    let got_int = deref(join_intersecting_with(&ta, &tb, &cfg, &mut s_int));
                    prop_assert_eq!(
                        &got_int, &ref_int,
                        "intersection order diverged: {:?}", cfg
                    );
                    prop_assert_eq!(
                        s_int.node_tests, ref_int_stats.node_tests,
                        "intersection node_tests diverged: {:?}", cfg
                    );
                    let mut s_dist = FilterStats::default();
                    let got_dist =
                        deref(join_within_distance_with(&ta, &tb, d, &cfg, &mut s_dist));
                    prop_assert_eq!(
                        &got_dist, &ref_dist,
                        "within-distance order diverged: {:?}", cfg
                    );
                    prop_assert_eq!(
                        s_dist.node_tests, ref_dist_stats.node_tests,
                        "within-distance node_tests diverged: {:?}", cfg
                    );
                }
            }
        }
    }

    /// The nearest iterator yields every entry exactly once, in
    /// non-decreasing MBR-distance order, matching a sorted scan.
    #[test]
    fn nearest_matches_sorted_scan(
        items in arb_items(100),
        qx in -150.0f64..150.0,
        qy in -150.0f64..150.0,
    ) {
        let tree = RTree::bulk_load(items.clone());
        let q = Point::new(qx, qy);
        let got: Vec<f64> = tree.nearest_iter(q).map(|(_, d)| d).collect();
        prop_assert_eq!(got.len(), items.len());
        let mut expected: Vec<f64> =
            items.iter().map(|(r, _)| r.min_dist_point(q)).collect();
        expected.sort_by(|a, b| a.total_cmp(b));
        for (g, e) in got.iter().zip(expected.iter()) {
            prop_assert!((g - e).abs() < 1e-9, "{} vs {}", g, e);
        }
    }
}
