//! Property tests: the R-tree's answers equal linear scans for every query
//! type, under both construction methods, on arbitrary rectangle soups.

use proptest::prelude::*;
use spatial_geom::{Point, Rect};
use spatial_index::{join_intersecting, join_within_distance, RTree};

prop_compose! {
    fn arb_rect()(
        x in -100.0f64..100.0,
        y in -100.0f64..100.0,
        w in 0.0f64..40.0,
        h in 0.0f64..40.0,
    ) -> Rect {
        Rect::new(x, y, x + w, y + h)
    }
}

prop_compose! {
    fn arb_items(max: usize)(
        rects in prop::collection::vec(arb_rect(), 1..max),
    ) -> Vec<(Rect, usize)> {
        rects.into_iter().enumerate().map(|(i, r)| (r, i)).collect()
    }
}

fn sorted(v: Vec<&usize>) -> Vec<usize> {
    let mut v: Vec<usize> = v.into_iter().copied().collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Window queries equal a linear scan, for bulk-loaded and inserted
    /// trees alike.
    #[test]
    fn search_matches_scan(items in arb_items(120), window in arb_rect()) {
        let bulk = RTree::bulk_load(items.clone());
        let mut incr = RTree::new();
        for (r, v) in items.clone() {
            incr.insert(r, v);
        }
        bulk.check_invariants();
        incr.check_invariants();
        let mut expected: Vec<usize> = items
            .iter()
            .filter(|(r, _)| r.intersects(&window))
            .map(|&(_, v)| v)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(sorted(bulk.search_intersects(&window)), expected.clone());
        prop_assert_eq!(sorted(incr.search_intersects(&window)), expected);
    }

    /// Within-distance queries equal a linear scan.
    #[test]
    fn within_matches_scan(items in arb_items(100), q in arb_rect(), d in 0.0f64..80.0) {
        let tree = RTree::bulk_load(items.clone());
        let mut expected: Vec<usize> = items
            .iter()
            .filter(|(r, _)| r.min_dist(&q) <= d)
            .map(|&(_, v)| v)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(sorted(tree.search_within(&q, d)), expected);
    }

    /// Joins equal the quadratic scan.
    #[test]
    fn joins_match_scan(a in arb_items(60), b in arb_items(60), d in 0.0f64..50.0) {
        let ta = RTree::bulk_load(a.clone());
        let tb = RTree::bulk_load(b.clone());
        let mut got: Vec<(usize, usize)> = join_intersecting(&ta, &tb)
            .into_iter()
            .map(|(x, y)| (*x, *y))
            .collect();
        got.sort_unstable();
        let mut expected: Vec<(usize, usize)> = Vec::new();
        for (ra, va) in &a {
            for (rb, vb) in &b {
                if ra.intersects(rb) {
                    expected.push((*va, *vb));
                }
            }
        }
        expected.sort_unstable();
        prop_assert_eq!(got, expected);

        let mut got_d: Vec<(usize, usize)> = join_within_distance(&ta, &tb, d)
            .into_iter()
            .map(|(x, y)| (*x, *y))
            .collect();
        got_d.sort_unstable();
        let mut expected_d: Vec<(usize, usize)> = Vec::new();
        for (ra, va) in &a {
            for (rb, vb) in &b {
                if ra.min_dist(rb) <= d {
                    expected_d.push((*va, *vb));
                }
            }
        }
        expected_d.sort_unstable();
        prop_assert_eq!(got_d, expected_d);
    }

    /// The nearest iterator yields every entry exactly once, in
    /// non-decreasing MBR-distance order, matching a sorted scan.
    #[test]
    fn nearest_matches_sorted_scan(
        items in arb_items(100),
        qx in -150.0f64..150.0,
        qy in -150.0f64..150.0,
    ) {
        let tree = RTree::bulk_load(items.clone());
        let q = Point::new(qx, qy);
        let got: Vec<f64> = tree.nearest_iter(q).map(|(_, d)| d).collect();
        prop_assert_eq!(got.len(), items.len());
        let mut expected: Vec<f64> =
            items.iter().map(|(r, _)| r.min_dist_point(q)).collect();
        expected.sort_by(|a, b| a.total_cmp(b));
        for (g, e) in got.iter().zip(expected.iter()) {
            prop_assert!((g - e).abs() < 1e-9, "{} vs {}", g, e);
        }
    }
}
