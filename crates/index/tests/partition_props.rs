//! Property tests for the PBSM partitioner: bucketing covers every input,
//! replicas are exact copies of their originals, ownership is consistent
//! with replication, and the reference-point rule makes the standalone
//! per-cell joins emit each qualifying pair exactly once versus the
//! brute-force oracle.

use proptest::prelude::*;
use spatial_geom::{Point, Rect};
use spatial_index::SpatialGrid;

prop_compose! {
    fn arb_rect()(
        x in -100.0f64..100.0,
        y in -100.0f64..100.0,
        w in 0.0f64..40.0,
        h in 0.0f64..40.0,
    ) -> Rect {
        Rect::new(x, y, x + w, y + h)
    }
}

prop_compose! {
    fn arb_rects(max: usize)(
        rects in prop::collection::vec(arb_rect(), 1..max),
    ) -> Vec<Rect> {
        rects
    }
}

fn universe_of(sets: &[&[Rect]]) -> Rect {
    sets.iter()
        .flat_map(|s| s.iter())
        .fold(Rect::EMPTY, |u, r| u.union(r))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every input object lands in at least one bucket, each bucketed
    /// replica is an exact copy of the original (buckets store indices,
    /// so the rect a cell sees is bitwise the input rect), no index
    /// appears twice in the same cell, and the owner cell always carries
    /// a replica.
    #[test]
    fn bucketing_covers_every_object(
        rects in arb_rects(80),
        n in 1usize..6,
        shrink in 0.0f64..0.9,
    ) {
        // A universe smaller than the data exercises the boundary-cell
        // clamping path too.
        let full = universe_of(&[&rects]);
        let universe = Rect::new(
            full.xmin + full.width() * shrink * 0.5,
            full.ymin + full.height() * shrink * 0.5,
            full.xmax - full.width() * shrink * 0.5,
            full.ymax - full.height() * shrink * 0.5,
        );
        let grid = SpatialGrid::new(n, universe);
        let buckets = grid.bucket(&rects);
        prop_assert_eq!(buckets.len(), grid.cells());

        let mut seen = vec![0usize; rects.len()];
        for (cell, bucket) in buckets.iter().enumerate() {
            let mut in_cell = std::collections::HashSet::new();
            for &i in bucket {
                prop_assert!(i < rects.len());
                // Replicas are exact copies: a bucket entry is an index
                // into the original slice, so the rect a cell sees is
                // bitwise the input rect; the cell must be in its cover.
                prop_assert!(grid.cover(&rects[i]).any(|c| c == cell),
                    "index {} bucketed into cell {} outside its cover", i, cell);
                prop_assert!(in_cell.insert(i), "index {} twice in cell {}", i, cell);
                seen[i] += 1;
            }
        }
        for (i, &count) in seen.iter().enumerate() {
            prop_assert!(count >= 1, "object {} landed in no bucket", i);
            // Replication count equals the cover size exactly.
            prop_assert_eq!(count, grid.cover(&rects[i]).count());
        }
        for r in &rects {
            let owner = grid.owner(r);
            prop_assert!(buckets[owner].iter().any(|&i| rects[i] == *r),
                "owner cell {} holds no replica", owner);
        }
    }

    /// The owner of any candidate pair is a cell where both members are
    /// replicated — the guarantee that makes per-cell joins complete.
    #[test]
    fn pair_owner_is_within_both_covers(
        a in arb_rect(),
        b in arb_rect(),
        n in 1usize..6,
        d in 0.0f64..10.0,
    ) {
        let grid = SpatialGrid::new(n, universe_of(&[&[a], &[b]]));
        if a.intersects(&b) {
            let cell = grid.assign_pair(&a, &b);
            prop_assert!(grid.cover(&a).any(|c| c == cell));
            prop_assert!(grid.cover(&b).any(|c| c == cell));
            // The reference point is the intersection's lower-left corner.
            let isect = a.intersection(&b).unwrap();
            prop_assert_eq!(cell, grid.cell_of(Point::new(isect.xmin, isect.ymin)));
        }
        if a.min_dist(&b) <= d {
            let cell = grid.assign_pair_within(&a, &b, d);
            prop_assert!(grid.cover(&a.expanded(d)).any(|c| c == cell));
            prop_assert!(grid.cover(&b.expanded(d)).any(|c| c == cell));
        }
    }

    /// The standalone PBSM intersection join equals the brute-force
    /// oracle with each qualifying pair emitted exactly once — boundary
    /// replication never produces duplicates.
    #[test]
    fn partitioned_intersection_join_matches_oracle(
        a in arb_rects(60),
        b in arb_rects(60),
        n in 1usize..6,
    ) {
        let grid = SpatialGrid::new(n, universe_of(&[&a, &b]));
        let got = grid.join_intersecting(&a, &b);

        let mut sorted = got.clone();
        sorted.sort_unstable();
        let deduped_len = {
            let mut d = sorted.clone();
            d.dedup();
            d.len()
        };
        prop_assert_eq!(got.len(), deduped_len, "duplicate pair emissions");

        let mut expected: Vec<(usize, usize)> = Vec::new();
        for (i, ra) in a.iter().enumerate() {
            for (j, rb) in b.iter().enumerate() {
                if ra.intersects(rb) {
                    expected.push((i, j));
                }
            }
        }
        expected.sort_unstable();
        prop_assert_eq!(sorted, expected);
    }

    /// Same exactly-once-vs-oracle property for the within-distance join,
    /// whose replication expands both inputs by `d`.
    #[test]
    fn partitioned_within_distance_join_matches_oracle(
        a in arb_rects(50),
        b in arb_rects(50),
        n in 1usize..6,
        d in 0.0f64..25.0,
    ) {
        let grid = SpatialGrid::new(n, universe_of(&[&a, &b]));
        let got = grid.join_within_distance(&a, &b, d);

        let mut sorted = got.clone();
        sorted.sort_unstable();
        let deduped_len = {
            let mut dd = sorted.clone();
            dd.dedup();
            dd.len()
        };
        prop_assert_eq!(got.len(), deduped_len, "duplicate pair emissions");

        let mut expected: Vec<(usize, usize)> = Vec::new();
        for (i, ra) in a.iter().enumerate() {
            for (j, rb) in b.iter().enumerate() {
                if ra.min_dist(rb) <= d {
                    expected.push((i, j));
                }
            }
        }
        expected.sort_unstable();
        prop_assert_eq!(sorted, expected);
    }

    /// Partition assignment is grid-deterministic: the same pair always
    /// maps to the same cell, and with n = 1 everything maps to cell 0.
    #[test]
    fn assignment_is_deterministic(a in arb_rect(), b in arb_rect(), n in 1usize..6) {
        let u = universe_of(&[&[a], &[b]]);
        let grid = SpatialGrid::new(n, u);
        prop_assert_eq!(grid.assign_pair(&a, &b), grid.assign_pair(&a, &b));
        let single = SpatialGrid::new(1, u);
        prop_assert_eq!(single.assign_pair(&a, &b), 0);
        prop_assert_eq!(single.assign_pair_within(&a, &b, 3.0), 0);
    }
}
