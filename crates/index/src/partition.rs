//! PBSM-style spatial partitioning: a uniform n×n grid over a universe
//! rectangle, with boundary replication and reference-point duplicate
//! suppression (Patel & DeWitt's Partition Based Spatial Merge join).
//!
//! Two layers of machinery live here:
//!
//! * **Bucketing + standalone joins** ([`SpatialGrid::bucket`],
//!   [`SpatialGrid::join_intersecting`],
//!   [`SpatialGrid::join_within_distance`]): both inputs are replicated
//!   into every grid cell their MBR spans, each cell is joined
//!   independently (a cell never looks outside its own buckets — the
//!   out-of-core contract), and a qualifying pair is emitted only by the
//!   cell that *owns* it under the reference-point rule, so replication
//!   never produces duplicate results. This is the shape that ships each
//!   partition to its own device, board or machine.
//! * **Partition assignment** ([`SpatialGrid::assign_pair`],
//!   [`SpatialGrid::assign_pair_within`], [`SpatialGrid::owner`]): the
//!   same ownership rule as a pure function from a candidate to its one
//!   owning cell. The query engine bins the globally-enumerated candidate
//!   stream with these, which keeps stage-1 `FilterStats` a pure function
//!   of the trees and the query (DESIGN.md invariant 11) while giving
//!   every partition an independent refinement stream.
//!
//! **The reference-point rule.** For a candidate pair, the *reference
//! point* is the lower-left corner of the intersection of the two (for
//! within-distance: both-expanded-by-`d`) MBRs. Exactly one grid cell
//! contains that point under half-open binning, and — because each input
//! is replicated into every cell its (expanded) MBR spans, and the
//! reference point lies inside both — that owning cell is guaranteed to
//! hold replicas of both objects. Hence each qualifying pair is
//! discovered by at least the owner and emitted by exactly the owner.
//!
//! Binning is *half-open*: a coordinate exactly on an interior cell
//! boundary belongs to the cell on its upper/right side, matching
//! `floor` semantics in [`SpatialGrid::cell_of`]. Replication spans are
//! computed with the same binning, so ownership and replication can
//! never disagree about boundary-touching geometry.
//!
//! # Example
//!
//! ```
//! use spatial_geom::Rect;
//! use spatial_index::SpatialGrid;
//!
//! let grid = SpatialGrid::new(2, Rect::new(0.0, 0.0, 10.0, 10.0));
//!
//! // Both rectangles straddle the x = 5 cell boundary, so each is
//! // replicated into two cells...
//! let a = [Rect::new(4.0, 1.0, 6.0, 2.0)];
//! let b = [Rect::new(4.5, 1.5, 6.5, 2.5)];
//! assert_eq!(grid.cover(&a[0]).count(), 2);
//! assert_eq!(grid.cover(&b[0]).count(), 2);
//!
//! // ...and both cells discover the overlapping pair, but only the cell
//! // owning the reference point (4.5, 1.5) emits it — exactly once.
//! assert_eq!(grid.join_intersecting(&a, &b), vec![(0, 0)]);
//! assert_eq!(grid.assign_pair(&a[0], &b[0]), grid.cell_of((4.5, 1.5).into()));
//! ```

use spatial_geom::{Point, Rect};

/// A uniform n×n spatial grid over a universe rectangle.
///
/// The grid is a pure value: cell membership, replication spans and pair
/// ownership are all deterministic functions of the universe, `n`, and
/// the geometry — never of insertion order or thread scheduling. Points
/// outside the universe clamp to the boundary cells, so every input is
/// always bucketed somewhere even when the universe underestimates the
/// data extent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialGrid {
    n: usize,
    universe: Rect,
}

impl SpatialGrid {
    /// A grid of `n × n` cells over `universe`. `n` is clamped to at
    /// least 1; a degenerate universe (zero extent on either axis)
    /// collapses that axis to a single bin.
    pub fn new(n: usize, universe: Rect) -> Self {
        SpatialGrid {
            n: n.max(1),
            universe,
        }
    }

    /// Cells per side.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total cell count (`n × n`).
    #[inline]
    pub fn cells(&self) -> usize {
        self.n * self.n
    }

    /// The rectangle the grid subdivides.
    #[inline]
    pub fn universe(&self) -> Rect {
        self.universe
    }

    /// Half-open bin of a coordinate along one axis, clamped to the grid.
    fn axis_bin(&self, v: f64, min: f64, extent: f64) -> usize {
        if self.n <= 1 || extent.is_nan() || extent <= 0.0 {
            return 0;
        }
        let t = ((v - min) / extent * self.n as f64).floor();
        // `as usize` maps NaN and negatives to 0; the `.min` clamps the
        // upper boundary (v == max bins into the last cell, not past it).
        (t.max(0.0) as usize).min(self.n - 1)
    }

    #[inline]
    fn col_of(&self, x: f64) -> usize {
        self.axis_bin(x, self.universe.xmin, self.universe.width())
    }

    #[inline]
    fn row_of(&self, y: f64) -> usize {
        self.axis_bin(y, self.universe.ymin, self.universe.height())
    }

    /// The cell containing `p` (clamped to the grid).
    #[inline]
    pub fn cell_of(&self, p: Point) -> usize {
        self.row_of(p.y) * self.n + self.col_of(p.x)
    }

    /// The rectangle of cell `c`. Boundary cells absorb everything the
    /// clamping in [`SpatialGrid::cell_of`] assigns to them, but the
    /// reported rectangle is the universe slice.
    pub fn cell_rect(&self, c: usize) -> Rect {
        let (col, row) = (c % self.n, c / self.n);
        let (w, h) = (self.universe.width(), self.universe.height());
        let edge = |min: f64, extent: f64, i: usize| {
            if i >= self.n {
                min + extent
            } else {
                min + extent * i as f64 / self.n as f64
            }
        };
        Rect::new(
            edge(self.universe.xmin, w, col),
            edge(self.universe.ymin, h, row),
            edge(self.universe.xmin, w, col + 1),
            edge(self.universe.ymin, h, row + 1),
        )
    }

    /// The cells `r` spans under half-open binning — the replication set
    /// of an object with MBR `r` — as a row-major iterator in ascending
    /// cell order.
    pub fn cover(&self, r: &Rect) -> impl Iterator<Item = usize> + '_ {
        let (c0, c1) = (self.col_of(r.xmin), self.col_of(r.xmax));
        let (r0, r1) = (self.row_of(r.ymin), self.row_of(r.ymax));
        (r0..=r1).flat_map(move |row| (c0..=c1).map(move |col| row * self.n + col))
    }

    /// The cell owning `r` under the reference-point rule: the cell
    /// containing `r`'s lower-left corner. Always a member of
    /// [`SpatialGrid::cover`]`(r)`.
    #[inline]
    pub fn owner(&self, r: &Rect) -> usize {
        self.cell_of(Point::new(r.xmin, r.ymin))
    }

    /// The partition owning an intersection-join candidate: the cell
    /// containing the lower-left corner of `a ∩ b`. A pure function of
    /// the two MBRs — each candidate pair belongs to exactly one
    /// partition, which is what makes partitioned refinement emit every
    /// result exactly once. (Computed directly from the corner maxima, so
    /// it stays deterministic even for barely-touching MBRs.)
    #[inline]
    pub fn assign_pair(&self, a: &Rect, b: &Rect) -> usize {
        self.cell_of(Point::new(a.xmin.max(b.xmin), a.ymin.max(b.ymin)))
    }

    /// The partition owning a within-distance candidate: the cell
    /// containing the lower-left corner of `a.expanded(d) ∩ b.expanded(d)`
    /// (which is `(max(a.xmin, b.xmin) − d, max(a.ymin, b.ymin) − d)` —
    /// `max` commutes with the monotone `· − d`).
    #[inline]
    pub fn assign_pair_within(&self, a: &Rect, b: &Rect, d: f64) -> usize {
        self.cell_of(Point::new(a.xmin.max(b.xmin) - d, a.ymin.max(b.ymin) - d))
    }

    /// Buckets `mbrs` into the grid: `out[c]` holds the indices of every
    /// MBR spanning cell `c`, in input order. Boundary-spanning objects
    /// are replicated into each cell they span; each index appears at
    /// most once per cell.
    pub fn bucket(&self, mbrs: &[Rect]) -> Vec<Vec<usize>> {
        self.bucket_expanded(mbrs, 0.0)
    }

    /// [`SpatialGrid::bucket`] with every MBR expanded by `d` first — the
    /// replication rule of the within-distance join, where an object must
    /// reach every cell a partner within distance `d` could be owned by.
    pub fn bucket_expanded(&self, mbrs: &[Rect], d: f64) -> Vec<Vec<usize>> {
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); self.cells()];
        for (i, r) in mbrs.iter().enumerate() {
            let r = if d > 0.0 { r.expanded(d) } else { *r };
            for c in self.cover(&r) {
                out[c].push(i);
            }
        }
        out
    }

    /// The standalone PBSM intersection join: bucket both inputs, join
    /// each cell's buckets independently, and emit a qualifying pair only
    /// from the cell owning its reference point. Returns index pairs in
    /// deterministic (cell-major, then bucket-order) sequence, each
    /// qualifying pair exactly once.
    pub fn join_intersecting(&self, a: &[Rect], b: &[Rect]) -> Vec<(usize, usize)> {
        self.join_with(
            a,
            b,
            0.0,
            |x, y| x.intersects(y),
            |x, y| self.assign_pair(x, y),
        )
    }

    /// The standalone PBSM within-distance join: like
    /// [`SpatialGrid::join_intersecting`], with both inputs replicated
    /// under `d`-expansion and ownership taken on the expanded
    /// intersection.
    pub fn join_within_distance(&self, a: &[Rect], b: &[Rect], d: f64) -> Vec<(usize, usize)> {
        self.join_with(
            a,
            b,
            d,
            |x, y| x.min_dist(y) <= d,
            |x, y| self.assign_pair_within(x, y, d),
        )
    }

    /// Shared per-cell join loop: each cell sees only its own buckets
    /// (the out-of-core contract) and emits only the pairs it owns.
    fn join_with(
        &self,
        a: &[Rect],
        b: &[Rect],
        d: f64,
        qualifies: impl Fn(&Rect, &Rect) -> bool,
        owner_of: impl Fn(&Rect, &Rect) -> usize,
    ) -> Vec<(usize, usize)> {
        let buckets_a = self.bucket_expanded(a, d);
        let buckets_b = self.bucket_expanded(b, d);
        let mut out = Vec::new();
        for (cell, (ba, bb)) in buckets_a.iter().zip(&buckets_b).enumerate() {
            for &i in ba {
                for &j in bb {
                    if qualifies(&a[i], &b[j]) && owner_of(&a[i], &b[j]) == cell {
                        out.push((i, j));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(x: f64, y: f64, w: f64, h: f64) -> Rect {
        Rect::new(x, y, x + w, y + h)
    }

    fn unit_universe() -> Rect {
        Rect::new(0.0, 0.0, 8.0, 8.0)
    }

    #[test]
    fn single_cell_grid_owns_everything() {
        let g = SpatialGrid::new(1, unit_universe());
        assert_eq!(g.cells(), 1);
        assert_eq!(g.owner(&rect(3.0, 3.0, 2.0, 2.0)), 0);
        assert_eq!(g.cover(&rect(-5.0, -5.0, 100.0, 100.0)).count(), 1);
    }

    #[test]
    fn boundary_spanning_objects_replicate() {
        let g = SpatialGrid::new(2, unit_universe());
        // Centered square spans all four cells.
        let spanning = rect(3.0, 3.0, 2.0, 2.0);
        let cover: Vec<usize> = g.cover(&spanning).collect();
        assert_eq!(cover, vec![0, 1, 2, 3]);
        // Its owner is the lower-left cell.
        assert_eq!(g.owner(&spanning), 0);
        // A cell-interior square lands in exactly one bucket.
        assert_eq!(g.cover(&rect(5.0, 1.0, 1.0, 1.0)).collect::<Vec<_>>(), [1]);
    }

    #[test]
    fn half_open_binning_assigns_boundaries_upward() {
        let g = SpatialGrid::new(4, unit_universe());
        // x = 2.0 is the boundary between columns 0 and 1: bins to 1.
        assert_eq!(g.cell_of(Point::new(2.0, 0.0)), 1);
        // The universe maximum clamps into the last cell.
        assert_eq!(g.cell_of(Point::new(8.0, 8.0)), 15);
        // Outside points clamp to boundary cells.
        assert_eq!(g.cell_of(Point::new(-3.0, 100.0)), 12);
    }

    #[test]
    fn owner_is_always_within_cover() {
        let g = SpatialGrid::new(4, unit_universe());
        for r in [
            rect(0.0, 0.0, 8.0, 8.0),
            rect(1.9, 1.9, 0.2, 0.2),
            rect(2.0, 2.0, 0.0, 0.0),
            rect(-2.0, 7.9, 20.0, 5.0),
        ] {
            let cover: Vec<usize> = g.cover(&r).collect();
            assert!(cover.contains(&g.owner(&r)), "{r:?}");
        }
    }

    #[test]
    fn pair_assignment_matches_intersection_owner() {
        let g = SpatialGrid::new(4, unit_universe());
        let a = rect(1.0, 1.0, 3.0, 3.0);
        let b = rect(3.0, 2.0, 4.0, 4.0);
        let isect = a.intersection(&b).unwrap();
        assert_eq!(g.assign_pair(&a, &b), g.owner(&isect));
    }

    #[test]
    fn standalone_joins_match_brute_force_without_duplicates() {
        let a: Vec<Rect> = (0..40)
            .map(|i| rect((i % 8) as f64, (i / 8) as f64 * 1.5, 1.3, 1.1))
            .collect();
        let b: Vec<Rect> = (0..30)
            .map(|i| {
                rect(
                    (i % 6) as f64 * 1.4 + 0.3,
                    (i / 6) as f64 * 1.2 + 0.2,
                    0.9,
                    1.6,
                )
            })
            .collect();
        let universe = a.iter().chain(&b).fold(Rect::EMPTY, |u, r| u.union(r));
        for n in [1, 2, 3, 5] {
            let g = SpatialGrid::new(n, universe);
            let mut got = g.join_intersecting(&a, &b);
            let mut expected: Vec<(usize, usize)> = Vec::new();
            for (i, ra) in a.iter().enumerate() {
                for (j, rb) in b.iter().enumerate() {
                    if ra.intersects(rb) {
                        expected.push((i, j));
                    }
                }
            }
            let raw_len = got.len();
            got.sort_unstable();
            got.dedup();
            assert_eq!(raw_len, got.len(), "n={n}: duplicate emissions");
            expected.sort_unstable();
            assert_eq!(got, expected, "n={n}");

            for d in [0.0, 0.4, 2.0] {
                let mut got = g.join_within_distance(&a, &b, d);
                let mut expected: Vec<(usize, usize)> = Vec::new();
                for (i, ra) in a.iter().enumerate() {
                    for (j, rb) in b.iter().enumerate() {
                        if ra.min_dist(rb) <= d {
                            expected.push((i, j));
                        }
                    }
                }
                let raw_len = got.len();
                got.sort_unstable();
                got.dedup();
                assert_eq!(raw_len, got.len(), "n={n} d={d}: duplicate emissions");
                expected.sort_unstable();
                assert_eq!(got, expected, "n={n} d={d}");
            }
        }
    }

    #[test]
    fn degenerate_universe_collapses_to_one_bin() {
        let g = SpatialGrid::new(4, Rect::new(3.0, 3.0, 3.0, 3.0));
        assert_eq!(g.cell_of(Point::new(3.0, 3.0)), 0);
        assert_eq!(g.cell_of(Point::new(100.0, -4.0)), 0);
        assert_eq!(g.cover(&rect(0.0, 0.0, 10.0, 10.0)).count(), 1);
    }
}
