//! Best-first nearest-neighbor search over the R-tree — the software
//! baseline for the paper's §5 future-work item ("nearest neighbor queries
//! using hardware calculated Voronoi diagrams").
//!
//! Classic Hjaltason–Samet incremental search: a priority queue over tree
//! nodes and entries ordered by MBR distance to the query point. Since MBR
//! distance lower-bounds object distance, popping in order yields
//! candidates whose true distances need only be refined by the caller.

use crate::rtree::{Node, NodeKind, RTree};
use spatial_geom::Point;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A min-heap item: candidate (leaf entry) or node, keyed by MBR distance.
struct HeapItem<'a, T> {
    dist: f64,
    kind: ItemKind<'a, T>,
}

enum ItemKind<'a, T> {
    Node(&'a Node<T>),
    Entry(&'a T),
}

impl<T> PartialEq for HeapItem<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl<T> Eq for HeapItem<'_, T> {}
impl<T> PartialOrd for HeapItem<'_, T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapItem<'_, T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on distance.
        other.dist.total_cmp(&self.dist)
    }
}

impl<T: Clone> RTree<T> {
    /// Iterates entries in non-decreasing order of MBR distance to `q`.
    ///
    /// The caller refines: because MBR distance is a lower bound, once the
    /// caller has an object whose *true* distance is ≤ the next yielded
    /// MBR distance, the search can stop.
    pub fn nearest_iter<'a>(&'a self, q: Point) -> NearestIter<'a, T> {
        let mut heap = BinaryHeap::new();
        if let Some(root) = self.root_node() {
            heap.push(HeapItem {
                dist: 0.0,
                kind: ItemKind::Node(root),
            });
        }
        NearestIter { q, heap }
    }

    /// The `k` entries with smallest MBR distance to `q` (ties arbitrary).
    /// A convenience built on [`RTree::nearest_iter`].
    pub fn nearest_k(&self, q: Point, k: usize) -> Vec<(&T, f64)> {
        self.nearest_iter(q).take(k).collect()
    }
}

/// Incremental nearest iterator (see [`RTree::nearest_iter`]).
pub struct NearestIter<'a, T> {
    q: Point,
    heap: BinaryHeap<HeapItem<'a, T>>,
}

impl<'a, T> Iterator for NearestIter<'a, T> {
    type Item = (&'a T, f64);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(item) = self.heap.pop() {
            match item.kind {
                ItemKind::Entry(v) => return Some((v, item.dist)),
                ItemKind::Node(node) => match &node.kind {
                    NodeKind::Leaf(entries) => {
                        for (r, v) in entries {
                            self.heap.push(HeapItem {
                                dist: r.min_dist_point(self.q),
                                kind: ItemKind::Entry(v),
                            });
                        }
                    }
                    NodeKind::Internal(children) => {
                        for (r, c) in children {
                            self.heap.push(HeapItem {
                                dist: r.min_dist_point(self.q),
                                kind: ItemKind::Node(c),
                            });
                        }
                    }
                },
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_geom::Rect;

    fn rect(x: f64, y: f64, s: f64) -> Rect {
        Rect::new(x, y, x + s, y + s)
    }

    fn grid_tree(n: usize) -> (RTree<usize>, Vec<(Rect, usize)>) {
        let items: Vec<(Rect, usize)> = (0..n)
            .map(|i| {
                let x = (i % 20) as f64 * 5.0;
                let y = (i / 20) as f64 * 5.0;
                (rect(x, y, 2.0), i)
            })
            .collect();
        (RTree::bulk_load(items.clone()), items)
    }

    #[test]
    fn nearest_order_is_nondecreasing() {
        let (tree, _) = grid_tree(300);
        let q = Point::new(37.0, 23.0);
        let mut prev = 0.0;
        for (_, d) in tree.nearest_iter(q).take(50) {
            assert!(d >= prev, "distance order violated: {d} < {prev}");
            prev = d;
        }
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let (tree, items) = grid_tree(300);
        let q = Point::new(11.0, 48.0);
        let got: Vec<usize> = tree.nearest_k(q, 10).into_iter().map(|(v, _)| *v).collect();
        let mut expected: Vec<(f64, usize)> = items
            .iter()
            .map(|(r, v)| (r.min_dist_point(q), *v))
            .collect();
        expected.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Compare distances (payload ties can reorder arbitrarily).
        let exp_d: Vec<f64> = expected.iter().take(10).map(|(d, _)| *d).collect();
        let got_d: Vec<f64> = tree.nearest_k(q, 10).into_iter().map(|(_, d)| d).collect();
        assert_eq!(got.len(), 10);
        for (g, e) in got_d.iter().zip(exp_d.iter()) {
            assert!((g - e).abs() < 1e-12, "{g} vs {e}");
        }
    }

    #[test]
    fn query_inside_an_entry_has_distance_zero() {
        let (tree, _) = grid_tree(100);
        let q = Point::new(1.0, 1.0); // inside entry 0's rect
        let (_, d) = tree.nearest_iter(q).next().unwrap();
        assert_eq!(d, 0.0);
    }

    #[test]
    fn exhausts_all_entries() {
        let (tree, _) = grid_tree(137);
        let q = Point::new(0.0, 0.0);
        assert_eq!(tree.nearest_iter(q).count(), 137);
    }

    #[test]
    fn empty_tree_yields_nothing() {
        let tree: RTree<usize> = RTree::new();
        assert!(tree.nearest_iter(Point::new(0.0, 0.0)).next().is_none());
        assert!(tree.nearest_k(Point::new(0.0, 0.0), 5).is_empty());
    }
}
