//! R-tree spatial index — the MBR filtering stage of the paper's query
//! pipeline (Fig. 8).
//!
//! The paper deliberately leaves indexing untouched ("does not require ...
//! changes to existing storage and index structures"), so this crate
//! provides a textbook Guttman R-tree: quadratic-split insertion,
//! Sort-Tile-Recursive bulk loading, window queries for selections, and a
//! synchronized-traversal spatial join producing the candidate pairs for
//! intersection and within-distance joins.
//!
//! The MBR filter's cost is reported separately by the engine (it is the
//! flat-near-zero curve of Figure 10); candidates are identified by opaque
//! payloads (dataset indices in the engine).

pub mod join;
pub mod nearest;
pub mod rtree;

pub use join::{join_intersecting, join_within_distance};
pub use rtree::RTree;
