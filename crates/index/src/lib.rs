//! R-tree spatial index — the MBR filtering stage of the paper's query
//! pipeline (Fig. 8).
//!
//! The paper deliberately leaves indexing untouched ("does not require ...
//! changes to existing storage and index structures"), so this crate
//! provides a textbook Guttman R-tree: quadratic-split insertion,
//! Sort-Tile-Recursive bulk loading, window queries for selections, and a
//! synchronized-traversal spatial join producing the candidate pairs for
//! intersection and within-distance joins.
//!
//! The MBR filter's cost is reported separately by the engine (it is the
//! flat-near-zero curve of Figure 10); candidates are identified by opaque
//! payloads (dataset indices in the engine).
//!
//! Since the filter-stage rework, every node carries a struct-of-arrays
//! mirror of its children's MBRs and traversals run lane-generic kernels
//! over whole nodes ([`soa`]); the tree join schedules fixed-size page-pair
//! work units across `FilterConfig::threads` workers with an ordered merge
//! that keeps the candidate sequence bit-identical to the sequential
//! traversal.

pub mod join;
pub mod nearest;
pub mod partition;
pub mod rtree;
pub mod snapshot;
pub mod soa;

pub use join::{
    join_intersecting, join_intersecting_with, join_within_distance, join_within_distance_with,
};
pub use partition::SpatialGrid;
pub use rtree::RTree;
pub use snapshot::{Snapshot, SnapshotHandle};
pub use soa::{
    ChildMbrs, FilterConfig, FilterStats, Intersects, MbrPredicate, WithinDist, DEFAULT_UNIT_PAIRS,
    SIMD_LANES,
};
