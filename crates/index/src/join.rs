//! Synchronized-traversal R-tree spatial join — the MBR filtering stage of
//! the paper's join pipelines (§4.1.1): "For intersection join, the
//! candidates are the object pairs whose MBRs intersect each other. For
//! within-distance join, the candidates are object pairs whose MBRs are
//! within distance D."

use crate::rtree::{visit_child, RTree, Visit};
use spatial_geom::Rect;

/// All payload pairs whose MBRs intersect, by descending both trees in
/// lock-step and pruning subtree pairs with disjoint MBRs.
pub fn join_intersecting<'a, A: Clone, B: Clone>(
    left: &'a RTree<A>,
    right: &'a RTree<B>,
) -> Vec<(&'a A, &'a B)> {
    join_predicate(left, right, &|a, b| a.intersects(b))
}

/// All payload pairs whose MBRs are within distance `d`.
pub fn join_within_distance<'a, A: Clone, B: Clone>(
    left: &'a RTree<A>,
    right: &'a RTree<B>,
    d: f64,
) -> Vec<(&'a A, &'a B)> {
    join_predicate(left, right, &|a, b| a.min_dist(b) <= d)
}

/// Generic MBR join: `pred` must be monotone (true for child rectangles ⇒
/// true for their covering parents) for pruning to be lossless — both
/// intersection and within-distance are.
fn join_predicate<'a, A: Clone, B: Clone>(
    left: &'a RTree<A>,
    right: &'a RTree<B>,
    pred: &dyn Fn(&Rect, &Rect) -> bool,
) -> Vec<(&'a A, &'a B)> {
    let mut out = Vec::new();
    if let (Some(l), Some(r)) = (left.visit_root(), right.visit_root()) {
        join_rec(l, r, pred, &mut out);
    }
    out
}

fn join_rec<'a, A, B>(
    left: Visit<'a, A>,
    right: Visit<'a, B>,
    pred: &dyn Fn(&Rect, &Rect) -> bool,
    out: &mut Vec<(&'a A, &'a B)>,
) {
    match (left, right) {
        (Visit::Leaf(ls), Visit::Leaf(rs)) => {
            for (lr, lv) in ls {
                for (rr, rv) in rs {
                    if pred(lr, rr) {
                        out.push((lv, rv));
                    }
                }
            }
        }
        (Visit::Leaf(ls), Visit::Internal(rcs)) => {
            for rc in rcs {
                let (rr, rv) = visit_child(rc);
                // Prune against the leaf's combined extent first.
                if ls.iter().any(|(lr, _)| pred(lr, &rr)) {
                    join_rec(Visit::Leaf(ls), rv, pred, out);
                }
            }
        }
        (Visit::Internal(lcs), Visit::Leaf(rs)) => {
            for lc in lcs {
                let (lr, lv) = visit_child(lc);
                if rs.iter().any(|(rr, _)| pred(&lr, rr)) {
                    join_rec(lv, Visit::Leaf(rs), pred, out);
                }
            }
        }
        (Visit::Internal(lcs), Visit::Internal(rcs)) => {
            for lc in lcs {
                let (lr, lv) = visit_child(lc);
                for rc in rcs {
                    let (rr, rv) = visit_child(rc);
                    if pred(&lr, &rr) {
                        join_rec(clone_visit(&lv), rv, pred, out);
                    }
                }
            }
        }
    }
}

/// `Visit` is a pair of shared references; re-borrowing it is free but it
/// cannot derive `Copy` because of the unsized slices — this shim clones
/// the (reference-only) enum.
fn clone_visit<'a, T>(v: &Visit<'a, T>) -> Visit<'a, T> {
    match v {
        Visit::Leaf(s) => Visit::Leaf(s),
        Visit::Internal(s) => Visit::Internal(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(x: f64, y: f64, s: f64) -> Rect {
        Rect::new(x, y, x + s, y + s)
    }

    /// Brute-force reference join.
    #[allow(clippy::type_complexity)]
    fn brute(
        a: &[(Rect, usize)],
        b: &[(Rect, usize)],
        pred: impl Fn(&Rect, &Rect) -> bool,
    ) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (ra, va) in a {
            for (rb, vb) in b {
                if pred(ra, rb) {
                    out.push((*va, *vb));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn sorted(pairs: Vec<(&usize, &usize)>) -> Vec<(usize, usize)> {
        let mut v: Vec<(usize, usize)> = pairs.into_iter().map(|(a, b)| (*a, *b)).collect();
        v.sort_unstable();
        v
    }

    #[allow(clippy::type_complexity)]
    fn grids() -> (Vec<(Rect, usize)>, Vec<(Rect, usize)>) {
        let a: Vec<(Rect, usize)> = (0..150)
            .map(|i| (rect((i % 15) as f64 * 4.0, (i / 15) as f64 * 4.0, 3.0), i))
            .collect();
        let b: Vec<(Rect, usize)> = (0..120)
            .map(|i| {
                (
                    rect(
                        (i % 12) as f64 * 5.0 + 1.5,
                        (i / 12) as f64 * 5.0 + 1.5,
                        2.5,
                    ),
                    i,
                )
            })
            .collect();
        (a, b)
    }

    #[test]
    fn intersection_join_matches_brute_force() {
        let (a, b) = grids();
        let ta = RTree::bulk_load(a.clone());
        let tb = RTree::bulk_load(b.clone());
        let got = sorted(join_intersecting(&ta, &tb));
        let expected = brute(&a, &b, |x, y| x.intersects(y));
        assert_eq!(got, expected);
        assert!(!got.is_empty(), "test data must produce candidates");
    }

    #[test]
    fn within_join_matches_brute_force() {
        let (a, b) = grids();
        let ta = RTree::bulk_load(a.clone());
        let tb = RTree::bulk_load(b.clone());
        for d in [0.0, 1.0, 3.0, 10.0] {
            let got = sorted(join_within_distance(&ta, &tb, d));
            let expected = brute(&a, &b, |x, y| x.min_dist(y) <= d);
            assert_eq!(got, expected, "d = {d}");
        }
    }

    #[test]
    fn join_with_inserted_trees() {
        let (a, b) = grids();
        let mut ta = RTree::new();
        for (r, v) in a.clone() {
            ta.insert(r, v);
        }
        let mut tb = RTree::new();
        for (r, v) in b.clone() {
            tb.insert(r, v);
        }
        let got = sorted(join_intersecting(&ta, &tb));
        assert_eq!(got, brute(&a, &b, |x, y| x.intersects(y)));
    }

    #[test]
    fn empty_and_singleton_trees() {
        let empty: RTree<usize> = RTree::new();
        let single = RTree::bulk_load(vec![(rect(0.0, 0.0, 1.0), 7usize)]);
        assert!(join_intersecting(&empty, &single).is_empty());
        assert!(join_intersecting(&single, &empty).is_empty());
        let other = RTree::bulk_load(vec![(rect(0.5, 0.5, 1.0), 9usize)]);
        assert_eq!(sorted(join_intersecting(&single, &other)), vec![(7, 9)]);
        let far = RTree::bulk_load(vec![(rect(100.0, 0.0, 1.0), 1usize)]);
        assert!(join_intersecting(&single, &far).is_empty());
        assert_eq!(
            sorted(join_within_distance(&single, &far, 99.5)),
            vec![(7, 1)]
        );
    }

    #[test]
    fn within_distance_zero_equals_intersection() {
        let (a, b) = grids();
        let ta = RTree::bulk_load(a);
        let tb = RTree::bulk_load(b);
        assert_eq!(
            sorted(join_within_distance(&ta, &tb, 0.0)),
            sorted(join_intersecting(&ta, &tb))
        );
    }

    #[test]
    fn unbalanced_heights_join_correctly() {
        // A big tree against a tiny one exercises the Leaf×Internal arms.
        let (a, _) = grids();
        let ta = RTree::bulk_load(a.clone());
        let tiny = RTree::bulk_load(vec![(rect(10.0, 10.0, 3.0), 0usize)]);
        let got = sorted(join_intersecting(&ta, &tiny));
        let expected = brute(&a, &[(rect(10.0, 10.0, 3.0), 0usize)], |x, y| {
            x.intersects(y)
        });
        assert_eq!(got, expected);
        // And the mirrored orientation.
        let mut got_rev: Vec<(usize, usize)> = join_intersecting(&tiny, &ta)
            .into_iter()
            .map(|(x, y)| (*y, *x))
            .collect();
        got_rev.sort_unstable();
        assert_eq!(got_rev, expected);
    }
}
