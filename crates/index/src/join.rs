//! Synchronized-traversal R-tree spatial join — the MBR filtering stage of
//! the paper's join pipelines (§4.1.1): "For intersection join, the
//! candidates are the object pairs whose MBRs intersect each other. For
//! within-distance join, the candidates are object pairs whose MBRs are
//! within distance D."
//!
//! The traversal is organized as a page-pair work queue rather than plain
//! recursion: the node-pair frontier is expanded one level at a time (in
//! traversal order) until it is wide enough, chunked into fixed-size work
//! units, and the units are pulled by worker threads whose outputs are
//! merged back in unit order. Because each unit's output is exactly the
//! sequential traversal's output for its slice of the frontier, the merged
//! candidate sequence is bit-identical to the single-threaded traversal —
//! which the downstream `CandidateFilter` contract (stable candidate
//! order) depends on. MBR tests themselves run the lane-generic kernels
//! over each node's SoA mirror; see [`crate::soa`].

use crate::rtree::{Node, NodeKind, RTree};
use crate::soa::{FilterConfig, FilterStats, Intersects, MbrPredicate, WithinDist};
use std::sync::atomic::{AtomicUsize, Ordering};

/// All payload pairs whose MBRs intersect, by descending both trees in
/// lock-step and pruning subtree pairs with disjoint MBRs.
pub fn join_intersecting<'a, A: Sync, B: Sync>(
    left: &'a RTree<A>,
    right: &'a RTree<B>,
) -> Vec<(&'a A, &'a B)> {
    join_intersecting_with(
        left,
        right,
        &FilterConfig::default(),
        &mut FilterStats::default(),
    )
}

/// [`join_intersecting`] with explicit filter knobs and work counters.
pub fn join_intersecting_with<'a, A: Sync, B: Sync>(
    left: &'a RTree<A>,
    right: &'a RTree<B>,
    cfg: &FilterConfig,
    stats: &mut FilterStats,
) -> Vec<(&'a A, &'a B)> {
    join_predicate(left, right, Intersects, cfg, stats)
}

/// All payload pairs whose MBRs are within distance `d`.
pub fn join_within_distance<'a, A: Sync, B: Sync>(
    left: &'a RTree<A>,
    right: &'a RTree<B>,
    d: f64,
) -> Vec<(&'a A, &'a B)> {
    join_within_distance_with(
        left,
        right,
        d,
        &FilterConfig::default(),
        &mut FilterStats::default(),
    )
}

/// [`join_within_distance`] with explicit filter knobs and work counters.
pub fn join_within_distance_with<'a, A: Sync, B: Sync>(
    left: &'a RTree<A>,
    right: &'a RTree<B>,
    d: f64,
    cfg: &FilterConfig,
    stats: &mut FilterStats,
) -> Vec<(&'a A, &'a B)> {
    join_predicate(left, right, WithinDist(d), cfg, stats)
}

/// A frontier entry: one node pair still to be joined. Leaf×leaf pairs are
/// terminal work items; every other combination can expand one level.
type Pair<'a, A, B> = (&'a Node<A>, &'a Node<B>);

/// One processed work unit: its frontier position, its candidate slice and
/// the counters it accumulated — what the ordered merge recombines.
type UnitResult<'a, A, B> = (usize, Vec<(&'a A, &'a B)>, FilterStats);

/// Generic MBR join, monomorphized per predicate (the old `&dyn Fn`
/// indirection cost one virtual call per node pair on the hot path). The
/// predicate must be monotone — true for child rectangles ⇒ true for their
/// covering parents — for pruning to be lossless; both implementations are.
fn join_predicate<'a, A: Sync, B: Sync, P: MbrPredicate>(
    left: &'a RTree<A>,
    right: &'a RTree<B>,
    pred: P,
    cfg: &FilterConfig,
    stats: &mut FilterStats,
) -> Vec<(&'a A, &'a B)> {
    let (Some(root_l), Some(root_r)) = (left.root_node(), right.root_node()) else {
        return Vec::new();
    };

    // Phase 1 — widen the frontier. Expanding a pair replaces it with its
    // surviving child pairs *in traversal order*, so the concatenation of
    // the frontier's per-pair DFS outputs is invariant under expansion:
    // however deep this loop goes, the emitted sequence stays that of the
    // sequential traversal.
    let target = cfg.threads.max(1) * cfg.unit_pairs.max(1) * 4;
    let mut frontier: Vec<Pair<'a, A, B>> = vec![(root_l, root_r)];
    loop {
        if frontier.len() >= target || !frontier.iter().any(|p| expandable(p)) {
            break;
        }
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for pair in frontier {
            if expandable(&pair) {
                expand_pair(pair, &pred, cfg.simd, stats, &mut next);
            } else {
                next.push(pair);
            }
        }
        frontier = next;
        if frontier.is_empty() {
            return Vec::new();
        }
    }

    // Phase 2 — chunk into fixed-size work units and process them. Units
    // are numbered by frontier position; the merge below concatenates
    // outputs in that numbering, restoring the sequential order exactly.
    let units: Vec<&[Pair<'a, A, B>]> = frontier.chunks(cfg.unit_pairs.max(1)).collect();
    stats.work_units += units.len();

    let mut out = Vec::new();
    if cfg.threads <= 1 || units.len() <= 1 {
        for unit in &units {
            for &(l, r) in *unit {
                process_pair(l, r, &pred, cfg.simd, stats, &mut out);
            }
        }
        return out;
    }

    let next_unit = AtomicUsize::new(0);
    let simd = cfg.simd;
    let mut done: Vec<UnitResult<'a, A, B>> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..cfg.threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let u = next_unit.fetch_add(1, Ordering::Relaxed);
                        let Some(unit) = units.get(u) else { break };
                        let mut pairs = Vec::new();
                        let mut unit_stats = FilterStats::default();
                        for &(l, r) in *unit {
                            process_pair(l, r, &pred, simd, &mut unit_stats, &mut pairs);
                        }
                        local.push((u, pairs, unit_stats));
                    }
                    local
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("join worker panicked"))
            .collect()
    });
    done.sort_unstable_by_key(|(u, _, _)| *u);
    for (_, pairs, unit_stats) in done {
        out.extend(pairs);
        stats.add(&unit_stats);
    }
    out
}

fn expandable<A, B>(pair: &Pair<'_, A, B>) -> bool {
    !matches!(
        (&pair.0.kind, &pair.1.kind),
        (NodeKind::Leaf(_), NodeKind::Leaf(_))
    )
}

/// Replaces `pair` with its surviving child pairs, in the order the
/// sequential traversal would visit them. The mask calls here are the very
/// calls [`process_pair`] would have made for this pair, so `node_tests`
/// does not depend on how far expansion runs.
fn expand_pair<'a, A, B, P: MbrPredicate>(
    (left, right): Pair<'a, A, B>,
    pred: &P,
    simd: bool,
    stats: &mut FilterStats,
    next: &mut Vec<Pair<'a, A, B>>,
) {
    match (&left.kind, &right.kind) {
        (NodeKind::Leaf(_), NodeKind::Leaf(_)) => next.push((left, right)),
        (NodeKind::Leaf(_), NodeKind::Internal(rcs)) => {
            for (rr, rc) in rcs {
                if left.soa.mask(pred, rr, simd, stats) != 0 {
                    next.push((left, rc));
                }
            }
        }
        (NodeKind::Internal(lcs), NodeKind::Leaf(_)) => {
            for (lr, lc) in lcs {
                if right.soa.mask(pred, lr, simd, stats) != 0 {
                    next.push((lc, right));
                }
            }
        }
        (NodeKind::Internal(lcs), NodeKind::Internal(rcs)) => {
            for (lr, lc) in lcs {
                let mask = right.soa.mask(pred, lr, simd, stats);
                for (i, (_, rc)) in rcs.iter().enumerate() {
                    if (mask >> i) & 1 == 1 {
                        next.push((lc, rc));
                    }
                }
            }
        }
    }
}

/// Sequential synchronized descent below one frontier pair — one node-level
/// kernel call per (node, probe) combination, hit bits walked in slot
/// order so emission order matches the entry lists.
fn process_pair<'a, A, B, P: MbrPredicate>(
    left: &'a Node<A>,
    right: &'a Node<B>,
    pred: &P,
    simd: bool,
    stats: &mut FilterStats,
    out: &mut Vec<(&'a A, &'a B)>,
) {
    match (&left.kind, &right.kind) {
        (NodeKind::Leaf(ls), NodeKind::Leaf(rs)) => {
            for (lr, lv) in ls {
                let mask = right.soa.mask(pred, lr, simd, stats);
                for (i, (_, rv)) in rs.iter().enumerate() {
                    if (mask >> i) & 1 == 1 {
                        out.push((lv, rv));
                    }
                }
            }
        }
        (NodeKind::Leaf(_), NodeKind::Internal(rcs)) => {
            // Prune each right child against the leaf's entries (full mask,
            // never short-circuited, so counters stay config-invariant).
            for (rr, rc) in rcs {
                if left.soa.mask(pred, rr, simd, stats) != 0 {
                    process_pair(left, rc, pred, simd, stats, out);
                }
            }
        }
        (NodeKind::Internal(lcs), NodeKind::Leaf(_)) => {
            for (lr, lc) in lcs {
                if right.soa.mask(pred, lr, simd, stats) != 0 {
                    process_pair(lc, right, pred, simd, stats, out);
                }
            }
        }
        (NodeKind::Internal(lcs), NodeKind::Internal(rcs)) => {
            for (lr, lc) in lcs {
                let mask = right.soa.mask(pred, lr, simd, stats);
                for (i, (_, rc)) in rcs.iter().enumerate() {
                    if (mask >> i) & 1 == 1 {
                        process_pair(lc, rc, pred, simd, stats, out);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_geom::Rect;

    fn rect(x: f64, y: f64, s: f64) -> Rect {
        Rect::new(x, y, x + s, y + s)
    }

    /// Brute-force reference join.
    #[allow(clippy::type_complexity)]
    fn brute(
        a: &[(Rect, usize)],
        b: &[(Rect, usize)],
        pred: impl Fn(&Rect, &Rect) -> bool,
    ) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (ra, va) in a {
            for (rb, vb) in b {
                if pred(ra, rb) {
                    out.push((*va, *vb));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn sorted(pairs: Vec<(&usize, &usize)>) -> Vec<(usize, usize)> {
        let mut v: Vec<(usize, usize)> = pairs.into_iter().map(|(a, b)| (*a, *b)).collect();
        v.sort_unstable();
        v
    }

    fn unsorted(pairs: Vec<(&usize, &usize)>) -> Vec<(usize, usize)> {
        pairs.into_iter().map(|(a, b)| (*a, *b)).collect()
    }

    #[allow(clippy::type_complexity)]
    fn grids() -> (Vec<(Rect, usize)>, Vec<(Rect, usize)>) {
        let a: Vec<(Rect, usize)> = (0..150)
            .map(|i| (rect((i % 15) as f64 * 4.0, (i / 15) as f64 * 4.0, 3.0), i))
            .collect();
        let b: Vec<(Rect, usize)> = (0..120)
            .map(|i| {
                (
                    rect(
                        (i % 12) as f64 * 5.0 + 1.5,
                        (i / 12) as f64 * 5.0 + 1.5,
                        2.5,
                    ),
                    i,
                )
            })
            .collect();
        (a, b)
    }

    #[test]
    fn intersection_join_matches_brute_force() {
        let (a, b) = grids();
        let ta = RTree::bulk_load(a.clone());
        let tb = RTree::bulk_load(b.clone());
        let got = sorted(join_intersecting(&ta, &tb));
        let expected = brute(&a, &b, |x, y| x.intersects(y));
        assert_eq!(got, expected);
        assert!(!got.is_empty(), "test data must produce candidates");
    }

    #[test]
    fn within_join_matches_brute_force() {
        let (a, b) = grids();
        let ta = RTree::bulk_load(a.clone());
        let tb = RTree::bulk_load(b.clone());
        for d in [0.0, 1.0, 3.0, 10.0] {
            let got = sorted(join_within_distance(&ta, &tb, d));
            let expected = brute(&a, &b, |x, y| x.min_dist(y) <= d);
            assert_eq!(got, expected, "d = {d}");
        }
    }

    #[test]
    fn join_with_inserted_trees() {
        let (a, b) = grids();
        let mut ta = RTree::new();
        for (r, v) in a.clone() {
            ta.insert(r, v);
        }
        let mut tb = RTree::new();
        for (r, v) in b.clone() {
            tb.insert(r, v);
        }
        let got = sorted(join_intersecting(&ta, &tb));
        assert_eq!(got, brute(&a, &b, |x, y| x.intersects(y)));
    }

    #[test]
    fn empty_and_singleton_trees() {
        let empty: RTree<usize> = RTree::new();
        let single = RTree::bulk_load(vec![(rect(0.0, 0.0, 1.0), 7usize)]);
        assert!(join_intersecting(&empty, &single).is_empty());
        assert!(join_intersecting(&single, &empty).is_empty());
        let other = RTree::bulk_load(vec![(rect(0.5, 0.5, 1.0), 9usize)]);
        assert_eq!(sorted(join_intersecting(&single, &other)), vec![(7, 9)]);
        let far = RTree::bulk_load(vec![(rect(100.0, 0.0, 1.0), 1usize)]);
        assert!(join_intersecting(&single, &far).is_empty());
        assert_eq!(
            sorted(join_within_distance(&single, &far, 99.5)),
            vec![(7, 1)]
        );
    }

    #[test]
    fn within_distance_zero_equals_intersection() {
        let (a, b) = grids();
        let ta = RTree::bulk_load(a);
        let tb = RTree::bulk_load(b);
        assert_eq!(
            sorted(join_within_distance(&ta, &tb, 0.0)),
            sorted(join_intersecting(&ta, &tb))
        );
    }

    #[test]
    fn unbalanced_heights_join_correctly() {
        // A big tree against a tiny one exercises the Leaf×Internal arms.
        let (a, _) = grids();
        let ta = RTree::bulk_load(a.clone());
        let tiny = RTree::bulk_load(vec![(rect(10.0, 10.0, 3.0), 0usize)]);
        let got = sorted(join_intersecting(&ta, &tiny));
        let expected = brute(&a, &[(rect(10.0, 10.0, 3.0), 0usize)], |x, y| {
            x.intersects(y)
        });
        assert_eq!(got, expected);
        // And the mirrored orientation.
        let mut got_rev: Vec<(usize, usize)> = join_intersecting(&tiny, &ta)
            .into_iter()
            .map(|(x, y)| (*y, *x))
            .collect();
        got_rev.sort_unstable();
        assert_eq!(got_rev, expected);
    }

    /// The scheduler invariant: the emitted candidate *sequence* — not
    /// merely the set — is identical across thread counts, unit sizes and
    /// kernel widths, and `node_tests` is identical too.
    #[test]
    fn candidate_order_invariant_across_filter_configs() {
        let (a, b) = grids();
        let ta = RTree::bulk_load(a);
        let tb = RTree::bulk_load(b);
        let mut ref_stats = FilterStats::default();
        let reference = unsorted(join_intersecting_with(
            &ta,
            &tb,
            &FilterConfig::scalar(),
            &mut ref_stats,
        ));
        assert!(ref_stats.node_tests > 0);
        assert!(ref_stats.work_units >= 1);
        for threads in [1usize, 2, 8] {
            for unit_pairs in [1usize, 3, 64] {
                for simd in [false, true] {
                    let cfg = FilterConfig {
                        threads,
                        simd,
                        unit_pairs,
                    };
                    let mut stats = FilterStats::default();
                    let got = unsorted(join_intersecting_with(&ta, &tb, &cfg, &mut stats));
                    assert_eq!(
                        got, reference,
                        "order diverged at threads={threads} unit={unit_pairs} simd={simd}"
                    );
                    assert_eq!(
                        stats.node_tests, ref_stats.node_tests,
                        "node_tests diverged at threads={threads} unit={unit_pairs} simd={simd}"
                    );
                }
            }
        }
    }

    #[test]
    fn threaded_join_dispenses_multiple_units() {
        let (a, b) = grids();
        let ta = RTree::bulk_load(a);
        let tb = RTree::bulk_load(b);
        let cfg = FilterConfig {
            threads: 4,
            simd: true,
            unit_pairs: 2,
        };
        let mut stats = FilterStats::default();
        let got = unsorted(join_intersecting_with(&ta, &tb, &cfg, &mut stats));
        assert!(stats.work_units > 1, "frontier should split into units");
        assert_eq!(got, unsorted(join_intersecting(&ta, &tb)));
    }
}
