//! Epoch-stamped atomic snapshot handle — the serving layer's dataset
//! store (DESIGN.md §12).
//!
//! A long-lived query engine serves many concurrent queries against
//! datasets that occasionally reload. Queries must never observe a torn
//! state (half old polygons, half new tree), and reloads must never wait
//! for in-flight queries to drain. The classic answer is epoch-style
//! read-copy-update over an `Arc`: readers grab a cheap clone of the
//! current `Arc<T>` once, keep the whole snapshot alive for as long as
//! they hold it, and writers publish a *complete replacement* with a
//! single pointer swap.
//!
//! [`SnapshotHandle`] packages that discipline with an explicit **epoch**
//! — a counter bumped on every [`swap`](SnapshotHandle::swap) — so a
//! query's response can state exactly which generation of the data it
//! answered from, and tests can assert that a response's rows are
//! consistent with the epoch it claims (the service concurrency tests do
//! exactly that). The lock guards only the pointer-plus-counter pair and
//! is held for the duration of an `Arc` clone, never for a query;
//! dropping the last [`Snapshot`] of a retired epoch frees the old data.
//!
//! # Example
//!
//! ```
//! use spatial_index::SnapshotHandle;
//!
//! let handle = SnapshotHandle::new(vec![1, 2, 3]);
//! let reader = handle.load(); // epoch 0, pinned
//! assert_eq!(reader.epoch(), 0);
//!
//! let new_epoch = handle.swap(vec![4, 5]); // atomic publish
//! assert_eq!(new_epoch, 1);
//!
//! // The old reader still sees the complete epoch-0 value...
//! assert_eq!(*reader, vec![1, 2, 3]);
//! // ...while new loads see epoch 1.
//! assert_eq!(*handle.load(), vec![4, 5]);
//! ```

use std::ops::Deref;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A pinned, immutable view of one epoch's value. Cheap to clone (one
/// `Arc` bump); keeps the whole epoch alive until dropped.
#[derive(Debug)]
pub struct Snapshot<T> {
    value: Arc<T>,
    epoch: u64,
}

impl<T> Snapshot<T> {
    /// The generation counter of the [`SnapshotHandle`] at load time.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The pinned value. Also available through `Deref` (named `value`
    /// rather than `get` so it never shadows an inner type's own `get`).
    #[inline]
    pub fn value(&self) -> &T {
        &self.value
    }
}

impl<T> Clone for Snapshot<T> {
    fn clone(&self) -> Self {
        Snapshot {
            value: Arc::clone(&self.value),
            epoch: self.epoch,
        }
    }
}

impl<T> Deref for Snapshot<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

/// The current epoch's value and its generation counter, swapped
/// together so no load can pair an old value with a new epoch.
#[derive(Debug)]
struct Current<T> {
    value: Arc<T>,
    epoch: u64,
}

/// Epoch-style atomically swappable container: many concurrent
/// [`load`](Self::load)s, occasional whole-value [`swap`](Self::swap)s.
///
/// Built on `RwLock<Arc<T>>` from std only — the lock is held just long
/// enough to clone the `Arc` (readers) or replace it (writers), so
/// contention is bounded by pointer-sized critical sections regardless of
/// how large `T` is or how long queries run.
#[derive(Debug)]
pub struct SnapshotHandle<T> {
    current: RwLock<Current<T>>,
}

impl<T> SnapshotHandle<T> {
    /// Wraps `value` as epoch 0.
    pub fn new(value: T) -> Self {
        SnapshotHandle {
            current: RwLock::new(Current {
                value: Arc::new(value),
                epoch: 0,
            }),
        }
    }

    fn read(&self) -> RwLockReadGuard<'_, Current<T>> {
        // A panic while holding the lock poisons it, but the guarded
        // state is a pointer + counter that is never left half-written;
        // recover the inner value instead of propagating the poison.
        self.current
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, Current<T>> {
        self.current
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Pins and returns the current epoch's value. One lock-protected
    /// `Arc` clone; the returned [`Snapshot`] stays valid (and internally
    /// consistent) across any number of subsequent [`swap`](Self::swap)s.
    pub fn load(&self) -> Snapshot<T> {
        let cur = self.read();
        Snapshot {
            value: Arc::clone(&cur.value),
            epoch: cur.epoch,
        }
    }

    /// Publishes `value` as the next epoch and returns that epoch.
    /// In-flight [`Snapshot`]s keep their old epoch untouched.
    pub fn swap(&self, value: T) -> u64 {
        let mut cur = self.write();
        cur.epoch += 1;
        cur.value = Arc::new(value);
        cur.epoch
    }

    /// The current epoch (0 until the first swap).
    pub fn epoch(&self) -> u64 {
        self.read().epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::thread;

    #[test]
    fn load_pins_the_epoch_it_saw() {
        let h = SnapshotHandle::new(String::from("alpha"));
        let pinned = h.load();
        assert_eq!(pinned.epoch(), 0);
        assert_eq!(h.swap(String::from("beta")), 1);
        assert_eq!(h.swap(String::from("gamma")), 2);
        assert_eq!(*pinned, "alpha");
        assert_eq!(pinned.epoch(), 0);
        let fresh = h.load();
        assert_eq!(*fresh, "gamma");
        assert_eq!(fresh.epoch(), 2);
        assert_eq!(h.epoch(), 2);
    }

    #[test]
    fn clone_shares_the_pin() {
        let h = SnapshotHandle::new(7u32);
        let a = h.load();
        let b = a.clone();
        h.swap(8);
        assert_eq!((*a, a.epoch()), (7, 0));
        assert_eq!((*b, b.epoch()), (7, 0));
    }

    /// Readers hammering `load` during concurrent swaps must only ever
    /// observe (value, epoch) pairs that were published together — the
    /// value encodes its own epoch, so a torn read is directly visible.
    #[test]
    fn concurrent_swaps_never_tear() {
        let h = Arc::new(SnapshotHandle::new(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let h = Arc::clone(&h);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let s = h.load();
                        // Invariant: the value *is* the epoch it was
                        // published as.
                        assert_eq!(*s, s.epoch());
                        // Epochs move forward only.
                        assert!(s.epoch() >= last);
                        last = s.epoch();
                    }
                })
            })
            .collect();
        for i in 1..=200 {
            assert_eq!(h.swap(i), i);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(h.epoch(), 200);
    }
}
