//! A Guttman R-tree with quadratic-split insertion and STR bulk loading.
//!
//! Every node carries a struct-of-arrays mirror of its children's MBRs
//! ([`crate::soa::ChildMbrs`], lane-width padded), maintained at
//! `bulk_load` and `insert` time, so the traversal hot loops — window
//! searches, within-distance searches and the synchronized tree join —
//! run lane-generic overlap kernels over whole nodes instead of
//! pointer-chasing per-child branches.

use crate::soa::{ChildMbrs, FilterStats, Intersects, MbrPredicate, WithinDist};
use spatial_geom::Rect;

/// Maximum entries per node.
pub const MAX_ENTRIES: usize = 16;
/// Minimum entries per non-root node (40% of `MAX_ENTRIES`).
pub const MIN_ENTRIES: usize = 6;

/// One tree node: the pointer structure (`kind`) plus the lane-friendly
/// SoA mirror of its children's MBRs, rebuilt whenever the entry list
/// changes.
#[derive(Debug, Clone)]
pub(crate) struct Node<T> {
    pub(crate) soa: ChildMbrs,
    pub(crate) kind: NodeKind<T>,
}

#[derive(Debug, Clone)]
pub(crate) enum NodeKind<T> {
    Leaf(Vec<(Rect, T)>),
    Internal(Vec<(Rect, Box<Node<T>>)>),
}

impl<T> Node<T> {
    fn leaf(entries: Vec<(Rect, T)>) -> Box<Node<T>> {
        let soa = ChildMbrs::from_rects(entries.iter().map(|(r, _)| r));
        Box::new(Node {
            soa,
            kind: NodeKind::Leaf(entries),
        })
    }

    fn internal(children: Vec<(Rect, Box<Node<T>>)>) -> Box<Node<T>> {
        let soa = ChildMbrs::from_rects(children.iter().map(|(r, _)| r));
        Box::new(Node {
            soa,
            kind: NodeKind::Internal(children),
        })
    }

    /// Rebuilds the SoA mirror from the entry list — called after every
    /// structural mutation, once the entry count is back within bounds.
    fn rebuild_soa(&mut self) {
        self.soa = match &self.kind {
            NodeKind::Leaf(es) => ChildMbrs::from_rects(es.iter().map(|(r, _)| r)),
            NodeKind::Internal(cs) => ChildMbrs::from_rects(cs.iter().map(|(r, _)| r)),
        };
    }

    fn mbr(&self) -> Rect {
        match &self.kind {
            NodeKind::Leaf(es) => es.iter().fold(Rect::EMPTY, |r, (m, _)| r.union(m)),
            NodeKind::Internal(cs) => cs.iter().fold(Rect::EMPTY, |r, (m, _)| r.union(m)),
        }
    }

    fn len(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf(es) => es.len(),
            NodeKind::Internal(cs) => cs.len(),
        }
    }
}

/// An R-tree mapping MBRs to payloads (typically dataset indices).
#[derive(Debug, Clone)]
pub struct RTree<T> {
    root: Option<Box<Node<T>>>,
    len: usize,
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        RTree { root: None, len: 0 }
    }
}

impl<T: Clone> RTree<T> {
    /// An empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The MBR of the whole tree ([`Rect::EMPTY`] when empty).
    pub fn mbr(&self) -> Rect {
        self.root.as_ref().map_or(Rect::EMPTY, |r| r.mbr())
    }

    /// Bulk-loads a tree with the Sort-Tile-Recursive algorithm: O(n log n)
    /// and near-perfect space utilization — how the evaluation datasets are
    /// indexed before each experiment.
    pub fn bulk_load(mut items: Vec<(Rect, T)>) -> Self {
        let len = items.len();
        if len == 0 {
            return Self::new();
        }
        // Leaf level: sort by x-center, slice, sort slices by y-center.
        items.sort_by(|a, b| a.0.center().x.total_cmp(&b.0.center().x));
        let leaf_count = len.div_ceil(MAX_ENTRIES);
        let slice_count = (leaf_count as f64).sqrt().ceil() as usize;
        let slice_size = len.div_ceil(slice_count);
        let mut leaves: Vec<Box<Node<T>>> = Vec::with_capacity(leaf_count);
        for slice in items.chunks_mut(slice_size.max(1)) {
            slice.sort_by(|a, b| a.0.center().y.total_cmp(&b.0.center().y));
            for run in slice.chunks(MAX_ENTRIES) {
                leaves.push(Node::leaf(run.to_vec()));
            }
        }
        // Build internal levels bottom-up with the same tiling.
        let mut level = leaves;
        while level.len() > 1 {
            let mut wrapped: Vec<(Rect, Box<Node<T>>)> =
                level.into_iter().map(|n| (n.mbr(), n)).collect();
            wrapped.sort_by(|a, b| a.0.center().x.total_cmp(&b.0.center().x));
            let node_count = wrapped.len().div_ceil(MAX_ENTRIES);
            let sc = (node_count as f64).sqrt().ceil() as usize;
            let ss = wrapped.len().div_ceil(sc);
            let mut next: Vec<Box<Node<T>>> = Vec::with_capacity(node_count);
            let mut buf: Vec<(Rect, Box<Node<T>>)> = Vec::new();
            for mut slice in chunks_owned(&mut wrapped, ss.max(1)) {
                slice.sort_by(|a, b| a.0.center().y.total_cmp(&b.0.center().y));
                buf.extend(slice);
                while buf.len() >= MAX_ENTRIES {
                    let rest = buf.split_off(MAX_ENTRIES);
                    next.push(Node::internal(std::mem::replace(&mut buf, rest)));
                }
                if !buf.is_empty() {
                    next.push(Node::internal(std::mem::take(&mut buf)));
                }
            }
            level = next;
        }
        RTree {
            root: level.pop(),
            len,
        }
    }

    /// Inserts one entry (Guttman: least-enlargement descent, quadratic
    /// split on overflow). The SoA mirrors along the descent path are
    /// rebuilt on the way back up.
    pub fn insert(&mut self, mbr: Rect, value: T) {
        self.len += 1;
        match self.root.take() {
            None => {
                self.root = Some(Node::leaf(vec![(mbr, value)]));
            }
            Some(mut root) => {
                if let Some((r1, n1)) = insert_rec(&mut root, mbr, value) {
                    // Root split: grow the tree.
                    let old = (root.mbr(), root);
                    self.root = Some(Node::internal(vec![old, (r1, n1)]));
                } else {
                    self.root = Some(root);
                }
            }
        }
    }

    /// All payloads whose MBR intersects `window` — the selection-side MBR
    /// filter. Vectorized traversal; see
    /// [`RTree::search_intersects_stats`] for the knob-and-counter form.
    pub fn search_intersects<'a>(&'a self, window: &Rect) -> Vec<&'a T> {
        self.search_intersects_stats(window, true, &mut FilterStats::default())
    }

    /// [`RTree::search_intersects`] with an explicit kernel width choice
    /// (`simd`) and filter-stage work counters. The result sequence and
    /// `node_tests` are bit-identical for both `simd` settings.
    pub fn search_intersects_stats<'a>(
        &'a self,
        window: &Rect,
        simd: bool,
        stats: &mut FilterStats,
    ) -> Vec<&'a T> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            search_rec(root, &Intersects, window, simd, stats, &mut out);
        }
        out
    }

    /// All payloads whose MBR lies within distance `d` of `query` — the
    /// within-distance MBR filter (the MBR distance lower-bounds the
    /// object distance).
    pub fn search_within<'a>(&'a self, query: &Rect, d: f64) -> Vec<&'a T> {
        self.search_within_stats(query, d, true, &mut FilterStats::default())
    }

    /// [`RTree::search_within`] with an explicit kernel width choice and
    /// filter-stage work counters.
    pub fn search_within_stats<'a>(
        &'a self,
        query: &Rect,
        d: f64,
        simd: bool,
        stats: &mut FilterStats,
    ) -> Vec<&'a T> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            search_rec(root, &WithinDist(d), query, simd, stats, &mut out);
        }
        out
    }

    /// Structural invariant check (tests): entry counts within bounds,
    /// parent MBRs covering children, and every node's SoA mirror matching
    /// its entry list bit for bit (real slots equal the entry rectangles,
    /// padding slots empty). Returns the tree height.
    pub fn check_invariants(&self) -> usize {
        match &self.root {
            None => 0,
            Some(root) => check_rec(root, true),
        }
    }
}

/// Drains `v` in owned chunks of `size` (helper for bulk loading).
fn chunks_owned<T>(v: &mut Vec<T>, size: usize) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    while !v.is_empty() {
        let take = size.min(v.len());
        out.push(v.drain(..take).collect());
    }
    out
}

fn insert_rec<T>(node: &mut Node<T>, mbr: Rect, value: T) -> Option<(Rect, Box<Node<T>>)> {
    let split = match &mut node.kind {
        NodeKind::Leaf(entries) => {
            entries.push((mbr, value));
            if entries.len() > MAX_ENTRIES {
                let (a, b) = quadratic_split(std::mem::take(entries));
                *entries = a;
                Some(Node::leaf(b))
            } else {
                None
            }
        }
        NodeKind::Internal(children) => {
            let idx = choose_subtree(children, &mbr);
            let child_split = insert_rec(&mut children[idx].1, mbr, value);
            children[idx].0 = children[idx].1.mbr();
            match child_split {
                Some((r, n)) => {
                    children.push((r, n));
                    if children.len() > MAX_ENTRIES {
                        let (a, b) = quadratic_split(std::mem::take(children));
                        *children = a;
                        Some(Node::internal(b))
                    } else {
                        None
                    }
                }
                None => None,
            }
        }
    };
    // The entry list changed either way (push, MBR tighten or split);
    // bring the SoA mirror back in sync before handing control up.
    node.rebuild_soa();
    split.map(|sibling| (sibling.mbr(), sibling))
}

/// Least-enlargement choice (ties by smaller area).
fn choose_subtree<T>(children: &[(Rect, Box<Node<T>>)], mbr: &Rect) -> usize {
    let mut best = 0;
    let mut best_enlarge = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (i, (r, _)) in children.iter().enumerate() {
        let area = r.area();
        let enlarge = r.union(mbr).area() - area;
        if enlarge < best_enlarge || (enlarge == best_enlarge && area < best_area) {
            best = i;
            best_enlarge = enlarge;
            best_area = area;
        }
    }
    best
}

/// The two halves a node splits into.
type SplitHalves<E> = (Vec<(Rect, E)>, Vec<(Rect, E)>);

/// Guttman's quadratic split: seed with the pair wasting the most area,
/// then assign entries by preference, honouring the minimum fill.
fn quadratic_split<E>(entries: Vec<(Rect, E)>) -> SplitHalves<E> {
    debug_assert!(entries.len() > MAX_ENTRIES);
    let n = entries.len();
    // Pick seeds.
    let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let waste = entries[i].0.union(&entries[j].0).area()
                - entries[i].0.area()
                - entries[j].0.area();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    let mut group1: Vec<(Rect, E)> = Vec::with_capacity(n);
    let mut group2: Vec<(Rect, E)> = Vec::with_capacity(n);
    let mut r1 = entries[s1].0;
    let mut r2 = entries[s2].0;
    let mut rest: Vec<Option<(Rect, E)>> = entries.into_iter().map(Some).collect();
    group1.push(rest[s1].take().unwrap());
    group2.push(rest[s2].take().unwrap());
    let mut remaining: Vec<(Rect, E)> = rest.into_iter().flatten().collect();

    while !remaining.is_empty() {
        let left = remaining.len();
        // Honour minimum fill: if one group must take everything, do so.
        if group1.len() + left <= MIN_ENTRIES {
            for e in remaining.drain(..) {
                r1 = r1.union(&e.0);
                group1.push(e);
            }
            break;
        }
        if group2.len() + left <= MIN_ENTRIES {
            for e in remaining.drain(..) {
                r2 = r2.union(&e.0);
                group2.push(e);
            }
            break;
        }
        // Pick the entry with the strongest preference.
        let mut pick = 0;
        let mut pick_diff = f64::NEG_INFINITY;
        for (i, (rect, _)) in remaining.iter().enumerate() {
            let d1 = r1.union(rect).area() - r1.area();
            let d2 = r2.union(rect).area() - r2.area();
            let diff = (d1 - d2).abs();
            if diff > pick_diff {
                pick_diff = diff;
                pick = i;
            }
        }
        let entry = remaining.swap_remove(pick);
        let d1 = r1.union(&entry.0).area() - r1.area();
        let d2 = r2.union(&entry.0).area() - r2.area();
        if d1 < d2 || (d1 == d2 && group1.len() < group2.len()) {
            r1 = r1.union(&entry.0);
            group1.push(entry);
        } else {
            r2 = r2.union(&entry.0);
            group2.push(entry);
        }
    }
    (group1, group2)
}

/// Generic vectorized search: one kernel call tests the probe against all
/// of a node's children, then the traversal walks the hit bits in slot
/// order — the same visit order as the old per-child recursion.
fn search_rec<'a, T, P: MbrPredicate>(
    node: &'a Node<T>,
    pred: &P,
    probe: &Rect,
    simd: bool,
    stats: &mut FilterStats,
    out: &mut Vec<&'a T>,
) {
    let mask = node.soa.mask(pred, probe, simd, stats);
    match &node.kind {
        NodeKind::Leaf(entries) => {
            for (i, (_, v)) in entries.iter().enumerate() {
                if (mask >> i) & 1 == 1 {
                    out.push(v);
                }
            }
        }
        NodeKind::Internal(children) => {
            for (i, (_, c)) in children.iter().enumerate() {
                if (mask >> i) & 1 == 1 {
                    search_rec(c, pred, probe, simd, stats, out);
                }
            }
        }
    }
}

fn check_rec<T>(node: &Node<T>, is_root: bool) -> usize {
    let len = node.len();
    assert!(len <= MAX_ENTRIES, "node overflow: {len}");
    if !is_root {
        assert!(len >= 1, "empty non-root node");
    }
    check_soa_mirror(node);
    match &node.kind {
        NodeKind::Leaf(_) => 1,
        NodeKind::Internal(children) => {
            let mut height = None;
            for (r, c) in children {
                assert!(
                    r.contains_rect(&c.mbr()) || (r.is_empty() && c.mbr().is_empty()),
                    "parent MBR does not cover child"
                );
                let h = check_rec(c, false);
                match height {
                    None => height = Some(h),
                    Some(prev) => assert_eq!(prev, h, "unbalanced tree"),
                }
            }
            height.unwrap_or(0) + 1
        }
    }
}

/// Asserts the node's SoA arrays mirror its entry list exactly: slot `i`
/// reassembles to the `i`-th entry rectangle bit for bit, and every
/// padding slot holds the empty sentinel.
fn check_soa_mirror<T>(node: &Node<T>) {
    assert_eq!(node.soa.len(), node.len(), "SoA length diverged from node");
    let rect_at = |i: usize| match &node.kind {
        NodeKind::Leaf(es) => es[i].0,
        NodeKind::Internal(cs) => cs[i].0,
    };
    for i in 0..node.len() {
        let (s, r) = (node.soa.rect(i), rect_at(i));
        assert!(
            s.xmin.to_bits() == r.xmin.to_bits()
                && s.ymin.to_bits() == r.ymin.to_bits()
                && s.xmax.to_bits() == r.xmax.to_bits()
                && s.ymax.to_bits() == r.ymax.to_bits(),
            "SoA slot {i} diverged: {s:?} vs {r:?}"
        );
    }
    for i in node.len()..crate::soa::SOA_WIDTH {
        assert!(node.soa.rect(i).is_empty(), "padding slot {i} not empty");
    }
}

// -- crate-internal access for the join and nearest modules ------------------

impl<T> RTree<T> {
    pub(crate) fn root_node(&self) -> Option<&Node<T>> {
        self.root.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(x: f64, y: f64, s: f64) -> Rect {
        Rect::new(x, y, x + s, y + s)
    }

    fn grid_items(n: usize) -> Vec<(Rect, usize)> {
        (0..n)
            .map(|i| {
                let x = (i % 37) as f64 * 3.0;
                let y = (i / 37) as f64 * 3.0;
                (rect(x, y, 2.0), i)
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t: RTree<usize> = RTree::new();
        assert!(t.is_empty());
        assert!(t.search_intersects(&rect(0.0, 0.0, 10.0)).is_empty());
        assert_eq!(t.check_invariants(), 0);
        assert!(t.mbr().is_empty());
    }

    #[test]
    fn insert_and_search() {
        let mut t = RTree::new();
        for (r, v) in grid_items(500) {
            t.insert(r, v);
        }
        assert_eq!(t.len(), 500);
        t.check_invariants();
        // Query window over the first grid cell.
        let hits = t.search_intersects(&rect(0.0, 0.0, 1.0));
        assert!(hits.contains(&&0));
        // Full-extent query returns everything.
        let all = t.search_intersects(&t.mbr());
        assert_eq!(all.len(), 500);
    }

    #[test]
    fn bulk_load_matches_linear_scan() {
        let items = grid_items(1000);
        let t = RTree::bulk_load(items.clone());
        assert_eq!(t.len(), 1000);
        t.check_invariants();
        for window in [
            rect(10.0, 10.0, 15.0),
            rect(50.0, 0.0, 30.0),
            rect(200.0, 200.0, 5.0),
        ] {
            let mut expected: Vec<usize> = items
                .iter()
                .filter(|(r, _)| r.intersects(&window))
                .map(|&(_, v)| v)
                .collect();
            expected.sort_unstable();
            let mut got: Vec<usize> = t.search_intersects(&window).into_iter().copied().collect();
            got.sort_unstable();
            assert_eq!(got, expected, "window {window:?}");
        }
    }

    #[test]
    fn insert_matches_linear_scan() {
        let items = grid_items(300);
        let mut t = RTree::new();
        for (r, v) in items.clone() {
            t.insert(r, v);
        }
        t.check_invariants();
        let window = rect(30.0, 6.0, 20.0);
        let mut expected: Vec<usize> = items
            .iter()
            .filter(|(r, _)| r.intersects(&window))
            .map(|&(_, v)| v)
            .collect();
        expected.sort_unstable();
        let mut got: Vec<usize> = t.search_intersects(&window).into_iter().copied().collect();
        got.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn within_distance_search() {
        let t = RTree::bulk_load(grid_items(200));
        let q = rect(0.0, 0.0, 1.0);
        // d = 0: only intersecting MBRs.
        let d0 = t.search_within(&q, 0.0);
        let di = t.search_intersects(&q);
        assert_eq!(d0.len(), di.len());
        // Growing d grows the candidate set monotonically.
        let mut prev = d0.len();
        for d in [1.0, 5.0, 20.0, 1000.0] {
            let hits = t.search_within(&q, d);
            assert!(hits.len() >= prev);
            prev = hits.len();
        }
        assert_eq!(prev, 200, "huge d reaches everything");
    }

    #[test]
    fn within_matches_linear_scan() {
        let items = grid_items(400);
        let t = RTree::bulk_load(items.clone());
        let q = rect(17.0, 11.0, 4.0);
        for d in [0.0, 2.5, 7.0] {
            let mut expected: Vec<usize> = items
                .iter()
                .filter(|(r, _)| r.min_dist(&q) <= d)
                .map(|&(_, v)| v)
                .collect();
            expected.sort_unstable();
            let mut got: Vec<usize> = t.search_within(&q, d).into_iter().copied().collect();
            got.sort_unstable();
            assert_eq!(got, expected, "d = {d}");
        }
    }

    #[test]
    fn scalar_and_simd_searches_agree_with_identical_counters() {
        let items = grid_items(700);
        let t = RTree::bulk_load(items.clone());
        let window = rect(12.0, 9.0, 25.0);
        let mut scalar = FilterStats::default();
        let mut simd = FilterStats::default();
        let a: Vec<usize> = t
            .search_intersects_stats(&window, false, &mut scalar)
            .into_iter()
            .copied()
            .collect();
        let b: Vec<usize> = t
            .search_intersects_stats(&window, true, &mut simd)
            .into_iter()
            .copied()
            .collect();
        assert_eq!(a, b, "result sequence must match, not just the set");
        assert_eq!(scalar.node_tests, simd.node_tests);
        assert_eq!(scalar.simd_node_tests, 0);
        assert_eq!(simd.simd_node_tests, simd.node_tests);
        assert!(scalar.node_tests > 0);

        let mut scalar_w = FilterStats::default();
        let mut simd_w = FilterStats::default();
        let aw: Vec<usize> = t
            .search_within_stats(&window, 7.5, false, &mut scalar_w)
            .into_iter()
            .copied()
            .collect();
        let bw: Vec<usize> = t
            .search_within_stats(&window, 7.5, true, &mut simd_w)
            .into_iter()
            .copied()
            .collect();
        assert_eq!(aw, bw);
        assert_eq!(scalar_w.node_tests, simd_w.node_tests);
    }

    #[test]
    fn bulk_load_small_inputs() {
        for n in [1usize, 2, MAX_ENTRIES, MAX_ENTRIES + 1, 3 * MAX_ENTRIES] {
            let t = RTree::bulk_load(grid_items(n));
            assert_eq!(t.len(), n);
            t.check_invariants();
            assert_eq!(t.search_intersects(&t.mbr()).len(), n);
        }
    }

    #[test]
    fn split_preserves_minimum_fill() {
        // Insert identical rectangles to stress the split's tie handling.
        let mut t = RTree::new();
        for i in 0..200 {
            t.insert(rect(0.0, 0.0, 1.0), i);
        }
        t.check_invariants();
        assert_eq!(t.search_intersects(&rect(0.5, 0.5, 0.1)).len(), 200);
    }

    #[test]
    fn tree_height_grows_logarithmically() {
        let t = RTree::bulk_load(grid_items(2000));
        let h = t.check_invariants();
        // 2000 entries at fanout 16: height 3 (16^3 = 4096).
        assert!(h <= 4, "height {h} too tall for 2000 entries");
    }
}
