//! Lane-friendly node layout and lane-generic MBR kernels — the SIMD side
//! of the filter stage.
//!
//! The R-tree's pointer structure is good for maintenance but hostile to
//! vectorization: each overlap test loads an interleaved `(Rect, child)`
//! entry. Following the SIMD-ified R-tree literature, every node therefore
//! carries a struct-of-arrays mirror of its children's MBRs
//! ([`ChildMbrs`]: `min_x[] / min_y[] / max_x[] / max_y[]`, padded to the
//! lane width with [`Rect::EMPTY`] sentinels), rebuilt whenever the node's
//! entry list changes. Queries and joins test a probe rectangle against a
//! whole node with one lane-generic kernel call instead of a per-child
//! branch.
//!
//! The kernels follow the same idiom as `spatial_raster::aa_line`: one
//! implementation, generic over `const LANES`, whose per-lane math is
//! identical expression-for-expression to the scalar [`Rect`] predicates —
//! `LANES = 1` *is* the scalar path, `LANES = 8` autovectorizes, and on
//! x86_64 hosts with the `simd-intrinsics` feature the same body is
//! recompiled under `#[target_feature(enable = "avx2")]` and dispatched at
//! runtime. Rust float semantics are strict IEEE at every vector width, so
//! every lane count produces the same mask bit for bit; the knob only
//! moves wall-clock time.
//!
//! # Example
//!
//! ```
//! use spatial_geom::Rect;
//! use spatial_index::{ChildMbrs, FilterStats, Intersects};
//!
//! // A node holding two children, mirrored into SoA form.
//! let children = [Rect::new(0.0, 0.0, 1.0, 1.0), Rect::new(5.0, 5.0, 6.0, 6.0)];
//! let node = ChildMbrs::from_rects(&children);
//!
//! // One kernel call tests the probe against every child slot at once.
//! let probe = Rect::new(0.5, 0.5, 2.0, 2.0);
//! let mut stats = FilterStats::default();
//! let scalar = node.mask(&Intersects, &probe, false, &mut stats);
//! let simd = node.mask(&Intersects, &probe, true, &mut stats);
//!
//! assert_eq!(scalar, 0b01); // only the first child overlaps the probe
//! assert_eq!(scalar, simd); // lane width never changes the mask...
//! assert_eq!(stats.node_tests, 4); // ...or the per-call charge (2 real lanes each)
//! ```

use crate::rtree::MAX_ENTRIES;
use spatial_geom::Rect;

/// Lanes the vectorized kernels advance per step (f64 × 8 = two 256-bit
/// registers, the same width the raster device's band kernels use).
pub const SIMD_LANES: usize = 8;

/// Padded width of a node's SoA arrays: `MAX_ENTRIES` rounded up to a
/// whole number of lanes, so kernels never need a scalar tail loop.
pub const SOA_WIDTH: usize = MAX_ENTRIES.next_multiple_of(SIMD_LANES);

/// A node's children's MBRs in struct-of-arrays form, lane-width padded.
///
/// Slots `len..SOA_WIDTH` hold [`Rect::EMPTY`] (`min = +∞`, `max = −∞`),
/// which no finite probe can intersect and which lies at infinite distance
/// from every finite rectangle — padding lanes therefore evaluate the real
/// kernels and always come out empty, no masking required.
#[derive(Debug, Clone)]
pub struct ChildMbrs {
    len: usize,
    min_x: [f64; SOA_WIDTH],
    min_y: [f64; SOA_WIDTH],
    max_x: [f64; SOA_WIDTH],
    max_y: [f64; SOA_WIDTH],
}

impl Default for ChildMbrs {
    fn default() -> Self {
        ChildMbrs {
            len: 0,
            min_x: [f64::INFINITY; SOA_WIDTH],
            min_y: [f64::INFINITY; SOA_WIDTH],
            max_x: [f64::NEG_INFINITY; SOA_WIDTH],
            max_y: [f64::NEG_INFINITY; SOA_WIDTH],
        }
    }
}

impl ChildMbrs {
    /// Builds the SoA mirror of `rects` (at most [`MAX_ENTRIES`] of them).
    pub fn from_rects<'r>(rects: impl IntoIterator<Item = &'r Rect>) -> Self {
        let mut soa = ChildMbrs::default();
        for r in rects {
            let i = soa.len;
            assert!(i < SOA_WIDTH, "node exceeds SoA capacity");
            soa.min_x[i] = r.xmin;
            soa.min_y[i] = r.ymin;
            soa.max_x[i] = r.xmax;
            soa.max_y[i] = r.ymax;
            soa.len = i + 1;
        }
        soa
    }

    /// Number of real (non-padding) child slots.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reassembles slot `i` as a [`Rect`] (padding slots come back as
    /// [`Rect::EMPTY`]) — the invariant checker uses this to assert the
    /// mirror matches the node structure bit for bit.
    pub fn rect(&self, i: usize) -> Rect {
        Rect::new(self.min_x[i], self.min_y[i], self.max_x[i], self.max_y[i])
    }

    /// Tests `probe` against every child slot with the lane-generic kernel
    /// and returns the hit bitmask (bit `i` = slot `i` passes `pred`).
    ///
    /// `simd` selects the vectorized instantiation (`LANES =`
    /// [`SIMD_LANES`], AVX2-recompiled where available) over the scalar
    /// one (`LANES = 1`); the mask is bit-identical either way. Charges
    /// `len` node tests to `stats` — all real lanes are evaluated, never
    /// short-circuited, so the count is a pure function of the tree and
    /// the probe, independent of `simd`, thread count or unit size.
    #[inline]
    pub fn mask<P: MbrPredicate>(
        &self,
        pred: &P,
        probe: &Rect,
        simd: bool,
        stats: &mut FilterStats,
    ) -> u32 {
        stats.node_tests += self.len;
        if simd {
            stats.simd_node_tests += self.len;
            self.mask_simd(pred, probe)
        } else {
            self.mask_lanes::<P, 1>(pred, probe)
        }
    }

    /// The raw lane-generic kernel at an explicit lane count — exposed so
    /// tests can pin `LANES = 1` against `LANES = 8` per node.
    #[inline]
    pub fn mask_lanes<P: MbrPredicate, const LANES: usize>(&self, pred: &P, probe: &Rect) -> u32 {
        let mut mask = 0u32;
        let end = self.len.next_multiple_of(LANES.max(1));
        let mut i = 0;
        while i < end {
            let keep = pred.keep_chunk::<LANES>(self, i, probe);
            for (k, &hit) in keep.iter().enumerate() {
                mask |= (hit as u32) << (i + k);
            }
            i += LANES;
        }
        mask
    }

    /// The vectorized path: AVX2-recompiled where the build and the host
    /// allow, the portable 8-lane instantiation otherwise.
    #[inline]
    fn mask_simd<P: MbrPredicate>(&self, pred: &P, probe: &Rect) -> u32 {
        #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: reached only when AVX2 is present at runtime.
            return unsafe { mask_lanes_avx2::<P>(self, pred, probe) };
        }
        self.mask_lanes::<P, SIMD_LANES>(pred, probe)
    }
}

/// [`ChildMbrs::mask_lanes`] recompiled with AVX2 codegen: every
/// `#[inline(always)]` chunk kernel lands inside one 256-bit compilation
/// region. Same expressions, same IEEE semantics, bit-identical mask.
#[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn mask_lanes_avx2<P: MbrPredicate>(soa: &ChildMbrs, pred: &P, probe: &Rect) -> u32 {
    soa.mask_lanes::<P, SIMD_LANES>(pred, probe)
}

/// A monotone MBR predicate the filter stage can evaluate a node at a
/// time: true for child rectangles must imply true for their covering
/// parents, or tree pruning would lose candidates (both implementations
/// are monotone).
///
/// `test` is the scalar pair form; `keep_chunk` is the lane-generic node
/// form. Implementations must keep the two expression-identical so a
/// scalar traversal and a vectorized one agree bit for bit.
pub trait MbrPredicate: Copy + Send + Sync {
    /// Scalar pair test (the form the engine's refinement oracle uses).
    fn test(&self, a: &Rect, b: &Rect) -> bool;

    /// Tests `probe` against child slots `i..i + LANES` of `soa`.
    fn keep_chunk<const LANES: usize>(
        &self,
        soa: &ChildMbrs,
        i: usize,
        probe: &Rect,
    ) -> [bool; LANES];
}

/// MBR intersection — the candidate predicate of selections and
/// intersection joins (closed: touching boundaries intersect).
#[derive(Debug, Clone, Copy)]
pub struct Intersects;

impl MbrPredicate for Intersects {
    #[inline(always)]
    fn test(&self, a: &Rect, b: &Rect) -> bool {
        a.intersects(b)
    }

    #[inline(always)]
    fn keep_chunk<const LANES: usize>(
        &self,
        soa: &ChildMbrs,
        i: usize,
        probe: &Rect,
    ) -> [bool; LANES] {
        let mut keep = [false; LANES];
        for (k, keep) in keep.iter_mut().enumerate() {
            let j = i + k;
            // Expression-identical to `Rect::intersects(child, probe)`.
            *keep = soa.min_x[j] <= probe.xmax
                && probe.xmin <= soa.max_x[j]
                && soa.min_y[j] <= probe.ymax
                && probe.ymin <= soa.max_y[j];
        }
        keep
    }
}

/// MBR distance at most `d` — the candidate predicate of within-distance
/// queries and joins (the MBR distance lower-bounds the object distance).
#[derive(Debug, Clone, Copy)]
pub struct WithinDist(pub f64);

impl MbrPredicate for WithinDist {
    #[inline(always)]
    fn test(&self, a: &Rect, b: &Rect) -> bool {
        a.min_dist(b) <= self.0
    }

    #[inline(always)]
    fn keep_chunk<const LANES: usize>(
        &self,
        soa: &ChildMbrs,
        i: usize,
        probe: &Rect,
    ) -> [bool; LANES] {
        let mut keep = [false; LANES];
        for (k, keep) in keep.iter_mut().enumerate() {
            let j = i + k;
            // Expression-identical to `Rect::min_dist(child, probe) <= d`
            // (min_dist is exactly symmetric in its operands: both axis
            // gaps are a max over the same three terms).
            let dx = (probe.xmin - soa.max_x[j])
                .max(soa.min_x[j] - probe.xmax)
                .max(0.0);
            let dy = (probe.ymin - soa.max_y[j])
                .max(soa.min_y[j] - probe.ymax)
                .max(0.0);
            *keep = (dx * dx + dy * dy).sqrt() <= self.0;
        }
        keep
    }
}

/// Filter-stage tuning knobs, shared by tree searches and the join
/// scheduler. All combinations produce bit-identical candidate sequences;
/// the knobs only move wall-clock time (and the diagnostic
/// `simd_node_tests` / `work_units` counters that make the routing
/// visible).
#[derive(Debug, Clone, Copy)]
pub struct FilterConfig {
    /// Worker threads pulling page-pair work units during tree joins
    /// (`1` = sequential; searches are single-probe and always run on the
    /// calling thread).
    pub threads: usize,
    /// Evaluate node kernels at [`SIMD_LANES`] lanes (AVX2 where
    /// available) instead of `LANES = 1`.
    pub simd: bool,
    /// Page pairs per work unit. Smaller units balance better, larger
    /// units amortize queue traffic; the candidate sequence is identical
    /// for every value.
    pub unit_pairs: usize,
}

/// Default page pairs per join work unit.
pub const DEFAULT_UNIT_PAIRS: usize = 64;

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            threads: 1,
            simd: true,
            unit_pairs: DEFAULT_UNIT_PAIRS,
        }
    }
}

impl FilterConfig {
    /// Sequential scalar traversal — the seed behaviour, for baselines.
    pub fn scalar() -> Self {
        FilterConfig {
            threads: 1,
            simd: false,
            unit_pairs: DEFAULT_UNIT_PAIRS,
        }
    }
}

/// Work counters of the MBR filter stage.
///
/// `node_tests` is deterministic across every [`FilterConfig`]: kernels
/// evaluate all real lanes of a node (no short-circuiting), so the count
/// is a pure function of the trees and the probe/predicate.
/// `simd_node_tests` and `work_units` are routing diagnostics — they
/// describe *how* the same work was executed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Child-slot MBR tests evaluated (padding lanes excluded).
    pub node_tests: usize,
    /// The subset of `node_tests` evaluated through the vectorized
    /// (`LANES > 1`) kernel instantiation.
    pub simd_node_tests: usize,
    /// Page-pair work units the join scheduler dispensed (0 for
    /// single-probe searches).
    pub work_units: usize,
}

impl FilterStats {
    pub fn add(&mut self, o: &FilterStats) {
        self.node_tests += o.node_tests;
        self.simd_node_tests += o.simd_node_tests;
        self.work_units += o.work_units;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rect(x: f64, y: f64, w: f64, h: f64) -> Rect {
        Rect::new(x, y, x + w, y + h)
    }

    #[test]
    fn padding_slots_never_match() {
        let soa = ChildMbrs::from_rects([rect(0.0, 0.0, 1.0, 1.0)].iter());
        let everything = Rect::new(-1e9, -1e9, 1e9, 1e9);
        let mut stats = FilterStats::default();
        assert_eq!(soa.mask(&Intersects, &everything, true, &mut stats), 0b1);
        assert_eq!(
            soa.mask(&WithinDist(1e12), &everything, false, &mut stats),
            0b1
        );
        assert_eq!(stats.node_tests, 2);
        assert_eq!(stats.simd_node_tests, 1);
    }

    #[test]
    fn mask_matches_scalar_rect_predicates() {
        let rects = [
            rect(0.0, 0.0, 2.0, 2.0),
            rect(5.0, 5.0, 1.0, 1.0),
            rect(-3.0, 1.0, 0.5, 4.0),
        ];
        let soa = ChildMbrs::from_rects(rects.iter());
        let probe = rect(1.0, 1.0, 3.0, 3.0);
        for (i, r) in rects.iter().enumerate() {
            let bit = (soa.mask_lanes::<_, 1>(&Intersects, &probe) >> i) & 1;
            assert_eq!(bit == 1, r.intersects(&probe), "slot {i}");
            let bit = (soa.mask_lanes::<_, 1>(&WithinDist(2.0), &probe) >> i) & 1;
            assert_eq!(bit == 1, r.min_dist(&probe) <= 2.0, "slot {i}");
        }
    }

    prop_compose! {
        fn arb_rect()(
            x in -100.0f64..100.0,
            y in -100.0f64..100.0,
            w in 0.0f64..40.0,
            h in 0.0f64..40.0,
        ) -> Rect {
            Rect::new(x, y, x + w, y + h)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Scalar, 8-lane and runtime-dispatched (AVX2 when built and
        /// available) kernels produce bit-identical masks per node, for
        /// both predicates, and agree with the scalar `Rect` oracles.
        #[test]
        fn kernels_bit_identical_across_lane_widths(
            rects in prop::collection::vec(arb_rect(), 0..=MAX_ENTRIES),
            probe in arb_rect(),
            d in 0.0f64..120.0,
        ) {
            let soa = ChildMbrs::from_rects(rects.iter());
            let mut stats = FilterStats::default();
            for mask in [
                soa.mask_lanes::<_, 1>(&Intersects, &probe),
                soa.mask_lanes::<_, SIMD_LANES>(&Intersects, &probe),
                soa.mask(&Intersects, &probe, true, &mut stats),
                soa.mask(&Intersects, &probe, false, &mut stats),
            ] {
                let expected = rects.iter().enumerate().fold(0u32, |m, (i, r)| {
                    m | ((r.intersects(&probe) as u32) << i)
                });
                prop_assert_eq!(mask, expected);
            }
            for mask in [
                soa.mask_lanes::<_, 1>(&WithinDist(d), &probe),
                soa.mask_lanes::<_, SIMD_LANES>(&WithinDist(d), &probe),
                soa.mask(&WithinDist(d), &probe, true, &mut stats),
                soa.mask(&WithinDist(d), &probe, false, &mut stats),
            ] {
                let expected = rects.iter().enumerate().fold(0u32, |m, (i, r)| {
                    m | (((r.min_dist(&probe) <= d) as u32) << i)
                });
                prop_assert_eq!(mask, expected);
            }
            // Every mask call charged exactly the real slot count.
            prop_assert_eq!(stats.node_tests, 4 * rects.len());
            prop_assert_eq!(stats.simd_node_tests, 2 * rects.len());
        }
    }
}
