//! Property-based tests for the geometry kernel: every optimized algorithm
//! must agree with its brute-force oracle on randomized concave polygons.

use proptest::prelude::*;
use spatial_geom::intersect::{polygons_intersect_with, IntersectStats, SweepAlgo};
use spatial_geom::pip::{locate_point, PointLocation};
use spatial_geom::{
    min_dist, min_dist_brute, point_in_polygon, polygons_intersect, polygons_intersect_brute,
    within_distance, Point, Polygon,
};

/// A star-shaped (hence simple) polygon around `(cx, cy)`: one vertex per
/// angular step at a radius drawn from `radii`. Star-shaped polygons can be
/// deeply concave, which is what exercises the pocket cases.
fn star_polygon(cx: f64, cy: f64, radii: &[f64]) -> Polygon {
    let n = radii.len();
    let vertices: Vec<Point> = radii
        .iter()
        .enumerate()
        .map(|(i, &r)| {
            let a = (i as f64) * std::f64::consts::TAU / (n as f64);
            Point::new(cx + r * a.cos(), cy + r * a.sin())
        })
        .collect();
    Polygon::new(vertices).expect("star polygons are structurally valid")
}

prop_compose! {
    fn arb_star()(
        cx in -50.0f64..50.0,
        cy in -50.0f64..50.0,
        radii in prop::collection::vec(0.5f64..20.0, 3..24),
    ) -> Polygon {
        star_polygon(cx, cy, &radii)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The tree sweep, the forward sweep and the brute-force oracle must
    /// return identical intersection verdicts.
    #[test]
    fn intersection_implementations_agree(p in arb_star(), q in arb_star()) {
        let oracle = polygons_intersect_brute(&p, &q);
        let mut s1 = IntersectStats::default();
        let mut s2 = IntersectStats::default();
        let tree = polygons_intersect_with(&p, &q, SweepAlgo::Tree, &mut s1);
        let fwd = polygons_intersect_with(&p, &q, SweepAlgo::Forward, &mut s2);
        prop_assert_eq!(tree, oracle, "tree sweep vs brute force");
        prop_assert_eq!(fwd, oracle, "forward sweep vs brute force");
    }

    /// Intersection is symmetric.
    #[test]
    fn intersection_is_symmetric(p in arb_star(), q in arb_star()) {
        prop_assert_eq!(polygons_intersect(&p, &q), polygons_intersect(&q, &p));
    }

    /// `min_dist` equals the brute-force oracle and is 0 iff intersecting.
    #[test]
    fn min_dist_matches_oracle(p in arb_star(), q in arb_star()) {
        let exact = min_dist(&p, &q);
        let oracle = min_dist_brute(&p, &q);
        prop_assert!((exact - oracle).abs() <= 1e-9 * (1.0 + oracle),
            "min_dist {} vs oracle {}", exact, oracle);
        prop_assert_eq!(oracle == 0.0, polygons_intersect_brute(&p, &q));
    }

    /// `within_distance` (frontier chains + clipping + sweep) must agree
    /// with a direct comparison against the oracle distance.
    #[test]
    fn within_distance_matches_oracle(
        p in arb_star(),
        q in arb_star(),
        d in 0.0f64..80.0,
    ) {
        let oracle = min_dist_brute(&p, &q);
        prop_assert_eq!(
            within_distance(&p, &q, d),
            oracle <= d,
            "within_distance({}) vs oracle distance {}", d, oracle
        );
    }

    /// Within-distance at d = 0 coincides with intersection.
    #[test]
    fn within_zero_is_intersection(p in arb_star(), q in arb_star()) {
        prop_assert_eq!(within_distance(&p, &q, 0.0), polygons_intersect_brute(&p, &q));
    }

    /// The sweep kernel and the paper's pairwise kernel agree everywhere.
    #[test]
    fn within_sweep_matches_pairwise(
        p in arb_star(),
        q in arb_star(),
        d in 0.0f64..80.0,
    ) {
        prop_assert_eq!(
            spatial_geom::within_distance_sweep(&p, &q, d),
            within_distance(&p, &q, d)
        );
    }

    /// The centroid of a star polygon is inside it only if... not always
    /// (concave shapes), but the generating center always is: every star
    /// vertex is visible from it.
    #[test]
    fn star_center_is_inside(
        cx in -50.0f64..50.0,
        cy in -50.0f64..50.0,
        radii in prop::collection::vec(0.5f64..20.0, 3..24),
    ) {
        let p = star_polygon(cx, cy, &radii);
        prop_assert!(point_in_polygon(Point::new(cx, cy), &p));
    }

    /// Boundary sample points must be classified OnBoundary or very close
    /// to it; points far outside the MBR are Outside.
    #[test]
    fn pip_boundary_and_outside(p in arb_star(), t in 0.0f64..1.0) {
        let b = p.boundary_point(t);
        // Floating-point walking can land epsilon off the edge, so accept
        // any classification for the sampled point but require that a point
        // far outside is Outside.
        let _ = locate_point(b, &p);
        let far = Point::new(p.mbr().xmax + 1000.0, p.mbr().ymax + 1000.0);
        prop_assert_eq!(locate_point(far, &p), PointLocation::Outside);
    }

    /// Vertices themselves are always on the boundary.
    #[test]
    fn pip_vertices_on_boundary(p in arb_star()) {
        for &v in p.vertices() {
            prop_assert_eq!(locate_point(v, &p), PointLocation::OnBoundary);
        }
    }

    /// Star polygons are simple; the Shamos–Hoey-style checker must agree.
    #[test]
    fn stars_are_simple(p in arb_star()) {
        prop_assert!(p.is_simple());
    }

    /// Triangulation of a simple polygon covers exactly its area.
    #[test]
    fn triangulation_preserves_area(p in arb_star()) {
        let tris = spatial_geom::triangulate::triangulate(&p)
            .expect("star polygons must triangulate");
        prop_assert_eq!(tris.len(), p.vertex_count() - 2);
        let ta = spatial_geom::triangulate::triangulation_area(&p, &tris);
        prop_assert!((ta - p.area()).abs() <= 1e-9 * (1.0 + p.area()));
    }

    /// Convex hull contains all input points.
    #[test]
    fn hull_contains_inputs(pts in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 3..64)) {
        let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let hull = spatial_geom::hull::convex_hull(&points);
        if hull.len() >= 3 {
            let hp = Polygon::new(hull).unwrap();
            for &pt in &points {
                prop_assert!(point_in_polygon(pt, &hp));
            }
        }
    }

    /// WKT round-trips exactly (f64 Display is lossless for these values).
    #[test]
    fn wkt_round_trip(p in arb_star()) {
        let s = spatial_geom::wkt::format_polygon(&p);
        let q = spatial_geom::wkt::parse_polygon(&s).unwrap();
        prop_assert_eq!(p, q);
    }

    /// MBR distance lower-bounds true distance; expanded MBRs intersect iff
    /// MBR distance ≤ 2d is *implied* (one-way check).
    #[test]
    fn mbr_distance_is_lower_bound(p in arb_star(), q in arb_star()) {
        let lb = p.mbr().min_dist(&q.mbr());
        let d = min_dist_brute(&p, &q);
        prop_assert!(lb <= d + 1e-9, "MBR lower bound {} exceeds distance {}", lb, d);
    }

    /// The WKT parser must never panic, whatever bytes arrive (fuzz-style:
    /// errors are fine, crashes are not).
    #[test]
    fn wkt_parser_never_panics(s in ".{0,200}") {
        let _ = spatial_geom::wkt::parse_polygon(&s);
    }

    /// ...including near-miss inputs that start like real WKT.
    #[test]
    fn wkt_parser_survives_mangled_polygons(
        body in r"[0-9 .,()-]{0,120}",
    ) {
        let _ = spatial_geom::wkt::parse_polygon(&format!("POLYGON ({body})"));
        let _ = spatial_geom::wkt::parse_polygon(&format!("POLYGON (({body}))"));
    }

    /// Translation and scaling commute with area the way affine maps must.
    #[test]
    fn transforms_respect_area(
        p in arb_star(),
        dx in -100.0f64..100.0,
        dy in -100.0f64..100.0,
        s in 0.1f64..5.0,
    ) {
        let area = p.area();
        let t = p.translated(dx, dy);
        prop_assert!((t.area() - area).abs() <= 1e-6 * (1.0 + area));
        let z = p.scaled_about(Point::new(0.0, 0.0), s);
        prop_assert!((z.area() - area * s * s).abs() <= 1e-6 * (1.0 + area * s * s));
    }

    /// `polygons_intersect` must agree with the *distance* oracle's notion
    /// of contact: distance 0 ⟺ intersecting.
    #[test]
    fn intersection_iff_zero_distance(p in arb_star(), q in arb_star()) {
        prop_assert_eq!(polygons_intersect(&p, &q), min_dist_brute(&p, &q) == 0.0);
    }
}
