//! Computational-geometry kernel for the SIGMOD 2003 "Hardware Acceleration
//! for Spatial Selections and Joins" reproduction.
//!
//! This crate contains every *software* geometric primitive and algorithm the
//! paper uses or compares against:
//!
//! * primitives: [`Point`], [`Segment`], [`Rect`] (MBRs) and [`Polygon`]
//!   (simple, possibly concave polygons — the data type of all five
//!   evaluation datasets);
//! * robust orientation / incidence predicates ([`predicates`]);
//! * the ray-crossing point-in-polygon test (§3.1 step 1 of the paper,
//!   [`pip`]);
//! * plane-sweep red/blue segment-intersection *detection* with the
//!   restricted-search-space optimization of Brinkhoff et al. (§4.1.1,
//!   [`sweep`] and [`intersect`]);
//! * the `minDist` within-distance machinery after Chan, with the paper's
//!   two additional optimizations — early exit at distance ≤ D and frontier
//!   chains clipped to MBRs extended by D ([`chains`], [`mindist`]);
//! * supporting algorithms used by other crates: convex hull ([`hull`]),
//!   ear-clipping triangulation ([`triangulate`], needed only by the
//!   filled-polygon ablation in `hwa-core`), and WKT I/O ([`wkt`]).
//!
//! Everything here is exact (up to `f64`), deterministic and free of
//! graphics-hardware concerns; the simulated GPU lives in `spatial-raster`.

pub mod chains;
pub mod clip;
pub mod distance;
pub mod hull;
pub mod intersect;
pub mod mindist;
pub mod pip;
pub mod point;
pub mod polygon;
pub mod predicates;
pub mod rect;
pub mod segment;
pub mod sweep;
pub mod triangulate;
pub mod wkt;

pub use clip::{convex_clip, convex_overlap_area, overlap_area_exact};
pub use intersect::{
    polygon_contained_in, polygons_intersect, polygons_intersect_brute, IntersectStats,
};
pub use mindist::{min_dist, min_dist_brute, within_distance, within_distance_sweep, MinDistStats};
pub use pip::point_in_polygon;
pub use point::Point;
pub use polygon::Polygon;
pub use rect::Rect;
pub use segment::Segment;
