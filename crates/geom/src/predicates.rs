//! Geometric predicates: orientation, collinearity and segment-segment
//! intersection tests.
//!
//! These are the leaves of every algorithm in this crate, so they are kept
//! branch-light and allocation-free. Orientation uses the standard
//! cross-product sign; we deliberately do *not* use an epsilon — the paper's
//! algorithms are compared against brute-force oracles built from the same
//! predicates, so consistency matters more than adaptive-precision
//! perfection, and the synthetic datasets avoid adversarially degenerate
//! inputs by construction.

use crate::point::Point;

/// Orientation of the ordered triple `(a, b, c)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// `c` lies strictly to the left of the directed line `a → b`.
    CounterClockwise,
    /// `c` lies strictly to the right of the directed line `a → b`.
    Clockwise,
    /// The three points are collinear.
    Collinear,
}

/// The signed doubled area of triangle `(a, b, c)`: positive for a
/// counter-clockwise turn, negative for clockwise, zero for collinear.
#[inline]
pub fn orient2d(a: Point, b: Point, c: Point) -> f64 {
    (b - a).cross(c - a)
}

/// Classifies the turn made at `b` when walking `a → b → c`.
#[inline]
pub fn orientation(a: Point, b: Point, c: Point) -> Orientation {
    let v = orient2d(a, b, c);
    if v > 0.0 {
        Orientation::CounterClockwise
    } else if v < 0.0 {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

/// True when `p` lies on the closed segment `a b`, assuming the three points
/// are already known to be collinear.
#[inline]
pub fn on_segment_collinear(a: Point, b: Point, p: Point) -> bool {
    p.x >= a.x.min(b.x) && p.x <= a.x.max(b.x) && p.y >= a.y.min(b.y) && p.y <= a.y.max(b.y)
}

/// True when `p` lies on the closed segment `a b` (collinearity checked).
#[inline]
pub fn on_segment(a: Point, b: Point, p: Point) -> bool {
    orient2d(a, b, p) == 0.0 && on_segment_collinear(a, b, p)
}

/// Closed segment-intersection test: shared endpoints, endpoint-on-interior
/// touches and collinear overlaps all count as intersections.
///
/// This is the predicate the polygon intersection test needs — the paper's
/// `intersects` is the closed spatial predicate, so boundary contact counts.
pub fn segments_intersect(p1: Point, p2: Point, q1: Point, q2: Point) -> bool {
    let d1 = orient2d(q1, q2, p1);
    let d2 = orient2d(q1, q2, p2);
    let d3 = orient2d(p1, p2, q1);
    let d4 = orient2d(p1, p2, q2);

    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true; // proper crossing
    }
    (d1 == 0.0 && on_segment_collinear(q1, q2, p1))
        || (d2 == 0.0 && on_segment_collinear(q1, q2, p2))
        || (d3 == 0.0 && on_segment_collinear(p1, p2, q1))
        || (d4 == 0.0 && on_segment_collinear(p1, p2, q2))
}

/// *Proper* intersection test: the segments cross at a single point interior
/// to both. Shared endpoints and touches do **not** count.
///
/// Used by the Shamos–Hoey simplicity check, where adjacent polygon edges
/// legitimately share endpoints.
pub fn segments_intersect_properly(p1: Point, p2: Point, q1: Point, q2: Point) -> bool {
    let d1 = orient2d(q1, q2, p1);
    let d2 = orient2d(q1, q2, p2);
    let d3 = orient2d(p1, p2, q1);
    let d4 = orient2d(p1, p2, q2);
    ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
}

/// The intersection point of two segments known (or suspected) to cross.
///
/// Returns `None` for parallel or collinear segments, or when the
/// intersection parameter falls outside either segment.
pub fn segment_intersection_point(p1: Point, p2: Point, q1: Point, q2: Point) -> Option<Point> {
    let r = p2 - p1;
    let s = q2 - q1;
    let denom = r.cross(s);
    if denom == 0.0 {
        return None;
    }
    let t = (q1 - p1).cross(s) / denom;
    let u = (q1 - p1).cross(r) / denom;
    if (0.0..=1.0).contains(&t) && (0.0..=1.0).contains(&u) {
        Some(p1 + r * t)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn orientation_signs() {
        assert_eq!(
            orientation(p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orientation(p(0.0, 0.0), p(1.0, 0.0), p(1.0, -1.0)),
            Orientation::Clockwise
        );
        assert_eq!(
            orientation(p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn on_segment_checks_bounds() {
        assert!(on_segment(p(0.0, 0.0), p(2.0, 2.0), p(1.0, 1.0)));
        assert!(
            on_segment(p(0.0, 0.0), p(2.0, 2.0), p(0.0, 0.0)),
            "endpoint counts"
        );
        assert!(
            !on_segment(p(0.0, 0.0), p(2.0, 2.0), p(3.0, 3.0)),
            "beyond the end"
        );
        assert!(
            !on_segment(p(0.0, 0.0), p(2.0, 2.0), p(1.0, 0.0)),
            "off the line"
        );
    }

    #[test]
    fn proper_crossing() {
        assert!(segments_intersect(
            p(0.0, 0.0),
            p(2.0, 2.0),
            p(0.0, 2.0),
            p(2.0, 0.0)
        ));
        assert!(segments_intersect_properly(
            p(0.0, 0.0),
            p(2.0, 2.0),
            p(0.0, 2.0),
            p(2.0, 0.0)
        ));
    }

    #[test]
    fn disjoint_segments() {
        assert!(!segments_intersect(
            p(0.0, 0.0),
            p(1.0, 0.0),
            p(0.0, 1.0),
            p(1.0, 1.0)
        ));
        assert!(!segments_intersect_properly(
            p(0.0, 0.0),
            p(1.0, 0.0),
            p(0.0, 1.0),
            p(1.0, 1.0)
        ));
    }

    #[test]
    fn shared_endpoint_is_closed_but_not_proper() {
        let a = p(0.0, 0.0);
        assert!(segments_intersect(a, p(1.0, 0.0), a, p(0.0, 1.0)));
        assert!(!segments_intersect_properly(a, p(1.0, 0.0), a, p(0.0, 1.0)));
    }

    #[test]
    fn t_junction_touch() {
        // q1 lies in the interior of segment p1-p2.
        assert!(segments_intersect(
            p(0.0, 0.0),
            p(2.0, 0.0),
            p(1.0, 0.0),
            p(1.0, 1.0)
        ));
        assert!(!segments_intersect_properly(
            p(0.0, 0.0),
            p(2.0, 0.0),
            p(1.0, 0.0),
            p(1.0, 1.0)
        ));
    }

    #[test]
    fn collinear_overlap_and_gap() {
        assert!(segments_intersect(
            p(0.0, 0.0),
            p(2.0, 0.0),
            p(1.0, 0.0),
            p(3.0, 0.0)
        ));
        assert!(!segments_intersect(
            p(0.0, 0.0),
            p(1.0, 0.0),
            p(2.0, 0.0),
            p(3.0, 0.0)
        ));
    }

    #[test]
    fn intersection_point_of_crossing() {
        let got =
            segment_intersection_point(p(0.0, 0.0), p(2.0, 2.0), p(0.0, 2.0), p(2.0, 0.0)).unwrap();
        assert!((got.x - 1.0).abs() < 1e-12 && (got.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn intersection_point_none_for_parallel() {
        assert!(
            segment_intersection_point(p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0), p(1.0, 1.0))
                .is_none()
        );
        // Crossing lines but outside the segments.
        assert!(
            segment_intersection_point(p(0.0, 0.0), p(1.0, 1.0), p(3.0, 0.0), p(4.0, -1.0))
                .is_none()
        );
    }
}
