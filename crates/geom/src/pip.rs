//! Ray-crossing point-in-polygon test — step 1 of both the software and the
//! hardware-assisted intersection tests (§3.1).
//!
//! The paper stresses that this step is O(n), cache-friendly (sequential
//! vertex access) and cheap relative to the segment-intersection step, which
//! is why Algorithm 3.1 keeps it in software and only offloads the segment
//! test to hardware.

use crate::point::Point;
use crate::polygon::Polygon;
use crate::predicates::on_segment;

/// Where a point lies relative to a polygon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointLocation {
    Inside,
    OnBoundary,
    Outside,
}

/// Classifies `p` against `poly` exactly, including boundary detection.
///
/// Uses the standard half-open crossing rule (count an edge when its two
/// endpoints straddle the horizontal line through `p`, with the upper
/// endpoint excluded) so vertices on the ray are counted exactly once.
pub fn locate_point(p: Point, poly: &Polygon) -> PointLocation {
    if !poly.mbr().contains_point(p) {
        return PointLocation::Outside;
    }
    let vs = poly.vertices();
    let n = vs.len();
    let mut inside = false;
    for i in 0..n {
        let a = vs[i];
        let b = vs[(i + 1) % n];
        if on_segment(a, b, p) {
            return PointLocation::OnBoundary;
        }
        // Half-open rule: edge crosses the upward ray from p when exactly one
        // endpoint is strictly above p's y.
        if (a.y > p.y) != (b.y > p.y) {
            // x-coordinate of the edge at height p.y.
            let t = (p.y - a.y) / (b.y - a.y);
            let x = a.x + t * (b.x - a.x);
            if x > p.x {
                inside = !inside;
            }
        }
    }
    if inside {
        PointLocation::Inside
    } else {
        PointLocation::Outside
    }
}

/// Closed containment: `true` when `p` is inside `poly` or on its boundary.
///
/// This is the predicate Algorithm 3.1 needs: the spatial `intersects`
/// relation is closed, so a boundary vertex counts.
#[inline]
pub fn point_in_polygon(p: Point, poly: &Polygon) -> bool {
    locate_point(p, poly) != PointLocation::Outside
}

/// Strict containment: `true` only when `p` is in the open interior.
#[inline]
pub fn point_strictly_in_polygon(p: Point, poly: &Polygon) -> bool {
    locate_point(p, poly) == PointLocation::Inside
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Polygon {
        Polygon::from_coords(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)])
    }

    /// Concave "C" opening to the right.
    fn c_shape() -> Polygon {
        Polygon::from_coords(&[
            (0.0, 0.0),
            (4.0, 0.0),
            (4.0, 1.0),
            (1.0, 1.0),
            (1.0, 3.0),
            (4.0, 3.0),
            (4.0, 4.0),
            (0.0, 4.0),
        ])
    }

    #[test]
    fn center_is_inside() {
        assert_eq!(
            locate_point(Point::new(2.0, 2.0), &square()),
            PointLocation::Inside
        );
    }

    #[test]
    fn outside_mbr_is_fast_outside() {
        assert_eq!(
            locate_point(Point::new(10.0, 10.0), &square()),
            PointLocation::Outside
        );
    }

    #[test]
    fn boundary_edge_and_vertex() {
        assert_eq!(
            locate_point(Point::new(2.0, 0.0), &square()),
            PointLocation::OnBoundary
        );
        assert_eq!(
            locate_point(Point::new(4.0, 4.0), &square()),
            PointLocation::OnBoundary
        );
        assert!(point_in_polygon(Point::new(0.0, 0.0), &square()));
        assert!(!point_strictly_in_polygon(Point::new(0.0, 0.0), &square()));
    }

    #[test]
    fn concave_pocket_is_outside() {
        let c = c_shape();
        // The pocket (right middle) is outside the polygon...
        assert_eq!(
            locate_point(Point::new(3.0, 2.0), &c),
            PointLocation::Outside
        );
        // ...but the spine (left) is inside.
        assert_eq!(
            locate_point(Point::new(0.5, 2.0), &c),
            PointLocation::Inside
        );
        // And the arms are inside.
        assert_eq!(
            locate_point(Point::new(3.0, 0.5), &c),
            PointLocation::Inside
        );
        assert_eq!(
            locate_point(Point::new(3.0, 3.5), &c),
            PointLocation::Inside
        );
    }

    #[test]
    fn ray_through_vertex_counts_once() {
        // Diamond: an upward ray from below the left vertex passes exactly
        // through the top and bottom vertices of the test point column.
        let diamond = Polygon::from_coords(&[(2.0, 0.0), (4.0, 2.0), (2.0, 4.0), (0.0, 2.0)]);
        // Horizontal line through vertex (0,2)-(4,2) heights.
        assert_eq!(
            locate_point(Point::new(2.0, 2.0), &diamond),
            PointLocation::Inside
        );
        assert_eq!(
            locate_point(Point::new(-1.0, 2.0), &diamond),
            PointLocation::Outside
        );
        assert_eq!(
            locate_point(Point::new(3.9, 2.0), &diamond),
            PointLocation::Inside
        );
    }

    #[test]
    fn point_on_horizontal_edge() {
        let p = Polygon::from_coords(&[(0.0, 0.0), (4.0, 0.0), (4.0, 2.0), (0.0, 2.0)]);
        assert_eq!(
            locate_point(Point::new(2.0, 2.0), &p),
            PointLocation::OnBoundary
        );
    }

    #[test]
    fn winding_direction_is_irrelevant() {
        let ccw = square();
        let cw = Polygon::from_coords(&[(0.0, 0.0), (0.0, 4.0), (4.0, 4.0), (4.0, 0.0)]);
        for &(x, y) in &[(2.0, 2.0), (5.0, 5.0), (0.0, 2.0), (3.9, 3.9)] {
            assert_eq!(
                locate_point(Point::new(x, y), &ccw),
                locate_point(Point::new(x, y), &cw)
            );
        }
    }
}
