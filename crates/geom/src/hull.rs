//! Convex hulls (Andrew's monotone chain).
//!
//! Brinkhoff et al.'s geometric filters approximate complex polygons with
//! convex hulls (§1, Table 1); the dataset generators also use hulls to
//! validate their output and to derive simple approximations for tests.

use crate::point::Point;

/// The convex hull of a point set, in counter-clockwise order, starting at
/// the lexicographically smallest point. Collinear points on the hull
/// boundary are dropped. Returns fewer than 3 points for degenerate input.
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_unstable_by(|a, b| a.lex_cmp(b));
    pts.dedup();
    let n = pts.len();
    if n < 3 {
        return pts;
    }

    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2 {
            let a = hull[hull.len() - 2];
            let b = hull[hull.len() - 1];
            if (b - a).cross(p - a) <= 0.0 {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len {
            let a = hull[hull.len() - 2];
            let b = hull[hull.len() - 1];
            if (b - a).cross(p - a) <= 0.0 {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(p);
    }
    hull.pop(); // the first point is re-added by the upper pass
    hull
}

/// True when `points` (in order) form a convex CCW cycle.
pub fn is_convex_ccw(points: &[Point]) -> bool {
    let n = points.len();
    if n < 3 {
        return false;
    }
    for i in 0..n {
        let a = points[i];
        let b = points[(i + 1) % n];
        let c = points[(i + 2) % n];
        if (b - a).cross(c - b) <= 0.0 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = vec![
            p(0.0, 0.0),
            p(4.0, 0.0),
            p(4.0, 4.0),
            p(0.0, 4.0),
            p(2.0, 2.0),
            p(1.0, 3.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        assert!(is_convex_ccw(&hull));
        assert_eq!(hull[0], p(0.0, 0.0), "starts at lexicographic minimum");
    }

    #[test]
    fn collinear_points_are_dropped() {
        let pts = vec![
            p(0.0, 0.0),
            p(1.0, 0.0),
            p(2.0, 0.0),
            p(2.0, 2.0),
            p(0.0, 2.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        assert!(!hull.contains(&p(1.0, 0.0)));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(convex_hull(&[]).len(), 0);
        assert_eq!(convex_hull(&[p(1.0, 1.0)]).len(), 1);
        assert_eq!(convex_hull(&[p(1.0, 1.0), p(1.0, 1.0)]).len(), 1, "dedup");
        assert_eq!(convex_hull(&[p(0.0, 0.0), p(1.0, 1.0)]).len(), 2);
        // All collinear.
        let line = convex_hull(&[p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)]);
        assert_eq!(line.len(), 2);
    }

    #[test]
    fn hull_contains_all_points() {
        use crate::polygon::Polygon;
        let pts: Vec<Point> = (0..30)
            .map(|i| {
                let a = i as f64 * 0.7;
                p(
                    a.sin() * (1.0 + (i % 5) as f64),
                    a.cos() * (1.0 + (i % 7) as f64),
                )
            })
            .collect();
        let hull = convex_hull(&pts);
        assert!(hull.len() >= 3);
        let hull_poly = Polygon::new(hull).unwrap();
        for &q in &pts {
            assert!(
                crate::pip::point_in_polygon(q, &hull_poly),
                "point {q} escaped its hull"
            );
        }
    }

    #[test]
    fn is_convex_rejects_concave() {
        let l = [
            p(0.0, 0.0),
            p(3.0, 0.0),
            p(3.0, 1.0),
            p(1.0, 1.0),
            p(1.0, 3.0),
            p(0.0, 3.0),
        ];
        assert!(!is_convex_ccw(&l));
        let sq = [p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0), p(0.0, 1.0)];
        assert!(is_convex_ccw(&sq));
        // Clockwise square is "convex" geometrically but not CCW.
        let cw = [p(0.0, 0.0), p(0.0, 1.0), p(1.0, 1.0), p(1.0, 0.0)];
        assert!(!is_convex_ccw(&cw));
    }
}
