//! Polygon–polygon minimum distance and within-distance tests — the
//! software baseline for the paper's within-distance joins (§4.1.1, §4.4).
//!
//! [`within_distance`] is the paper's "modified minDist": Chan's
//! frontier-chain algorithm augmented with the two optimizations from
//! §4.1.1 — (1) return as soon as the running distance drops to ≤ D, and
//! (2) restrict the frontier chains to the parts intersecting the other
//! MBR extended by D.

use crate::chains::frontier_clipped;
use crate::distance::{edges_min_dist, edges_within_pairwise, edges_within_sweep};
use crate::pip::point_in_polygon;
use crate::polygon::Polygon;

/// Work counters for one within-distance test.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinDistStats {
    /// Edges of P surviving the frontier + extended-MBR reduction.
    pub edges_p: usize,
    /// Edges of Q surviving the reduction.
    pub edges_q: usize,
    /// Tests decided by MBR distance or containment alone.
    pub decided_early: usize,
}

/// Exact minimum distance between two simple polygons (0 when they
/// intersect; interiors count, so a polygon inside another has distance 0).
///
/// Exact but conservative about reductions: scans all edge pairs with MBR
/// pruning and a sampled initial upper bound. Use [`within_distance`] for
/// the fast thresholded test.
pub fn min_dist(p: &Polygon, q: &Polygon) -> f64 {
    if crate::intersect::polygons_intersect(p, q) {
        return 0.0;
    }
    let ep: Vec<_> = p.edges().collect();
    let eq: Vec<_> = q.edges().collect();
    // Initial upper bound: distances from a few P vertices to Q's boundary.
    let step = (p.vertex_count() / 8).max(1);
    let mut upper = f64::INFINITY;
    for v in p.vertices().iter().step_by(step) {
        upper = upper.min(crate::distance::point_boundary_min_dist(*v, &eq));
    }
    // The bound is achieved by an actual pair, so passing it as `upper` is
    // safe: edges_min_dist returns min(upper, true min) = true min.
    edges_min_dist(&ep, &eq, upper)
}

/// Brute-force oracle: all-pairs edge distances, no reductions. O(n·m).
pub fn min_dist_brute(p: &Polygon, q: &Polygon) -> f64 {
    if crate::intersect::polygons_intersect_brute(p, q) {
        return 0.0;
    }
    let mut best = f64::INFINITY;
    for ep in p.edges() {
        for eq in q.edges() {
            best = best.min(ep.dist_segment(&eq));
        }
    }
    best
}

/// True when the two polygons are within distance `d` of each other
/// (closed: exactly `d` counts; intersecting polygons are within any
/// `d ≥ 0`). The paper's "modified minDist" algorithm: frontier chains,
/// clipped to MBRs extended by `d`, compared pairwise with early exit.
pub fn within_distance(p: &Polygon, q: &Polygon, d: f64) -> bool {
    within_distance_with(p, q, d, &mut MinDistStats::default())
}

/// [`within_distance`] with work counters.
pub fn within_distance_with(p: &Polygon, q: &Polygon, d: f64, stats: &mut MinDistStats) -> bool {
    let (ep, eq) = match within_distance_prologue(p, q, d, stats) {
        Ok(decided) => return decided,
        Err(chains) => chains,
    };
    edges_within_pairwise(&ep, &eq, d)
}

/// A modern variant of [`within_distance`] that replaces the pairwise
/// chain comparison with a forward sweep (near-linear). Identical results;
/// benchmarked against the paper's kernel in the ablation suite.
pub fn within_distance_sweep(p: &Polygon, q: &Polygon, d: f64) -> bool {
    let (ep, eq) = match within_distance_prologue(p, q, d, &mut MinDistStats::default()) {
        Ok(decided) => return decided,
        Err(chains) => chains,
    };
    edges_within_sweep(&ep, &eq, d)
}

/// Shared front half: MBR lower bound, containment probes, frontier-chain
/// extraction and extended-MBR clipping. `Ok(answer)` when decided early,
/// `Err((ep, eq))` with the clipped chains otherwise.
#[allow(clippy::type_complexity)]
fn within_distance_prologue(
    p: &Polygon,
    q: &Polygon,
    d: f64,
    stats: &mut MinDistStats,
) -> Result<bool, (Vec<crate::Segment>, Vec<crate::Segment>)> {
    debug_assert!(d >= 0.0);
    // MBR lower bound (the 0-level filter; cheap stand-alone correctness).
    if p.mbr().min_dist(&q.mbr()) > d {
        stats.decided_early += 1;
        return Ok(false);
    }
    // Containment ⇒ distance 0. Boundary crossings are caught later by a
    // zero edge-pair distance, so two point-in-polygon probes suffice.
    if point_in_polygon(p.vertices()[0], q) || point_in_polygon(q.vertices()[0], p) {
        stats.decided_early += 1;
        return Ok(true);
    }
    // Frontier chains clipped to extended MBRs (§4.1.1, optimization 2).
    let ep = frontier_clipped(p, &q.mbr(), d);
    let eq = frontier_clipped(q, &p.mbr(), d);
    stats.edges_p += ep.len();
    stats.edges_q += eq.len();
    Err((ep, eq))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(x: f64, y: f64, s: f64) -> Polygon {
        Polygon::from_coords(&[(x, y), (x + s, y), (x + s, y + s), (x, y + s)])
    }

    #[test]
    fn disjoint_squares_distance() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(4.0, 0.0, 1.0);
        assert_eq!(min_dist(&a, &b), 3.0);
        assert_eq!(min_dist_brute(&a, &b), 3.0);
    }

    #[test]
    fn diagonal_distance() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(4.0, 5.0, 1.0); // gap dx=3, dy=4
        assert_eq!(min_dist_brute(&a, &b), 5.0);
        assert_eq!(min_dist(&a, &b), 5.0);
    }

    #[test]
    fn intersecting_polygons_have_zero_distance() {
        let a = square(0.0, 0.0, 2.0);
        let b = square(1.0, 1.0, 2.0);
        assert_eq!(min_dist(&a, &b), 0.0);
        assert_eq!(min_dist_brute(&a, &b), 0.0);
        assert!(within_distance(&a, &b, 0.0));
    }

    #[test]
    fn containment_has_zero_distance() {
        let outer = square(0.0, 0.0, 10.0);
        let inner = square(4.0, 4.0, 1.0);
        assert_eq!(min_dist(&outer, &inner), 0.0);
        assert!(within_distance(&outer, &inner, 0.0));
        assert!(within_distance(&inner, &outer, 0.0));
    }

    #[test]
    fn within_distance_thresholds() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(4.0, 0.0, 1.0); // true distance 3
        assert!(within_distance(&a, &b, 3.0), "closed: exactly d counts");
        assert!(within_distance(&a, &b, 3.5));
        assert!(!within_distance(&a, &b, 2.999));
    }

    #[test]
    fn within_distance_mbr_early_exit() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(100.0, 100.0, 1.0);
        let mut st = MinDistStats::default();
        assert!(!within_distance_with(&a, &b, 5.0, &mut st));
        assert_eq!(st.decided_early, 1);
        assert_eq!(st.edges_p, 0, "no edge work after early exit");
    }

    #[test]
    fn within_distance_concave_pocket() {
        // Small square inside the C's pocket: disjoint, but very close to
        // the inner walls.
        let c = Polygon::from_coords(&[
            (0.0, 0.0),
            (4.0, 0.0),
            (4.0, 1.0),
            (1.0, 1.0),
            (1.0, 3.0),
            (4.0, 3.0),
            (4.0, 4.0),
            (0.0, 4.0),
        ]);
        let pocket = square(2.0, 1.5, 1.0);
        let d = min_dist_brute(&c, &pocket);
        assert!((d - 0.5).abs() < 1e-12, "pocket floor gap is 0.5, got {d}");
        assert!(within_distance(&c, &pocket, 0.5));
        assert!(!within_distance(&c, &pocket, 0.49));
        assert_eq!(min_dist(&c, &pocket), d);
    }

    #[test]
    fn min_dist_matches_brute_on_triangles() {
        let t1 = Polygon::from_coords(&[(0.0, 0.0), (2.0, 0.0), (1.0, 2.0)]);
        let t2 = Polygon::from_coords(&[(5.0, 1.0), (7.0, 1.0), (6.0, 3.0)]);
        assert!((min_dist(&t1, &t2) - min_dist_brute(&t1, &t2)).abs() < 1e-12);
    }

    #[test]
    fn stats_report_reduction() {
        // Two big squares far apart in x: frontier + clip should keep fewer
        // edges than the full boundary.
        let a = square(0.0, 0.0, 10.0);
        let b = square(13.0, 0.0, 10.0);
        let mut st = MinDistStats::default();
        assert!(within_distance_with(&a, &b, 3.0, &mut st));
        assert!(st.edges_p <= 4 && st.edges_p > 0);
    }
}
