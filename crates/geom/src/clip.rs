//! Convex polygon clipping (Sutherland–Hodgman) and the exact
//! area-of-overlap oracle.
//!
//! The hardware aggregation path answers "how much area do these two
//! polygons share?" by rasterizing both interiors and counting pixels —
//! a quantized measurement. This module computes the *exact* answer in
//! software: triangulate both polygons ([`crate::triangulate`]), clip
//! every triangle of one against every triangle of the other
//! (triangle–triangle intersections are convex, so Sutherland–Hodgman is
//! exact here — no concave-output pitfalls), and sum the clipped areas.
//! Triangles of one triangulation have disjoint interiors, so the pairwise
//! sum *is* the intersection area, up to `f64` rounding.
//!
//! The oracle defines the quantization envelope the property tests pin the
//! hardware measurement inside (DESIGN.md §14); it is also what the online
//! planner's software arm would execute for an `OverlapArea` query.

use crate::point::Point;
use crate::polygon::Polygon;
use crate::predicates::orient2d;
use crate::triangulate::triangulate;

/// Clips convex `subject` against convex `clip` (both CCW) and returns the
/// intersection polygon's vertices (possibly empty, possibly degenerate).
///
/// Textbook Sutherland–Hodgman: successively clip the subject against each
/// directed clip edge, keeping the half-plane to its left. Correct for
/// convex clip regions of any vertex count; the subject must be convex too
/// for the output to be the true intersection.
pub fn convex_clip(subject: &[Point], clip: &[Point]) -> Vec<Point> {
    let mut out: Vec<Point> = subject.to_vec();
    let mut input: Vec<Point> = Vec::with_capacity(subject.len() + clip.len());
    let m = clip.len();
    for e in 0..m {
        if out.is_empty() {
            return out;
        }
        let a = clip[e];
        let b = clip[(e + 1) % m];
        std::mem::swap(&mut input, &mut out);
        out.clear();
        let n = input.len();
        for i in 0..n {
            let cur = input[i];
            let nxt = input[(i + 1) % n];
            let cur_in = orient2d(a, b, cur) >= 0.0;
            let nxt_in = orient2d(a, b, nxt) >= 0.0;
            if cur_in {
                out.push(cur);
                if !nxt_in {
                    out.push(edge_intersection(a, b, cur, nxt));
                }
            } else if nxt_in {
                out.push(edge_intersection(a, b, cur, nxt));
            }
        }
    }
    out
}

/// Where segment `p`–`q` crosses the (infinite) line through `a`–`b`.
/// Callers guarantee the endpoints straddle the line, so the denominator
/// is nonzero up to rounding; a degenerate denominator falls back to `p`.
fn edge_intersection(a: Point, b: Point, p: Point, q: Point) -> Point {
    let dp = orient2d(a, b, p);
    let dq = orient2d(a, b, q);
    let denom = dp - dq;
    if denom == 0.0 {
        return p;
    }
    let t = dp / denom;
    Point::new(p.x + t * (q.x - p.x), p.y + t * (q.y - p.y))
}

/// Shoelace area of a vertex ring (absolute value; zero for fewer than
/// three vertices).
fn ring_area(vs: &[Point]) -> f64 {
    if vs.len() < 3 {
        return 0.0;
    }
    let mut twice = 0.0;
    let n = vs.len();
    for i in 0..n {
        let p = vs[i];
        let q = vs[(i + 1) % n];
        twice += p.x * q.y - q.x * p.y;
    }
    twice.abs() / 2.0
}

/// The intersection area of two convex CCW rings.
pub fn convex_overlap_area(subject: &[Point], clip: &[Point]) -> f64 {
    ring_area(&convex_clip(subject, clip))
}

/// One polygon's triangulation as CCW triangles, dropping degenerate
/// (zero-area) ears that contribute nothing.
fn ccw_triangles(poly: &Polygon) -> Option<Vec<[Point; 3]>> {
    let vs = poly.vertices();
    let tris = triangulate(poly)?;
    Some(
        tris.iter()
            .filter_map(|t| {
                let (a, b, c) = (vs[t[0]], vs[t[1]], vs[t[2]]);
                let orient = orient2d(a, b, c);
                if orient == 0.0 {
                    None
                } else if orient > 0.0 {
                    Some([a, b, c])
                } else {
                    Some([c, b, a])
                }
            })
            .collect(),
    )
}

/// Exact area of `p ∩ q` for simple polygons: triangulate both, clip every
/// triangle pair, sum. `None` when either polygon fails to triangulate
/// (non-simple input).
pub fn overlap_area_exact(p: &Polygon, q: &Polygon) -> Option<f64> {
    // Cheap rejection: disjoint MBRs share no area.
    if !p.mbr().intersects(&q.mbr()) {
        return Some(0.0);
    }
    let pt = ccw_triangles(p)?;
    let qt = ccw_triangles(q)?;
    let mut area = 0.0;
    for a in &pt {
        for b in &qt {
            area += convex_overlap_area(a, b);
        }
    }
    Some(area)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(x0: f64, y0: f64, side: f64) -> Polygon {
        Polygon::from_coords(&[
            (x0, y0),
            (x0 + side, y0),
            (x0 + side, y0 + side),
            (x0, y0 + side),
        ])
    }

    #[test]
    fn identical_squares_overlap_fully() {
        let s = square(0.0, 0.0, 4.0);
        assert!((overlap_area_exact(&s, &s).unwrap() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn offset_squares_overlap_partially() {
        let a = square(0.0, 0.0, 4.0);
        let b = square(2.0, 2.0, 4.0);
        assert!((overlap_area_exact(&a, &b).unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_squares_share_nothing() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(5.0, 5.0, 1.0);
        assert_eq!(overlap_area_exact(&a, &b), Some(0.0));
        // Touching along an edge: zero area, not an error.
        let c = square(1.0, 0.0, 1.0);
        assert!(overlap_area_exact(&a, &c).unwrap().abs() < 1e-12);
    }

    #[test]
    fn clockwise_input_is_normalized() {
        let ccw = square(0.0, 0.0, 2.0);
        let cw = Polygon::from_coords(&[(1.0, 1.0), (1.0, 3.0), (3.0, 3.0), (3.0, 1.0)]);
        assert!((overlap_area_exact(&ccw, &cw).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn concave_subject_clips_by_triangulation() {
        // An L-shape of area 5 against a square covering its lower bar.
        let l = Polygon::from_coords(&[
            (0.0, 0.0),
            (3.0, 0.0),
            (3.0, 1.0),
            (1.0, 1.0),
            (1.0, 3.0),
            (0.0, 3.0),
        ]);
        let bar = Polygon::from_coords(&[(0.0, 0.0), (3.0, 0.0), (3.0, 1.0), (0.0, 1.0)]);
        assert!((overlap_area_exact(&l, &bar).unwrap() - 3.0).abs() < 1e-9);
        // Symmetric argument order.
        assert!((overlap_area_exact(&bar, &l).unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn contained_polygon_reports_its_own_area() {
        let outer = square(0.0, 0.0, 10.0);
        let inner = square(2.0, 2.0, 3.0);
        assert!((overlap_area_exact(&outer, &inner).unwrap() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn triangle_pair_cross() {
        // Two triangles forming a symmetric star overlap in a quad.
        let up = Polygon::from_coords(&[(0.0, 0.0), (4.0, 0.0), (2.0, 4.0)]);
        let down = Polygon::from_coords(&[(0.0, 3.0), (4.0, 3.0), (2.0, -1.0)]);
        let a = overlap_area_exact(&up, &down).unwrap();
        let b = overlap_area_exact(&down, &up).unwrap();
        assert!((a - b).abs() < 1e-9, "symmetry: {a} vs {b}");
        assert!(a > 0.0 && a < up.area().min(down.area()));
    }
}
