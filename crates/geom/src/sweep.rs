//! Plane-sweep segment-intersection *detection*.
//!
//! The paper's software segment-intersection test (§3.1, step 3) "sweeps a
//! horizontal (or vertical) line through P and Q. Edges that intersect the
//! sweep line at the same time are tested against their immediate left and
//! right neighbors" — i.e. a Shamos–Hoey-style detection sweep with a
//! balanced-search-tree status, stopping at the first red/blue (P-edge vs
//! Q-edge) intersection. That algorithm is [`tree_sweep_intersects`].
//!
//! We additionally provide [`forward_sweep_intersects`], the "sweep and
//! prune" variant widely used in spatial-join implementations: it tests
//! *every* pair of edges whose x-ranges overlap (with a y-interval
//! prefilter), so it is exhaustive by construction and serves as the
//! reference the tree sweep is validated against. The same machinery powers
//! [`polygon_is_simple`], the checker for the paper's footnote-1 definition
//! of simple polygons.
//!
//! # Preconditions
//!
//! [`tree_sweep_intersects`] assumes each input edge set is internally
//! non-crossing (the edges of a *simple* polygon boundary): proper red-red
//! or blue-blue crossings can corrupt the status order before a red/blue
//! intersection is reached. This is exactly the paper's setting — the
//! datasets are (overwhelmingly) simple polygons, and the non-simple ones
//! are excluded by the loaders. [`forward_sweep_intersects`] has no such
//! precondition.

use crate::polygon::Polygon;
use crate::predicates::on_segment;
use crate::segment::Segment;
use std::cmp::Ordering;

/// Which edge set a sweep segment belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Color {
    Red,
    Blue,
}

/// Counters describing how much work a sweep performed; the benches report
/// these alongside wall-clock time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Exact segment-pair intersection tests executed.
    pub pair_tests: usize,
    /// Events processed (tree sweep) or segments scanned (forward sweep).
    pub events: usize,
}

// ---------------------------------------------------------------------------
// Forward sweep ("sweep and prune") — exhaustive red/blue detection.
// ---------------------------------------------------------------------------

/// Detects whether any red segment intersects any blue segment (closed
/// semantics: touching counts), by sweeping both sets in `xmin` order and
/// testing all pairs with overlapping x-ranges and y-ranges.
///
/// Exhaustive: every intersecting pair has overlapping MBRs, and every pair
/// with overlapping x-ranges is examined, so no intersection can be missed
/// regardless of degeneracies.
pub fn forward_sweep_intersects(red: &[Segment], blue: &[Segment]) -> bool {
    forward_sweep_intersects_stats(red, blue, &mut SweepStats::default())
}

/// [`forward_sweep_intersects`] with work counters.
pub fn forward_sweep_intersects_stats(
    red: &[Segment],
    blue: &[Segment],
    stats: &mut SweepStats,
) -> bool {
    if red.is_empty() || blue.is_empty() {
        return false;
    }
    // Merged processing order by xmin.
    let mut order: Vec<(f64, Color, u32)> = Vec::with_capacity(red.len() + blue.len());
    for (i, s) in red.iter().enumerate() {
        order.push((s.a.x.min(s.b.x), Color::Red, i as u32));
    }
    for (i, s) in blue.iter().enumerate() {
        order.push((s.a.x.min(s.b.x), Color::Blue, i as u32));
    }
    order.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));

    // Active lists hold (xmax, ymin, ymax, index); stale entries are pruned
    // as the sweep front passes them.
    let mut active_red: Vec<(f64, f64, f64, u32)> = Vec::new();
    let mut active_blue: Vec<(f64, f64, f64, u32)> = Vec::new();

    for &(x, color, idx) in &order {
        stats.events += 1;
        let (seg, opposite_set, own_active, other_active) = match color {
            Color::Red => (&red[idx as usize], blue, &mut active_red, &mut active_blue),
            Color::Blue => (&blue[idx as usize], red, &mut active_blue, &mut active_red),
        };
        let (ymin, ymax) = if seg.a.y <= seg.b.y {
            (seg.a.y, seg.b.y)
        } else {
            (seg.b.y, seg.a.y)
        };
        // Prune expired opposite-set segments, then test the live ones.
        other_active.retain(|&(xmax, _, _, _)| xmax >= x);
        for &(_, oymin, oymax, oidx) in other_active.iter() {
            if oymin <= ymax && ymin <= oymax {
                stats.pair_tests += 1;
                if seg.intersects(&opposite_set[oidx as usize]) {
                    return true;
                }
            }
        }
        own_active.push((seg.a.x.max(seg.b.x), ymin, ymax, idx));
    }
    false
}

// ---------------------------------------------------------------------------
// Tree sweep — the paper's balanced-search-tree plane sweep.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct SweepSeg {
    seg: Segment,
    color: Color,
    /// Left endpoint (smaller x, ties by y).
    left: crate::point::Point,
    /// Right endpoint.
    right: crate::point::Point,
}

impl SweepSeg {
    fn new(seg: Segment, color: Color) -> Self {
        let (left, right) = if seg.a.lex_cmp(&seg.b) == Ordering::Greater {
            (seg.b, seg.a)
        } else {
            (seg.a, seg.b)
        };
        SweepSeg {
            seg,
            color,
            left,
            right,
        }
    }

    /// y-coordinate of the segment at sweep position `x` (clamped into the
    /// segment's x-range; vertical segments answer with their lower y).
    fn y_at(&self, x: f64) -> f64 {
        let (l, r) = (self.left, self.right);
        if r.x == l.x {
            return l.y.min(r.y);
        }
        let t = ((x - l.x) / (r.x - l.x)).clamp(0.0, 1.0);
        l.y + t * (r.y - l.y)
    }

    /// Slope used to break ties when two segments pass through the same
    /// point on the sweep line; vertical segments sort above everything.
    fn slope(&self) -> f64 {
        let dx = self.right.x - self.left.x;
        if dx == 0.0 {
            f64::INFINITY
        } else {
            (self.right.y - self.left.y) / dx
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Insert,
    Remove,
}

/// Detects a red/blue intersection with the balanced-status plane sweep.
///
/// Closed semantics: endpoint touches and collinear overlaps count. See the
/// module docs for the simple-boundary precondition.
pub fn tree_sweep_intersects(red: &[Segment], blue: &[Segment]) -> bool {
    tree_sweep_intersects_stats(red, blue, &mut SweepStats::default())
}

/// [`tree_sweep_intersects`] with work counters.
pub fn tree_sweep_intersects_stats(
    red: &[Segment],
    blue: &[Segment],
    stats: &mut SweepStats,
) -> bool {
    if red.is_empty() || blue.is_empty() {
        return false;
    }
    let mut segs: Vec<SweepSeg> = Vec::with_capacity(red.len() + blue.len());
    segs.extend(red.iter().map(|&s| SweepSeg::new(s, Color::Red)));
    segs.extend(blue.iter().map(|&s| SweepSeg::new(s, Color::Blue)));

    // Events: (x, y, kind, segment id). Insert sorts before Remove at equal
    // coordinates so that segments meeting end-to-start coexist in the
    // status and endpoint touches are detected.
    let mut events: Vec<(f64, f64, EventKind, u32)> = Vec::with_capacity(segs.len() * 2);
    for (i, s) in segs.iter().enumerate() {
        events.push((s.left.x, s.left.y, EventKind::Insert, i as u32));
        events.push((s.right.x, s.right.y, EventKind::Remove, i as u32));
    }
    events.sort_unstable_by(|a, b| {
        a.0.total_cmp(&b.0)
            .then_with(|| {
                let ka = if a.2 == EventKind::Insert { 0 } else { 1 };
                let kb = if b.2 == EventKind::Insert { 0 } else { 1 };
                ka.cmp(&kb)
            })
            .then_with(|| a.1.total_cmp(&b.1))
    });

    // Status: segment ids ordered bottom-to-top at the current sweep x.
    let mut status: Vec<u32> = Vec::new();

    let crosses = |a: u32, b: u32, stats: &mut SweepStats| -> bool {
        let sa = &segs[a as usize];
        let sb = &segs[b as usize];
        if sa.color == sb.color {
            return false;
        }
        stats.pair_tests += 1;
        sa.seg.intersects(&sb.seg)
    };

    for &(x, _, kind, id) in &events {
        stats.events += 1;
        match kind {
            EventKind::Insert => {
                let s = &segs[id as usize];
                let key = (s.y_at(x), s.slope());
                // Find insertion position by the (y, slope) order at x.
                let pos = status.partition_point(|&other| {
                    let o = &segs[other as usize];
                    let okey = (o.y_at(x), o.slope());
                    okey.0 < key.0 || (okey.0 == key.0 && okey.1 < key.1)
                });
                if pos > 0 && crosses(status[pos - 1], id, stats) {
                    return true;
                }
                if pos < status.len() && crosses(status[pos], id, stats) {
                    return true;
                }
                status.insert(pos, id);
            }
            EventKind::Remove => {
                // Locate by identity (the order may have drifted after the
                // segment's span, so a comparator search is not reliable).
                if let Some(pos) = status.iter().position(|&s| s == id) {
                    status.remove(pos);
                    if pos > 0 && pos < status.len() && crosses(status[pos - 1], status[pos], stats)
                    {
                        return true;
                    }
                }
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Simplicity check (paper footnote 1).
// ---------------------------------------------------------------------------

/// True when the polygon is *simple*: no two non-adjacent edges touch, and
/// adjacent edges share exactly their common vertex (no spikes / collinear
/// backtracking). Runs an exhaustive forward sweep over the boundary edges.
pub fn polygon_is_simple(poly: &Polygon) -> bool {
    let edges: Vec<Segment> = poly.edges().collect();
    let n = edges.len();
    // Sort indices by xmin and sweep.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        let ax = edges[a as usize].a.x.min(edges[a as usize].b.x);
        let bx = edges[b as usize].a.x.min(edges[b as usize].b.x);
        ax.total_cmp(&bx)
    });
    let mut active: Vec<(f64, u32)> = Vec::new(); // (xmax, edge index)
    for &i in &order {
        let e = &edges[i as usize];
        let exmin = e.a.x.min(e.b.x);
        active.retain(|&(xmax, _)| xmax >= exmin);
        for &(_, j) in active.iter() {
            if edges_violate_simplicity(&edges, n, i as usize, j as usize) {
                return false;
            }
        }
        active.push((e.a.x.max(e.b.x), i));
    }
    true
}

/// Whether edges `i` and `j` of an `n`-edge boundary violate simplicity.
fn edges_violate_simplicity(edges: &[Segment], n: usize, i: usize, j: usize) -> bool {
    let (i, j) = if i < j { (i, j) } else { (j, i) };
    let ei = &edges[i];
    let ej = &edges[j];
    let adjacent_fwd = j == i + 1;
    let adjacent_wrap = i == 0 && j == n - 1;
    if adjacent_fwd || adjacent_wrap {
        // Shared vertex is legal; anything more (spike / overlap) is not.
        // For forward adjacency the shared vertex is ei.b == ej.a; for the
        // wrap case it is ej.b == ei.a.
        let (shared, far_i, far_j) = if adjacent_fwd {
            (ei.b, ei.a, ej.b)
        } else {
            (ei.a, ei.b, ej.a)
        };
        debug_assert_eq!(shared, if adjacent_fwd { ej.a } else { ej.b });
        // The far endpoint of one edge must not lie on the other edge, which
        // covers both collinear spikes and zero-angle folds.
        on_segment(ei.a, ei.b, far_j) || on_segment(ej.a, ej.b, far_i)
    } else {
        ei.intersects(ej)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    fn square_edges(x: f64, y: f64, s: f64) -> Vec<Segment> {
        Polygon::from_coords(&[(x, y), (x + s, y), (x + s, y + s), (x, y + s)])
            .edges()
            .collect()
    }

    #[test]
    fn both_sweeps_detect_crossing_squares() {
        let a = square_edges(0.0, 0.0, 2.0);
        let b = square_edges(1.0, 1.0, 2.0);
        assert!(forward_sweep_intersects(&a, &b));
        assert!(tree_sweep_intersects(&a, &b));
    }

    #[test]
    fn both_sweeps_reject_disjoint_squares() {
        let a = square_edges(0.0, 0.0, 1.0);
        let b = square_edges(5.0, 5.0, 1.0);
        assert!(!forward_sweep_intersects(&a, &b));
        assert!(!tree_sweep_intersects(&a, &b));
    }

    #[test]
    fn nested_boundaries_do_not_intersect() {
        // Containment without boundary contact: boundaries are disjoint.
        let outer = square_edges(0.0, 0.0, 10.0);
        let inner = square_edges(4.0, 4.0, 1.0);
        assert!(!forward_sweep_intersects(&outer, &inner));
        assert!(!tree_sweep_intersects(&outer, &inner));
    }

    #[test]
    fn touching_corner_counts() {
        let a = square_edges(0.0, 0.0, 1.0);
        let b = square_edges(1.0, 1.0, 1.0); // shares corner (1,1)
        assert!(forward_sweep_intersects(&a, &b));
        assert!(tree_sweep_intersects(&a, &b));
    }

    #[test]
    fn touching_edge_counts() {
        let a = square_edges(0.0, 0.0, 1.0);
        let b = square_edges(1.0, 0.0, 1.0); // shares the x = 1 edge
        assert!(forward_sweep_intersects(&a, &b));
        assert!(tree_sweep_intersects(&a, &b));
    }

    #[test]
    fn single_crossing_pair() {
        let a = vec![seg(0.0, 0.0, 10.0, 10.0)];
        let b = vec![seg(0.0, 10.0, 10.0, 0.0)];
        assert!(forward_sweep_intersects(&a, &b));
        assert!(tree_sweep_intersects(&a, &b));
    }

    #[test]
    fn vertical_segments() {
        let a = vec![seg(5.0, 0.0, 5.0, 10.0)];
        let b = vec![seg(0.0, 5.0, 10.0, 5.0)];
        assert!(tree_sweep_intersects(&a, &b));
        let c = vec![seg(11.0, 0.0, 11.0, 10.0)];
        assert!(!tree_sweep_intersects(&b, &c));
    }

    #[test]
    fn empty_inputs() {
        let a = square_edges(0.0, 0.0, 1.0);
        assert!(!forward_sweep_intersects(&a, &[]));
        assert!(!forward_sweep_intersects(&[], &a));
        assert!(!tree_sweep_intersects(&[], &[]));
    }

    #[test]
    fn stats_count_work() {
        let a = square_edges(0.0, 0.0, 2.0);
        let b = square_edges(5.0, 0.0, 2.0);
        let mut st = SweepStats::default();
        assert!(!forward_sweep_intersects_stats(&a, &b, &mut st));
        assert_eq!(st.events, 8);
        let mut st2 = SweepStats::default();
        assert!(!tree_sweep_intersects_stats(&a, &b, &mut st2));
        assert_eq!(st2.events, 16); // insert + remove per segment
    }

    #[test]
    fn sweeps_agree_on_comb_shapes() {
        // Interleaved combs exercise many events without intersections.
        let mut red = Vec::new();
        let mut blue = Vec::new();
        for i in 0..10 {
            let x = i as f64;
            red.push(seg(x, 0.0, x + 0.4, 10.0));
            blue.push(seg(x + 0.5, 0.0, x + 0.9, 10.0));
        }
        assert!(!forward_sweep_intersects(&red, &blue));
        assert!(!tree_sweep_intersects(&red, &blue));
        // Now tilt one blue tooth so it crosses a red one.
        blue[4] = seg(4.5, 0.0, 3.9, 10.0);
        assert!(forward_sweep_intersects(&red, &blue));
        assert!(tree_sweep_intersects(&red, &blue));
    }

    #[test]
    fn simple_polygon_checks() {
        assert!(polygon_is_simple(&Polygon::from_coords(&[
            (0.0, 0.0),
            (4.0, 0.0),
            (4.0, 4.0),
            (0.0, 4.0)
        ])));
        // Bowtie.
        assert!(!polygon_is_simple(&Polygon::from_coords(&[
            (0.0, 0.0),
            (2.0, 2.0),
            (2.0, 0.0),
            (0.0, 2.0)
        ])));
        // Spike: collinear backtracking at vertex 2.
        assert!(!polygon_is_simple(&Polygon::from_coords(&[
            (0.0, 0.0),
            (4.0, 0.0),
            (2.0, 0.0),
            (2.0, 3.0)
        ])));
        // Vertex of degree > 2: boundary pinches at (2,2).
        assert!(!polygon_is_simple(&Polygon::from_coords(&[
            (0.0, 0.0),
            (4.0, 0.0),
            (2.0, 2.0),
            (4.0, 4.0),
            (0.0, 4.0),
            (2.0, 2.0),
        ])));
    }

    #[test]
    fn concave_simple_polygon_passes() {
        let star = Polygon::from_coords(&[
            (0.0, 3.0),
            (1.0, 1.0),
            (3.0, 0.0),
            (1.0, -1.0),
            (0.0, -3.0),
            (-1.0, -1.0),
            (-3.0, 0.0),
            (-1.0, 1.0),
        ]);
        assert!(polygon_is_simple(&star));
    }
}
