//! Simple polygons — the data type of every evaluation dataset in the paper.
//!
//! A [`Polygon`] is a closed boundary given by its vertices in order (either
//! winding); the edge from the last vertex back to the first is implicit.
//! Polygons may be concave — Fig. 1 of the paper shows how irregular real
//! land-cover shapes are — and the hardware path never needs them convex
//! because it renders boundaries, not filled interiors (§3.1).

use crate::point::Point;
use crate::rect::Rect;
use crate::segment::Segment;
use std::fmt;

/// Errors raised by [`Polygon::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolygonError {
    /// Fewer than three vertices.
    TooFewVertices(usize),
    /// Two consecutive vertices coincide, producing a zero-length edge.
    DuplicateConsecutiveVertex(usize),
    /// A vertex has a non-finite coordinate.
    NonFiniteVertex(usize),
}

impl fmt::Display for PolygonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolygonError::TooFewVertices(n) => {
                write!(f, "polygon needs at least 3 vertices, got {n}")
            }
            PolygonError::DuplicateConsecutiveVertex(i) => {
                write!(f, "vertices {i} and {} coincide", i + 1)
            }
            PolygonError::NonFiniteVertex(i) => write!(f, "vertex {i} is not finite"),
        }
    }
}

impl std::error::Error for PolygonError {}

/// A simple polygon with `f64` vertices and a cached MBR.
///
/// The MBR is computed once at construction: the filtering step touches MBRs
/// orders of magnitude more often than actual geometry, so it must be free
/// to read.
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    vertices: Vec<Point>,
    mbr: Rect,
}

impl Polygon {
    /// Builds a polygon, validating the structural invariants.
    ///
    /// A trailing vertex equal to the first (the WKT closing convention) is
    /// removed automatically.
    pub fn new(mut vertices: Vec<Point>) -> Result<Self, PolygonError> {
        if vertices.len() >= 2 && vertices.first() == vertices.last() {
            vertices.pop();
        }
        if vertices.len() < 3 {
            return Err(PolygonError::TooFewVertices(vertices.len()));
        }
        for (i, v) in vertices.iter().enumerate() {
            if !v.is_finite() {
                return Err(PolygonError::NonFiniteVertex(i));
            }
        }
        for i in 0..vertices.len() {
            if vertices[i] == vertices[(i + 1) % vertices.len()] {
                return Err(PolygonError::DuplicateConsecutiveVertex(i));
            }
        }
        let mbr = Rect::of_points(&vertices);
        Ok(Polygon { vertices, mbr })
    }

    /// Convenience constructor from coordinate tuples; panics on invalid
    /// input (intended for tests and examples).
    pub fn from_coords(coords: &[(f64, f64)]) -> Self {
        Polygon::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect())
            .expect("invalid polygon literal")
    }

    /// The vertices in order (without the closing duplicate).
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices — the paper's measure of geometry complexity
    /// (Table 2) and the input to the `sw_threshold` heuristic (§4.3).
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// The cached minimum bounding rectangle.
    #[inline]
    pub fn mbr(&self) -> Rect {
        self.mbr
    }

    /// Iterates over the `n` boundary edges, including the closing edge.
    #[inline]
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// The `i`-th edge (`i < vertex_count()`).
    #[inline]
    pub fn edge(&self, i: usize) -> Segment {
        let n = self.vertices.len();
        Segment::new(self.vertices[i], self.vertices[(i + 1) % n])
    }

    /// Signed area via the shoelace formula: positive for counter-clockwise
    /// winding.
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            acc += self.vertices[i].cross(self.vertices[(i + 1) % n]);
        }
        acc / 2.0
    }

    /// Absolute enclosed area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// True when the vertices wind counter-clockwise.
    #[inline]
    pub fn is_ccw(&self) -> bool {
        self.signed_area() > 0.0
    }

    /// Returns the polygon with counter-clockwise winding (reversing the
    /// vertex order if needed). Several algorithms assume a known winding.
    pub fn ccw(mut self) -> Self {
        if !self.is_ccw() {
            self.vertices.reverse();
        }
        self
    }

    /// Total boundary length.
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.len()).sum()
    }

    /// Area centroid (assumes non-zero area).
    pub fn centroid(&self) -> Point {
        let n = self.vertices.len();
        let mut cx = 0.0;
        let mut cy = 0.0;
        let mut a2 = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.cross(q);
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
            a2 += w;
        }
        if a2 == 0.0 {
            // Degenerate (zero-area) polygon: fall back to the vertex mean.
            let sum = self.vertices.iter().fold(Point::ORIGIN, |s, &v| s + v);
            return sum / n as f64;
        }
        Point::new(cx / (3.0 * a2), cy / (3.0 * a2))
    }

    /// True when no two non-adjacent edges intersect and no adjacent edges
    /// overlap — i.e. the polygon is *simple* in the paper's footnote-1
    /// sense. Runs the Shamos–Hoey sweep from [`crate::sweep`].
    pub fn is_simple(&self) -> bool {
        crate::sweep::polygon_is_simple(self)
    }

    /// The polygon translated by `(dx, dy)`.
    pub fn translated(&self, dx: f64, dy: f64) -> Polygon {
        let d = Point::new(dx, dy);
        let vertices: Vec<Point> = self.vertices.iter().map(|&v| v + d).collect();
        let mbr = Rect::new(
            self.mbr.xmin + dx,
            self.mbr.ymin + dy,
            self.mbr.xmax + dx,
            self.mbr.ymax + dy,
        );
        Polygon { vertices, mbr }
    }

    /// The polygon scaled by `s` about a fixed point `c`.
    pub fn scaled_about(&self, c: Point, s: f64) -> Polygon {
        let vertices: Vec<Point> = self.vertices.iter().map(|&v| c + (v - c) * s).collect();
        let mbr = Rect::of_points(&vertices);
        Polygon { vertices, mbr }
    }

    /// Returns the boundary point at normalized arc length `t ∈ [0, 1)`;
    /// useful for sampling-based tests.
    pub fn boundary_point(&self, t: f64) -> Point {
        let total = self.perimeter();
        let mut remaining = (t.rem_euclid(1.0)) * total;
        for e in self.edges() {
            let l = e.len();
            if remaining <= l {
                return e.a.lerp(e.b, if l == 0.0 { 0.0 } else { remaining / l });
            }
            remaining -= l;
        }
        self.vertices[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::from_coords(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)])
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]),
            Err(PolygonError::TooFewVertices(2))
        ));
        assert!(matches!(
            Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(0.0, 0.0),
                Point::new(1.0, 1.0),
            ]),
            Err(PolygonError::DuplicateConsecutiveVertex(0))
        ));
        assert!(matches!(
            Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(f64::NAN, 0.0),
                Point::new(1.0, 1.0),
            ]),
            Err(PolygonError::NonFiniteVertex(1))
        ));
    }

    #[test]
    fn closing_vertex_is_dropped() {
        let p = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 0.0), // WKT-style closure
        ])
        .unwrap();
        assert_eq!(p.vertex_count(), 3);
    }

    #[test]
    fn area_and_winding() {
        let sq = unit_square();
        assert_eq!(sq.signed_area(), 1.0);
        assert!(sq.is_ccw());
        let cw = Polygon::from_coords(&[(0.0, 0.0), (0.0, 1.0), (1.0, 1.0), (1.0, 0.0)]);
        assert_eq!(cw.signed_area(), -1.0);
        assert!(!cw.is_ccw());
        assert_eq!(cw.area(), 1.0);
        assert!(cw.ccw().is_ccw());
    }

    #[test]
    fn mbr_cached() {
        let p = Polygon::from_coords(&[(1.0, 2.0), (5.0, 1.0), (3.0, 7.0)]);
        assert_eq!(p.mbr(), Rect::new(1.0, 1.0, 5.0, 7.0));
    }

    #[test]
    fn edges_close_the_boundary() {
        let sq = unit_square();
        let edges: Vec<Segment> = sq.edges().collect();
        assert_eq!(edges.len(), 4);
        assert_eq!(edges[3].b, edges[0].a, "last edge returns to first vertex");
        assert_eq!(sq.edge(3), edges[3]);
    }

    #[test]
    fn perimeter_and_centroid() {
        let sq = unit_square();
        assert_eq!(sq.perimeter(), 4.0);
        let c = sq.centroid();
        assert!((c.x - 0.5).abs() < 1e-12 && (c.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn centroid_is_winding_invariant() {
        let ccw = Polygon::from_coords(&[(0.0, 0.0), (4.0, 0.0), (4.0, 2.0), (0.0, 2.0)]);
        let cw = Polygon::from_coords(&[(0.0, 0.0), (0.0, 2.0), (4.0, 2.0), (4.0, 0.0)]);
        assert!(ccw.centroid().dist(cw.centroid()) < 1e-12);
    }

    #[test]
    fn simplicity() {
        assert!(unit_square().is_simple());
        // Bowtie: self-intersecting.
        let bowtie = Polygon::from_coords(&[(0.0, 0.0), (2.0, 2.0), (2.0, 0.0), (0.0, 2.0)]);
        assert!(!bowtie.is_simple());
    }

    #[test]
    fn concave_polygon_simple() {
        // An L-shape is concave but simple.
        let l = Polygon::from_coords(&[
            (0.0, 0.0),
            (3.0, 0.0),
            (3.0, 1.0),
            (1.0, 1.0),
            (1.0, 3.0),
            (0.0, 3.0),
        ]);
        assert!(l.is_simple());
        assert_eq!(l.area(), 5.0);
    }

    #[test]
    fn transforms() {
        let sq = unit_square();
        let t = sq.translated(2.0, 3.0);
        assert_eq!(t.mbr(), Rect::new(2.0, 3.0, 3.0, 4.0));
        let s = sq.scaled_about(Point::new(0.0, 0.0), 2.0);
        assert_eq!(s.mbr(), Rect::new(0.0, 0.0, 2.0, 2.0));
        assert_eq!(s.area(), 4.0);
    }

    #[test]
    fn boundary_point_walks_edges() {
        let sq = unit_square();
        assert_eq!(sq.boundary_point(0.0), Point::new(0.0, 0.0));
        assert_eq!(sq.boundary_point(0.25), Point::new(1.0, 0.0));
        assert_eq!(sq.boundary_point(0.5), Point::new(1.0, 1.0));
        let p = sq.boundary_point(0.125);
        assert!((p.x - 0.5).abs() < 1e-12 && p.y == 0.0);
    }
}
