//! Ear-clipping triangulation.
//!
//! The paper's §3 observes that graphics hardware only renders convex
//! primitives, so the *filled-polygon* strategy (Hoff et al.) must
//! triangulate concave polygons in software first — "much more expensive
//! than hardware operations" — which is exactly why Algorithm 3.1 renders
//! boundaries instead. We implement triangulation anyway to (a) power the
//! filled-polygon ablation in `hwa-core` and (b) quantify that cost in the
//! ablation bench.

use crate::point::Point;
use crate::polygon::Polygon;
use crate::predicates::orient2d;

/// A triangle as three vertex indices into the source polygon.
pub type Triangle = [usize; 3];

/// Triangulates a simple polygon by ear clipping in O(n²) worst case.
///
/// Returns `n - 2` triangles for an `n`-vertex simple polygon. Returns
/// `None` when no ear can be found (non-simple input).
pub fn triangulate(poly: &Polygon) -> Option<Vec<Triangle>> {
    let vs = poly.vertices();
    let n = vs.len();
    if n == 3 {
        return Some(vec![[0, 1, 2]]);
    }
    // Work on a CCW copy of the index list.
    let ccw = poly.is_ccw();
    let mut idx: Vec<usize> = if ccw {
        (0..n).collect()
    } else {
        (0..n).rev().collect()
    };
    let mut out: Vec<Triangle> = Vec::with_capacity(n - 2);

    let mut guard = 0usize;
    while idx.len() > 3 {
        let m = idx.len();
        let mut clipped = false;
        for i in 0..m {
            let ia = idx[(i + m - 1) % m];
            let ib = idx[i];
            let ic = idx[(i + 1) % m];
            if is_ear(vs, &idx, ia, ib, ic) {
                out.push(order_triangle(ia, ib, ic, ccw));
                idx.remove(i);
                clipped = true;
                break;
            }
        }
        if !clipped {
            return None; // non-simple polygon
        }
        guard += 1;
        if guard > n {
            return None;
        }
    }
    out.push(order_triangle(idx[0], idx[1], idx[2], ccw));
    Some(out)
}

/// Restores the source winding in the emitted triangle.
fn order_triangle(a: usize, b: usize, c: usize, ccw: bool) -> Triangle {
    if ccw {
        [a, b, c]
    } else {
        [c, b, a]
    }
}

/// An ear at `b` (between `a` and `c`, CCW order): the corner is convex and
/// no other polygon vertex lies inside triangle `abc`.
fn is_ear(vs: &[Point], idx: &[usize], ia: usize, ib: usize, ic: usize) -> bool {
    let (a, b, c) = (vs[ia], vs[ib], vs[ic]);
    if orient2d(a, b, c) <= 0.0 {
        return false; // reflex or collinear corner
    }
    for &j in idx {
        if j == ia || j == ib || j == ic {
            continue;
        }
        if point_in_triangle(vs[j], a, b, c) {
            return false;
        }
    }
    true
}

/// Closed point-in-triangle test for a CCW triangle.
fn point_in_triangle(p: Point, a: Point, b: Point, c: Point) -> bool {
    orient2d(a, b, p) >= 0.0 && orient2d(b, c, p) >= 0.0 && orient2d(c, a, p) >= 0.0
}

/// Sum of triangle areas — used to validate a triangulation.
pub fn triangulation_area(poly: &Polygon, tris: &[Triangle]) -> f64 {
    let vs = poly.vertices();
    tris.iter()
        .map(|t| orient2d(vs[t[0]], vs[t[1]], vs[t[2]]).abs() / 2.0)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_is_itself() {
        let t = Polygon::from_coords(&[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]);
        assert_eq!(triangulate(&t).unwrap(), vec![[0, 1, 2]]);
    }

    #[test]
    fn square_gives_two_triangles() {
        let sq = Polygon::from_coords(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]);
        let tris = triangulate(&sq).unwrap();
        assert_eq!(tris.len(), 2);
        assert!((triangulation_area(&sq, &tris) - sq.area()).abs() < 1e-12);
    }

    #[test]
    fn concave_l_shape() {
        let l = Polygon::from_coords(&[
            (0.0, 0.0),
            (3.0, 0.0),
            (3.0, 1.0),
            (1.0, 1.0),
            (1.0, 3.0),
            (0.0, 3.0),
        ]);
        let tris = triangulate(&l).unwrap();
        assert_eq!(tris.len(), 4, "n - 2 triangles");
        assert!((triangulation_area(&l, &tris) - l.area()).abs() < 1e-12);
    }

    #[test]
    fn clockwise_input_works() {
        let cw = Polygon::from_coords(&[(0.0, 0.0), (0.0, 1.0), (1.0, 1.0), (1.0, 0.0)]);
        let tris = triangulate(&cw).unwrap();
        assert_eq!(tris.len(), 2);
        assert!((triangulation_area(&cw, &tris) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_polygon() {
        // 8-point concave star.
        let star = Polygon::from_coords(&[
            (0.0, 3.0),
            (1.0, 1.0),
            (3.0, 0.0),
            (1.0, -1.0),
            (0.0, -3.0),
            (-1.0, -1.0),
            (-3.0, 0.0),
            (-1.0, 1.0),
        ]);
        let tris = triangulate(&star).unwrap();
        assert_eq!(tris.len(), 6);
        assert!((triangulation_area(&star, &tris) - star.area()).abs() < 1e-10);
    }

    #[test]
    fn triangle_count_is_always_n_minus_2() {
        // Spiral-ish comb polygon with many reflex vertices.
        let mut coords = Vec::new();
        for i in 0..6 {
            let x = i as f64 * 2.0;
            coords.push((x, 0.0));
            coords.push((x + 1.0, 3.0));
        }
        coords.push((11.0, -2.0));
        coords.push((0.0, -2.0));
        let comb = Polygon::from_coords(&coords);
        assert!(comb.is_simple());
        let tris = triangulate(&comb).unwrap();
        assert_eq!(tris.len(), comb.vertex_count() - 2);
        assert!((triangulation_area(&comb, &tris) - comb.area()).abs() < 1e-10);
    }
}
