//! Axis-aligned rectangles — the minimum bounding rectangles (MBRs) that
//! drive the filtering step (§1) and the window projections (§3.2).

use crate::point::Point;

/// A closed axis-aligned rectangle `[xmin, xmax] × [ymin, ymax]`.
///
/// Degenerate rectangles (zero width and/or height) are valid: the MBR of a
/// horizontal segment has zero height, and the paper's datasets contain
/// 3-vertex slivers. An *empty* rectangle (used as the identity for
/// [`Rect::union`]) has `xmin > xmax`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    pub xmin: f64,
    pub ymin: f64,
    pub xmax: f64,
    pub ymax: f64,
}

impl Rect {
    /// A rectangle from its corner coordinates. Callers must pass
    /// `xmin <= xmax` and `ymin <= ymax` unless constructing a sentinel.
    #[inline]
    pub const fn new(xmin: f64, ymin: f64, xmax: f64, ymax: f64) -> Self {
        Rect {
            xmin,
            ymin,
            xmax,
            ymax,
        }
    }

    /// The empty rectangle: identity element for [`Rect::union`], intersects
    /// nothing, contains nothing.
    pub const EMPTY: Rect = Rect {
        xmin: f64::INFINITY,
        ymin: f64::INFINITY,
        xmax: f64::NEG_INFINITY,
        ymax: f64::NEG_INFINITY,
    };

    /// The MBR of two points (in any order).
    #[inline]
    pub fn of_corners(a: Point, b: Point) -> Self {
        Rect {
            xmin: a.x.min(b.x),
            ymin: a.y.min(b.y),
            xmax: a.x.max(b.x),
            ymax: a.y.max(b.y),
        }
    }

    /// The MBR of a non-empty point set; [`Rect::EMPTY`] for an empty one.
    pub fn of_points(points: &[Point]) -> Self {
        points.iter().fold(Rect::EMPTY, |r, &p| r.expand_to(p))
    }

    /// True when `xmin > xmax || ymin > ymax` (no points inside).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xmin > self.xmax || self.ymin > self.ymax
    }

    #[inline]
    pub fn width(&self) -> f64 {
        (self.xmax - self.xmin).max(0.0)
    }

    #[inline]
    pub fn height(&self) -> f64 {
        (self.ymax - self.ymin).max(0.0)
    }

    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half the perimeter; the R-tree quadratic split uses it as a measure.
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)
    }

    /// Closed containment of a point (boundary counts as inside).
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.xmin && p.x <= self.xmax && p.y >= self.ymin && p.y <= self.ymax
    }

    /// True when `other` lies entirely inside `self` (closed semantics).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        !other.is_empty()
            && other.xmin >= self.xmin
            && other.xmax <= self.xmax
            && other.ymin >= self.ymin
            && other.ymax <= self.ymax
    }

    /// Closed intersection test: touching boundaries intersect. This is the
    /// MBR-filter predicate of the paper's Fig. 8 pipeline.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.xmin <= other.xmax
            && other.xmin <= self.xmax
            && self.ymin <= other.ymax
            && other.ymin <= self.ymax
    }

    /// The intersection region of two rectangles, or `None` when disjoint.
    ///
    /// §3.2: for the hardware intersection test, *this* region is projected
    /// onto the rendering window, maximizing resolution utilization.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let r = Rect {
            xmin: self.xmin.max(other.xmin),
            ymin: self.ymin.max(other.ymin),
            xmax: self.xmax.min(other.xmax),
            ymax: self.ymax.min(other.ymax),
        };
        if r.is_empty() {
            None
        } else {
            Some(r)
        }
    }

    /// The smallest rectangle containing both operands.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            xmin: self.xmin.min(other.xmin),
            ymin: self.ymin.min(other.ymin),
            xmax: self.xmax.max(other.xmax),
            ymax: self.ymax.max(other.ymax),
        }
    }

    /// The smallest rectangle containing `self` and `p`.
    #[inline]
    pub fn expand_to(&self, p: Point) -> Rect {
        Rect {
            xmin: self.xmin.min(p.x),
            ymin: self.ymin.min(p.y),
            xmax: self.xmax.max(p.x),
            ymax: self.ymax.max(p.y),
        }
    }

    /// The rectangle grown by `d` in every direction (Minkowski sum with a
    /// `2d × 2d` square). Used by the distance-test projection (§3.2) and the
    /// extended-MBR `minDist` optimization (§4.1.1). `d` must be ≥ 0.
    #[inline]
    pub fn expanded(&self, d: f64) -> Rect {
        debug_assert!(d >= 0.0);
        Rect {
            xmin: self.xmin - d,
            ymin: self.ymin - d,
            xmax: self.xmax + d,
            ymax: self.ymax + d,
        }
    }

    /// Minimum Euclidean distance between two rectangles (0 when they
    /// intersect). This is the lower bound used by the MBR filter for
    /// within-distance joins: "the distance between two MBRs is a lower
    /// bound of the distance between two objects" (§4.1.1).
    #[inline]
    pub fn min_dist(&self, other: &Rect) -> f64 {
        let dx = (other.xmin - self.xmax)
            .max(self.xmin - other.xmax)
            .max(0.0);
        let dy = (other.ymin - self.ymax)
            .max(self.ymin - other.ymax)
            .max(0.0);
        (dx * dx + dy * dy).sqrt()
    }

    /// Maximum Euclidean distance between any point of `self` and any point
    /// of `other` (the diameter bound used by the 0-object filter analysis).
    #[inline]
    pub fn max_dist(&self, other: &Rect) -> f64 {
        let dx = (self.xmax - other.xmin)
            .abs()
            .max((other.xmax - self.xmin).abs());
        let dy = (self.ymax - other.ymin)
            .abs()
            .max((other.ymax - self.ymin).abs());
        (dx * dx + dy * dy).sqrt()
    }

    /// Minimum distance from a point to the rectangle (0 when inside).
    #[inline]
    pub fn min_dist_point(&self, p: Point) -> f64 {
        let dx = (self.xmin - p.x).max(p.x - self.xmax).max(0.0);
        let dy = (self.ymin - p.y).max(p.y - self.ymax).max(0.0);
        (dx * dx + dy * dy).sqrt()
    }

    /// The four corners in counter-clockwise order starting at
    /// `(xmin, ymin)`.
    #[inline]
    pub fn corners(&self) -> [Point; 4] {
        [
            Point::new(self.xmin, self.ymin),
            Point::new(self.xmax, self.ymin),
            Point::new(self.xmax, self.ymax),
            Point::new(self.xmin, self.ymax),
        ]
    }

    /// The four sides in counter-clockwise order: bottom, right, top, left.
    /// Each side is `(corner_i, corner_{i+1})`; the 0-object filter reasons
    /// about objects touching all four sides of their MBR.
    #[inline]
    pub fn sides(&self) -> [(Point, Point); 4] {
        let c = self.corners();
        [(c[0], c[1]), (c[1], c[2]), (c[2], c[3]), (c[3], c[0])]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: f64, b: f64, c: f64, d: f64) -> Rect {
        Rect::new(a, b, c, d)
    }

    #[test]
    fn empty_identity() {
        assert!(Rect::EMPTY.is_empty());
        let a = r(0.0, 0.0, 1.0, 1.0);
        assert_eq!(Rect::EMPTY.union(&a), a);
        assert!(!Rect::EMPTY.intersects(&a));
        assert!(Rect::EMPTY.intersection(&a).is_none());
    }

    #[test]
    fn of_points_matches_manual() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 3.0),
            Point::new(4.0, -1.0),
        ];
        assert_eq!(Rect::of_points(&pts), r(-2.0, -1.0, 4.0, 5.0));
        assert!(Rect::of_points(&[]).is_empty());
    }

    #[test]
    fn measures() {
        let a = r(0.0, 0.0, 4.0, 3.0);
        assert_eq!(a.width(), 4.0);
        assert_eq!(a.height(), 3.0);
        assert_eq!(a.area(), 12.0);
        assert_eq!(a.margin(), 7.0);
        assert_eq!(a.center(), Point::new(2.0, 1.5));
    }

    #[test]
    fn intersection_and_touching() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        let c = r(2.0, 0.0, 4.0, 2.0); // shares the x = 2 edge with a
        let d = r(5.0, 5.0, 6.0, 6.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Some(r(1.0, 1.0, 2.0, 2.0)));
        assert!(a.intersects(&c), "touching rectangles intersect (closed)");
        assert!(!a.intersects(&d));
        assert!(a.intersection(&d).is_none());
    }

    #[test]
    fn containment() {
        let outer = r(0.0, 0.0, 10.0, 10.0);
        let inner = r(2.0, 2.0, 3.0, 3.0);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_rect(&outer), "containment is reflexive");
        assert!(
            outer.contains_point(Point::new(0.0, 0.0)),
            "boundary is inside"
        );
        assert!(!outer.contains_point(Point::new(-0.1, 5.0)));
    }

    #[test]
    fn expansion() {
        let a = r(1.0, 1.0, 2.0, 2.0);
        assert_eq!(a.expanded(0.5), r(0.5, 0.5, 2.5, 2.5));
        assert_eq!(a.expand_to(Point::new(5.0, 0.0)), r(1.0, 0.0, 5.0, 2.0));
    }

    #[test]
    fn min_dist_disjoint_and_overlapping() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(4.0, 5.0, 6.0, 7.0); // dx = 3, dy = 4
        assert_eq!(a.min_dist(&b), 5.0);
        assert_eq!(b.min_dist(&a), 5.0);
        let c = r(0.5, 0.5, 2.0, 2.0);
        assert_eq!(a.min_dist(&c), 0.0);
        // Axis-aligned gap only in x.
        let d = r(3.0, 0.0, 4.0, 1.0);
        assert_eq!(a.min_dist(&d), 2.0);
    }

    #[test]
    fn max_dist_bounds_min_dist() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, 0.0, 3.0, 1.0);
        // Farthest corners: (0,0)-(3,1) or (0,1)-(3,0): sqrt(9+1)
        assert!((a.max_dist(&b) - 10.0f64.sqrt()).abs() < 1e-12);
        assert!(a.max_dist(&b) >= a.min_dist(&b));
    }

    #[test]
    fn min_dist_point_cases() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.min_dist_point(Point::new(1.0, 1.0)), 0.0); // inside
        assert_eq!(a.min_dist_point(Point::new(3.0, 1.0)), 1.0); // right
        assert_eq!(a.min_dist_point(Point::new(5.0, 6.0)), 5.0); // corner 3-4-5
    }

    #[test]
    fn corners_and_sides_are_ccw() {
        let a = r(0.0, 0.0, 1.0, 2.0);
        let c = a.corners();
        assert_eq!(c[0], Point::new(0.0, 0.0));
        assert_eq!(c[2], Point::new(1.0, 2.0));
        // Shoelace over corners must be positive (CCW).
        let mut area2 = 0.0;
        for i in 0..4 {
            area2 += c[i].cross(c[(i + 1) % 4]);
        }
        assert!(area2 > 0.0);
        assert_eq!(a.sides()[0], (c[0], c[1]));
    }

    #[test]
    fn degenerate_rect_is_not_empty() {
        let line = r(0.0, 1.0, 5.0, 1.0); // zero height
        assert!(!line.is_empty());
        assert_eq!(line.area(), 0.0);
        assert!(line.intersects(&r(2.0, 0.0, 3.0, 2.0)));
    }
}
