//! The software polygon-intersection test (§3.1): point-in-polygon plus
//! plane-sweep segment intersection, with the *restricted search space*
//! optimization of Brinkhoff et al. (§4.1.1, Fig. 9(b)).

use crate::pip::point_in_polygon;
use crate::polygon::Polygon;
use crate::rect::Rect;
use crate::segment::Segment;
use crate::sweep::{forward_sweep_intersects_stats, tree_sweep_intersects_stats, SweepStats};

/// Which sweep implementation performs the segment-intersection step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepAlgo {
    /// Balanced-status plane sweep — the O((n+m)·log(n+m)) algorithm the
    /// paper uses as its software baseline.
    #[default]
    Tree,
    /// Exhaustive sweep-and-prune; no preconditions, used as the oracle.
    Forward,
}

/// Work counters for one intersection test; aggregated by the engine to
/// report the paper's per-stage cost breakdowns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntersectStats {
    /// Point-in-polygon tests run.
    pub pip_tests: usize,
    /// Edges surviving the restricted-search-space filter (P side).
    pub restricted_edges_p: usize,
    /// Edges surviving the restricted-search-space filter (Q side).
    pub restricted_edges_q: usize,
    /// Sweep work counters.
    pub sweep: SweepStats,
    /// Tests decided by the point-in-polygon step alone.
    pub decided_by_pip: usize,
}

/// Collects the edges of `poly` whose MBR intersects `region` — the
/// restricted search space. Any boundary-boundary intersection point lies in
/// both polygons' MBRs, hence in their intersection, hence on edges this
/// filter keeps; the reduction is therefore lossless.
pub fn restricted_edges(poly: &Polygon, region: &Rect) -> Vec<Segment> {
    poly.edges()
        .filter(|e| e.mbr().intersects(region))
        .collect()
}

/// The complete software intersection test between two simple polygons,
/// with closed semantics (shared boundaries count as intersecting).
///
/// Steps, exactly as in §3.1:
/// 1. MBR rejection (the caller's filter normally did this already, but the
///    test stays correct stand-alone);
/// 2. point-in-polygon both ways — catches full containment;
/// 3. plane-sweep segment intersection over the restricted search space.
pub fn polygons_intersect(p: &Polygon, q: &Polygon) -> bool {
    polygons_intersect_with(p, q, SweepAlgo::default(), &mut IntersectStats::default())
}

/// [`polygons_intersect`] with an explicit sweep algorithm and counters.
pub fn polygons_intersect_with(
    p: &Polygon,
    q: &Polygon,
    algo: SweepAlgo,
    stats: &mut IntersectStats,
) -> bool {
    let region = match p.mbr().intersection(&q.mbr()) {
        Some(r) => r,
        None => return false,
    };

    // Step 1: point-in-polygon. Any vertex serves; use the first.
    stats.pip_tests += 1;
    if point_in_polygon(p.vertices()[0], q) {
        stats.decided_by_pip += 1;
        return true;
    }
    stats.pip_tests += 1;
    if point_in_polygon(q.vertices()[0], p) {
        stats.decided_by_pip += 1;
        return true;
    }

    // Step 2: segment intersection over the restricted search space.
    let ep = restricted_edges(p, &region);
    let eq = restricted_edges(q, &region);
    stats.restricted_edges_p += ep.len();
    stats.restricted_edges_q += eq.len();
    match algo {
        SweepAlgo::Tree => tree_sweep_intersects_stats(&ep, &eq, &mut stats.sweep),
        SweepAlgo::Forward => forward_sweep_intersects_stats(&ep, &eq, &mut stats.sweep),
    }
}

/// Software strict-containment test: `inner` lies entirely inside `outer`.
///
/// One vertex of `inner` inside `outer` plus disjoint boundaries implies
/// full containment (the boundary of a simple polygon cannot leave another
/// simple polygon without crossing its boundary). Steps: MBR containment,
/// point-in-polygon on the first vertex, then a plane sweep over the
/// restricted search space — `inner`'s MBR, since any boundary crossing
/// involves an edge of `inner`.
pub fn polygon_contained_in(inner: &Polygon, outer: &Polygon) -> bool {
    use crate::sweep::tree_sweep_intersects;
    if !outer.mbr().contains_rect(&inner.mbr()) {
        return false;
    }
    if !point_in_polygon(inner.vertices()[0], outer) {
        return false;
    }
    let region = inner.mbr();
    let ep = restricted_edges(inner, &region);
    let eq = restricted_edges(outer, &region);
    if ep.is_empty() || eq.is_empty() {
        return true;
    }
    !tree_sweep_intersects(&ep, &eq)
}

/// Brute-force oracle: point-in-polygon both ways plus all-pairs edge
/// intersection. O(n·m) but unconditionally correct; the property tests
/// compare every other implementation against this.
pub fn polygons_intersect_brute(p: &Polygon, q: &Polygon) -> bool {
    if !p.mbr().intersects(&q.mbr()) {
        return false;
    }
    if point_in_polygon(p.vertices()[0], q) || point_in_polygon(q.vertices()[0], p) {
        return true;
    }
    for ep in p.edges() {
        for eq in q.edges() {
            if ep.intersects(&eq) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(x: f64, y: f64, s: f64) -> Polygon {
        Polygon::from_coords(&[(x, y), (x + s, y), (x + s, y + s), (x, y + s)])
    }

    fn c_shape() -> Polygon {
        Polygon::from_coords(&[
            (0.0, 0.0),
            (4.0, 0.0),
            (4.0, 1.0),
            (1.0, 1.0),
            (1.0, 3.0),
            (4.0, 3.0),
            (4.0, 4.0),
            (0.0, 4.0),
        ])
    }

    #[test]
    fn overlapping_squares() {
        let a = square(0.0, 0.0, 2.0);
        let b = square(1.0, 1.0, 2.0);
        assert!(polygons_intersect(&a, &b));
        assert!(polygons_intersect_brute(&a, &b));
    }

    #[test]
    fn disjoint_squares() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(3.0, 3.0, 1.0);
        assert!(!polygons_intersect(&a, &b));
        assert!(!polygons_intersect_brute(&a, &b));
    }

    #[test]
    fn containment_is_caught_by_pip() {
        let outer = square(0.0, 0.0, 10.0);
        let inner = square(4.0, 4.0, 1.0);
        let mut st = IntersectStats::default();
        assert!(polygons_intersect_with(
            &outer,
            &inner,
            SweepAlgo::Tree,
            &mut st
        ));
        assert_eq!(st.decided_by_pip, 1, "containment must not reach the sweep");
        assert!(polygons_intersect(&inner, &outer), "order must not matter");
    }

    #[test]
    fn mbr_overlap_but_disjoint_polygons() {
        // A small square inside the *pocket* of the C: MBRs overlap but the
        // polygons are disjoint. The paper notes these are the expensive
        // cases the hardware filter targets.
        let c = c_shape();
        let pocket = square(2.0, 1.5, 1.0);
        assert!(c.mbr().intersects(&pocket.mbr()));
        assert!(!polygons_intersect(&c, &pocket));
        assert!(!polygons_intersect_brute(&c, &pocket));
    }

    #[test]
    fn boundary_touch_counts() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(1.0, 0.0, 1.0);
        assert!(polygons_intersect(&a, &b));
        let corner = square(1.0, 1.0, 1.0);
        assert!(polygons_intersect(&a, &corner));
    }

    #[test]
    fn forward_and_tree_agree() {
        let shapes = [
            (square(0.0, 0.0, 2.0), square(1.0, 1.0, 2.0)),
            (square(0.0, 0.0, 1.0), square(3.0, 0.0, 1.0)),
            (c_shape(), square(2.0, 1.5, 1.0)),
            (c_shape(), square(0.0, 1.5, 0.5)),
        ];
        for (p, q) in &shapes {
            let mut s1 = IntersectStats::default();
            let mut s2 = IntersectStats::default();
            assert_eq!(
                polygons_intersect_with(p, q, SweepAlgo::Tree, &mut s1),
                polygons_intersect_with(p, q, SweepAlgo::Forward, &mut s2),
            );
        }
    }

    #[test]
    fn restricted_edges_reduce_work() {
        // Two long thin polygons overlapping only at their tips.
        let a = Polygon::from_coords(&[(0.0, 0.0), (10.0, 0.0), (10.0, 1.0), (0.0, 1.0)]);
        let b = Polygon::from_coords(&[(9.5, 0.5), (20.0, 0.5), (20.0, 1.5), (9.5, 1.5)]);
        let region = a.mbr().intersection(&b.mbr()).unwrap();
        let ea = restricted_edges(&a, &region);
        // Only edges touching the overlap region x ∈ [9.5, 10] survive: the
        // top and bottom edges span it, plus the right edge.
        assert!(ea.len() < 4 || ea.len() == 3, "got {}", ea.len());
        assert!(polygons_intersect(&a, &b));
    }

    #[test]
    fn containment_basic_cases() {
        let outer = square(0.0, 0.0, 10.0);
        let inner = square(4.0, 4.0, 1.0);
        assert!(polygon_contained_in(&inner, &outer));
        assert!(!polygon_contained_in(&outer, &inner));
        // Overlap without containment.
        let straddling = square(9.0, 9.0, 3.0);
        assert!(!polygon_contained_in(&straddling, &outer));
        // Inside the MBR but in the pocket of the C — not contained.
        let c = c_shape();
        let pocket = square(2.0, 1.5, 1.0);
        assert!(!polygon_contained_in(&pocket, &c));
    }

    #[test]
    fn containment_is_strict_about_boundaries() {
        // Sharing a boundary edge means boundaries intersect → not strictly
        // contained under this test's semantics.
        let outer = square(0.0, 0.0, 4.0);
        let flush = square(0.0, 1.0, 2.0);
        assert!(!polygon_contained_in(&flush, &outer));
    }

    #[test]
    fn stats_accumulate() {
        let a = square(0.0, 0.0, 2.0);
        let b = square(5.0, 5.0, 2.0); // disjoint MBRs: early return
        let mut st = IntersectStats::default();
        polygons_intersect_with(&a, &b, SweepAlgo::Tree, &mut st);
        assert_eq!(st.pip_tests, 0);
        let c = square(1.5, 1.5, 2.0);
        polygons_intersect_with(&a, &c, SweepAlgo::Tree, &mut st);
        assert!(st.pip_tests >= 1);
    }
}
