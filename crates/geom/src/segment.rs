//! Line segments (polygon edges) and their bounding boxes.

use crate::point::Point;
use crate::predicates::{segments_intersect, segments_intersect_properly};
use crate::rect::Rect;

/// A closed line segment between two points.
///
/// Segments are the unit of work in both the software plane sweep and the
/// hardware line rasterization; a polygon with `n` vertices contributes `n`
/// segments (the boundary is closed implicitly).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    pub a: Point,
    pub b: Point,
}

impl Segment {
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// The segment's MBR.
    #[inline]
    pub fn mbr(&self) -> Rect {
        Rect::of_corners(self.a, self.b)
    }

    /// Squared length.
    #[inline]
    pub fn len2(&self) -> f64 {
        self.a.dist2(self.b)
    }

    /// Length.
    #[inline]
    pub fn len(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// True for a zero-length (degenerate) segment.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.a == self.b
    }

    /// Midpoint of the segment.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.lerp(self.b, 0.5)
    }

    /// Closed intersection test against another segment.
    #[inline]
    pub fn intersects(&self, other: &Segment) -> bool {
        segments_intersect(self.a, self.b, other.a, other.b)
    }

    /// Proper (interior) intersection test against another segment.
    #[inline]
    pub fn intersects_properly(&self, other: &Segment) -> bool {
        segments_intersect_properly(self.a, self.b, other.a, other.b)
    }

    /// The point on the segment closest to `p`.
    pub fn closest_point(&self, p: Point) -> Point {
        let d = self.b - self.a;
        let l2 = d.dot(d);
        if l2 == 0.0 {
            return self.a;
        }
        let t = ((p - self.a).dot(d) / l2).clamp(0.0, 1.0);
        self.a + d * t
    }

    /// Minimum distance from `p` to the segment.
    #[inline]
    pub fn dist_point(&self, p: Point) -> f64 {
        p.dist(self.closest_point(p))
    }

    /// Minimum distance between two closed segments (0 when they intersect).
    ///
    /// This is the inner kernel of Chan's `minDist` (§4.1.1): the distance
    /// between two disjoint segments is realized at an endpoint of one of
    /// them, so four point–segment distances suffice.
    pub fn dist_segment(&self, other: &Segment) -> f64 {
        if self.intersects(other) {
            return 0.0;
        }
        self.dist_point(other.a)
            .min(self.dist_point(other.b))
            .min(other.dist_point(self.a))
            .min(other.dist_point(self.b))
    }

    /// Squared minimum distance between two closed segments.
    pub fn dist2_segment(&self, other: &Segment) -> f64 {
        let d = self.dist_segment(other);
        d * d
    }
}

impl From<(Point, Point)> for Segment {
    #[inline]
    fn from((a, b): (Point, Point)) -> Self {
        Segment::new(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn mbr_of_segment() {
        assert_eq!(s(2.0, 0.0, 0.0, 3.0).mbr(), Rect::new(0.0, 0.0, 2.0, 3.0));
    }

    #[test]
    fn lengths() {
        let seg = s(0.0, 0.0, 3.0, 4.0);
        assert_eq!(seg.len(), 5.0);
        assert_eq!(seg.len2(), 25.0);
        assert!(!seg.is_degenerate());
        assert!(s(1.0, 1.0, 1.0, 1.0).is_degenerate());
    }

    #[test]
    fn closest_point_projection() {
        let seg = s(0.0, 0.0, 10.0, 0.0);
        assert_eq!(
            seg.closest_point(Point::new(5.0, 3.0)),
            Point::new(5.0, 0.0)
        );
        assert_eq!(
            seg.closest_point(Point::new(-2.0, 3.0)),
            Point::new(0.0, 0.0)
        );
        assert_eq!(
            seg.closest_point(Point::new(12.0, -1.0)),
            Point::new(10.0, 0.0)
        );
    }

    #[test]
    fn closest_point_degenerate() {
        let seg = s(1.0, 1.0, 1.0, 1.0);
        assert_eq!(
            seg.closest_point(Point::new(5.0, 5.0)),
            Point::new(1.0, 1.0)
        );
    }

    #[test]
    fn dist_point_values() {
        let seg = s(0.0, 0.0, 10.0, 0.0);
        assert_eq!(seg.dist_point(Point::new(5.0, 3.0)), 3.0);
        assert_eq!(seg.dist_point(Point::new(13.0, 4.0)), 5.0);
        assert_eq!(seg.dist_point(Point::new(4.0, 0.0)), 0.0);
    }

    #[test]
    fn dist_segment_intersecting_is_zero() {
        assert_eq!(
            s(0.0, 0.0, 2.0, 2.0).dist_segment(&s(0.0, 2.0, 2.0, 0.0)),
            0.0
        );
    }

    #[test]
    fn dist_segment_parallel() {
        assert_eq!(
            s(0.0, 0.0, 10.0, 0.0).dist_segment(&s(0.0, 2.0, 10.0, 2.0)),
            2.0
        );
    }

    #[test]
    fn dist_segment_endpoint_to_interior() {
        // Vertical segment above the middle of a horizontal one.
        assert_eq!(
            s(0.0, 0.0, 10.0, 0.0).dist_segment(&s(5.0, 1.0, 5.0, 4.0)),
            1.0
        );
    }

    #[test]
    fn dist_segment_symmetric() {
        let a = s(0.0, 0.0, 1.0, 1.0);
        let b = s(3.0, 0.0, 4.0, -2.0);
        assert_eq!(a.dist_segment(&b), b.dist_segment(&a));
    }
}
