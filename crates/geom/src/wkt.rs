//! Minimal WKT (Well-Known Text) I/O for simple polygons.
//!
//! Supports the `POLYGON ((x y, x y, ...))` form used by the examples to
//! load and dump datasets. Interior rings are rejected — the paper's
//! algorithms operate on simple polygons without holes.

use crate::point::Point;
use crate::polygon::{Polygon, PolygonError};
use std::fmt::Write as _;

/// Errors from [`parse_polygon`].
#[derive(Debug, Clone, PartialEq)]
pub enum WktError {
    /// The string does not start with the `POLYGON` tag.
    NotAPolygon,
    /// Parenthesis structure is malformed.
    BadParens,
    /// A coordinate failed to parse as `f64`.
    BadNumber(String),
    /// More than one ring (holes are unsupported).
    HasInteriorRings,
    /// Structurally invalid polygon (too few vertices, duplicates...).
    Invalid(PolygonError),
}

impl std::fmt::Display for WktError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WktError::NotAPolygon => write!(f, "expected POLYGON tag"),
            WktError::BadParens => write!(f, "malformed parentheses"),
            WktError::BadNumber(s) => write!(f, "bad coordinate: {s:?}"),
            WktError::HasInteriorRings => write!(f, "interior rings not supported"),
            WktError::Invalid(e) => write!(f, "invalid polygon: {e}"),
        }
    }
}

impl std::error::Error for WktError {}

/// Parses a `POLYGON ((...))` string.
pub fn parse_polygon(s: &str) -> Result<Polygon, WktError> {
    let t = s.trim();
    let upper = t.to_ascii_uppercase();
    if !upper.starts_with("POLYGON") {
        return Err(WktError::NotAPolygon);
    }
    let rest = t["POLYGON".len()..].trim_start();
    let inner = rest
        .strip_prefix('(')
        .and_then(|r| r.trim_end().strip_suffix(')'))
        .ok_or(WktError::BadParens)?
        .trim();
    // Split rings at top level: inner should be "(ring1), (ring2)...".
    let mut rings: Vec<&str> = Vec::new();
    let mut depth = 0usize;
    let mut start = None;
    for (i, c) in inner.char_indices() {
        match c {
            '(' => {
                if depth == 0 {
                    start = Some(i + 1);
                }
                depth += 1;
            }
            ')' => {
                if depth == 0 {
                    return Err(WktError::BadParens);
                }
                depth -= 1;
                if depth == 0 {
                    rings.push(&inner[start.ok_or(WktError::BadParens)?..i]);
                }
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err(WktError::BadParens);
    }
    match rings.len() {
        0 => return Err(WktError::BadParens),
        1 => {}
        _ => return Err(WktError::HasInteriorRings),
    }
    let mut vertices = Vec::new();
    for pair in rings[0].split(',') {
        let mut nums = pair.split_whitespace();
        let x: f64 = nums
            .next()
            .ok_or_else(|| WktError::BadNumber(pair.to_string()))?
            .parse()
            .map_err(|_| WktError::BadNumber(pair.to_string()))?;
        let y: f64 = nums
            .next()
            .ok_or_else(|| WktError::BadNumber(pair.to_string()))?
            .parse()
            .map_err(|_| WktError::BadNumber(pair.to_string()))?;
        if nums.next().is_some() {
            return Err(WktError::BadNumber(pair.to_string()));
        }
        vertices.push(Point::new(x, y));
    }
    Polygon::new(vertices).map_err(WktError::Invalid)
}

/// Formats a polygon as `POLYGON ((x y, ..., x0 y0))` with the standard
/// closing vertex.
pub fn format_polygon(poly: &Polygon) -> String {
    let mut out = String::from("POLYGON ((");
    for (i, v) in poly.vertices().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} {}", v.x, v.y);
    }
    let first = poly.vertices()[0];
    let _ = write!(out, ", {} {}))", first.x, first.y);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let p = Polygon::from_coords(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.5, 3.5)]);
        let s = format_polygon(&p);
        let q = parse_polygon(&s).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn parses_standard_form() {
        let p = parse_polygon("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))").unwrap();
        assert_eq!(p.vertex_count(), 4);
        assert_eq!(p.area(), 100.0);
    }

    #[test]
    fn parses_lowercase_and_whitespace() {
        let p = parse_polygon("  polygon(( 0 0 ,1 0, 1 1 ))  ").unwrap();
        assert_eq!(p.vertex_count(), 3);
    }

    #[test]
    fn parses_negative_and_decimal() {
        let p = parse_polygon("POLYGON ((-1.5 -2.25, 3.0 0, 0 4.125))").unwrap();
        assert_eq!(p.vertices()[0], Point::new(-1.5, -2.25));
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            parse_polygon("LINESTRING (0 0, 1 1)"),
            Err(WktError::NotAPolygon)
        );
        assert_eq!(parse_polygon("POLYGON 0 0, 1 1"), Err(WktError::BadParens));
        assert_eq!(
            parse_polygon("POLYGON ((0 0, 1 1"),
            Err(WktError::BadParens)
        );
        assert!(matches!(
            parse_polygon("POLYGON ((0 0, 1 x, 2 2))"),
            Err(WktError::BadNumber(_))
        ));
        assert!(matches!(
            parse_polygon("POLYGON ((0 0, 1 1 7, 2 2))"),
            Err(WktError::BadNumber(_))
        ));
    }

    #[test]
    fn rejects_interior_rings() {
        assert_eq!(
            parse_polygon("POLYGON ((0 0, 10 0, 10 10), (2 2, 3 2, 3 3))"),
            Err(WktError::HasInteriorRings)
        );
    }

    #[test]
    fn rejects_invalid_polygon() {
        assert!(matches!(
            parse_polygon("POLYGON ((0 0, 1 1))"),
            Err(WktError::Invalid(_))
        ));
    }
}
