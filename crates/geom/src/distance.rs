//! Low-level distance kernels shared by the `minDist` machinery and the
//! 0/1-object filters.

use crate::point::Point;
use crate::rect::Rect;
use crate::segment::Segment;

/// Minimum distance from a segment to a rectangle (0 when they intersect).
///
/// Used as the pruning lower bound when scanning frontier-chain edges: if
/// `seg_rect_min_dist(e, mbr(Q)) > D`, edge `e` cannot participate in any
/// within-distance-`D` pair.
pub fn seg_rect_min_dist(seg: &Segment, rect: &Rect) -> f64 {
    if rect.contains_point(seg.a) || rect.contains_point(seg.b) {
        return 0.0;
    }
    // If the segment crosses the rectangle boundary the distance is 0.
    let mut best = f64::INFINITY;
    for (a, b) in rect.sides() {
        let side = Segment::new(a, b);
        let d = seg.dist_segment(&side);
        if d == 0.0 {
            return 0.0;
        }
        best = best.min(d);
    }
    best
}

/// Minimum distance between a point and a polygon *boundary* (not interior).
pub fn point_boundary_min_dist(p: Point, edges: &[Segment]) -> f64 {
    edges
        .iter()
        .map(|e| e.dist_point(p))
        .fold(f64::INFINITY, f64::min)
}

/// Distance from a point to a polygon *as a region*: 0 when the point is
/// inside or on the boundary, the boundary distance otherwise.
pub fn point_polygon_dist(p: Point, poly: &crate::polygon::Polygon) -> f64 {
    if crate::pip::point_in_polygon(p, poly) {
        return 0.0;
    }
    let mut best = f64::INFINITY;
    for e in poly.edges() {
        best = best.min(e.dist_point(p));
        if best == 0.0 {
            break;
        }
    }
    best
}

/// Minimum distance between two edge sets with MBR-based pruning.
///
/// `upper` is an initial upper bound (use `f64::INFINITY` when unknown); the
/// scan skips pairs whose MBR distance already exceeds the current best.
pub fn edges_min_dist(ep: &[Segment], eq: &[Segment], upper: f64) -> f64 {
    let mut best = upper;
    // Precompute MBRs once; the inner loop runs |ep|·|eq| times.
    let eq_mbrs: Vec<Rect> = eq.iter().map(|e| e.mbr()).collect();
    for sp in ep {
        let mp = sp.mbr();
        for (sq, mq) in eq.iter().zip(eq_mbrs.iter()) {
            if mp.min_dist(mq) >= best {
                continue;
            }
            let d = sp.dist_segment(sq);
            if d < best {
                best = d;
                if best == 0.0 {
                    return 0.0;
                }
            }
        }
    }
    best
}

/// Pairwise within-distance detection — the *paper's* refinement kernel:
/// Chan's `minDist` compares the (clipped) frontier chains pair by pair,
/// pruning by segment-MBR distance and returning as soon as any pair
/// comes within `d` (the paper's first optimization, §4.1.1).
///
/// Quadratic in the chain lengths for true negatives — which is precisely
/// the cost profile the hardware distance filter exists to avoid.
pub fn edges_within_pairwise(ep: &[Segment], eq: &[Segment], d: f64) -> bool {
    if ep.is_empty() || eq.is_empty() {
        return false;
    }
    let eq_mbrs: Vec<Rect> = eq.iter().map(|e| e.mbr()).collect();
    for sp in ep {
        let mp = sp.mbr();
        for (sq, mq) in eq.iter().zip(eq_mbrs.iter()) {
            if mp.min_dist(mq) <= d && sp.dist_segment(sq) <= d {
                return true;
            }
        }
    }
    false
}

/// Forward-sweep within-distance detection between two edge sets: returns
/// `true` as soon as any pair comes within `d` (closed: exactly `d` counts).
///
/// A modern improvement over the paper's pairwise kernel (near-linear for
/// GIS edge sets): edges are processed in x order and compared only when
/// their x-ranges come within `d`. Kept as an ablation — the figure
/// benches use [`edges_within_pairwise`] to stay faithful to the paper's
/// software baseline.
pub fn edges_within_sweep(ep: &[Segment], eq: &[Segment], d: f64) -> bool {
    if ep.is_empty() || eq.is_empty() {
        return false;
    }
    #[derive(Clone, Copy)]
    struct Entry {
        xmax: f64,
        ymin: f64,
        ymax: f64,
        idx: u32,
    }
    let mut order: Vec<(f64, bool, u32)> = Vec::with_capacity(ep.len() + eq.len());
    for (i, s) in ep.iter().enumerate() {
        order.push((s.a.x.min(s.b.x), false, i as u32));
    }
    for (i, s) in eq.iter().enumerate() {
        order.push((s.a.x.min(s.b.x), true, i as u32));
    }
    order.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));

    let mut active_p: Vec<Entry> = Vec::new();
    let mut active_q: Vec<Entry> = Vec::new();

    for &(x, is_q, idx) in &order {
        let (seg, others, own, other_set) = if is_q {
            (&eq[idx as usize], ep, &mut active_q, &mut active_p)
        } else {
            (&ep[idx as usize], eq, &mut active_p, &mut active_q)
        };
        let (ymin, ymax) = if seg.a.y <= seg.b.y {
            (seg.a.y, seg.b.y)
        } else {
            (seg.b.y, seg.a.y)
        };
        // Expire opposite-set edges that ended more than d before the front.
        other_set.retain(|e| e.xmax >= x - d);
        for e in other_set.iter() {
            if e.ymin - d <= ymax
                && ymin <= e.ymax + d
                && seg.dist_segment(&others[e.idx as usize]) <= d
            {
                return true;
            }
        }
        own.push(Entry {
            xmax: seg.a.x.max(seg.b.x),
            ymin,
            ymax,
            idx,
        });
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn seg_rect_inside_and_crossing() {
        let r = Rect::new(0.0, 0.0, 4.0, 4.0);
        assert_eq!(seg_rect_min_dist(&seg(1.0, 1.0, 2.0, 2.0), &r), 0.0); // inside
        assert_eq!(seg_rect_min_dist(&seg(-1.0, 2.0, 5.0, 2.0), &r), 0.0); // crossing
    }

    #[test]
    fn seg_rect_outside() {
        let r = Rect::new(0.0, 0.0, 4.0, 4.0);
        assert_eq!(seg_rect_min_dist(&seg(6.0, 0.0, 6.0, 4.0), &r), 2.0);
        assert_eq!(seg_rect_min_dist(&seg(7.0, 8.0, 9.0, 10.0), &r), 5.0);
    }

    #[test]
    fn point_boundary_distance() {
        let edges = vec![seg(0.0, 0.0, 4.0, 0.0), seg(4.0, 0.0, 4.0, 4.0)];
        assert_eq!(point_boundary_min_dist(Point::new(2.0, 3.0), &edges), 2.0);
        assert_eq!(
            point_boundary_min_dist(Point::new(2.0, 3.0), &[]),
            f64::INFINITY
        );
    }

    #[test]
    fn edges_min_dist_parallel_sets() {
        let a = vec![seg(0.0, 0.0, 10.0, 0.0)];
        let b = vec![seg(0.0, 3.0, 10.0, 3.0), seg(0.0, 7.0, 10.0, 7.0)];
        assert_eq!(edges_min_dist(&a, &b, f64::INFINITY), 3.0);
    }

    #[test]
    fn edges_min_dist_respects_upper_bound() {
        let a = vec![seg(0.0, 0.0, 1.0, 0.0)];
        let b = vec![seg(0.0, 5.0, 1.0, 5.0)];
        // With an upper bound below the true distance, the bound is returned
        // (callers use this as "nothing closer than upper exists").
        assert_eq!(edges_min_dist(&a, &b, 2.0), 2.0);
        assert_eq!(edges_min_dist(&a, &b, f64::INFINITY), 5.0);
    }

    #[test]
    fn within_sweep_basic() {
        let a = vec![seg(0.0, 0.0, 10.0, 0.0)];
        let b = vec![seg(0.0, 3.0, 10.0, 3.0)];
        assert!(edges_within_sweep(&a, &b, 3.0)); // closed: exactly d counts
        assert!(edges_within_sweep(&a, &b, 4.0));
        assert!(!edges_within_sweep(&a, &b, 2.9));
    }

    #[test]
    fn within_sweep_x_separated() {
        let a = vec![seg(0.0, 0.0, 1.0, 0.0)];
        let b = vec![seg(4.0, 0.0, 5.0, 0.0)];
        assert!(edges_within_sweep(&a, &b, 3.0));
        assert!(!edges_within_sweep(&a, &b, 2.5));
    }

    #[test]
    fn within_sweep_agrees_with_min_dist_on_grid() {
        // A small deterministic battery of segment placements.
        let mut segs = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                segs.push(seg(
                    i as f64,
                    j as f64,
                    i as f64 + 0.8,
                    j as f64 + (i as f64) * 0.3,
                ));
            }
        }
        let (a, b) = segs.split_at(8);
        let true_min = edges_min_dist(a, b, f64::INFINITY);
        for &d in &[0.1, 0.5, 1.0, 2.0, 5.0] {
            assert_eq!(
                edges_within_sweep(a, b, d),
                true_min <= d,
                "d = {d}, true_min = {true_min}"
            );
        }
    }

    #[test]
    fn within_sweep_empty() {
        let a = vec![seg(0.0, 0.0, 1.0, 0.0)];
        assert!(!edges_within_sweep(&a, &[], 10.0));
        assert!(!edges_within_sweep(&[], &a, 10.0));
    }
}
