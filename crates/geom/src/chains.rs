//! Frontier chains for the `minDist` algorithm (Chan, §4.1.1 and Fig. 9(c)).
//!
//! When two objects' MBRs are separated along an axis, the minimum distance
//! between the objects is realized on the *frontier chain* of each polygon:
//! the boundary chain facing the other object. For an x-separated pair with
//! `Q` to the right of `P`, the frontier of `P` is the chain between its
//! topmost and bottommost vertices that contains its maximum-x vertex.
//!
//! Soundness sketch (for `Q` strictly right of `P`): let `(p*, q*)` realize
//! the minimum distance. The segment `p*q*` cannot cross `∂P` (a crossing
//! would be closer to `q*`), and extending it beyond `q*` leaves `P`'s MBR,
//! so `p*` sees infinity in a direction with positive x-component. Boundary
//! points with that property all lie on the chain containing the
//! maximum-x vertex. When the extreme vertex is shared by both chains, or
//! the MBRs overlap in both axes, we conservatively return the whole
//! boundary — the reduction is an optimization, never a filter.
//!
//! The paper augments Chan's algorithm with a second optimization: clip the
//! frontier chains to the other MBR *extended by D* (Fig. 9(d)), which
//! "in practice reduces the computational cost by a factor of 2 to 6".
//! That clip is [`frontier_clipped`].

use crate::polygon::Polygon;
use crate::rect::Rect;
use crate::segment::Segment;

/// Relative placement of `other` w.r.t. `this` along the separating axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Separation {
    /// MBRs overlap in both axes: no chain reduction possible.
    None,
    /// `other` lies entirely at larger x.
    Right,
    Left,
    Above,
    Below,
}

fn classify(this: &Rect, other: &Rect) -> Separation {
    let gap_right = other.xmin - this.xmax;
    let gap_left = this.xmin - other.xmax;
    let gap_above = other.ymin - this.ymax;
    let gap_below = this.ymin - other.ymax;
    // Choose the axis with the widest gap; require a strict gap.
    let mut best = (0.0, Separation::None);
    if gap_right > best.0 {
        best = (gap_right, Separation::Right);
    }
    if gap_left > best.0 {
        best = (gap_left, Separation::Left);
    }
    if gap_above > best.0 {
        best = (gap_above, Separation::Above);
    }
    if gap_below > best.0 {
        best = (gap_below, Separation::Below);
    }
    best.1
}

/// Index of the vertex maximizing `key`.
fn extreme_index(poly: &Polygon, key: impl Fn(crate::point::Point) -> f64) -> usize {
    let vs = poly.vertices();
    let mut best = 0;
    for i in 1..vs.len() {
        if key(vs[i]) > key(vs[best]) {
            best = i;
        }
    }
    best
}

/// Edge indices of the cyclic chain from vertex `from` to vertex `to`
/// (edge `k` joins vertices `k` and `k+1`).
fn chain_edge_indices(n: usize, from: usize, to: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut i = from;
    while i != to {
        out.push(i);
        i = (i + 1) % n;
    }
    out
}

/// True when vertex `v` is strictly inside the cyclic chain `from → to`
/// (excluding both endpoints).
fn strictly_inside_chain(n: usize, from: usize, to: usize, v: usize) -> bool {
    if from == to {
        return false;
    }
    let mut i = (from + 1) % n;
    while i != to {
        if i == v {
            return true;
        }
        i = (i + 1) % n;
    }
    false
}

/// The frontier-chain edges of `poly` facing `other_mbr`.
///
/// Falls back to the full boundary when the MBRs overlap in both axes or
/// the facing extreme vertex coincides with a chain split point.
pub fn frontier_edges(poly: &Polygon, other_mbr: &Rect) -> Vec<Segment> {
    let n = poly.vertex_count();
    let sep = classify(&poly.mbr(), other_mbr);

    // Split vertices (perpendicular extremes) and the facing extreme.
    let (split_a, split_b, facing) = match sep {
        Separation::None => return poly.edges().collect(),
        Separation::Right | Separation::Left => {
            let top = extreme_index(poly, |p| p.y);
            let bottom = extreme_index(poly, |p| -p.y);
            let facing = match sep {
                Separation::Right => extreme_index(poly, |p| p.x),
                _ => extreme_index(poly, |p| -p.x),
            };
            (top, bottom, facing)
        }
        Separation::Above | Separation::Below => {
            let right = extreme_index(poly, |p| p.x);
            let left = extreme_index(poly, |p| -p.x);
            let facing = match sep {
                Separation::Above => extreme_index(poly, |p| p.y),
                _ => extreme_index(poly, |p| -p.y),
            };
            (right, left, facing)
        }
    };

    if split_a == split_b || facing == split_a || facing == split_b {
        // Degenerate split: be conservative.
        return poly.edges().collect();
    }
    let indices = if strictly_inside_chain(n, split_a, split_b, facing) {
        chain_edge_indices(n, split_a, split_b)
    } else {
        chain_edge_indices(n, split_b, split_a)
    };
    indices.into_iter().map(|i| poly.edge(i)).collect()
}

/// Frontier chain clipped to within `d` of the other MBR (the paper's
/// second `minDist` optimization): only edges whose MBR is within `d` of
/// `other_mbr` can participate in a within-distance-`d` pair.
///
/// The filter uses the same [`Rect::min_dist`] kernel as the pipeline's
/// MBR gates and the pairwise edge prefilter — NOT an
/// `intersects(expanded(d))` test, whose `x ± d` rounding can land one
/// ulp past an edge that sits at *exactly* distance `d` and silently
/// drop it, flipping a closed-predicate boundary answer. With one shared
/// kernel, every layer of the distance test rounds the same way.
pub fn frontier_clipped(poly: &Polygon, other_mbr: &Rect, d: f64) -> Vec<Segment> {
    frontier_edges(poly, other_mbr)
        .into_iter()
        .filter(|e| e.mbr().min_dist(other_mbr) <= d)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn square(x: f64, y: f64, s: f64) -> Polygon {
        Polygon::from_coords(&[(x, y), (x + s, y), (x + s, y + s), (x, y + s)])
    }

    #[test]
    fn overlapping_mbrs_keep_all_edges() {
        let p = square(0.0, 0.0, 4.0);
        let q = Rect::new(2.0, 2.0, 6.0, 6.0);
        assert_eq!(frontier_edges(&p, &q).len(), 4);
    }

    #[test]
    fn right_facing_chain_of_square() {
        let p = square(0.0, 0.0, 4.0);
        let q = Rect::new(10.0, 0.0, 12.0, 4.0);
        let chain = frontier_edges(&p, &q);
        assert!(chain.len() < 4, "chain must be a strict subset");
        // Every chain edge must touch the right half of the square.
        for e in &chain {
            assert!(e.a.x.max(e.b.x) >= 2.0, "edge {e:?} does not face right");
        }
        // The true closest edge (x = 4 side) must be present.
        assert!(chain.iter().any(|e| e.a.x == 4.0 && e.b.x == 4.0));
    }

    #[test]
    fn chain_contains_closest_point_for_l_shape() {
        // L-shape with its concave pocket facing right; Q far right.
        let l = Polygon::from_coords(&[
            (0.0, 0.0),
            (10.0, 0.0),
            (10.0, 1.0),
            (1.0, 1.0),
            (1.0, 10.0),
            (0.0, 10.0),
        ]);
        let q = Rect::new(20.0, 0.0, 22.0, 10.0);
        let chain = frontier_edges(&l, &q);
        let full: Vec<Segment> = l.edges().collect();
        let d_chain = crate::distance::edges_min_dist(
            &chain,
            &[Segment::new(Point::new(20.0, 5.0), Point::new(20.0, 6.0))],
            f64::INFINITY,
        );
        let d_full = crate::distance::edges_min_dist(
            &full,
            &[Segment::new(Point::new(20.0, 5.0), Point::new(20.0, 6.0))],
            f64::INFINITY,
        );
        assert_eq!(d_chain, d_full, "frontier chain must preserve min distance");
    }

    #[test]
    fn vertical_separation_uses_horizontal_split() {
        let p = square(0.0, 0.0, 4.0);
        let q_above = Rect::new(0.0, 10.0, 4.0, 12.0);
        let chain = frontier_edges(&p, &q_above);
        assert!(chain.len() < 4);
        // The top side (y = 4) must survive.
        assert!(chain.iter().any(|e| e.a.y == 4.0 && e.b.y == 4.0));
    }

    #[test]
    fn clipping_removes_far_edges() {
        let p = square(0.0, 0.0, 4.0);
        let q = Rect::new(10.0, 0.0, 12.0, 4.0);
        // With a small d the left portions of top/bottom edges could drop
        // out entirely if their MBRs don't reach the extended rectangle.
        let clipped = frontier_clipped(&p, &q, 1.0);
        for e in &clipped {
            assert!(e.mbr().intersects(&q.expanded(1.0)));
        }
        // With a huge d everything in the frontier survives.
        let wide = frontier_clipped(&p, &q, 100.0);
        assert_eq!(wide.len(), frontier_edges(&p, &q).len());
    }

    #[test]
    fn diagonal_separation_is_sound() {
        // Q up-right of P: x-gap larger, so the x logic is used.
        let p = square(0.0, 0.0, 4.0);
        let q = Rect::new(20.0, 10.0, 22.0, 12.0);
        let chain = frontier_edges(&p, &q);
        // Closest point of P to (20,10) is corner (4,4); edge (4,0)-(4,4)
        // or (4,4)-(0,4) must be present.
        assert!(chain
            .iter()
            .any(|e| e.a == Point::new(4.0, 4.0) || e.b == Point::new(4.0, 4.0)));
    }
}
