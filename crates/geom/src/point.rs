//! 2D points in data space.
//!
//! Coordinates are `f64` throughout, matching the paper's observation (§2.2.1)
//! that public GIS data carries 4–6 decimal digits and that modern graphics
//! FPUs lose no accuracy during the data-space → window-space translation.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point (or free vector) in the 2D data space.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Dot product, treating both points as vectors.
    #[inline]
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the cross product, treating both points as vectors.
    ///
    /// Positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Prefer this over [`Point::dist`] in comparisons: it avoids the square
    /// root and is exactly monotone in the true distance.
    #[inline]
    pub fn dist2(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Euclidean norm, treating the point as a vector.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Returns the vector scaled to unit length, or `None` for a (near-)zero
    /// vector where the direction is undefined.
    #[inline]
    pub fn normalized(self) -> Option<Point> {
        let n = self.norm();
        if n > 0.0 {
            Some(self / n)
        } else {
            None
        }
    }

    /// The vector rotated 90° counter-clockwise.
    #[inline]
    pub fn perp(self) -> Point {
        Point::new(-self.y, self.x)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Lexicographic comparison (x first, then y), a total order used by the
    /// plane-sweep event queue.
    #[inline]
    pub fn lex_cmp(&self, other: &Point) -> std::cmp::Ordering {
        self.x
            .total_cmp(&other.x)
            .then_with(|| self.y.total_cmp(&other.y))
    }

    /// True when both coordinates are finite (no NaN / infinity).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_ops() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -0.5));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
        assert_eq!(a.dot(a), 1.0);
    }

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist2(b), 25.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(b.norm(), 5.0);
    }

    #[test]
    fn normalized_unit_length() {
        let v = Point::new(3.0, 4.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert!(Point::ORIGIN.normalized().is_none());
    }

    #[test]
    fn perp_is_ccw_rotation() {
        let v = Point::new(1.0, 0.0);
        assert_eq!(v.perp(), Point::new(0.0, 1.0));
        assert_eq!(v.perp().perp(), -v);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(1.0, 2.0));
    }

    #[test]
    fn lexicographic_order() {
        use std::cmp::Ordering;
        let a = Point::new(1.0, 5.0);
        let b = Point::new(2.0, 0.0);
        let c = Point::new(1.0, 6.0);
        assert_eq!(a.lex_cmp(&b), Ordering::Less);
        assert_eq!(a.lex_cmp(&c), Ordering::Less);
        assert_eq!(a.lex_cmp(&a), Ordering::Equal);
        assert_eq!(b.lex_cmp(&a), Ordering::Greater);
    }

    #[test]
    fn finiteness() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }
}
