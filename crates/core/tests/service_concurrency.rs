//! Serving-layer concurrency: N client threads hammer one shared
//! `QueryEngine` while the main thread swaps the snapshot mid-run.
//!
//! The invariant under test is snapshot isolation (DESIGN.md §12): every
//! query sees exactly one consistent snapshot — the epoch stamped on its
//! response fully determines its rows, with no query ever observing half
//! of epoch 0 and half of epoch 1. Expected rows per epoch are
//! precomputed up front with a plain software `SpatialEngine` over the
//! same datasets, so a torn read (or a stale-epoch stamp) shows up as a
//! response matching neither table. The final ledger must balance and
//! count every submission.

use hwa_core::service::{
    PlannerMode, QueryEngine, QueryRequest, QueryRows, ServiceConfig, ServiceSnapshot,
};
use hwa_core::{EngineConfig, HwConfig, PreparedDataset, SpatialEngine};
use spatial_geom::Polygon;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const THREADS: usize = 6;
const ITERS: usize = 25;

fn dataset(epoch: u64) -> (Vec<Polygon>, Vec<Polygon>) {
    // Epoch 0 and 1 intentionally differ so expected rows differ.
    let scale = 0.002;
    match epoch {
        0 => (
            spatial_datagen::landc(scale, 11).polygons,
            spatial_datagen::lando(scale, 11).polygons,
        ),
        _ => (
            spatial_datagen::landc(scale, 99).polygons,
            spatial_datagen::lando(scale, 99).polygons,
        ),
    }
}

fn snapshot(epoch: u64) -> ServiceSnapshot {
    let (a, b) = dataset(epoch);
    ServiceSnapshot::new()
        .with(PreparedDataset::new("a", a))
        .with(PreparedDataset::new("b", b))
}

/// Per-epoch reference answers: selection rows + join pairs.
type EpochAnswers = (Vec<usize>, Vec<(usize, usize)>);

/// Reference answers per epoch, computed outside the service with the
/// plain software engine (exactness is invariant 1; the service must
/// reproduce these bit-identically whatever its planner picks).
fn expected(epoch: u64, query: &Polygon) -> EpochAnswers {
    let (pa, pb) = dataset(epoch);
    let a = PreparedDataset::new("a", pa);
    let b = PreparedDataset::new("b", pb);
    let mut engine = SpatialEngine::new(EngineConfig::software());
    let (sel, _) = engine.intersection_selection(&a, query);
    let (join, _) = engine.intersection_join(&a, &b);
    (sel, join)
}

#[test]
fn concurrent_queries_see_exactly_one_snapshot_across_a_swap() {
    let queries = spatial_datagen::states50(11);
    let query = queries.polygons[0].clone();
    let expect: Vec<EpochAnswers> = vec![expected(0, &query), expected(1, &query)];
    assert_ne!(
        expect[0], expect[1],
        "epochs must answer differently for the test to mean anything"
    );

    let engine = Arc::new(QueryEngine::new(
        ServiceConfig {
            base: EngineConfig::hardware(HwConfig::at_resolution(8).with_threshold(0)),
            admission_capacity: THREADS * 2 + 1,
            ..ServiceConfig::default()
        },
        snapshot(0),
    ));
    let swapped = Arc::new(AtomicBool::new(false));

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let swapped = Arc::clone(&swapped);
            let query = query.clone();
            let expect = expect.clone();
            thread::spawn(move || {
                let mut served = 0u64;
                for i in 0..ITERS {
                    // Half the threads alternate selections and joins.
                    let req = if (t + i) % 2 == 0 {
                        QueryRequest::intersection_selection("a", query.clone())
                    } else {
                        QueryRequest::intersection_join("a", "b")
                    };
                    let resp = engine.execute(&req).expect("capacity covers all threads");
                    let epoch = resp.epoch as usize;
                    assert!(epoch < expect.len(), "response from unknown epoch {epoch}");
                    // Rows must match the reference table for the epoch
                    // the response claims — a torn snapshot matches
                    // neither epoch's table.
                    match &resp.rows {
                        QueryRows::Selection(rows) => {
                            assert_eq!(rows, &expect[epoch].0, "epoch {epoch} selection");
                        }
                        QueryRows::Join(rows) => {
                            assert_eq!(rows, &expect[epoch].1, "epoch {epoch} join");
                        }
                        QueryRows::AreaJoin(_) => {
                            unreachable!("this test issues no aggregation queries")
                        }
                    }
                    // Monotonicity: after the swap is published, new
                    // loads must be epoch 1... but an in-flight query
                    // may legitimately still report 0, so only the
                    // converse is checkable: epoch 1 implies the swap
                    // happened (or is happening this instant).
                    if epoch == 1 {
                        swapped.store(true, Ordering::Relaxed);
                    }
                    served += 1;
                }
                served
            })
        })
        .collect();

    // Let the workers get going, then publish epoch 1 mid-run.
    thread::sleep(std::time::Duration::from_millis(20));
    let epoch = engine.reload(snapshot(1));
    assert_eq!(epoch, 1);

    let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert_eq!(total, (THREADS * ITERS) as u64);

    let stats = engine.stats();
    assert!(stats.balanced(), "unbalanced ledger: {stats:?}");
    assert_eq!(stats.submitted, total);
    assert_eq!(stats.completed, total);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.reloads, 1);
    assert_eq!(engine.in_flight(), 0);

    // Queries issued after the join must all see epoch 1.
    let resp = engine
        .execute(&QueryRequest::intersection_selection("a", query))
        .unwrap();
    assert_eq!(resp.epoch, 1);
    assert_eq!(resp.rows, QueryRows::Selection(expect[1].0.clone()));
}

/// Forced-software and forced-hardware services, run concurrently
/// against the same snapshots, agree query-for-query (invariant 13
/// under concurrency).
#[test]
fn concurrent_forced_backends_agree() {
    let queries = spatial_datagen::states50(23);
    let query = queries.polygons[1].clone();
    let make = |mode: PlannerMode| {
        Arc::new(QueryEngine::new(
            ServiceConfig {
                base: EngineConfig::hardware(HwConfig::at_resolution(8).with_threshold(0)),
                planner: hwa_core::service::PlannerConfig {
                    mode,
                    ..Default::default()
                },
                ..ServiceConfig::default()
            },
            snapshot(0),
        ))
    };
    let sw = make(PlannerMode::ForceSoftware);
    let hw = make(PlannerMode::ForceHardware);
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let sw = Arc::clone(&sw);
            let hw = Arc::clone(&hw);
            let query = query.clone();
            thread::spawn(move || {
                for _ in 0..10 {
                    let req = QueryRequest::intersection_join("a", "b");
                    let s = sw.execute(&req).unwrap();
                    let h = hw.execute(&req).unwrap();
                    assert_eq!(s.rows, h.rows);
                    let sel = QueryRequest::intersection_selection("a", query.clone());
                    let s = sw.execute(&sel).unwrap();
                    let h = hw.execute(&sel).unwrap();
                    assert_eq!(s.rows, h.rows);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert!(sw.stats().balanced());
    assert!(hw.stats().balanced());
    assert_eq!(sw.stats().planned_sw, sw.stats().completed);
    assert_eq!(hw.stats().planned_hw, hw.stats().completed);
}
