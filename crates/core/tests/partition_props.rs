//! The headline partitioning property (DESIGN.md invariant 12): for ANY
//! grid size, shard count, inner device and seeded fault plan, every
//! pipeline run over the PBSM-partitioned path returns bit-identical
//! result sets — each pair exactly once — and identical deterministic
//! counters to the unpartitioned engine.
//!
//! Two comparisons compose here:
//!
//! 1. partitioned-clean vs unpartitioned-clean: results AND the full
//!    deterministic counter set must match (at `hw_batch = 1` even the
//!    submission-grouping diagnostics have nowhere to move, so `hw_tests`,
//!    `hw_batches` and the raw `HwStats` are all asserted bit-identical);
//! 2. partitioned-faulted vs partitioned-clean: results must still match,
//!    and the degradation ledger must balance — every hardware test the
//!    faults stole reappears as a software fallback
//!    (`hw_tests + fallback_tests` equals the clean run's `hw_tests`),
//!    even though each device shard carries its own independently-seeded
//!    fault schedule.

use hwa_core::engine::{EngineConfig, PartitionConfig, PreparedDataset, SpatialEngine};
use hwa_core::{CostBreakdown, DeviceKind, FaultKind, FaultPlan, FaultTrigger, HwConfig};
use proptest::prelude::*;

fn prepare(ds: spatial_datagen::Dataset) -> PreparedDataset {
    PreparedDataset::new(ds.name, ds.polygons)
}

prop_compose! {
    fn arb_plan()(
        seed in 0u64..u64::MAX,
        kind_pick in 0usize..4,
        trigger_pick in 0usize..3,
        n in 0u64..5,
        k in 1u64..4,
    ) -> FaultPlan {
        let kind = match kind_pick {
            0 => FaultKind::ContextLost,
            1 => FaultKind::OutOfMemory,
            2 => FaultKind::Timeout,
            _ => FaultKind::ReadbackBitFlip,
        };
        let trigger = match trigger_pick {
            0 => FaultTrigger::OnExecute(n),
            1 => FaultTrigger::OnCommand(n * 5),
            _ => FaultTrigger::EveryK(k),
        };
        FaultPlan::new(seed, kind, trigger)
    }
}

prop_compose! {
    fn arb_inner()(pick in 0usize..3) -> DeviceKind {
        match pick {
            0 => DeviceKind::Reference,
            1 => DeviceKind::Simd,
            _ => DeviceKind::Tiled {
                tiles: 3,
                threads: 2,
            },
        }
    }
}

/// Runs all four pipelines under one engine config; returns results and
/// costs in a fixed order (selection results lifted into pair form).
fn run_all(
    config: EngineConfig,
    a: &PreparedDataset,
    b: &PreparedDataset,
    q: &spatial_geom::Polygon,
    d: f64,
) -> Vec<(Vec<(usize, usize)>, CostBreakdown)> {
    let mut e = SpatialEngine::new(config);
    let lift = |(r, c): (Vec<usize>, CostBreakdown)| {
        (r.into_iter().map(|i| (i, 0)).collect::<Vec<_>>(), c)
    };
    vec![
        lift(e.intersection_selection(a, q)),
        lift(e.containment_selection(a, q)),
        e.intersection_join(a, b),
        e.within_distance_join(a, b, d),
    ]
}

const PIPELINES: [&str; 4] = ["isect_sel", "contain_sel", "isect_join", "within_join"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Clean-path equivalence at `hw_batch = 1`: with per-pair submission
    /// there is no grouping freedom, so EVERY counter — including the
    /// batching diagnostics and the raw simulated-hardware work counters —
    /// must be bit-identical between the partitioned and unpartitioned
    /// engines, for every grid × shard combination from the pinned matrix.
    #[test]
    fn partitioned_clean_run_is_bit_identical(
        inner in arb_inner(),
        grid_pick in 0usize..3,
        shards_pick in 0usize..3,
    ) {
        let grid = [1usize, 2, 4][grid_pick];
        let shards = [1usize, 2, 4][shards_pick];
        let a = prepare(spatial_datagen::landc(0.0015, 31));
        let b = prepare(spatial_datagen::lando(0.0015, 31));
        let queries = spatial_datagen::states50(31);
        let q = &queries.polygons[0];
        let d = 0.02;
        let hw = HwConfig::at_resolution(8).with_threshold(0);
        let base = EngineConfig {
            device: inner,
            use_object_filters: true,
            ..EngineConfig::hardware(hw)
        };
        let flat = run_all(base.clone(), &a, &b, q, d);
        let part = run_all(
            EngineConfig {
                partition: PartitionConfig::grid(grid).with_shards(shards),
                ..base
            },
            &a, &b, q, d,
        );
        for (name, (u, p)) in PIPELINES.iter().zip(flat.iter().zip(&part)) {
            prop_assert_eq!(
                &u.0, &p.0,
                "{}: results changed under grid {} × shards {}", name, grid, shards
            );
            prop_assert_eq!(u.1.candidates, p.1.candidates, "{}", name);
            prop_assert_eq!(u.1.filter_hits, p.1.filter_hits, "{}", name);
            prop_assert_eq!(u.1.results, p.1.results, "{}", name);
            prop_assert_eq!(u.1.node_tests, p.1.node_tests, "{}", name);
            let (ut, pt) = (&u.1.tests, &p.1.tests);
            prop_assert_eq!(ut.decided_by_pip, pt.decided_by_pip, "{}", name);
            prop_assert_eq!(ut.rejected_by_hw, pt.rejected_by_hw, "{}", name);
            prop_assert_eq!(ut.software_tests, pt.software_tests, "{}", name);
            prop_assert_eq!(ut.skipped_by_threshold, pt.skipped_by_threshold, "{}", name);
            prop_assert_eq!(ut.width_limit_fallbacks, pt.width_limit_fallbacks, "{}", name);
            prop_assert_eq!(ut.hw_tests, pt.hw_tests, "{}", name);
            prop_assert_eq!(ut.hw_batches, pt.hw_batches, "{}: per-pair grouping", name);
            prop_assert_eq!(&ut.hw, &pt.hw, "{}: raw hardware work", name);
            prop_assert_eq!(ut.fallback_tests, 0, "{}: clean run", name);
            // The diagnostic may fan out but never exceeds the grid.
            prop_assert!(p.1.partitions_used <= grid * grid, "{}", name);
            prop_assert!(u.1.partitions_used <= 1, "{}", name);
        }
    }

    /// Batched + threaded clean-path equivalence: results and the
    /// deterministic counters still match (grouping diagnostics are free
    /// to move because partitions batch independently).
    #[test]
    fn partitioned_batched_run_preserves_results_and_counters(
        inner in arb_inner(),
        grid_pick in 0usize..3,
        shards_pick in 0usize..3,
    ) {
        let grid = [1usize, 2, 4][grid_pick];
        let shards = [1usize, 2, 4][shards_pick];
        let a = prepare(spatial_datagen::landc(0.0015, 32));
        let b = prepare(spatial_datagen::lando(0.0015, 32));
        let queries = spatial_datagen::states50(32);
        let q = &queries.polygons[1];
        let d = 0.02;
        let hw = HwConfig::at_resolution(8).with_threshold(0);
        let base = EngineConfig {
            device: inner,
            hw_batch: 16,
            refine_threads: 3,
            use_object_filters: true,
            ..EngineConfig::hardware(hw)
        };
        let flat = run_all(base.clone(), &a, &b, q, d);
        let part = run_all(
            EngineConfig {
                partition: PartitionConfig::grid(grid).with_shards(shards),
                ..base
            },
            &a, &b, q, d,
        );
        for (name, (u, p)) in PIPELINES.iter().zip(flat.iter().zip(&part)) {
            prop_assert_eq!(
                &u.0, &p.0,
                "{}: results changed under grid {} × shards {}", name, grid, shards
            );
            prop_assert_eq!(u.1.candidates, p.1.candidates, "{}", name);
            prop_assert_eq!(u.1.results, p.1.results, "{}", name);
            let (ut, pt) = (&u.1.tests, &p.1.tests);
            prop_assert_eq!(ut.decided_by_pip, pt.decided_by_pip, "{}", name);
            prop_assert_eq!(ut.rejected_by_hw, pt.rejected_by_hw, "{}", name);
            prop_assert_eq!(ut.software_tests, pt.software_tests, "{}", name);
            prop_assert_eq!(ut.hw_tests, pt.hw_tests, "{}", name);
        }
    }

    /// Fault composition: a partitioned engine whose shards each carry an
    /// independently-seeded copy of the fault plan still returns exactly
    /// the clean partitioned results, and the degradation ledger balances
    /// per pipeline.
    #[test]
    fn partitioned_faults_preserve_results_and_balance_the_ledger(
        plan in arb_plan(),
        inner in arb_inner(),
        grid_pick in 0usize..3,
        shards_pick in 0usize..3,
        batch in 1usize..3,
    ) {
        let grid = [1usize, 2, 4][grid_pick];
        let shards = [1usize, 2, 4][shards_pick];
        let a = prepare(spatial_datagen::landc(0.0015, 33));
        let b = prepare(spatial_datagen::lando(0.0015, 33));
        let queries = spatial_datagen::states50(33);
        let q = &queries.polygons[0];
        let d = 0.02;
        let hw = HwConfig::at_resolution(8).with_threshold(0);
        let base = EngineConfig {
            hw_batch: if batch > 1 { 16 } else { 1 },
            partition: PartitionConfig::grid(grid).with_shards(shards),
            use_object_filters: true,
            ..EngineConfig::hardware(hw)
        };
        let clean_cfg = EngineConfig { device: inner.clone(), ..base.clone() };
        let faulted_cfg = EngineConfig {
            device: inner.clone().with_faults(plan),
            ..base
        };
        let clean = run_all(clean_cfg, &a, &b, q, d);
        let faulted = run_all(faulted_cfg, &a, &b, q, d);
        for (name, (c, f)) in PIPELINES.iter().zip(clean.iter().zip(&faulted)) {
            prop_assert_eq!(
                &c.0, &f.0,
                "{}: results changed under {:?} with grid {} × shards {}",
                name, plan, grid, shards
            );
            let (ct, ft) = (&c.1.tests, &f.1.tests);
            prop_assert_eq!(
                ft.hw_tests + ft.fallback_tests,
                ct.hw_tests,
                "{}: hw {} + fallback {} != clean hw {} under {:?}",
                name, ft.hw_tests, ft.fallback_tests, ct.hw_tests, plan
            );
            prop_assert_eq!(ct.decided_by_pip, ft.decided_by_pip, "{}", name);
            prop_assert_eq!(ct.skipped_by_threshold, ft.skipped_by_threshold, "{}", name);
            prop_assert_eq!(c.1.candidates, f.1.candidates, "{}", name);
            prop_assert_eq!(c.1.results, f.1.results, "{}", name);
            prop_assert_eq!(c.1.partitions_used, f.1.partitions_used, "{}", name);
            if ft.device_faults == 0 {
                prop_assert_eq!(ft.retries, 0, "{}", name);
                prop_assert_eq!(ft.recovery_ns, 0, "{}", name);
            }
        }
    }
}
