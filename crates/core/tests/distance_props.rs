//! Adversarial query distances for the within-distance tests: the exact
//! MBR-touch values where `min_dist` rounding used to panic the pipeline
//! (the `expanded(d/2)` intersection coming back `None`), plus zero,
//! subnormal and ulp-perturbed distances. The per-pair and batched paths
//! must never panic, must agree with each other, and must agree with the
//! exact software predicate on the geometry they were given.

use hwa_core::hw_intersect::HwTester;
use hwa_core::{HwConfig, RecordingOptions, TestStats};
use proptest::prelude::*;
use spatial_geom::Polygon;

/// An axis-aligned rectangle as a polygon (degenerate-free: w, h > 0).
fn rect_poly(x: f64, y: f64, w: f64, h: f64) -> Polygon {
    Polygon::from_coords(&[(x, y), (x + w, y), (x + w, y + h), (x, y + h)])
}

/// The exact software predicate on the *full* edge sets — no frontier
/// restriction, no clipping. The pipeline restricts and clips the edge
/// sets before running the same pairwise kernel; agreeing with this
/// oracle proves those prefilters never drop a deciding edge, even when
/// `d` sits exactly on a representability boundary.
fn oracle(p: &Polygon, q: &Polygon, d: f64) -> bool {
    let ep: Vec<_> = p.edges().collect();
    let eq: Vec<_> = q.edges().collect();
    spatial_geom::distance::edges_within_pairwise(&ep, &eq, d)
}

/// The adversarial distance set for a pair: the exact MBR gap (the value
/// whose `expanded(d/2)` roundtrip used to panic), its ulp neighbours,
/// zero, a subnormal, and the gap's half and double.
fn adversarial_distances(p: &Polygon, q: &Polygon) -> Vec<f64> {
    let gap = p.mbr().min_dist(&q.mbr());
    let mut ds = vec![
        gap,
        f64::from_bits(gap.to_bits().saturating_add(1)),
        gap / 2.0,
        gap * 2.0,
        0.0,
        f64::MIN_POSITIVE,
        f64::from_bits(1), // smallest subnormal
    ];
    if gap > 0.0 {
        ds.push(f64::from_bits(gap.to_bits() - 1));
    }
    ds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Rectangles separated by an arbitrary f64 gap, queried at the gap
    /// itself and its neighbourhood: never panics, agrees with the exact
    /// predicate, per-pair and batch agree with each other.
    #[test]
    fn within_distance_survives_exact_touch_distances(
        x in -50.0f64..50.0,
        y in -30.0f64..30.0,
        w in 0.5f64..8.0,
        gap in 0.0f64..20.0,
        dy in -5.0f64..5.0,
        res in 1usize..17,
    ) {
        let p = rect_poly(x, y, w, 2.0);
        let q = rect_poly(x + w + gap, y + dy, w, 2.0);
        let mut t = HwTester::new(HwConfig::at_resolution(res));
        let mut cold = HwTester::new(
            HwConfig::at_resolution(res).with_recording(RecordingOptions::disabled()),
        );
        for d in adversarial_distances(&p, &q) {
            let expect = oracle(&p, &q, d);
            let mut st = TestStats::default();
            let got = t.within_distance(&p, &q, d, &mut st);
            prop_assert_eq!(
                got,
                expect,
                "d = {} ({:#x}), x={x:?} y={y:?} w={w:?} gap={gap:?} dy={dy:?} res={res}",
                d,
                d.to_bits()
            );

            let mut st = TestStats::default();
            let batch = t.within_distance_batch(&[(&p, &q), (&q, &p)], d, &mut st);
            prop_assert_eq!(batch, vec![expect, expect], "batch, d = {}", d);

            let mut st = TestStats::default();
            prop_assert_eq!(cold.within_distance(&p, &q, d, &mut st), expect,
                "recording features off, d = {}", d);
        }
    }

    /// The one-ulp hazard reconstructed directly: whenever the rounded
    /// half-expansions fail to intersect even though the MBR gate passes,
    /// the pipeline must take the software fallback (and charge it),
    /// not panic.
    #[test]
    fn failed_expansion_intersections_are_charged_fallbacks(
        x1 in -40.0f64..40.0,
        gap in 0.1f64..30.0,
    ) {
        let p = rect_poly(x1 - 2.0, 0.0, 2.0, 2.0);
        let q = rect_poly(x1 + gap, 0.0, 2.0, 2.0);
        let d = p.mbr().min_dist(&q.mbr());
        let half = d / 2.0;
        let hazard = p
            .mbr()
            .expanded(half)
            .intersection(&q.mbr().expanded(half))
            .is_none();
        let mut t = HwTester::new(HwConfig::at_resolution(8));
        let mut st = TestStats::default();
        let got = t.within_distance(&p, &q, d, &mut st);
        prop_assert_eq!(got, oracle(&p, &q, d));
        if hazard {
            prop_assert_eq!(st.width_limit_fallbacks, 1, "{:?}", st);
            prop_assert_eq!(st.hw_tests, 0);
        }
    }
}
