//! The headline invariants of the paper, property-tested: the
//! hardware-assisted tests are *exact* — equal to the software oracles —
//! at every window resolution, every overlap strategy, every threshold
//! and every query distance (DESIGN.md §5, invariants 1–2).

use hwa_core::hw_intersect::HwTester;
use hwa_core::{HwConfig, TestStats};
use proptest::prelude::*;
use spatial_geom::{min_dist_brute, polygons_intersect_brute, Point, Polygon};
use spatial_raster::OverlapStrategy;

fn star_polygon(cx: f64, cy: f64, radii: &[f64]) -> Polygon {
    let n = radii.len();
    let vertices: Vec<Point> = radii
        .iter()
        .enumerate()
        .map(|(i, &r)| {
            let a = (i as f64) * std::f64::consts::TAU / (n as f64);
            Point::new(cx + r * a.cos(), cy + r * a.sin())
        })
        .collect();
    Polygon::new(vertices).expect("star polygons are structurally valid")
}

prop_compose! {
    fn arb_star()(
        cx in -40.0f64..40.0,
        cy in -40.0f64..40.0,
        radii in prop::collection::vec(0.5f64..25.0, 3..20),
    ) -> Polygon {
        star_polygon(cx, cy, &radii)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Algorithm 3.1 == brute force, across resolutions.
    #[test]
    fn hw_intersects_is_exact(
        p in arb_star(),
        q in arb_star(),
        res in 1usize..33,
    ) {
        let oracle = polygons_intersect_brute(&p, &q);
        let mut t = HwTester::new(HwConfig::at_resolution(res));
        let mut st = TestStats::default();
        prop_assert_eq!(t.intersects(&p, &q, &mut st), oracle, "res {}", res);
    }

    /// The software threshold must never change results, only routing.
    #[test]
    fn sw_threshold_is_result_invariant(
        p in arb_star(),
        q in arb_star(),
        threshold in 0usize..2000,
    ) {
        let oracle = polygons_intersect_brute(&p, &q);
        let mut t = HwTester::new(HwConfig::at_resolution(8).with_threshold(threshold));
        let mut st = TestStats::default();
        prop_assert_eq!(t.intersects(&p, &q, &mut st), oracle);
    }

    /// All overlap strategies implement the same exact test.
    #[test]
    fn strategies_are_equivalent(p in arb_star(), q in arb_star()) {
        let oracle = polygons_intersect_brute(&p, &q);
        for strategy in [
            OverlapStrategy::Accumulation,
            OverlapStrategy::Blending,
            OverlapStrategy::Stencil,
        ] {
            let cfg = HwConfig { resolution: 8, sw_threshold: 0, strategy };
            let mut t = HwTester::new(cfg);
            let mut st = TestStats::default();
            prop_assert_eq!(t.intersects(&p, &q, &mut st), oracle, "{:?}", strategy);
        }
    }

    /// The distance test == oracle, across resolutions and distances,
    /// including the width-limit software fallback region.
    #[test]
    fn hw_within_distance_is_exact(
        p in arb_star(),
        q in arb_star(),
        res in 1usize..33,
        d in 0.0f64..120.0,
    ) {
        let oracle = min_dist_brute(&p, &q) <= d;
        let mut t = HwTester::new(HwConfig::at_resolution(res));
        let mut st = TestStats::default();
        prop_assert_eq!(
            t.within_distance(&p, &q, d, &mut st),
            oracle,
            "res {}, d {}", res, d
        );
    }

    /// A reused tester (retargeted context) must not leak state between
    /// pairs: run three tests back-to-back and compare each to its oracle.
    #[test]
    fn tester_reuse_is_stateless(
        a in arb_star(),
        b in arb_star(),
        c in arb_star(),
    ) {
        let mut t = HwTester::new(HwConfig::at_resolution(8));
        let mut st = TestStats::default();
        for (p, q) in [(&a, &b), (&b, &c), (&a, &c), (&a, &b)] {
            prop_assert_eq!(
                t.intersects(p, q, &mut st),
                polygons_intersect_brute(p, q)
            );
        }
    }

    /// Strict containment (hardware) equals the brute-force definition at
    /// every resolution: one vertex inside plus all-pairs disjoint edges.
    #[test]
    fn hw_containment_is_exact(
        p in arb_star(),
        q in arb_star(),
        res in 1usize..17,
    ) {
        let oracle = q.mbr().contains_rect(&p.mbr())
            && spatial_geom::point_in_polygon(p.vertices()[0], &q)
            && p.edges().all(|ep| q.edges().all(|eq| !ep.intersects(&eq)));
        let mut t = HwTester::new(HwConfig::at_resolution(res));
        let mut st = TestStats::default();
        prop_assert_eq!(t.contained_in(&p, &q, &mut st), oracle, "res {}", res);
    }

    /// Hardware rejections really are rejections the software sweep would
    /// also produce (no lost positives — conservative filtering).
    #[test]
    fn hw_rejections_are_true_negatives(
        p in arb_star(),
        q in arb_star(),
        res in 1usize..17,
    ) {
        let mut t = HwTester::new(HwConfig::at_resolution(res));
        let mut st = TestStats::default();
        let result = t.intersects(&p, &q, &mut st);
        if st.rejected_by_hw > 0 {
            prop_assert!(!result);
            prop_assert!(!polygons_intersect_brute(&p, &q),
                "hardware rejected a truly intersecting pair");
        }
    }
}
