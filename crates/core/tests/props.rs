//! The headline invariants of the paper, property-tested: the
//! hardware-assisted tests are *exact* — equal to the software oracles —
//! at every window resolution, every overlap strategy, every threshold
//! and every query distance (DESIGN.md §5, invariants 1–2).

use hwa_core::hw_intersect::HwTester;
use hwa_core::{FilterStats, HardwareBackend, HwConfig, Predicate, StagedExecutor, TestStats};
use proptest::prelude::*;
use spatial_geom::{min_dist_brute, polygons_intersect_brute, Point, Polygon};
use spatial_raster::OverlapStrategy;

fn star_polygon(cx: f64, cy: f64, radii: &[f64]) -> Polygon {
    let n = radii.len();
    let vertices: Vec<Point> = radii
        .iter()
        .enumerate()
        .map(|(i, &r)| {
            let a = (i as f64) * std::f64::consts::TAU / (n as f64);
            Point::new(cx + r * a.cos(), cy + r * a.sin())
        })
        .collect();
    Polygon::new(vertices).expect("star polygons are structurally valid")
}

prop_compose! {
    fn arb_star()(
        cx in -40.0f64..40.0,
        cy in -40.0f64..40.0,
        radii in prop::collection::vec(0.5f64..25.0, 3..20),
    ) -> Polygon {
        star_polygon(cx, cy, &radii)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Algorithm 3.1 == brute force, across resolutions.
    #[test]
    fn hw_intersects_is_exact(
        p in arb_star(),
        q in arb_star(),
        res in 1usize..33,
    ) {
        let oracle = polygons_intersect_brute(&p, &q);
        let mut t = HwTester::new(HwConfig::at_resolution(res));
        let mut st = TestStats::default();
        prop_assert_eq!(t.intersects(&p, &q, &mut st), oracle, "res {}", res);
    }

    /// The software threshold must never change results, only routing.
    #[test]
    fn sw_threshold_is_result_invariant(
        p in arb_star(),
        q in arb_star(),
        threshold in 0usize..2000,
    ) {
        let oracle = polygons_intersect_brute(&p, &q);
        let mut t = HwTester::new(HwConfig::at_resolution(8).with_threshold(threshold));
        let mut st = TestStats::default();
        prop_assert_eq!(t.intersects(&p, &q, &mut st), oracle);
    }

    /// All overlap strategies implement the same exact test.
    #[test]
    fn strategies_are_equivalent(p in arb_star(), q in arb_star()) {
        let oracle = polygons_intersect_brute(&p, &q);
        for strategy in [
            OverlapStrategy::Accumulation,
            OverlapStrategy::Blending,
            OverlapStrategy::Stencil,
        ] {
            let cfg = HwConfig { resolution: 8, sw_threshold: 0, strategy, ..HwConfig::recommended() };
            let mut t = HwTester::new(cfg);
            let mut st = TestStats::default();
            prop_assert_eq!(t.intersects(&p, &q, &mut st), oracle, "{:?}", strategy);
        }
    }

    /// The distance test == oracle, across resolutions and distances,
    /// including the width-limit software fallback region.
    #[test]
    fn hw_within_distance_is_exact(
        p in arb_star(),
        q in arb_star(),
        res in 1usize..33,
        d in 0.0f64..120.0,
    ) {
        let oracle = min_dist_brute(&p, &q) <= d;
        let mut t = HwTester::new(HwConfig::at_resolution(res));
        let mut st = TestStats::default();
        prop_assert_eq!(
            t.within_distance(&p, &q, d, &mut st),
            oracle,
            "res {}, d {}", res, d
        );
    }

    /// A reused tester (retargeted context) must not leak state between
    /// pairs: run three tests back-to-back and compare each to its oracle.
    #[test]
    fn tester_reuse_is_stateless(
        a in arb_star(),
        b in arb_star(),
        c in arb_star(),
    ) {
        let mut t = HwTester::new(HwConfig::at_resolution(8));
        let mut st = TestStats::default();
        for (p, q) in [(&a, &b), (&b, &c), (&a, &c), (&a, &b)] {
            prop_assert_eq!(
                t.intersects(p, q, &mut st),
                polygons_intersect_brute(p, q)
            );
        }
    }

    /// Strict containment (hardware) equals the brute-force definition at
    /// every resolution: one vertex inside plus all-pairs disjoint edges.
    #[test]
    fn hw_containment_is_exact(
        p in arb_star(),
        q in arb_star(),
        res in 1usize..17,
    ) {
        let oracle = q.mbr().contains_rect(&p.mbr())
            && spatial_geom::point_in_polygon(p.vertices()[0], &q)
            && p.edges().all(|ep| q.edges().all(|eq| !ep.intersects(&eq)));
        let mut t = HwTester::new(HwConfig::at_resolution(res));
        let mut st = TestStats::default();
        prop_assert_eq!(t.contained_in(&p, &q, &mut st), oracle, "res {}", res);
    }

    /// Hardware rejections really are rejections the software sweep would
    /// also produce (no lost positives — conservative filtering).
    #[test]
    fn hw_rejections_are_true_negatives(
        p in arb_star(),
        q in arb_star(),
        res in 1usize..17,
    ) {
        let mut t = HwTester::new(HwConfig::at_resolution(res));
        let mut st = TestStats::default();
        let result = t.intersects(&p, &q, &mut st);
        if st.rejected_by_hw > 0 {
            prop_assert!(!result);
            prop_assert!(!polygons_intersect_brute(&p, &q),
                "hardware rejected a truly intersecting pair");
        }
    }

    /// Batched atlas submission == per-pair choreography == software
    /// oracle for the intersection test, across resolutions; routing
    /// counters are a pure function of the pairs, not the submission mode.
    #[test]
    fn batched_intersects_is_exact(
        polys in prop::collection::vec(arb_star(), 2..7),
        res in 1usize..17,
    ) {
        let pairs: Vec<(&Polygon, &Polygon)> = (0..polys.len())
            .flat_map(|i| (0..polys.len()).map(move |j| (i, j)))
            .filter(|&(i, j)| i < j)
            .map(|(i, j)| (&polys[i], &polys[j]))
            .collect();
        let mut tb = HwTester::new(HwConfig::at_resolution(res));
        let mut sb = TestStats::default();
        let batched = tb.intersects_batch(&pairs, &mut sb);
        let mut tp = HwTester::new(HwConfig::at_resolution(res));
        let mut sp = TestStats::default();
        let per_pair: Vec<bool> = pairs
            .iter()
            .map(|&(p, q)| tp.intersects(p, q, &mut sp))
            .collect();
        let oracle: Vec<bool> = pairs
            .iter()
            .map(|&(p, q)| polygons_intersect_brute(p, q))
            .collect();
        prop_assert_eq!(&batched, &per_pair, "res {}", res);
        prop_assert_eq!(&batched, &oracle, "res {}", res);
        prop_assert_eq!(sb.hw_tests, sp.hw_tests);
        prop_assert_eq!(sb.rejected_by_hw, sp.rejected_by_hw);
        prop_assert_eq!(sb.decided_by_pip, sp.decided_by_pip);
        prop_assert_eq!(sb.software_tests, sp.software_tests);
    }

    /// Same exactness for the batched §3.1 within-distance test, whose
    /// atlas rounds also group pairs by Equation (1) line width.
    #[test]
    fn batched_within_distance_is_exact(
        polys in prop::collection::vec(arb_star(), 2..6),
        res in 1usize..17,
        d in 0.0f64..90.0,
    ) {
        let pairs: Vec<(&Polygon, &Polygon)> = (0..polys.len())
            .flat_map(|i| (0..polys.len()).map(move |j| (i, j)))
            .filter(|&(i, j)| i < j)
            .map(|(i, j)| (&polys[i], &polys[j]))
            .collect();
        let mut tb = HwTester::new(HwConfig::at_resolution(res));
        let mut sb = TestStats::default();
        let batched = tb.within_distance_batch(&pairs, d, &mut sb);
        let mut tp = HwTester::new(HwConfig::at_resolution(res));
        let mut sp = TestStats::default();
        let per_pair: Vec<bool> = pairs
            .iter()
            .map(|&(p, q)| tp.within_distance(p, q, d, &mut sp))
            .collect();
        let oracle: Vec<bool> = pairs
            .iter()
            .map(|&(p, q)| min_dist_brute(p, q) <= d)
            .collect();
        prop_assert_eq!(&batched, &per_pair, "res {}, d {}", res, d);
        prop_assert_eq!(&batched, &oracle, "res {}, d {}", res, d);
        prop_assert_eq!(sb.hw_tests, sp.hw_tests);
        prop_assert_eq!(sb.rejected_by_hw, sp.rejected_by_hw);
        prop_assert_eq!(sb.width_limit_fallbacks, sp.width_limit_fallbacks);
    }

    /// Parallel refinement is bit-identical to sequential: same results,
    /// same merged counters (and hence the same modeled GPU time), for
    /// any thread count and either submission mode.
    #[test]
    fn parallel_refinement_is_bit_identical(
        polys in prop::collection::vec(arb_star(), 3..8),
        threads in 2usize..6,
        batch in 1usize..5,
    ) {
        let cands: Vec<(usize, usize)> = (0..polys.len())
            .flat_map(|i| (0..polys.len()).map(move |j| (i, j)))
            .filter(|&(i, j)| i < j)
            .collect();
        let run = |threads: usize| {
            let exec = StagedExecutor { batch, threads, partitions: 1, shards: 1 };
            let mut backend = HardwareBackend::new(HwConfig::at_resolution(8));
            exec.run(
                &mut backend,
                Predicate::Intersects,
                || (cands.clone(), FilterStats::default()),
                Vec::new(),
                |_| 0,
                |(i, j)| (&polys[i], &polys[j]),
            )
        };
        let (r1, c1) = run(1);
        let (rn, cn) = run(threads);
        prop_assert_eq!(r1, rn, "threads {}", threads);
        prop_assert_eq!(c1.tests.hw_tests, cn.tests.hw_tests);
        prop_assert_eq!(c1.tests.rejected_by_hw, cn.tests.rejected_by_hw);
        prop_assert_eq!(c1.tests.software_tests, cn.tests.software_tests);
        prop_assert_eq!(c1.tests.decided_by_pip, cn.tests.decided_by_pip);
        prop_assert_eq!(c1.tests.hw_batches, cn.tests.hw_batches);
        prop_assert_eq!(c1.tests.hw, cn.tests.hw);
        prop_assert_eq!(c1.tests.gpu_modeled, cn.tests.gpu_modeled);
    }
}
