//! The aggregation contract, property-tested (DESIGN.md §14): the
//! area-of-overlap pipeline's quantized answer sits inside the per-pixel
//! quantization envelope of the exact clipped-polygon oracle at every
//! resolution, and is bit-identical across device backends, partition
//! grids, shard counts, refine-thread counts and seeded fault plans.
//!
//! The envelope is the geometric one from §14: the fill rule emits a
//! cell iff its center lies inside `P ∩ Q`, so hardware and oracle can
//! disagree only on cells the clipped boundary passes through. A segment
//! crosses at most `2·res + 3` cells of a `res × res` grid, and the
//! clipped boundary has at most `2·(Vp + Vq)` segments, giving the
//! always-sound (if generous) bound asserted here.

use hwa_core::engine::{EngineConfig, PartitionConfig, PreparedDataset, SpatialEngine};
use hwa_core::hw_intersect::HwTester;
use hwa_core::hw_overlap::{overlap_cell_area, sw_overlap_area};
use hwa_core::{DeviceKind, FaultKind, FaultPlan, FaultTrigger, HwConfig, TestStats};
use proptest::prelude::*;
use spatial_geom::{overlap_area_exact, Point, Polygon};

fn star_polygon(cx: f64, cy: f64, radii: &[f64]) -> Polygon {
    let n = radii.len();
    let vertices: Vec<Point> = radii
        .iter()
        .enumerate()
        .map(|(i, &r)| {
            let a = (i as f64) * std::f64::consts::TAU / (n as f64);
            Point::new(cx + r * a.cos(), cy + r * a.sin())
        })
        .collect();
    Polygon::new(vertices).expect("star polygons are structurally valid")
}

prop_compose! {
    fn arb_star()(
        cx in -30.0f64..30.0,
        cy in -30.0f64..30.0,
        radii in prop::collection::vec(0.5f64..20.0, 3..16),
    ) -> Polygon {
        star_polygon(cx, cy, &radii)
    }
}

prop_compose! {
    fn arb_plan()(
        seed in 0u64..u64::MAX,
        kind_pick in 0usize..4,
        trigger_pick in 0usize..3,
        n in 0u64..5,
        k in 1u64..4,
    ) -> FaultPlan {
        let kind = match kind_pick {
            0 => FaultKind::ContextLost,
            1 => FaultKind::OutOfMemory,
            2 => FaultKind::Timeout,
            _ => FaultKind::ReadbackBitFlip,
        };
        let trigger = match trigger_pick {
            0 => FaultTrigger::OnExecute(n),
            1 => FaultTrigger::OnCommand(n * 5),
            _ => FaultTrigger::EveryK(k),
        };
        FaultPlan::new(seed, kind, trigger)
    }
}

prop_compose! {
    fn arb_device()(pick in 0usize..4) -> DeviceKind {
        match pick {
            0 => DeviceKind::Reference,
            1 => DeviceKind::Simd,
            2 => DeviceKind::Tiled { tiles: 3, threads: 2 },
            _ => DeviceKind::TiledSimd { tiles: 4, threads: 2 },
        }
    }
}

/// The §14 quantization envelope, in world area, for one measured pair.
fn envelope(p: &Polygon, q: &Polygon, res: usize) -> f64 {
    let region = p
        .mbr()
        .intersection(&q.mbr())
        .expect("called only for measured pairs");
    let segments = 2.0 * (p.vertex_count() + q.vertex_count()) as f64;
    segments * (2.0 * res as f64 + 3.0) * overlap_cell_area(region, res)
}

fn prepare(ds: spatial_datagen::Dataset) -> PreparedDataset {
    PreparedDataset::new(ds.name, ds.polygons)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// |hw − exact| ≤ envelope, for arbitrary (concave) star pairs at
    /// every resolution — and the hardware and software execution paths
    /// answer the identical quantized bits.
    #[test]
    fn overlap_area_is_within_the_quantization_envelope(
        p in arb_star(),
        q in arb_star(),
        res in 1usize..49,
    ) {
        let mut t = HwTester::new(HwConfig::recommended());
        let mut st = TestStats::default();
        let hw = t.overlap_area(&p, &q, res, &mut st);
        let sw = sw_overlap_area(&p, &q, res);
        prop_assert_eq!(hw.to_bits(), sw.to_bits(), "sw/hw split at res {}", res);

        // Star polygons are simple by construction; skip the rare input
        // the triangulator rejects for numeric reasons rather than fail.
        let Some(exact) = overlap_area_exact(&p, &q) else { return Ok(()) };
        if p.mbr().intersection(&q.mbr()).is_some() {
            prop_assert!(
                (hw - exact).abs() <= envelope(&p, &q, res),
                "res {}: hw {} exact {} envelope {}",
                res, hw, exact, envelope(&p, &q, res)
            );
        } else {
            prop_assert_eq!(hw, 0.0);
            prop_assert!(exact.abs() < 1e-9);
        }
    }

    /// Device backends are interchangeable bit-for-bit for aggregations,
    /// including their charged hardware work counters.
    #[test]
    fn overlap_area_is_bit_identical_across_devices(
        p in arb_star(),
        q in arb_star(),
        res in 1usize..33,
        device in arb_device(),
    ) {
        let reference = {
            let mut t = HwTester::new(HwConfig::recommended());
            let mut st = TestStats::default();
            (t.overlap_area(&p, &q, res, &mut st), st.hw)
        };
        let mut t = HwTester::with_device(HwConfig::recommended(), device.clone());
        let mut st = TestStats::default();
        let area = t.overlap_area(&p, &q, res, &mut st);
        prop_assert_eq!(area.to_bits(), reference.0.to_bits(), "{:?}", device);
        prop_assert_eq!(&st.hw, &reference.1, "{:?} charged differently", device);
    }

    /// Seeded fault plans never change a reported area: the fallback
    /// replays the same recorded list, and the invariant-14 ledger
    /// balances (`hw_tests + fallback_tests` = clean `hw_tests`).
    #[test]
    fn faulted_overlap_area_is_bit_identical_with_balanced_ledger(
        p in arb_star(),
        q in arb_star(),
        res in 1usize..33,
        plan in arb_plan(),
        device in arb_device(),
    ) {
        let (clean_area, clean_st) = {
            let mut t = HwTester::with_device(HwConfig::recommended(), device.clone());
            let mut st = TestStats::default();
            (t.overlap_area(&p, &q, res, &mut st), st)
        };
        let mut t = HwTester::with_device(
            HwConfig::recommended(),
            DeviceKind::Fault { inner: Box::new(device.clone()), plan },
        );
        let mut st = TestStats::default();
        let area = t.overlap_area(&p, &q, res, &mut st);
        prop_assert_eq!(area.to_bits(), clean_area.to_bits(), "{:?}", device);
        prop_assert_eq!(st.overlap_tests, clean_st.overlap_tests);
        prop_assert_eq!(
            st.hw_tests + st.fallback_tests,
            clean_st.hw_tests,
            "degradation ledger must balance"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The full aggregation pipeline (invariant 12 extended): partition
    /// grid, shard count, refine threads, device kind and a seeded fault
    /// plan may move work anywhere, but every `(i, j, area)` row is
    /// bit-identical to the flat single-threaded clean run.
    #[test]
    fn overlap_join_rows_survive_partitions_shards_threads_and_faults(
        grid_pick in 0usize..3,
        shards_pick in 0usize..3,
        threads in 1usize..5,
        res_pick in 0usize..3,
        device in arb_device(),
        plan in arb_plan(),
    ) {
        let grid = [1usize, 2, 4][grid_pick];
        let shards = [1usize, 2, 4][shards_pick];
        let res = [4usize, 8, 32][res_pick];
        let a = prepare(spatial_datagen::landc(0.002, 17));
        let b = prepare(spatial_datagen::lando(0.002, 17));
        let base_cfg = EngineConfig::hardware(HwConfig::recommended());
        let (base, base_cost) =
            SpatialEngine::new(base_cfg.clone()).overlap_area_join(&a, &b, res);
        prop_assert!(!base.is_empty(), "BaseD-scale datasets overlap");

        let shaped_cfg = EngineConfig {
            device: DeviceKind::Fault { inner: Box::new(device.clone()), plan },
            partition: PartitionConfig::grid(grid).with_shards(shards),
            refine_threads: threads,
            ..base_cfg
        };
        let (rows, cost) = SpatialEngine::new(shaped_cfg).overlap_area_join(&a, &b, res);
        prop_assert_eq!(rows.len(), base.len());
        for ((i, j, ar), (bi, bj, br)) in rows.iter().zip(&base) {
            prop_assert_eq!((i, j), (bi, bj));
            prop_assert_eq!(
                ar.to_bits(), br.to_bits(),
                "pair ({}, {}) drifted under g{} s{} t{} {:?}",
                i, j, grid, shards, threads, device
            );
        }
        prop_assert_eq!(cost.tests.overlap_tests, base_cost.tests.overlap_tests);
        prop_assert_eq!(
            cost.tests.hw_tests + cost.tests.fallback_tests,
            base_cost.tests.hw_tests,
            "degradation ledger must balance under faults"
        );
    }
}
