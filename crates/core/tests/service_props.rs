//! The serving-layer headline property (DESIGN.md invariant 13): for
//! ANY seeded workload, device and fault plan, a query served under the
//! adaptive replay-cost planner returns rows bit-identical to the same
//! query forced through the software backend AND forced through the
//! hardware backend, on all four pipelines — and every engine's
//! [`ServiceStats`] ledger balances.
//!
//! The planner only ever picks *which exact backend* refines; the
//! backend-independent pipeline counters (candidate set, intermediate
//! filter hits, result count, R-tree node tests) therefore must also be
//! bit-identical across the three modes. Geometry-test counters
//! (hw_tests vs software_tests) legitimately differ — that is the whole
//! point of planning — and are not compared.

use hwa_core::service::{
    PlannerConfig, PlannerMode, QueryEngine, QueryRequest, ServiceConfig, ServiceSnapshot,
};
use hwa_core::{
    CostBreakdown, DeviceKind, EngineConfig, FaultKind, FaultPlan, FaultTrigger, HwConfig,
    PreparedDataset,
};
use proptest::prelude::*;

fn snapshot(seed: u64) -> ServiceSnapshot {
    ServiceSnapshot::new()
        .with(PreparedDataset::new(
            "landc",
            spatial_datagen::landc(0.0015, seed).polygons,
        ))
        .with(PreparedDataset::new(
            "lando",
            spatial_datagen::lando(0.0015, seed).polygons,
        ))
}

/// The four pipelines as service requests against the snapshot above.
fn requests(seed: u64, d: f64) -> Vec<QueryRequest> {
    let queries = spatial_datagen::states50(seed);
    let q = queries.polygons[(seed % queries.polygons.len() as u64) as usize].clone();
    vec![
        QueryRequest::intersection_selection("landc", q.clone()),
        QueryRequest::containment_selection("landc", q),
        QueryRequest::intersection_join("landc", "lando"),
        QueryRequest::within_distance_join("landc", "lando", d),
    ]
}

const PIPELINES: [&str; 4] = ["isect_sel", "contain_sel", "isect_join", "within_join"];

/// Serves all four pipelines under one planner mode on a fresh engine;
/// returns rows (as pairs) + costs, after asserting the ledger balances.
fn serve_all(
    mode: PlannerMode,
    device: DeviceKind,
    seed: u64,
    d: f64,
) -> Vec<(Vec<(usize, usize)>, CostBreakdown)> {
    let config = ServiceConfig {
        base: EngineConfig {
            device,
            use_object_filters: true,
            ..EngineConfig::hardware(HwConfig::at_resolution(8).with_threshold(0))
        },
        planner: PlannerConfig {
            mode,
            ..PlannerConfig::default()
        },
        ..ServiceConfig::default()
    };
    let engine = QueryEngine::new(config, snapshot(seed));
    let out = requests(seed, d)
        .iter()
        .map(|req| {
            let resp = engine.execute(req).expect("no budget set, must complete");
            (resp.rows.as_pairs(), resp.cost)
        })
        .collect();
    let stats = engine.stats();
    assert!(stats.balanced(), "unbalanced ledger: {stats:?}");
    assert_eq!(stats.submitted, 4);
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.planned_hw + stats.planned_sw, 4);
    match mode {
        PlannerMode::ForceSoftware => assert_eq!(stats.planned_sw, 4),
        PlannerMode::ForceHardware => assert_eq!(stats.planned_hw, 4),
        PlannerMode::Adaptive => {
            assert_eq!(stats.plan_cache_hits + stats.plan_cache_misses, 4)
        }
    }
    out
}

prop_compose! {
    fn arb_plan()(
        seed in 0u64..u64::MAX,
        kind_pick in 0usize..4,
        trigger_pick in 0usize..3,
        n in 0u64..5,
        k in 1u64..4,
    ) -> FaultPlan {
        let kind = match kind_pick {
            0 => FaultKind::ContextLost,
            1 => FaultKind::OutOfMemory,
            2 => FaultKind::Timeout,
            _ => FaultKind::ReadbackBitFlip,
        };
        let trigger = match trigger_pick {
            0 => FaultTrigger::OnExecute(n),
            1 => FaultTrigger::OnCommand(n * 5),
            _ => FaultTrigger::EveryK(k),
        };
        FaultPlan::new(seed, kind, trigger)
    }
}

prop_compose! {
    fn arb_inner()(pick in 0usize..3) -> DeviceKind {
        match pick {
            0 => DeviceKind::Reference,
            1 => DeviceKind::Simd,
            _ => DeviceKind::Tiled { tiles: 3, threads: 2 },
        }
    }
}

/// Asserts invariant 13 across the three planner modes for one device.
fn assert_plan_invariant(device: DeviceKind, seed: u64, d: f64) -> Result<(), TestCaseError> {
    let adaptive = serve_all(PlannerMode::Adaptive, device.clone(), seed, d);
    let forced_sw = serve_all(PlannerMode::ForceSoftware, device.clone(), seed, d);
    let forced_hw = serve_all(PlannerMode::ForceHardware, device, seed, d);
    for (name, ((ad, sw), hw)) in PIPELINES
        .iter()
        .zip(adaptive.iter().zip(&forced_sw).zip(&forced_hw))
    {
        prop_assert_eq!(&ad.0, &sw.0, "{}: adaptive != forced-software rows", name);
        prop_assert_eq!(&ad.0, &hw.0, "{}: adaptive != forced-hardware rows", name);
        for (other, label) in [(sw, "software"), (hw, "hardware")] {
            prop_assert_eq!(ad.1.candidates, other.1.candidates, "{} vs {}", name, label);
            prop_assert_eq!(
                ad.1.filter_hits,
                other.1.filter_hits,
                "{} vs {}",
                name,
                label
            );
            prop_assert_eq!(ad.1.results, other.1.results, "{} vs {}", name, label);
            prop_assert_eq!(ad.1.node_tests, other.1.node_tests, "{} vs {}", name, label);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Clean devices: planner choice is invisible in rows and in every
    /// backend-independent counter.
    #[test]
    fn planner_choice_never_changes_results(
        inner in arb_inner(),
        seed in 1u64..500,
    ) {
        assert_plan_invariant(inner, seed, 0.02)?;
    }

    /// Fault-wrapped devices: the supervisor's exact software fallback
    /// keeps the invariant intact even while the hardware plans degrade.
    #[test]
    fn planner_choice_never_changes_results_under_faults(
        inner in arb_inner(),
        plan in arb_plan(),
        seed in 1u64..500,
    ) {
        assert_plan_invariant(inner.with_faults(plan), seed, 0.02)?;
    }
}

/// Deterministic spot-check that adaptive planning actually exercises
/// both sides of the crossover on a realistic workload mix: tiny
/// selections plan software, a dense join at threshold 0 plans
/// hardware. (The property tests above prove the choice is *safe*;
/// this pins that it is *live*.)
#[test]
fn adaptive_planner_uses_both_backends() {
    let square = |x: f64, y: f64| {
        spatial_geom::Polygon::from_coords(&[
            (x, y),
            (x + 2.0, y),
            (x + 2.0, y + 2.0),
            (x, y + 2.0),
        ])
    };
    let boxes: Vec<_> = (0..8).map(|i| square(i as f64 * 1.5, 0.0)).collect();
    let engine = QueryEngine::new(
        ServiceConfig {
            base: EngineConfig::hardware(HwConfig::at_resolution(8).with_threshold(0)),
            ..ServiceConfig::default()
        },
        ServiceSnapshot::new().with(PreparedDataset::new("boxes", boxes)),
    );
    // A selection over a handful of 4-vertex squares: the software
    // sweep estimate (~80 ns/pair) can never justify the fixed draw +
    // readback overhead, so the plan must be software.
    let window = square(1.0, 0.5);
    let sel = engine
        .execute(&QueryRequest::intersection_selection(
            "boxes",
            window.clone(),
        ))
        .unwrap();
    assert!(
        !sel.plan.is_hardware(),
        "tiny selection should plan software, got {:?}",
        sel.plan
    );
    // Repeat shape: second plan comes from the memo.
    let again = engine
        .execute(&QueryRequest::intersection_selection("boxes", window))
        .unwrap();
    assert!(again.plan_cached, "repeat shape should hit the plan memo");
    assert_eq!(again.plan, sel.plan);
    let stats = engine.stats();
    assert!(stats.balanced());
    assert_eq!(stats.plan_cache_hits, 1);

    // A join over dense many-vertex rings: the software sweep estimate
    // (~vertices × 10 ns per pair) dwarfs the modeled raster cost, so
    // the planner must cross over to hardware.
    let ring = |cx: f64, cy: f64, n: usize| {
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64 * std::f64::consts::TAU;
                (cx + 4.0 * t.cos(), cy + 4.0 * t.sin())
            })
            .collect();
        spatial_geom::Polygon::from_coords(&pts)
    };
    let dense_a: Vec<_> = (0..6).map(|i| ring(i as f64 * 0.5, 0.0, 400)).collect();
    let dense_b: Vec<_> = (0..6).map(|i| ring(i as f64 * 0.5, 1.0, 400)).collect();
    let dense = QueryEngine::new(
        ServiceConfig {
            base: EngineConfig::hardware(HwConfig::at_resolution(8).with_threshold(0)),
            ..ServiceConfig::default()
        },
        ServiceSnapshot::new()
            .with(PreparedDataset::new("rings-a", dense_a))
            .with(PreparedDataset::new("rings-b", dense_b)),
    );
    let join = dense
        .execute(&QueryRequest::intersection_join("rings-a", "rings-b"))
        .unwrap();
    assert!(
        join.plan.is_hardware(),
        "dense join should plan hardware, got {:?}",
        join.plan
    );
    assert!(dense.stats().balanced());
}

/// Unknown datasets are a counted, non-fatal outcome.
#[test]
fn unknown_dataset_is_accounted() {
    let engine = QueryEngine::new(ServiceConfig::default(), snapshot(7));
    let queries = spatial_datagen::states50(7);
    let err = engine
        .execute(&QueryRequest::intersection_selection(
            "no-such-dataset",
            queries.polygons[0].clone(),
        ))
        .unwrap_err();
    assert!(matches!(
        err,
        hwa_core::service::ServiceError::UnknownDataset(_)
    ));
    let stats = engine.stats();
    assert!(stats.balanced());
    assert_eq!(stats.unknown_dataset, 1);
    assert_eq!(stats.completed, 0);
}
