//! Golden command-stream snapshots: the recorded choreography for a fixed
//! scene is part of the crate's contract. A change to the serialized
//! stream means the hardware submission pattern changed — deliberate
//! changes regenerate the files with `UPDATE_GOLDEN=1 cargo test -p
//! hwa-core --test golden`; accidental ones fail here.
//!
//! Each test also executes the stream and pins the readback verdict, so a
//! stream that still serializes identically but rasterizes differently is
//! caught too.

use hwa_core::HwTester;
use spatial_geom::{Polygon, Rect};
use spatial_raster::{DeviceKind, OverlapStrategy};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `got` against the committed golden file, or rewrites the file
/// when `UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with UPDATE_GOLDEN=1", name));
    assert_eq!(
        got, want,
        "command stream for {name} changed; regenerate with UPDATE_GOLDEN=1 if deliberate"
    );
}

/// The fixed scene: two overlapping unit-ish squares in a 16×16 window.
/// Their boundaries cross, so every strategy's verdict is "overlap".
fn fixed_pair() -> (Polygon, Polygon, Rect) {
    let p = Polygon::from_coords(&[(2.0, 2.0), (10.0, 2.0), (10.0, 10.0), (2.0, 10.0)]);
    let q = Polygon::from_coords(&[(6.0, 6.0), (14.0, 6.0), (14.0, 14.0), (6.0, 14.0)]);
    let region = p.mbr().intersection(&q.mbr()).expect("MBRs overlap");
    (p, q, region)
}

fn check_strategy(strategy: OverlapStrategy, name: &str) {
    let (p, q, region) = fixed_pair();
    let (list, slot) = HwTester::record_segment_test(region, 16, strategy, p.edges(), q.edges());
    assert_golden(name, &list.serialize());

    // Execute on both devices and pin the verdict value itself — the
    // boundaries cross, so accumulation/blending reach exactly full white
    // (0.5 + 0.5) and the stencil counts exactly two boundary layers.
    for device in [
        DeviceKind::Reference,
        DeviceKind::Tiled {
            tiles: 4,
            threads: 2,
        },
    ] {
        let exec = device
            .build()
            .execute(&list)
            .expect("clean devices never fault");
        match strategy {
            OverlapStrategy::Stencil => {
                assert_eq!(exec.stencil_value(slot), Ok(2), "{device:?}")
            }
            _ => assert_eq!(exec.max_red(slot), Ok(1.0), "{device:?}"),
        }
    }
}

#[test]
fn accumulation_stream_is_stable() {
    check_strategy(OverlapStrategy::Accumulation, "segment_accumulation.txt");
}

#[test]
fn blending_stream_is_stable() {
    check_strategy(OverlapStrategy::Blending, "segment_blending.txt");
}

#[test]
fn stencil_stream_is_stable() {
    check_strategy(OverlapStrategy::Stencil, "segment_stencil.txt");
}

/// The atlas batch stream: two pairs rendered as cells of one list. Pins
/// the scissor/viewport interleave, the merged draw calls and the single
/// cell-reduction readback.
#[test]
fn atlas_batch_stream_is_stable() {
    use spatial_raster::atlas::record_batch;
    use spatial_raster::{AtlasJob, Viewport};
    let (p, q, region) = fixed_pair();
    let far = Polygon::from_coords(&[(40.0, 40.0), (44.0, 40.0), (44.0, 44.0), (40.0, 44.0)]);
    let jobs: Vec<AtlasJob> = [(&p, &q), (&p, &far)]
        .iter()
        .map(|&(a, b)| AtlasJob {
            viewport: Viewport::new(region, 8, 8),
            first_segments: a.edges().collect(),
            first_points: Vec::new(),
            second_segments: b.edges().collect(),
            second_points: Vec::new(),
        })
        .collect();
    let (list, slot) = record_batch(&jobs, spatial_raster::aa_line::DIAGONAL_WIDTH, 1.0);
    assert_golden("atlas_batch.txt", &list.serialize());

    let exec = DeviceKind::Reference
        .build()
        .execute(&list)
        .expect("clean devices never fault");
    let flags: Vec<bool> = exec
        .cell_max(slot)
        .expect("record_batch returns its own cell-readback slot")
        .iter()
        .map(|&m| m >= 1.0)
        .collect();
    assert_eq!(flags, vec![true, false]);
}
