//! Chaos properties for the resilience ladder (DESIGN.md §13): for ANY
//! seeded per-shard fault schedule — targeted at one shard or salted
//! across all of them — every pipeline's results stay bit-identical to
//! the clean sharded run, the failover ledger balances (invariant 14:
//! `hw_tests + fallback_tests == clean hw_tests`, wherever the
//! surviving hardware tests actually executed), and every counter the
//! chaos touches is a deterministic function of the schedule, including
//! under half-open probation.
//!
//! The worst case is pinned exactly: a schedule that kills *every*
//! shard quarantines the whole device and the ladder bottoms out in
//! pure software with the clean run's rows.

use hwa_core::engine::{EngineConfig, PreparedDataset, SpatialEngine};
use hwa_core::{
    CostBreakdown, DeviceKind, FaultKind, FaultPlan, FaultTrigger, HwConfig, RecoveryPolicy,
};
use proptest::prelude::*;

fn prepare(ds: spatial_datagen::Dataset) -> PreparedDataset {
    PreparedDataset::new(ds.name, ds.polygons)
}

prop_compose! {
    /// A fault plan that may target one specific shard (`Some`) or run
    /// salted on every shard (`None`).
    fn arb_chaos_plan()(
        seed in 0u64..u64::MAX,
        kind_pick in 0usize..4,
        trigger_pick in 0usize..3,
        n in 0u64..5,
        k in 1u64..4,
        // 0..4 targets that shard; 4 leaves the plan salted on all shards
        // (the vendored proptest has no `option::of`).
        target_pick in 0usize..5,
    ) -> FaultPlan {
        let kind = match kind_pick {
            0 => FaultKind::ContextLost,
            1 => FaultKind::OutOfMemory,
            2 => FaultKind::Timeout,
            _ => FaultKind::ReadbackBitFlip,
        };
        let trigger = match trigger_pick {
            0 => FaultTrigger::OnExecute(n),
            1 => FaultTrigger::OnCommand(n * 5),
            _ => FaultTrigger::EveryK(k),
        };
        let plan = FaultPlan::new(seed, kind, trigger);
        match target_pick {
            s @ 0..=3 => plan.on_shard(s),
            _ => plan,
        }
    }
}

prop_compose! {
    /// A recovery policy with and without half-open probation.
    fn arb_policy()(probation_pick in 0usize..3) -> RecoveryPolicy {
        RecoveryPolicy {
            max_retries: 1,
            backoff_ns: 1_000,
            quarantine_after: 2,
            probation_ns: match probation_pick {
                0 => None,
                1 => Some(2_000),
                _ => Some(200_000),
            },
        }
    }
}

/// Runs all four pipelines under one engine config; returns results and
/// costs in a fixed order.
fn run_all(
    config: EngineConfig,
    a: &PreparedDataset,
    b: &PreparedDataset,
    q: &spatial_geom::Polygon,
    d: f64,
) -> Vec<(Vec<(usize, usize)>, CostBreakdown)> {
    let mut e = SpatialEngine::new(config);
    let lift = |(r, c): (Vec<usize>, CostBreakdown)| {
        (r.into_iter().map(|i| (i, 0)).collect::<Vec<_>>(), c)
    };
    vec![
        lift(e.intersection_selection(a, q)),
        lift(e.containment_selection(a, q)),
        e.intersection_join(a, b),
        e.within_distance_join(a, b, d),
    ]
}

/// Renders every deterministic counter of a [`TestStats`] — everything
/// except `sim_wall`, the only field measured from the host clock.
fn replayable_counters(t: &hwa_core::TestStats) -> String {
    format!(
        "pip {} rej {} sw {} skip {} width {} hw {} batches {} fb {} faults {} \
         retries {} quar {} fo {} shq {} probes {} reinst {} rec_ns {} \
         cache {}/{} elided {} hwstats {:?} gpu {:?}",
        t.decided_by_pip,
        t.rejected_by_hw,
        t.software_tests,
        t.skipped_by_threshold,
        t.width_limit_fallbacks,
        t.hw_tests,
        t.hw_batches,
        t.fallback_tests,
        t.device_faults,
        t.retries,
        t.quarantined,
        t.shard_failovers,
        t.shard_quarantined,
        t.probes,
        t.probe_reinstates,
        t.recovery_ns,
        t.cache_hits,
        t.cache_misses,
        t.commands_elided,
        t.hw,
        t.gpu_modeled,
    )
}

fn chaos_config(device: DeviceKind, policy: RecoveryPolicy, batch: bool) -> EngineConfig {
    let hw = HwConfig::at_resolution(8).with_threshold(0);
    EngineConfig {
        device,
        hw_batch: if batch { 16 } else { 1 },
        use_object_filters: true,
        recovery: policy,
        ..EngineConfig::hardware(hw)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline chaos property: any seeded per-shard schedule, on
    /// any shard count and with or without probation, preserves results
    /// bit for bit and balances the invariant-14 ledger on all four
    /// pipelines.
    #[test]
    fn any_shard_schedule_preserves_results_and_ledger(
        plan in arb_chaos_plan(),
        policy in arb_policy(),
        shards in 1usize..4,
        batch_pick in 0usize..2,
    ) {
        let batch = batch_pick == 1;
        let a = prepare(spatial_datagen::landc(0.0015, 31));
        let b = prepare(spatial_datagen::lando(0.0015, 31));
        let queries = spatial_datagen::states50(31);
        let q = &queries.polygons[0];
        let d = 0.02;
        let clean = run_all(
            chaos_config(DeviceKind::Reference.sharded(shards), policy, batch),
            &a, &b, q, d,
        );
        let chaotic = run_all(
            chaos_config(
                DeviceKind::Reference.with_faults(plan).sharded(shards),
                policy,
                batch,
            ),
            &a, &b, q, d,
        );
        // Breaker state persists across the four pipeline calls (one
        // engine), so opening/failover/probe counters must be judged
        // engine-wide, not per pipeline: a breaker opened (and charged)
        // during `isect_sel` reroutes `isect_join` submissions whose own
        // `shard_quarantined` is zero.
        let (mut openings, mut failovers, mut probes) = (0usize, 0usize, 0usize);
        for (name, (c, f)) in ["isect_sel", "contain_sel", "isect_join", "within_join"]
            .iter()
            .zip(clean.iter().zip(&chaotic))
        {
            prop_assert_eq!(&c.0, &f.0, "{}: results changed under {:?}", name, plan);
            let (ct, ft) = (&c.1.tests, &f.1.tests);
            openings += ft.shard_quarantined;
            failovers += ft.shard_failovers;
            probes += ft.probes;
            // Invariant 14: every hardware test either executed on SOME
            // shard (failovers move it, never lose it) or fell back.
            prop_assert_eq!(
                ft.hw_tests + ft.fallback_tests,
                ct.hw_tests,
                "{}: hw {} + fallback {} != clean hw {} under {:?}",
                name, ft.hw_tests, ft.fallback_tests, ct.hw_tests, plan
            );
            // Pre-hardware routing cannot see the chaos.
            prop_assert_eq!(ct.decided_by_pip, ft.decided_by_pip, "{}", name);
            prop_assert_eq!(ct.skipped_by_threshold, ft.skipped_by_threshold, "{}", name);
            prop_assert_eq!(c.1.candidates, f.1.candidates, "{}", name);
            prop_assert_eq!(c.1.results, f.1.results, "{}", name);
            // The clean run's resilience counters are all zero.
            prop_assert_eq!(ct.shard_failovers, 0, "{}", name);
            prop_assert_eq!(ct.shard_quarantined, 0, "{}", name);
            prop_assert_eq!(ct.probes, 0, "{}", name);
            if policy.probation_ns.is_none() {
                prop_assert_eq!(ft.probes, 0, "{}: probes without probation", name);
                prop_assert_eq!(ft.probe_reinstates, 0, "{}", name);
            }
            prop_assert!(
                ft.probe_reinstates <= ft.probes,
                "{}: more reinstatements than probes", name
            );
            if ft.fallback_tests > 0 {
                prop_assert!(
                    ft.device_faults > 0 || ft.quarantined > 0,
                    "{}: fallbacks without faults", name
                );
            }
        }
        // Failovers and probes both require an opened breaker, so across
        // the whole engine they can only appear after at least one
        // charged opening.
        if openings == 0 {
            prop_assert_eq!(failovers, 0, "failovers without any breaker opening");
            prop_assert_eq!(probes, 0, "probes without any breaker opening");
        }
    }

    /// Chaos is replayable: the same schedule, policy and shard count
    /// produce the same rows AND the same value for every resilience
    /// counter — failovers, quarantines, probes, reinstatements,
    /// retries and charged recovery time included.
    #[test]
    fn chaos_counters_are_deterministic(
        plan in arb_chaos_plan(),
        policy in arb_policy(),
        shards in 1usize..4,
    ) {
        let a = prepare(spatial_datagen::landc(0.0015, 32));
        let b = prepare(spatial_datagen::lando(0.0015, 32));
        let queries = spatial_datagen::states50(32);
        let q = &queries.polygons[0];
        let device = DeviceKind::Reference.with_faults(plan).sharded(shards);
        let first = run_all(chaos_config(device.clone(), policy, false), &a, &b, q, 0.02);
        let second = run_all(chaos_config(device, policy, false), &a, &b, q, 0.02);
        for (name, (x, y)) in ["isect_sel", "contain_sel", "isect_join", "within_join"]
            .iter()
            .zip(first.iter().zip(&second))
        {
            prop_assert_eq!(&x.0, &y.0, "{}: rows must replay", name);
            prop_assert_eq!(
                replayable_counters(&x.1.tests),
                replayable_counters(&y.1.tests),
                "{}: counters must replay", name
            );
        }
    }

    /// The worst case exactly: a schedule that permanently kills every
    /// shard opens every breaker, the supervisor quarantines the whole
    /// device, and the run still returns the clean rows — all of them
    /// refined in software.
    #[test]
    fn all_shards_quarantined_still_gives_exact_results(
        seed in 0u64..u64::MAX,
        shards in 1usize..4,
        // 0 disables probation; otherwise the cool-down in modeled ns.
        probation_pick in 0u64..100,
    ) {
        let probation = (probation_pick > 0).then_some(probation_pick * 1_000);
        let a = prepare(spatial_datagen::landc(0.0015, 33));
        let b = prepare(spatial_datagen::lando(0.0015, 33));
        let policy = RecoveryPolicy {
            max_retries: 1,
            backoff_ns: 1_000,
            quarantine_after: 2,
            probation_ns: probation,
        };
        let plan = FaultPlan::new(seed, FaultKind::Timeout, FaultTrigger::EveryK(1));
        let clean = run_all(
            chaos_config(DeviceKind::Reference.sharded(shards), policy, false),
            &a, &b, &spatial_datagen::states50(33).polygons[0], 0.02,
        );
        let dead = run_all(
            chaos_config(
                DeviceKind::Reference.with_faults(plan).sharded(shards),
                policy,
                false,
            ),
            &a, &b, &spatial_datagen::states50(33).polygons[0], 0.02,
        );
        let (mut clean_hw, mut openings, mut refusals) = (0usize, 0usize, 0usize);
        for (name, (c, f)) in ["isect_sel", "contain_sel", "isect_join", "within_join"]
            .iter()
            .zip(clean.iter().zip(&dead))
        {
            prop_assert_eq!(&c.0, &f.0, "{}: results changed", name);
            let (ct, ft) = (&c.1.tests, &f.1.tests);
            prop_assert_eq!(ft.hw_tests, 0, "{}: no submission can succeed", name);
            prop_assert_eq!(ft.fallback_tests, ct.hw_tests, "{}", name);
            clean_hw += ct.hw_tests;
            openings += ft.shard_quarantined;
            refusals += ft.quarantined;
        }
        // With enough submissions across the whole engine every shard's
        // breaker opens exactly once (probation only *re*-opens breakers,
        // which is never re-counted).
        if clean_hw > 2 * shards + 2 {
            prop_assert_eq!(
                openings, shards,
                "every shard must quarantine exactly once"
            );
            // Without probation a fully-open device can only refuse;
            // with probation the modeled clock may keep ripening some
            // breaker, so submissions can probe instead of refusing.
            if probation.is_none() {
                prop_assert!(refusals > 0, "refusals must be charged");
            }
        }
    }
}
