//! The headline fault-tolerance property: for ANY seeded fault plan, every
//! pipeline's results are bit-identical to the fault-free run, and the
//! degradation is fully accounted — every hardware test the faults stole
//! reappears as a software fallback (`hw_tests + fallback_tests` equals
//! the clean run's `hw_tests`), while all routing counters stay untouched.
//!
//! This is the end-to-end composition of the whole ladder: injected device
//! faults (submission errors and corrupted readbacks), post-execution
//! validation, supervised retry with modeled backoff, the circuit breaker,
//! and per-pair/per-batch software fallback — across all four query
//! pipelines, per-pair and batched+threaded, on every inner device kind.

use hwa_core::engine::{EngineConfig, PreparedDataset, SpatialEngine};
use hwa_core::{
    CostBreakdown, DeviceKind, FaultKind, FaultPlan, FaultTrigger, HwConfig, RecoveryPolicy,
};
use proptest::prelude::*;

fn prepare(ds: spatial_datagen::Dataset) -> PreparedDataset {
    PreparedDataset::new(ds.name, ds.polygons)
}

prop_compose! {
    fn arb_plan()(
        seed in 0u64..u64::MAX,
        kind_pick in 0usize..4,
        trigger_pick in 0usize..3,
        n in 0u64..6,
        k in 1u64..4,
    ) -> FaultPlan {
        let kind = match kind_pick {
            0 => FaultKind::ContextLost,
            1 => FaultKind::OutOfMemory,
            2 => FaultKind::Timeout,
            _ => FaultKind::ReadbackBitFlip,
        };
        let trigger = match trigger_pick {
            0 => FaultTrigger::OnExecute(n),
            1 => FaultTrigger::OnCommand(n * 7),
            _ => FaultTrigger::EveryK(k),
        };
        FaultPlan::new(seed, kind, trigger)
    }
}

prop_compose! {
    fn arb_inner()(pick in 0usize..3) -> DeviceKind {
        match pick {
            0 => DeviceKind::Reference,
            1 => DeviceKind::Simd,
            _ => DeviceKind::Tiled {
                tiles: 3,
                threads: 2,
            },
        }
    }
}

/// Runs all four pipelines under one engine config; returns results and
/// costs in a fixed order.
fn run_all(
    config: EngineConfig,
    a: &PreparedDataset,
    b: &PreparedDataset,
    q: &spatial_geom::Polygon,
    d: f64,
) -> Vec<(Vec<(usize, usize)>, CostBreakdown)> {
    let mut e = SpatialEngine::new(config);
    let lift = |(r, c): (Vec<usize>, CostBreakdown)| {
        (r.into_iter().map(|i| (i, 0)).collect::<Vec<_>>(), c)
    };
    vec![
        lift(e.intersection_selection(a, q)),
        lift(e.containment_selection(a, q)),
        e.intersection_join(a, b),
        e.within_distance_join(a, b, d),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn any_fault_plan_preserves_results_and_accounts_every_test(
        plan in arb_plan(),
        inner in arb_inner(),
        batch in 1usize..3,
        threads in 1usize..3,
    ) {
        let a = prepare(spatial_datagen::landc(0.0015, 21));
        let b = prepare(spatial_datagen::lando(0.0015, 21));
        let queries = spatial_datagen::states50(21);
        let q = &queries.polygons[0];
        let d = 0.02;
        // sw_threshold 0 routes every undecided pair to the hardware, so
        // faults actually bite; a permissive policy keeps the breaker out
        // of the comparison (quarantine is exercised separately below).
        let hw = HwConfig::at_resolution(8).with_threshold(0);
        let base = EngineConfig {
            hw_batch: if batch > 1 { 16 } else { 1 },
            refine_threads: if threads > 1 { 3 } else { 1 },
            use_object_filters: true,
            ..EngineConfig::hardware(hw)
        };
        let clean_cfg = EngineConfig { device: inner.clone(), ..base.clone() };
        let faulted_cfg = EngineConfig {
            device: inner.clone().with_faults(plan),
            ..base
        };
        let clean = run_all(clean_cfg, &a, &b, q, d);
        let faulted = run_all(faulted_cfg, &a, &b, q, d);
        for (name, (c, f)) in ["isect_sel", "contain_sel", "isect_join", "within_join"]
            .iter()
            .zip(clean.iter().zip(&faulted))
        {
            prop_assert_eq!(&c.0, &f.0, "{}: results changed under {:?}", name, plan);
            let (ct, ft) = (&c.1.tests, &f.1.tests);
            // Every hardware test the faults stole is accounted as a
            // fallback — the degradation ladder never loses a pair.
            prop_assert_eq!(
                ft.hw_tests + ft.fallback_tests,
                ct.hw_tests,
                "{}: hw {} + fallback {} != clean hw {} under {:?}",
                name, ft.hw_tests, ft.fallback_tests, ct.hw_tests, plan
            );
            // Routing (pre-hardware) counters cannot see the faults.
            prop_assert_eq!(ct.decided_by_pip, ft.decided_by_pip, "{}", name);
            prop_assert_eq!(ct.skipped_by_threshold, ft.skipped_by_threshold, "{}", name);
            prop_assert_eq!(ct.width_limit_fallbacks, ft.width_limit_fallbacks, "{}", name);
            prop_assert_eq!(c.1.candidates, f.1.candidates, "{}", name);
            prop_assert_eq!(c.1.filter_hits, f.1.filter_hits, "{}", name);
            prop_assert_eq!(c.1.results, f.1.results, "{}", name);
            // A fault that never fired charges nothing; one that fired is
            // visible in the ledger — either as exhausted retries or, once
            // the breaker (which outlives a query on the same engine) has
            // opened, as refused submissions.
            if ft.fallback_tests > 0 {
                prop_assert!(
                    ft.device_faults > 0 || ft.quarantined > 0,
                    "{}: fallbacks without faults",
                    name
                );
            }
            if ft.device_faults == 0 {
                prop_assert_eq!(ft.retries, 0, "{}", name);
                prop_assert_eq!(ft.recovery_ns, 0, "{}", name);
            }
        }
    }

    /// An always-faulting device trips the breaker, yet the pipeline still
    /// returns exactly the clean results — the ladder bottoms out in pure
    /// software, quarantining instead of retrying forever.
    #[test]
    fn permanent_faults_quarantine_and_still_give_exact_results(
        seed in 0u64..u64::MAX,
        batch in 1usize..3,
    ) {
        let a = prepare(spatial_datagen::landc(0.0015, 22));
        let b = prepare(spatial_datagen::lando(0.0015, 22));
        let hw = HwConfig::at_resolution(8).with_threshold(0);
        let plan = FaultPlan::new(seed, FaultKind::ContextLost, FaultTrigger::EveryK(1));
        let clean = SpatialEngine::new(EngineConfig::hardware(hw))
            .intersection_join(&a, &b);
        let mut e = SpatialEngine::new(EngineConfig {
            device: DeviceKind::Reference.with_faults(plan),
            hw_batch: if batch > 1 { 16 } else { 1 },
            recovery: RecoveryPolicy {
                max_retries: 1,
                backoff_ns: 10,
                quarantine_after: 2,
                probation_ns: None,
            },
            ..EngineConfig::hardware(hw)
        });
        let (results, cost) = e.intersection_join(&a, &b);
        prop_assert_eq!(&results, &clean.0);
        let t = &cost.tests;
        prop_assert_eq!(t.hw_tests, 0, "no submission ever succeeds");
        prop_assert_eq!(t.fallback_tests, clean.1.tests.hw_tests);
        // Per-pair every candidate is its own submission, so once the
        // breaker opens after 2 exhausted submissions the rest are refused
        // without touching the device. (Batched mode folds the candidates
        // into a handful of submissions, so the breaker may open only on
        // the last one — no refusals to count.)
        if batch == 1 && clean.1.tests.hw_tests > 2 {
            prop_assert!(t.quarantined > 0, "breaker must open: {:?}", t);
        }
        prop_assert!(t.recovery_ns > 0, "retries charge modeled backoff");
    }
}
