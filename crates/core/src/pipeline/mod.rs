//! The unified staged query executor.
//!
//! Fig. 8's three-stage pipeline — **MBR filtering → intermediate
//! filtering → geometry comparison** — is the same loop for every query
//! the paper evaluates; only three things vary:
//!
//! * the *predicate* being refined ([`Predicate`]: intersects, strict
//!   containment, within-distance);
//! * the *intermediate filters* in front of refinement ([`CandidateFilter`]:
//!   the interior/tiling filter for selections, the 0/1-object filters for
//!   distance joins);
//! * the *refinement backend* deciding survivors ([`RefinementBackend`]:
//!   pure software, hardware-assisted Algorithm 3.1, or the hybrid
//!   `sw_threshold` mix of §4.3).
//!
//! [`StagedExecutor`] owns the loop once: stage timing, the
//! [`CostBreakdown`](crate::stats::CostBreakdown) accounting, batched
//! hardware submission (`hw_batch` pairs per rendering round) and parallel
//! candidate refinement (`refine_threads` workers over deterministic,
//! batch-aligned partitions — results and merged counters are bit-identical
//! to the sequential run). `SpatialEngine` instantiates it four times.

pub mod backend;
pub mod executor;
pub mod filter;
pub mod recovery;

pub use backend::{HardwareBackend, HybridBackend, RefinementBackend, SoftwareBackend};
pub use executor::StagedExecutor;
pub use filter::{CandidateFilter, Decision, InteriorFilterStage, ObjectFilterStage};
pub use recovery::RecoveryPolicy;

/// The spatial predicate a pipeline refines. Carried by value into the
/// backend so one backend serves every pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Predicate {
    /// Closed polygon intersection (Algorithm 3.1).
    Intersects,
    /// Strict containment: first polygon entirely inside the second.
    ContainedIn,
    /// `dist(P, Q) ≤ d` (§3.1 distance test).
    WithinDistance(f64),
}
