//! Pluggable refinement backends: who decides the candidates the filters
//! could not.
//!
//! All three backends answer the same [`Predicate`] exactly — the paper's
//! exactness invariant — and differ only in *how*: which pairs touch the
//! simulated hardware and what that costs. `fork` hands each parallel
//! refinement worker an independent instance (its own rendering context),
//! so workers never contend and per-worker counters merge deterministically.

use super::Predicate;
use crate::config::HwConfig;
use crate::hw_intersect::HwTester;
use crate::stats::TestStats;
use spatial_geom::intersect::{polygons_intersect_with, IntersectStats, SweepAlgo};
use spatial_geom::mindist::within_distance_with;
use spatial_geom::{MinDistStats, Polygon};

/// A refinement strategy: decides single pairs and (optionally) batches.
///
/// Implementations must be deterministic: the booleans and every counter
/// they record may depend only on the arguments, never on call order or
/// shared mutable state — that is what makes `threads = N` refinement
/// bit-identical to sequential.
pub trait RefinementBackend: Send + std::fmt::Debug {
    /// Decides one candidate pair.
    fn test(&mut self, pred: Predicate, p: &Polygon, q: &Polygon, stats: &mut TestStats) -> bool;

    /// Decides a group of candidate pairs in one submission round where
    /// the backend supports it. The default is the per-pair loop;
    /// hardware backends override it with atlas-batched rendering.
    fn test_batch(
        &mut self,
        pred: Predicate,
        pairs: &[(&Polygon, &Polygon)],
        stats: &mut TestStats,
    ) -> Vec<bool> {
        pairs
            .iter()
            .map(|&(p, q)| self.test(pred, p, q, stats))
            .collect()
    }

    /// Measures the area of `P ∩ Q`, quantized to a `resolution ×
    /// resolution` grid over the pair's shared MBR (the aggregation
    /// contract of `HwTester::overlap_area`, DESIGN.md §14). Every
    /// backend answers the *identical* quantized area — the software
    /// default replays the recorded tape on a reference executor — so
    /// routing (planner choice, fault fallback, brownout) never changes
    /// a reported area.
    fn measure_overlap(
        &mut self,
        p: &Polygon,
        q: &Polygon,
        resolution: usize,
        stats: &mut TestStats,
    ) -> f64 {
        if crate::hw_overlap::overlap_region(p, q).is_some() {
            stats.software_tests += 1;
            stats.overlap_tests += 1;
        }
        crate::hw_overlap::sw_overlap_area(p, q, resolution)
    }

    /// Routes subsequent tests to device shard `shard` (modulo the
    /// device's shard count). The partitioned executor calls this once per
    /// partition before refining it; backends without a device — and
    /// devices without shards — have nothing to route, so the default is
    /// a no-op. Implementations must carry the selected shard across
    /// [`RefinementBackend::fork`], so parallel refinement workers keep
    /// serving the partition that spawned them.
    fn select_shard(&mut self, _shard: usize) {}

    /// An independent backend with the same configuration, for a parallel
    /// refinement worker.
    fn fork(&self) -> Box<dyn RefinementBackend>;
}

/// Pure software refinement: the paper's baseline curves. Plane sweep with
/// the restricted search space for intersection, the modified `minDist`
/// for distance, the sweep-based containment test.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftwareBackend;

impl RefinementBackend for SoftwareBackend {
    fn test(&mut self, pred: Predicate, p: &Polygon, q: &Polygon, stats: &mut TestStats) -> bool {
        stats.software_tests += 1;
        match pred {
            Predicate::Intersects => {
                let mut st = IntersectStats::default();
                let r = polygons_intersect_with(p, q, SweepAlgo::Tree, &mut st);
                stats.decided_by_pip += st.decided_by_pip;
                r
            }
            Predicate::ContainedIn => spatial_geom::polygon_contained_in(p, q),
            Predicate::WithinDistance(d) => {
                let mut st = MinDistStats::default();
                within_distance_with(p, q, d, &mut st)
            }
        }
    }

    fn fork(&self) -> Box<dyn RefinementBackend> {
        Box::new(SoftwareBackend)
    }
}

/// Hardware-assisted refinement: Algorithm 3.1 and the §3.1 distance test,
/// honoring the `sw_threshold` of its [`HwConfig`] (§4.3 treats the
/// threshold as part of the algorithm). Owns the rendering contexts.
#[derive(Debug)]
pub struct HardwareBackend {
    tester: HwTester,
}

impl HardwareBackend {
    pub fn new(hw: HwConfig) -> Self {
        Self::with_device(hw, spatial_raster::DeviceKind::default())
    }

    /// A backend whose command lists execute on the selected device (the
    /// tiled executor turns refinement rendering multi-threaded without
    /// changing a single result or counter).
    pub fn with_device(hw: HwConfig, device: spatial_raster::DeviceKind) -> Self {
        Self::with_device_and_policy(hw, device, super::RecoveryPolicy::default())
    }

    /// Like [`HardwareBackend::with_device`] with an explicit
    /// retry/quarantine policy for supervised submission.
    pub fn with_device_and_policy(
        hw: HwConfig,
        device: spatial_raster::DeviceKind,
        policy: super::RecoveryPolicy,
    ) -> Self {
        HardwareBackend {
            tester: HwTester::with_device_and_policy(hw, device, policy),
        }
    }

    /// Overrides the simulated-hardware cost model (sensitivity benches).
    pub fn set_cost_model(&mut self, model: spatial_raster::HwCostModel) {
        self.tester.set_cost_model(model);
    }
}

impl RefinementBackend for HardwareBackend {
    fn test(&mut self, pred: Predicate, p: &Polygon, q: &Polygon, stats: &mut TestStats) -> bool {
        match pred {
            Predicate::Intersects => self.tester.intersects(p, q, stats),
            Predicate::ContainedIn => self.tester.contained_in(p, q, stats),
            Predicate::WithinDistance(d) => self.tester.within_distance(p, q, d, stats),
        }
    }

    fn test_batch(
        &mut self,
        pred: Predicate,
        pairs: &[(&Polygon, &Polygon)],
        stats: &mut TestStats,
    ) -> Vec<bool> {
        match pred {
            Predicate::Intersects => self.tester.intersects_batch(pairs, stats),
            Predicate::ContainedIn => self.tester.contained_in_batch(pairs, stats),
            Predicate::WithinDistance(d) => self.tester.within_distance_batch(pairs, d, stats),
        }
    }

    fn measure_overlap(
        &mut self,
        p: &Polygon,
        q: &Polygon,
        resolution: usize,
        stats: &mut TestStats,
    ) -> f64 {
        self.tester.overlap_area(p, q, resolution, stats)
    }

    fn select_shard(&mut self, shard: usize) {
        self.tester.select_shard(shard);
    }

    fn fork(&self) -> Box<dyn RefinementBackend> {
        // The fork inherits the parent's full supervision state — policy,
        // per-shard breaker verdicts, and the modeled probation clock — so
        // a worker refining pairs for a shard the parent already proved
        // dead fails over (or falls back) immediately instead of re-paying
        // the whole retry/backoff ladder per pair.
        let mut b = HardwareBackend::with_device_and_policy(
            self.tester.config(),
            self.tester.device_kind(),
            self.tester.recovery_policy(),
        );
        b.tester.set_cost_model(self.tester.cost_model());
        b.tester.inherit_supervision(&self.tester);
        b.tester.select_shard(self.tester.route());
        Box::new(b)
    }
}

/// The generalized `sw_threshold` mix: hardware refinement with an
/// *engine-level* threshold override. §4.3 ties the threshold to the
/// hardware configuration; the hybrid backend lifts it to a pipeline knob,
/// so one engine can express the whole spectrum — `0` is pure hardware
/// routing, `usize::MAX` degenerates to all-software testing (with the
/// hardware path's prologue), and anything between splits pairs by
/// combined vertex count exactly like [`HardwareBackend`] does.
#[derive(Debug)]
pub struct HybridBackend {
    inner: HardwareBackend,
}

impl HybridBackend {
    pub fn new(hw: HwConfig, sw_threshold: usize) -> Self {
        Self::with_device(hw, sw_threshold, spatial_raster::DeviceKind::default())
    }

    /// A hybrid backend executing on the selected device.
    pub fn with_device(
        hw: HwConfig,
        sw_threshold: usize,
        device: spatial_raster::DeviceKind,
    ) -> Self {
        Self::with_device_and_policy(hw, sw_threshold, device, super::RecoveryPolicy::default())
    }

    /// Like [`HybridBackend::with_device`] with an explicit
    /// retry/quarantine policy.
    pub fn with_device_and_policy(
        hw: HwConfig,
        sw_threshold: usize,
        device: spatial_raster::DeviceKind,
        policy: super::RecoveryPolicy,
    ) -> Self {
        HybridBackend {
            inner: HardwareBackend::with_device_and_policy(
                HwConfig { sw_threshold, ..hw },
                device,
                policy,
            ),
        }
    }
}

impl RefinementBackend for HybridBackend {
    fn test(&mut self, pred: Predicate, p: &Polygon, q: &Polygon, stats: &mut TestStats) -> bool {
        self.inner.test(pred, p, q, stats)
    }

    fn test_batch(
        &mut self,
        pred: Predicate,
        pairs: &[(&Polygon, &Polygon)],
        stats: &mut TestStats,
    ) -> Vec<bool> {
        self.inner.test_batch(pred, pairs, stats)
    }

    fn measure_overlap(
        &mut self,
        p: &Polygon,
        q: &Polygon,
        resolution: usize,
        stats: &mut TestStats,
    ) -> f64 {
        self.inner.measure_overlap(p, q, resolution, stats)
    }

    fn select_shard(&mut self, shard: usize) {
        self.inner.select_shard(shard);
    }

    fn fork(&self) -> Box<dyn RefinementBackend> {
        let hw = self.inner.tester.config();
        let mut b = HybridBackend::with_device_and_policy(
            hw,
            hw.sw_threshold,
            self.inner.tester.device_kind(),
            self.inner.tester.recovery_policy(),
        );
        // Same inheritance as `HardwareBackend::fork`: the worker adopts
        // the parent's per-shard verdicts instead of re-earning them.
        b.inner.tester.inherit_supervision(&self.inner.tester);
        b.inner.tester.select_shard(self.inner.tester.route());
        Box::new(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_geom::{min_dist_brute, polygons_intersect_brute};

    fn square(x: f64, y: f64, s: f64) -> Polygon {
        Polygon::from_coords(&[(x, y), (x + s, y), (x + s, y + s), (x, y + s)])
    }

    fn backends() -> Vec<Box<dyn RefinementBackend>> {
        vec![
            Box::new(SoftwareBackend),
            Box::new(HardwareBackend::new(HwConfig::at_resolution(8))),
            Box::new(HybridBackend::new(HwConfig::at_resolution(8), 6)),
            Box::new(HybridBackend::new(HwConfig::at_resolution(8), usize::MAX)),
        ]
    }

    #[test]
    fn all_backends_agree_on_all_predicates() {
        let cases = [
            (square(0.0, 0.0, 2.0), square(1.0, 1.0, 2.0)),
            (square(0.0, 0.0, 1.0), square(5.0, 5.0, 1.0)),
            (square(0.0, 0.0, 10.0), square(4.0, 4.0, 1.0)),
            (square(0.0, 0.0, 2.0), square(2.5, 0.0, 2.0)),
        ];
        for b in backends().iter_mut() {
            for (p, q) in &cases {
                let mut st = TestStats::default();
                assert_eq!(
                    b.test(Predicate::Intersects, p, q, &mut st),
                    polygons_intersect_brute(p, q),
                    "{b:?}"
                );
                assert_eq!(
                    b.test(Predicate::ContainedIn, p, q, &mut st),
                    spatial_geom::polygon_contained_in(p, q),
                    "{b:?}"
                );
                for d in [0.2, 1.0, 3.0] {
                    assert_eq!(
                        b.test(Predicate::WithinDistance(d), p, q, &mut st),
                        min_dist_brute(p, q) <= d,
                        "{b:?} d={d}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_backends_measure_identical_overlap_areas() {
        let cases = [
            (square(0.0, 0.0, 2.0), square(1.0, 1.0, 2.0)),
            (square(0.0, 0.0, 10.0), square(4.0, 4.0, 1.0)), // containment
            (square(0.0, 0.0, 1.0), square(5.0, 5.0, 1.0)),  // disjoint
            (square(0.0, 0.0, 2.0), square(2.0, 0.0, 2.0)),  // edge contact
        ];
        for (p, q) in &cases {
            for res in [1usize, 16, 64] {
                let areas: Vec<u64> = backends()
                    .iter_mut()
                    .map(|b| {
                        b.measure_overlap(p, q, res, &mut TestStats::default())
                            .to_bits()
                    })
                    .collect();
                assert!(
                    areas.windows(2).all(|w| w[0] == w[1]),
                    "res {res}: {areas:?}"
                );
            }
        }
        // The measurement counter is routing-independent.
        let (p, q) = &cases[0];
        for b in backends().iter_mut() {
            let mut st = TestStats::default();
            b.measure_overlap(p, q, 16, &mut st);
            assert_eq!(st.overlap_tests, 1, "{b:?}");
        }
    }

    #[test]
    fn batch_equals_per_pair_for_every_backend() {
        let polys: Vec<Polygon> = (0..6)
            .map(|i| square(i as f64 * 1.3, (i % 3) as f64, 2.0))
            .collect();
        let pairs: Vec<(&Polygon, &Polygon)> = (0..polys.len())
            .flat_map(|i| (0..polys.len()).map(move |j| (i, j)))
            .filter(|&(i, j)| i != j)
            .map(|(i, j)| (&polys[i], &polys[j]))
            .collect();
        for pred in [
            Predicate::Intersects,
            Predicate::ContainedIn,
            Predicate::WithinDistance(0.9),
        ] {
            for b in backends().iter_mut() {
                let mut st1 = TestStats::default();
                let per_pair: Vec<bool> = pairs
                    .iter()
                    .map(|&(p, q)| b.test(pred, p, q, &mut st1))
                    .collect();
                let mut st2 = TestStats::default();
                let batched = b.test_batch(pred, &pairs, &mut st2);
                assert_eq!(per_pair, batched, "{b:?} {pred:?}");
                // Routing counters are identical; only submission counters
                // may differ between the two paths.
                assert_eq!(st1.decided_by_pip, st2.decided_by_pip);
                assert_eq!(st1.rejected_by_hw, st2.rejected_by_hw);
                assert_eq!(st1.software_tests, st2.software_tests);
                assert_eq!(st1.hw_tests, st2.hw_tests);
            }
        }
    }

    #[test]
    fn forked_backend_behaves_identically() {
        let polys: Vec<Polygon> = (0..4).map(|i| square(i as f64, 0.0, 1.4)).collect();
        let pairs: Vec<(&Polygon, &Polygon)> =
            (1..polys.len()).map(|i| (&polys[0], &polys[i])).collect();
        let mut orig: Box<dyn RefinementBackend> =
            Box::new(HardwareBackend::new(HwConfig::at_resolution(8)));
        let mut forked = orig.fork();
        let mut s1 = TestStats::default();
        let mut s2 = TestStats::default();
        let r1 = orig.test_batch(Predicate::Intersects, &pairs, &mut s1);
        let r2 = forked.test_batch(Predicate::Intersects, &pairs, &mut s2);
        assert_eq!(r1, r2);
        assert_eq!(s1.hw.draw_calls, s2.hw.draw_calls);
        assert_eq!(s1.hw.fragments_tested, s2.hw.fragments_tested);
        // Recording knobs ride along on the config, so the fork records
        // and caches exactly like the original — including the cold-start
        // misses, since forks begin with an empty cache of their own.
        assert_eq!(s1.cache_misses, s2.cache_misses);
        assert_eq!(s1.commands_elided, s2.commands_elided);
    }

    /// The recording cache never changes what a backend answers or what
    /// hardware work it charges: the same pairs through a cache-enabled
    /// and a cache-disabled backend are identical in everything but the
    /// diagnostic cache counters.
    #[test]
    fn recording_cache_is_set_preserving_across_backends() {
        // Diagonal slabs: overlapping MBRs, no contained vertices — every
        // pair survives the software prologue and reaches the hardware.
        let polys: Vec<Polygon> = (0..5)
            .map(|i| {
                let x = i as f64 * 2.5;
                Polygon::from_coords(&[(x, 0.0), (x + 2.0, 0.0), (x + 10.0, 8.0), (x + 8.0, 8.0)])
            })
            .collect();
        let pairs: Vec<(&Polygon, &Polygon)> =
            (1..polys.len()).map(|i| (&polys[0], &polys[i])).collect();
        let cached_cfg = HwConfig::at_resolution(8);
        let cold_cfg = cached_cfg.with_recording(crate::RecordingOptions::disabled());
        for pred in [
            Predicate::Intersects,
            Predicate::ContainedIn,
            Predicate::WithinDistance(1.5),
        ] {
            let mut warm = HardwareBackend::new(cached_cfg);
            let mut cold = HardwareBackend::new(cold_cfg);
            let (mut s1, mut s2) = (TestStats::default(), TestStats::default());
            // Run twice so the second round hits the warm cache.
            let _ = warm.test_batch(pred, &pairs, &mut s1);
            let _ = cold.test_batch(pred, &pairs, &mut s2);
            let r1 = warm.test_batch(pred, &pairs, &mut s1);
            let r2 = cold.test_batch(pred, &pairs, &mut s2);
            assert_eq!(r1, r2);
            assert_eq!(s1.hw_tests, s2.hw_tests);
            assert_eq!(s1.rejected_by_hw, s2.rejected_by_hw);
            assert_eq!(s1.software_tests, s2.software_tests);
            assert_eq!(s1.hw_batches, s2.hw_batches);
            assert_eq!(s1.hw, s2.hw, "charged hardware work must be identical");
            assert_eq!(s1.gpu_modeled, s2.gpu_modeled);
            if s1.hw_tests > 0 {
                assert!(s1.cache_hits > 0, "second round must hit: {s1:?}");
            }
            assert_eq!(s2.cache_hits, 0);
            assert_eq!(s2.cache_misses, 0);
        }
    }

    /// Regression: forks used to start with a fresh (un-quarantined)
    /// supervisor, so every parallel refinement worker re-paid the full
    /// retry/backoff ladder for a shard the parent had already proved
    /// dead. A fork must adopt the parent's per-shard verdicts and fail
    /// over immediately.
    #[test]
    fn fork_inherits_the_parents_shard_verdicts() {
        use crate::pipeline::RecoveryPolicy;
        use spatial_raster::{DeviceKind, FaultKind, FaultPlan, FaultTrigger};
        // Diagonal slabs: overlapping MBRs, no contained vertices — the
        // pair survives the software prologue and reaches the hardware.
        let p = Polygon::from_coords(&[(0.0, 0.0), (2.0, 0.0), (10.0, 8.0), (8.0, 8.0)]);
        let q = Polygon::from_coords(&[(2.5, 0.0), (4.5, 0.0), (12.5, 8.0), (10.5, 8.0)]);
        let plan = FaultPlan::new(9, FaultKind::Timeout, FaultTrigger::EveryK(1)).on_shard(0);
        let policy = RecoveryPolicy {
            max_retries: 0,
            backoff_ns: 10,
            quarantine_after: 1,
            probation_ns: None,
        };
        let mut parent = HardwareBackend::with_device_and_policy(
            HwConfig::at_resolution(8),
            DeviceKind::Reference.with_faults(plan).sharded(2),
            policy,
        );
        let mut st = TestStats::default();
        let verdict = parent.test(Predicate::Intersects, &p, &q, &mut st);
        assert!(st.fallback_tests > 0, "shard 0's submission faults: {st:?}");
        assert_eq!(st.shard_quarantined, 1);
        // The fork adopts the open breaker: immediate failover to shard 1,
        // no ladder re-paid, same answer and hardware work as a clean run.
        let mut forked = parent.fork();
        let mut fst = TestStats::default();
        assert_eq!(
            forked.test(Predicate::Intersects, &p, &q, &mut fst),
            verdict
        );
        assert_eq!(fst.device_faults, 0, "fork re-paid the ladder: {fst:?}");
        assert_eq!(fst.fallback_tests, 0);
        assert_eq!(fst.shard_failovers, 1);
        let mut clean = HardwareBackend::new(HwConfig::at_resolution(8));
        let mut cst = TestStats::default();
        assert_eq!(clean.test(Predicate::Intersects, &p, &q, &mut cst), verdict);
        assert_eq!(
            fst.hw_tests, cst.hw_tests,
            "invariant 14: failover moved the work"
        );
    }

    #[test]
    fn hybrid_threshold_routes_pairs() {
        // A crossing pair whose first vertices are outside each other, so
        // the test reaches the threshold branch.
        let horiz = Polygon::from_coords(&[(0.0, 2.0), (6.0, 2.0), (6.0, 4.0), (0.0, 4.0)]);
        let vert = Polygon::from_coords(&[(2.0, 0.0), (4.0, 0.0), (4.0, 6.0), (2.0, 6.0)]);
        let mut all_sw = HybridBackend::new(HwConfig::at_resolution(8), usize::MAX);
        let mut st = TestStats::default();
        assert!(all_sw.test(Predicate::Intersects, &horiz, &vert, &mut st));
        assert_eq!(st.hw_tests, 0);
        assert_eq!(st.skipped_by_threshold, 1);
        let mut all_hw = HybridBackend::new(HwConfig::at_resolution(8), 0);
        let mut st = TestStats::default();
        assert!(all_hw.test(Predicate::Intersects, &horiz, &vert, &mut st));
        assert_eq!(st.hw_tests, 1);
    }
}
