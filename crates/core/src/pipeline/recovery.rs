//! Supervised device submission: bounded retry, modeled backoff, and a
//! circuit breaker — the middle rungs of the degradation ladder.
//!
//! The ladder (DESIGN.md §8) runs: **submit → validate → retry (with
//! modeled backoff) → quarantine → software fallback**. This module owns
//! the first four rungs; the callers in `hw_intersect`, `hw_distance` and
//! `hw_batch` own the last one, because only they know the exact software
//! test that answers the pair the device could not.
//!
//! Two properties the whole fault-tolerance story rests on:
//!
//! * **No wall-clock sleeps.** Retry backoff is *charged*, not slept:
//!   each retry adds an exponentially growing `recovery_ns` to
//!   [`TestStats`], and the executor folds it into reported geometry time
//!   exactly like `gpu_modeled`. Runs stay deterministic and fast while
//!   the accounting still shows what recovery would have cost.
//! * **Failed submissions charge nothing else.** A faulted execute adds no
//!   hardware counters, so a retry-recovered run is bit-identical to a
//!   clean run everywhere except the recovery counters themselves — the
//!   headline property `fault_props` pins across all four pipelines.

use crate::stats::TestStats;
use spatial_raster::{CommandList, DeviceError, Execution, RasterDevice};

/// Retry/quarantine policy for supervised submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Resubmissions attempted after the first fault of a submission
    /// (so a submission touches the device at most `1 + max_retries`
    /// times).
    pub max_retries: u32,
    /// Modeled backoff before the first retry, in nanoseconds; doubles per
    /// subsequent retry of the same submission (saturating). Charged to
    /// [`TestStats::recovery_ns`], never slept.
    pub backoff_ns: u64,
    /// Consecutive faulted *submissions* (retries exhausted) after which
    /// the breaker opens and every later submission is refused without
    /// touching the device. `0` disables the breaker.
    pub quarantine_after: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 2,
            backoff_ns: 50_000,
            quarantine_after: 8,
        }
    }
}

/// Wraps a device with the retry/quarantine state machine. One supervisor
/// lives inside each `HwTester`; forks start fresh (a quarantined parent
/// does not poison its children — each worker earns its own verdict).
#[derive(Debug, Clone)]
pub(crate) struct Supervisor {
    policy: RecoveryPolicy,
    /// Submissions (not attempts) that ended in a fault since the last
    /// success.
    consecutive_faults: u32,
    /// The error that tripped the breaker, replayed for every refused
    /// submission so the caller's fallback reason stays stable.
    quarantine: Option<DeviceError>,
}

impl Supervisor {
    pub(crate) fn new(policy: RecoveryPolicy) -> Self {
        Supervisor {
            policy,
            consecutive_faults: 0,
            quarantine: None,
        }
    }

    pub(crate) fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Whether the circuit breaker has opened.
    pub(crate) fn is_quarantined(&self) -> bool {
        self.quarantine.is_some()
    }

    /// Submits `list`, validating the execution against what was recorded,
    /// retrying per policy, and keeping the fault counters in `stats`.
    ///
    /// On `Err` the caller must answer its pairs in exact software and
    /// charge `fallback_tests`; it must *not* charge any hardware counters
    /// for the failed submission.
    pub(crate) fn submit(
        &mut self,
        device: &mut dyn RasterDevice,
        list: &CommandList,
        stats: &mut TestStats,
    ) -> Result<Execution, DeviceError> {
        if let Some(err) = self.quarantine {
            stats.quarantined += 1;
            return Err(err);
        }
        let mut backoff = self.policy.backoff_ns;
        let mut last = DeviceError::ContextLost;
        for attempt in 0..=self.policy.max_retries {
            let outcome = device
                .execute(list)
                .and_then(|exec| exec.validate(list).map(|()| exec));
            match outcome {
                Ok(exec) => {
                    self.consecutive_faults = 0;
                    return Ok(exec);
                }
                Err(err) => {
                    stats.device_faults += 1;
                    last = err;
                    if attempt < self.policy.max_retries {
                        stats.retries += 1;
                        stats.recovery_ns = stats.recovery_ns.saturating_add(backoff);
                        backoff = backoff.saturating_mul(2);
                    }
                }
            }
        }
        self.consecutive_faults += 1;
        if self.policy.quarantine_after > 0
            && self.consecutive_faults >= self.policy.quarantine_after
        {
            self.quarantine = Some(last);
        }
        Err(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_geom::{Point, Rect, Segment};
    use spatial_raster::{
        DeviceKind, FaultDevice, FaultKind, FaultPlan, FaultTrigger, Recorder, Viewport,
    };

    fn list() -> CommandList {
        let mut r = Recorder::new(8, 8);
        r.set_viewport(Viewport::new(Rect::new(0.0, 0.0, 8.0, 8.0), 8, 8))
            .unwrap();
        r.clear_color();
        r.draw_segments([Segment::new(Point::new(0.0, 0.0), Point::new(8.0, 8.0))])
            .unwrap();
        r.minmax();
        r.finish()
    }

    fn faulty(trigger: FaultTrigger, kind: FaultKind) -> Box<dyn RasterDevice> {
        Box::new(FaultDevice::new(
            DeviceKind::Reference.build(),
            FaultPlan::new(7, kind, trigger),
        ))
    }

    #[test]
    fn clean_submissions_charge_nothing() {
        let mut sup = Supervisor::new(RecoveryPolicy::default());
        let mut dev = DeviceKind::Reference.build();
        let mut stats = TestStats::default();
        let exec = sup.submit(dev.as_mut(), &list(), &mut stats).unwrap();
        assert_eq!(exec.readbacks.len(), 1);
        assert_eq!(stats.device_faults, 0);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.recovery_ns, 0);
    }

    #[test]
    fn one_fault_is_retried_and_charged() {
        let mut sup = Supervisor::new(RecoveryPolicy::default());
        let mut dev = faulty(FaultTrigger::OnExecute(0), FaultKind::Timeout);
        let mut stats = TestStats::default();
        let exec = sup.submit(dev.as_mut(), &list(), &mut stats);
        assert!(exec.is_ok(), "second attempt is clean");
        assert_eq!(stats.device_faults, 1);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.recovery_ns, 50_000);
        assert!(!sup.is_quarantined());
    }

    #[test]
    fn corrupted_readbacks_fail_validation_and_retry() {
        let mut sup = Supervisor::new(RecoveryPolicy::default());
        let mut dev = faulty(FaultTrigger::OnExecute(0), FaultKind::ReadbackBitFlip);
        let mut stats = TestStats::default();
        let exec = sup.submit(dev.as_mut(), &list(), &mut stats);
        assert!(exec.is_ok());
        assert_eq!(stats.device_faults, 1);
        assert_eq!(stats.retries, 1);
    }

    #[test]
    fn exhausted_retries_report_the_last_error_with_exponential_backoff() {
        let mut sup = Supervisor::new(RecoveryPolicy {
            max_retries: 2,
            backoff_ns: 100,
            quarantine_after: 0,
        });
        let mut dev = faulty(FaultTrigger::EveryK(1), FaultKind::OutOfMemory);
        let mut stats = TestStats::default();
        assert_eq!(
            sup.submit(dev.as_mut(), &list(), &mut stats),
            Err(DeviceError::OutOfMemory)
        );
        assert_eq!(stats.device_faults, 3, "initial attempt + 2 retries");
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.recovery_ns, 100 + 200);
        assert_eq!(stats.quarantined, 0);
    }

    #[test]
    fn breaker_opens_after_consecutive_faulted_submissions() {
        let mut sup = Supervisor::new(RecoveryPolicy {
            max_retries: 0,
            backoff_ns: 1,
            quarantine_after: 2,
        });
        let mut dev = faulty(FaultTrigger::EveryK(1), FaultKind::ContextLost);
        let mut stats = TestStats::default();
        let l = list();
        assert!(sup.submit(dev.as_mut(), &l, &mut stats).is_err());
        assert!(!sup.is_quarantined());
        assert!(sup.submit(dev.as_mut(), &l, &mut stats).is_err());
        assert!(sup.is_quarantined());
        // Refused without touching the device: fault count stays put.
        assert_eq!(stats.device_faults, 2);
        assert_eq!(
            sup.submit(dev.as_mut(), &l, &mut stats),
            Err(DeviceError::ContextLost)
        );
        assert_eq!(stats.device_faults, 2);
        assert_eq!(stats.quarantined, 1);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let mut sup = Supervisor::new(RecoveryPolicy {
            max_retries: 0,
            backoff_ns: 1,
            quarantine_after: 2,
        });
        // Faults on every second execute — never two submissions in a row.
        let mut dev = faulty(FaultTrigger::EveryK(2), FaultKind::Timeout);
        let mut stats = TestStats::default();
        let l = list();
        for _ in 0..6 {
            let _ = sup.submit(dev.as_mut(), &l, &mut stats);
        }
        assert!(!sup.is_quarantined());
        assert_eq!(stats.quarantined, 0);
    }
}
