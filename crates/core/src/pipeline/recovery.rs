//! Supervised device submission: bounded retry, modeled backoff, per-shard
//! circuit breakers with failover, and half-open probation — the middle
//! rungs of the degradation ladder.
//!
//! The ladder (DESIGN.md §8, §13) runs: **submit → validate → retry (with
//! modeled backoff) → shard failover → probation → quarantine → software
//! fallback**. This module owns every rung but the last; the callers in
//! `hw_intersect`, `hw_distance` and `hw_batch` own that one, because only
//! they know the exact software test that answers the pair the device
//! could not.
//!
//! The supervisor keeps one breaker *per device shard*
//! ([`RasterDevice::shards`]; a single entry for unsharded executors).
//! When a shard's breaker opens, submissions aimed at it are rerouted to
//! the next healthy shard by the stable rehash
//! ([`spatial_raster::failover_route`]) instead of falling straight to
//! software; only when *every* breaker is open are submissions refused.
//! With [`RecoveryPolicy::probation_ns`] set, an open breaker ripens after
//! a charged cool-down on the supervisor's modeled clock, and the next
//! submission aimed at (or failed over to) that shard is let through as a
//! half-open *probe*: success closes the breaker, failure re-opens it for
//! another cool-down.
//!
//! Three properties the whole fault-tolerance story rests on:
//!
//! * **No wall-clock sleeps.** Retry backoff and probation cool-downs are
//!   *charged*, not slept: each adds to `recovery_ns` in [`TestStats`],
//!   and the executor folds that into reported geometry time exactly like
//!   `gpu_modeled`. The probation clock advances on *modeled* time
//!   (charged backoffs plus modeled execution time), so runs stay
//!   deterministic and fast while the accounting still shows what
//!   recovery would have cost.
//! * **Failed submissions charge nothing else.** A faulted execute adds no
//!   hardware counters, so a retry-recovered run is bit-identical to a
//!   clean run everywhere except the recovery counters themselves — the
//!   headline property `fault_props` pins across all four pipelines.
//! * **Failover moves work, never results.** Every shard computes the
//!   same [`Execution`] for the same list (the bit-identity invariant),
//!   so rerouting changes only the routing counters — the invariant-14
//!   ledger `hw_tests + fallback_tests == clean hw_tests` balances under
//!   any schedule (`chaos_props`).

use crate::stats::TestStats;
use spatial_raster::{failover_route, CommandList, DeviceError, Execution, RasterDevice};

/// Retry/quarantine/probation policy for supervised submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Resubmissions attempted after the first fault of a submission
    /// (so a submission touches the device at most `1 + max_retries`
    /// times).
    pub max_retries: u32,
    /// Modeled backoff before the first retry, in nanoseconds; doubles per
    /// subsequent retry of the same submission (saturating). Charged to
    /// [`TestStats::recovery_ns`], never slept.
    pub backoff_ns: u64,
    /// Consecutive faulted *submissions* (retries exhausted) after which
    /// a shard's breaker opens and submissions stop touching that shard.
    /// `0` disables the breaker.
    pub quarantine_after: u32,
    /// Half-open probation: the modeled cool-down, in nanoseconds, after
    /// which an open breaker ripens and one probe submission may try to
    /// re-admit the shard. The cool-down is charged to
    /// [`TestStats::recovery_ns`] when the breaker opens — never slept —
    /// and elapses on the supervisor's modeled clock. `None` disables
    /// probation (an open breaker stays open, the pre-probation
    /// behavior); `Some(0)` is rejected by `EngineConfig::validate`
    /// (`ConfigError::ZeroProbationNs`).
    pub probation_ns: Option<u64>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 2,
            backoff_ns: 50_000,
            quarantine_after: 8,
            probation_ns: None,
        }
    }
}

/// One shard's breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Breaker {
    Closed,
    /// Open since some modeled instant; `ripe_at` is when probation lets a
    /// probe through (`u64::MAX` when probation is disabled). `err` is
    /// replayed for every refused submission so the caller's fallback
    /// reason stays stable.
    Open {
        err: DeviceError,
        ripe_at: u64,
    },
}

/// Per-shard retry/breaker bookkeeping.
#[derive(Debug, Clone, Copy)]
struct ShardHealth {
    /// Submissions (not attempts) that ended in a fault since the shard's
    /// last success.
    consecutive_faults: u32,
    breaker: Breaker,
}

impl Default for ShardHealth {
    fn default() -> Self {
        ShardHealth {
            consecutive_faults: 0,
            breaker: Breaker::Closed,
        }
    }
}

/// Wraps a device with the retry/failover/quarantine state machine. One
/// supervisor lives inside each `HwTester`; forks *inherit* the parent's
/// per-shard verdicts (`HwTester::inherit_supervision`), so a worker never
/// re-pays the retry ladder for a shard its parent already proved dead.
#[derive(Debug, Clone)]
pub(crate) struct Supervisor {
    policy: RecoveryPolicy,
    /// The modeled clock probation ripens on, in nanoseconds: advanced by
    /// charged retry backoffs and by the modeled GPU time of successful
    /// executions (`HwTester::execute_list`). Never wall clock.
    now_ns: u64,
    /// One entry per device shard, grown on first contact with a device
    /// that reports more shards.
    shards: Vec<ShardHealth>,
}

impl Supervisor {
    pub(crate) fn new(policy: RecoveryPolicy) -> Self {
        Supervisor {
            policy,
            now_ns: 0,
            shards: vec![ShardHealth::default()],
        }
    }

    pub(crate) fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Whether every shard's circuit breaker has opened — the state in
    /// which submissions are refused outright and the caller serves
    /// everything from exact software.
    pub(crate) fn is_quarantined(&self) -> bool {
        self.shards
            .iter()
            .all(|h| matches!(h.breaker, Breaker::Open { .. }))
    }

    /// How many shards currently sit behind an open breaker.
    pub(crate) fn open_shards(&self) -> usize {
        self.shards
            .iter()
            .filter(|h| matches!(h.breaker, Breaker::Open { .. }))
            .count()
    }

    /// Advances the modeled clock (charged backoff advances it internally;
    /// callers add the modeled GPU time of successful executions).
    pub(crate) fn advance(&mut self, ns: u64) {
        self.now_ns = self.now_ns.saturating_add(ns);
    }

    /// Pushes this supervisor's per-shard verdicts into `device`'s health
    /// mask, so the device's own failover rehash agrees with ours. Used
    /// when a fork adopts its parent's supervision state onto a freshly
    /// built device.
    pub(crate) fn sync_device(&self, device: &mut dyn RasterDevice) {
        for (shard, health) in self.shards.iter().enumerate() {
            device.set_shard_health(shard, matches!(health.breaker, Breaker::Closed));
        }
    }

    /// Submits `list` to the device's shard 0 — the unsharded entry point
    /// (kept for single-backend callers and tests).
    #[cfg(test)]
    pub(crate) fn submit(
        &mut self,
        device: &mut dyn RasterDevice,
        list: &CommandList,
        stats: &mut TestStats,
    ) -> Result<Execution, DeviceError> {
        self.submit_routed(device, 0, list, stats)
    }

    /// Submits `list` aimed at shard `route % shards`, validating the
    /// execution against what was recorded, retrying per policy, failing
    /// over to the next healthy shard when the aimed shard's breaker is
    /// open, probing ripe breakers, and keeping the fault counters in
    /// `stats`.
    ///
    /// On `Err` the caller must answer its pairs in exact software and
    /// charge `fallback_tests`; it must *not* charge any hardware counters
    /// for the failed submission.
    pub(crate) fn submit_routed(
        &mut self,
        device: &mut dyn RasterDevice,
        route: usize,
        list: &CommandList,
        stats: &mut TestStats,
    ) -> Result<Execution, DeviceError> {
        let n = device.shards().max(1);
        if self.shards.len() < n {
            self.shards.resize(n, ShardHealth::default());
        }
        let desired = route % n;
        let Some((target, probing)) = self.resolve(desired, stats) else {
            // Every breaker is open and none is ripe: refuse without
            // touching the device, replaying the aimed shard's error.
            stats.quarantined += 1;
            return Err(self.open_error(desired));
        };
        if probing {
            // Half-open: tentatively re-admit the shard so the device's
            // own failover rehash lets the probe reach it.
            device.set_shard_health(target, true);
        }
        if n > 1 {
            device.route(target);
        }
        let mut backoff = self.policy.backoff_ns;
        let mut last = DeviceError::ContextLost;
        for attempt in 0..=self.policy.max_retries {
            let outcome = device
                .execute(list)
                .and_then(|exec| exec.validate(list).map(|()| exec));
            match outcome {
                Ok(exec) => {
                    let health = &mut self.shards[target];
                    health.consecutive_faults = 0;
                    if probing {
                        health.breaker = Breaker::Closed;
                        stats.probe_reinstates += 1;
                    }
                    return Ok(exec);
                }
                Err(err) => {
                    stats.device_faults += 1;
                    last = err;
                    if attempt < self.policy.max_retries {
                        stats.retries += 1;
                        stats.recovery_ns = stats.recovery_ns.saturating_add(backoff);
                        self.now_ns = self.now_ns.saturating_add(backoff);
                        backoff = backoff.saturating_mul(2);
                    }
                }
            }
        }
        // Retries exhausted: the submission failed on `target`.
        self.shards[target].consecutive_faults += 1;
        let opens = probing
            || (self.policy.quarantine_after > 0
                && self.shards[target].consecutive_faults >= self.policy.quarantine_after);
        if opens {
            let ripe_at = self
                .policy
                .probation_ns
                .map_or(u64::MAX, |p| self.now_ns.saturating_add(p));
            let was_open = matches!(self.shards[target].breaker, Breaker::Open { .. });
            self.shards[target].breaker = Breaker::Open { err: last, ripe_at };
            if !was_open {
                // First opening of this breaker (a failed probe re-opens,
                // counted once at the original opening).
                stats.shard_quarantined += 1;
            }
            if let Some(p) = self.policy.probation_ns {
                // Each cool-down period is charged up front, never slept.
                stats.recovery_ns = stats.recovery_ns.saturating_add(p);
            }
            device.set_shard_health(target, false);
        }
        Err(last)
    }

    /// Picks the physical shard a submission aimed at `desired` executes
    /// on: the first shard in stable-rehash order whose breaker is closed
    /// (or open-and-ripe, which makes the submission a probe). `None`
    /// when every breaker is open and unripe.
    fn resolve(&self, desired: usize, stats: &mut TestStats) -> Option<(usize, bool)> {
        let usable: Vec<bool> = self
            .shards
            .iter()
            .map(|h| match h.breaker {
                Breaker::Closed => true,
                Breaker::Open { ripe_at, .. } => {
                    self.policy.probation_ns.is_some() && self.now_ns >= ripe_at
                }
            })
            .collect();
        let target = failover_route(desired, &usable)?;
        if target != desired {
            stats.shard_failovers += 1;
        }
        let probing = matches!(self.shards[target].breaker, Breaker::Open { .. });
        if probing {
            stats.probes += 1;
        }
        Some((target, probing))
    }

    /// The error stored when shard `desired`'s breaker opened (any open
    /// breaker's error when `desired`'s is somehow closed — only reachable
    /// when every shard is open).
    fn open_error(&self, desired: usize) -> DeviceError {
        let open = |h: &ShardHealth| match h.breaker {
            Breaker::Open { err, .. } => Some(err),
            Breaker::Closed => None,
        };
        open(&self.shards[desired])
            .or_else(|| self.shards.iter().find_map(open))
            .unwrap_or(DeviceError::ContextLost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_geom::{Point, Rect, Segment};
    use spatial_raster::{
        DeviceKind, FaultDevice, FaultKind, FaultPlan, FaultTrigger, Recorder, Viewport,
    };

    fn list() -> CommandList {
        let mut r = Recorder::new(8, 8);
        r.set_viewport(Viewport::new(Rect::new(0.0, 0.0, 8.0, 8.0), 8, 8))
            .unwrap();
        r.clear_color();
        r.draw_segments([Segment::new(Point::new(0.0, 0.0), Point::new(8.0, 8.0))])
            .unwrap();
        r.minmax();
        r.finish()
    }

    fn faulty(trigger: FaultTrigger, kind: FaultKind) -> Box<dyn RasterDevice> {
        Box::new(FaultDevice::new(
            DeviceKind::Reference.build(),
            FaultPlan::new(7, kind, trigger),
        ))
    }

    #[test]
    fn clean_submissions_charge_nothing() {
        let mut sup = Supervisor::new(RecoveryPolicy::default());
        let mut dev = DeviceKind::Reference.build();
        let mut stats = TestStats::default();
        let exec = sup.submit(dev.as_mut(), &list(), &mut stats).unwrap();
        assert_eq!(exec.readbacks.len(), 1);
        assert_eq!(stats.device_faults, 0);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.recovery_ns, 0);
    }

    #[test]
    fn one_fault_is_retried_and_charged() {
        let mut sup = Supervisor::new(RecoveryPolicy::default());
        let mut dev = faulty(FaultTrigger::OnExecute(0), FaultKind::Timeout);
        let mut stats = TestStats::default();
        let exec = sup.submit(dev.as_mut(), &list(), &mut stats);
        assert!(exec.is_ok(), "second attempt is clean");
        assert_eq!(stats.device_faults, 1);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.recovery_ns, 50_000);
        assert!(!sup.is_quarantined());
    }

    #[test]
    fn corrupted_readbacks_fail_validation_and_retry() {
        let mut sup = Supervisor::new(RecoveryPolicy::default());
        let mut dev = faulty(FaultTrigger::OnExecute(0), FaultKind::ReadbackBitFlip);
        let mut stats = TestStats::default();
        let exec = sup.submit(dev.as_mut(), &list(), &mut stats);
        assert!(exec.is_ok());
        assert_eq!(stats.device_faults, 1);
        assert_eq!(stats.retries, 1);
    }

    #[test]
    fn exhausted_retries_report_the_last_error_with_exponential_backoff() {
        let mut sup = Supervisor::new(RecoveryPolicy {
            max_retries: 2,
            backoff_ns: 100,
            quarantine_after: 0,
            probation_ns: None,
        });
        let mut dev = faulty(FaultTrigger::EveryK(1), FaultKind::OutOfMemory);
        let mut stats = TestStats::default();
        assert_eq!(
            sup.submit(dev.as_mut(), &list(), &mut stats),
            Err(DeviceError::OutOfMemory)
        );
        assert_eq!(stats.device_faults, 3, "initial attempt + 2 retries");
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.recovery_ns, 100 + 200);
        assert_eq!(stats.quarantined, 0);
    }

    #[test]
    fn breaker_opens_after_consecutive_faulted_submissions() {
        let mut sup = Supervisor::new(RecoveryPolicy {
            max_retries: 0,
            backoff_ns: 1,
            quarantine_after: 2,
            probation_ns: None,
        });
        let mut dev = faulty(FaultTrigger::EveryK(1), FaultKind::ContextLost);
        let mut stats = TestStats::default();
        let l = list();
        assert!(sup.submit(dev.as_mut(), &l, &mut stats).is_err());
        assert!(!sup.is_quarantined());
        assert!(sup.submit(dev.as_mut(), &l, &mut stats).is_err());
        assert!(sup.is_quarantined());
        // Refused without touching the device: fault count stays put.
        assert_eq!(stats.device_faults, 2);
        assert_eq!(
            sup.submit(dev.as_mut(), &l, &mut stats),
            Err(DeviceError::ContextLost)
        );
        assert_eq!(stats.device_faults, 2);
        assert_eq!(stats.quarantined, 1);
    }

    #[test]
    fn open_breaker_fails_over_to_the_next_healthy_shard() {
        let mut sup = Supervisor::new(RecoveryPolicy {
            max_retries: 0,
            backoff_ns: 1,
            quarantine_after: 1,
            probation_ns: None,
        });
        // Only shard 0 is sick, permanently.
        let plan = FaultPlan::new(3, FaultKind::Timeout, FaultTrigger::EveryK(1)).on_shard(0);
        let mut dev = DeviceKind::Reference.with_faults(plan).sharded(2).build();
        let mut stats = TestStats::default();
        let l = list();
        // First submission pays the fault and opens shard 0's breaker.
        assert!(sup.submit_routed(dev.as_mut(), 0, &l, &mut stats).is_err());
        assert_eq!(stats.shard_quarantined, 1);
        assert!(!sup.is_quarantined(), "shard 1 still serves");
        // Later submissions aimed at shard 0 fail over to shard 1.
        for _ in 0..3 {
            assert!(sup.submit_routed(dev.as_mut(), 0, &l, &mut stats).is_ok());
        }
        assert_eq!(stats.shard_failovers, 3);
        assert_eq!(stats.quarantined, 0, "failover, not refusal");
    }

    #[test]
    fn ripe_breaker_is_probed_and_a_clean_probe_reinstates() {
        let mut sup = Supervisor::new(RecoveryPolicy {
            max_retries: 0,
            backoff_ns: 1,
            quarantine_after: 1,
            probation_ns: Some(1_000),
        });
        // Shard 0 faults exactly once (its first execute), then recovers.
        let plan =
            FaultPlan::new(3, FaultKind::ContextLost, FaultTrigger::OnExecute(0)).on_shard(0);
        let mut dev = DeviceKind::Reference.with_faults(plan).sharded(2).build();
        let mut stats = TestStats::default();
        let l = list();
        assert!(sup.submit_routed(dev.as_mut(), 0, &l, &mut stats).is_err());
        assert_eq!(stats.shard_quarantined, 1);
        assert_eq!(stats.recovery_ns, 1_000, "cool-down charged at opening");
        // Cool-down not yet elapsed on the modeled clock: fail over.
        assert!(sup.submit_routed(dev.as_mut(), 0, &l, &mut stats).is_ok());
        assert_eq!(stats.shard_failovers, 1);
        assert_eq!(stats.probes, 0);
        // Modeled work elapses the cool-down; the next aim is a probe.
        sup.advance(2_000);
        assert!(sup.submit_routed(dev.as_mut(), 0, &l, &mut stats).is_ok());
        assert_eq!(stats.probes, 1);
        assert_eq!(stats.probe_reinstates, 1);
        // Reinstated: no further failover or probing.
        assert!(sup.submit_routed(dev.as_mut(), 0, &l, &mut stats).is_ok());
        assert_eq!(stats.shard_failovers, 1);
        assert_eq!(stats.probes, 1);
    }

    #[test]
    fn failed_probe_reopens_for_another_charged_cooldown() {
        let mut sup = Supervisor::new(RecoveryPolicy {
            max_retries: 0,
            backoff_ns: 1,
            quarantine_after: 1,
            probation_ns: Some(500),
        });
        let plan = FaultPlan::new(3, FaultKind::Timeout, FaultTrigger::EveryK(1)).on_shard(0);
        let mut dev = DeviceKind::Reference.with_faults(plan).sharded(2).build();
        let mut stats = TestStats::default();
        let l = list();
        assert!(sup.submit_routed(dev.as_mut(), 0, &l, &mut stats).is_err());
        sup.advance(1_000);
        // Ripe: the probe runs, faults again, and re-opens the breaker.
        assert!(sup.submit_routed(dev.as_mut(), 0, &l, &mut stats).is_err());
        assert_eq!(stats.probes, 1);
        assert_eq!(stats.probe_reinstates, 0);
        assert_eq!(
            stats.shard_quarantined, 1,
            "re-opening is not a new opening"
        );
        assert_eq!(stats.recovery_ns, 2 * 500, "each cool-down period charged");
        // Unripe again: back to failover.
        assert!(sup.submit_routed(dev.as_mut(), 0, &l, &mut stats).is_ok());
        assert_eq!(stats.shard_failovers, 1);
    }

    #[test]
    fn all_shards_open_refuses_without_touching_the_device() {
        let mut sup = Supervisor::new(RecoveryPolicy {
            max_retries: 0,
            backoff_ns: 1,
            quarantine_after: 1,
            probation_ns: None,
        });
        let plan = FaultPlan::new(3, FaultKind::OutOfMemory, FaultTrigger::EveryK(1));
        let mut dev = DeviceKind::Reference.with_faults(plan).sharded(2).build();
        let mut stats = TestStats::default();
        let l = list();
        assert!(sup.submit_routed(dev.as_mut(), 0, &l, &mut stats).is_err());
        // Failover reaches shard 1, which is just as sick.
        assert!(sup.submit_routed(dev.as_mut(), 0, &l, &mut stats).is_err());
        assert_eq!(stats.shard_failovers, 1);
        assert_eq!(stats.shard_quarantined, 2);
        assert!(sup.is_quarantined());
        assert_eq!(sup.open_shards(), 2);
        let faults_before = stats.device_faults;
        assert_eq!(
            sup.submit_routed(dev.as_mut(), 0, &l, &mut stats),
            Err(DeviceError::OutOfMemory)
        );
        assert_eq!(stats.device_faults, faults_before, "device untouched");
        assert_eq!(stats.quarantined, 1);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let mut sup = Supervisor::new(RecoveryPolicy {
            max_retries: 0,
            backoff_ns: 1,
            quarantine_after: 2,
            probation_ns: None,
        });
        // Faults on every second execute — never two submissions in a row.
        let mut dev = faulty(FaultTrigger::EveryK(2), FaultKind::Timeout);
        let mut stats = TestStats::default();
        let l = list();
        for _ in 0..6 {
            let _ = sup.submit(dev.as_mut(), &l, &mut stats);
        }
        assert!(!sup.is_quarantined());
        assert_eq!(stats.quarantined, 0);
    }
}
