//! The staged executor: one implementation of Fig. 8's three-stage loop,
//! generic over candidate type, filter chain and refinement backend.
//!
//! Every pipeline is the same shape:
//!
//! ```text
//! stage 1   MBR filtering          R-tree search / tree join
//! stage 2   intermediate filtering chain of CandidateFilters, sequential
//! stage 3   geometry comparison    RefinementBackend, batched and/or parallel
//! ```
//!
//! The executor owns the timers and the [`CostBreakdown`]; stage 3's
//! reported time swaps the rasterizer-simulation seconds for modeled GPU
//! seconds, exactly as the per-pipeline loops used to.
//!
//! # Determinism under batching and threads
//!
//! Stage 3 first partitions the undecided candidates into *submission
//! units* — chunks of `batch` candidates (or per-worker spans when
//! `batch ≤ 1`) — and only then assigns whole units to workers
//! round-robin. The partition is a pure function of the candidate list and
//! `batch`, never of `threads`; every backend's counters are a pure
//! function of the unit contents; counter merging is integer addition.
//! Hence results *and* merged statistics are bit-identical across thread
//! counts (`sim_wall` aside, which measures the simulation's own wall
//! clock and is excluded from all reported times).
//!
//! # Determinism under spatial partitioning
//!
//! With `partitions > 1` (DESIGN.md §11) the candidate stream is binned
//! by a pure owner function before stages 2 and 3, each partition is
//! processed independently — its submissions routed to device shard
//! `p % shards` — and per-partition counters fold in ascending partition
//! order. Binning is a permutation of the stream; filter decisions and
//! per-pair test outcomes are pure per candidate; the final result sort
//! erases the permutation. Results and every deterministic counter are
//! therefore bit-identical to the unpartitioned run (invariant 12); at
//! `batch > 1` only the submission-grouping diagnostics can move,
//! because batches form within partitions instead of across them.

use super::backend::RefinementBackend;
use super::filter::{CandidateFilter, Decision};
use super::Predicate;
use crate::stats::{CostBreakdown, TestStats};
use spatial_geom::Polygon;
use spatial_index::FilterStats;
use std::time::{Duration, Instant};

/// Measured stage time with the simulation seconds swapped for modeled
/// GPU seconds, plus the modeled recovery backoff (charged by the fault
/// supervisor instead of slept — see `pipeline::recovery`). Saturating: on
/// a fast host the measured slice attributable to simulation can exceed
/// the stage's own timer resolution, and under parallel refinement the
/// per-worker simulation seconds sum past the stage's wall clock.
pub(crate) fn adjusted(measured: Duration, tests: &TestStats) -> Duration {
    measured.saturating_sub(tests.sim_wall)
        + tests.gpu_modeled
        + Duration::from_nanos(tests.recovery_ns)
}

/// Stage-3 execution parameters, copied from the engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct StagedExecutor {
    /// Candidate pairs per hardware submission round; ≤ 1 keeps the
    /// paper-faithful per-pair choreography.
    pub batch: usize,
    /// Refinement worker threads; ≤ 1 runs sequentially.
    pub threads: usize,
    /// Spatial partitions (grid cells) stages 2 and 3 operate over; ≤ 1
    /// is the unpartitioned path. Candidates are binned by the `assign`
    /// closure (the PBSM reference-point rule in the engine) and each
    /// partition is filtered and refined independently, in ascending
    /// partition order, so results and merged counters are deterministic
    /// (DESIGN.md invariant 12).
    pub partitions: usize,
    /// Device shards: partition `p`'s submissions route to shard
    /// `p % shards` before refinement. ≤ 1 leaves routing untouched.
    pub shards: usize,
}

impl StagedExecutor {
    /// Runs one query: `stage1` enumerates candidates (returning its MBR
    /// work counters alongside them), the `filters` chain settles what it
    /// can, the backend refines the rest. Stage-1 time — tree traversal
    /// and join scheduling included — lands in `cost.mbr_filter`.
    ///
    /// When `partitions > 1` the candidate stream is first binned by
    /// `assign` — a pure function of the candidate, so every candidate
    /// belongs to exactly one partition and the binning is a permutation
    /// of the stream, never a change to its contents. Stage 2 decisions
    /// are per-candidate pure and stage-3 counters are per-pair pure at
    /// `batch ≤ 1`, so the partitioned run's results and deterministic
    /// counters are bit-identical to the unpartitioned run's; only
    /// submission-grouping diagnostics can move at `batch > 1`, because
    /// batches then form within partitions.
    pub fn run<'p, C, R>(
        &self,
        backend: &mut dyn RefinementBackend,
        predicate: Predicate,
        stage1: impl FnOnce() -> (Vec<C>, FilterStats),
        mut filters: Vec<Box<dyn CandidateFilter<C> + '_>>,
        assign: impl Fn(&C) -> usize,
        resolve: R,
    ) -> (Vec<C>, CostBreakdown)
    where
        C: Copy + Ord + Send + Sync,
        R: Fn(C) -> (&'p Polygon, &'p Polygon) + Sync,
    {
        let mut cost = CostBreakdown::default();

        let t0 = Instant::now();
        let (candidates, filter_stats) = stage1();
        cost.mbr_filter = t0.elapsed();
        cost.candidates = candidates.len();
        cost.node_tests = filter_stats.node_tests;
        cost.simd_node_tests = filter_stats.simd_node_tests;
        cost.filter_work_units = filter_stats.work_units;

        let t1 = Instant::now();
        // Bin the stream into partitions (one bin = the unpartitioned
        // path, with the stream passed through untouched).
        let parts = self.partitions.max(1);
        let bins: Vec<Vec<C>> = if parts > 1 {
            let mut bins: Vec<Vec<C>> = Vec::new();
            bins.resize_with(parts, Vec::new);
            for c in candidates {
                bins[assign(&c) % parts].push(c);
            }
            bins
        } else {
            vec![candidates]
        };
        cost.partitions_used = bins.iter().filter(|b| !b.is_empty()).count();

        // Stage 2 per partition, ascending partition order. Filter
        // decisions are per-candidate pure, so reordering examinations by
        // partition changes no outcome.
        let mut results: Vec<C> = Vec::new();
        let mut rests: Vec<Vec<C>> = Vec::with_capacity(bins.len());
        for bin in &bins {
            let mut rest: Vec<C> = Vec::new();
            'candidates: for &c in bin {
                for f in filters.iter_mut() {
                    match f.examine(&c) {
                        Decision::Confirm => {
                            results.push(c);
                            continue 'candidates;
                        }
                        Decision::Reject => continue 'candidates,
                        Decision::Refine => {}
                    }
                }
                rest.push(c);
            }
            rests.push(rest);
        }
        cost.intermediate_filter = t1.elapsed();
        cost.filter_hits = results.len();

        // Stage 3 per partition, ascending partition order: route the
        // partition's shard, refine, and fold counters in that fixed
        // order — the same merge discipline the tiled device uses for its
        // bands, so merged stats never depend on shard timing.
        let t2 = Instant::now();
        for (p, rest) in rests.iter().enumerate() {
            if parts > 1 {
                if rest.is_empty() {
                    continue;
                }
                backend.select_shard(p % self.shards.max(1));
            }
            self.refine(
                backend,
                predicate,
                rest,
                &resolve,
                &mut results,
                &mut cost.tests,
            );
        }
        cost.geometry_comparison = adjusted(t2.elapsed(), &cost.tests);
        results.sort_unstable();
        cost.results = results.len();
        (results, cost)
    }

    /// Runs one *aggregation* query: `stage1` enumerates candidate pairs,
    /// stage 3 measures each pair's quantized area of overlap at
    /// `resolution` (DESIGN.md §14) and keeps the pairs with a positive
    /// area. There is no intermediate filter stage — a boolean filter
    /// cannot settle an area — and no atlas batching: aggregations are
    /// per-pair submissions, so `batch` only shapes the thread units.
    ///
    /// Determinism matches [`StagedExecutor::run`]: binning is a
    /// permutation, each measurement is a pure function of its pair and
    /// the resolution (identical on every backend, shard and fallback
    /// path), counters merge by addition in fixed order, and the final
    /// sort by candidate erases the partition permutation — so the rows,
    /// their areas and every deterministic counter are bit-identical
    /// across partition grids, shard counts, thread counts and seeded
    /// fault plans.
    pub fn run_measure<'p, C, R>(
        &self,
        backend: &mut dyn RefinementBackend,
        resolution: usize,
        stage1: impl FnOnce() -> (Vec<C>, FilterStats),
        assign: impl Fn(&C) -> usize,
        resolve: R,
    ) -> (Vec<(C, f64)>, CostBreakdown)
    where
        C: Copy + Ord + Send + Sync,
        R: Fn(C) -> (&'p Polygon, &'p Polygon) + Sync,
    {
        let mut cost = CostBreakdown::default();

        let t0 = Instant::now();
        let (candidates, filter_stats) = stage1();
        cost.mbr_filter = t0.elapsed();
        cost.candidates = candidates.len();
        cost.node_tests = filter_stats.node_tests;
        cost.simd_node_tests = filter_stats.simd_node_tests;
        cost.filter_work_units = filter_stats.work_units;

        let parts = self.partitions.max(1);
        let bins: Vec<Vec<C>> = if parts > 1 {
            let mut bins: Vec<Vec<C>> = Vec::new();
            bins.resize_with(parts, Vec::new);
            for c in candidates {
                bins[assign(&c) % parts].push(c);
            }
            bins
        } else {
            vec![candidates]
        };
        cost.partitions_used = bins.iter().filter(|b| !b.is_empty()).count();

        let t2 = Instant::now();
        let mut results: Vec<(C, f64)> = Vec::new();
        for (p, bin) in bins.iter().enumerate() {
            if parts > 1 {
                if bin.is_empty() {
                    continue;
                }
                backend.select_shard(p % self.shards.max(1));
            }
            self.measure(
                backend,
                resolution,
                bin,
                &resolve,
                &mut results,
                &mut cost.tests,
            );
        }
        cost.geometry_comparison = adjusted(t2.elapsed(), &cost.tests);
        results.sort_unstable_by_key(|r| r.0);
        cost.results = results.len();
        (results, cost)
    }

    /// Stage 3 of the aggregation path: measure `bin`, keeping positive
    /// areas, honoring `threads` with the same unit/round-robin/merge
    /// discipline as [`StagedExecutor::refine`].
    fn measure<'p, C, R>(
        &self,
        backend: &mut dyn RefinementBackend,
        resolution: usize,
        bin: &[C],
        resolve: &R,
        out: &mut Vec<(C, f64)>,
        tests: &mut TestStats,
    ) where
        C: Copy + Ord + Send + Sync,
        R: Fn(C) -> (&'p Polygon, &'p Polygon) + Sync,
    {
        let measure_span = |backend: &mut dyn RefinementBackend,
                            span: &[C],
                            out: &mut Vec<(C, f64)>,
                            tests: &mut TestStats| {
            for &c in span {
                let (p, q) = resolve(c);
                let area = backend.measure_overlap(p, q, resolution, tests);
                if area > 0.0 {
                    out.push((c, area));
                }
            }
        };

        let threads = self.threads.max(1);
        if threads <= 1 || bin.len() < 2 {
            measure_span(backend, bin, out, tests);
            return;
        }
        let unit = if self.batch > 1 {
            self.batch
        } else {
            bin.len().div_ceil(threads).max(1)
        };
        let units: Vec<&[C]> = bin.chunks(unit).collect();
        let workers = threads.min(units.len());
        let per_worker: Vec<(Vec<(C, f64)>, TestStats)> = std::thread::scope(|scope| {
            let units = &units;
            let measure_span = &measure_span;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let mut wb = backend.fork();
                    scope.spawn(move || {
                        let mut res = Vec::new();
                        let mut st = TestStats::default();
                        for u in (w..units.len()).step_by(workers) {
                            measure_span(wb.as_mut(), units[u], &mut res, &mut st);
                        }
                        (res, st)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("measurement worker panicked"))
                .collect()
        });
        for (res, st) in per_worker {
            out.extend(res);
            tests.add(&st);
        }
    }

    /// Stage 3: decide `rest` with the backend, honoring `batch` and
    /// `threads`.
    fn refine<'p, C, R>(
        &self,
        backend: &mut dyn RefinementBackend,
        predicate: Predicate,
        rest: &[C],
        resolve: &R,
        out: &mut Vec<C>,
        tests: &mut TestStats,
    ) where
        C: Copy + Ord + Send + Sync,
        R: Fn(C) -> (&'p Polygon, &'p Polygon) + Sync,
    {
        let threads = self.threads.max(1);
        if threads <= 1 || rest.len() < 2 {
            self.refine_span(backend, predicate, rest, resolve, out, tests);
            return;
        }

        // Units are batch-aligned so a unit's counters cannot depend on
        // which worker runs it; with batch ≤ 1 any split works, so use
        // near-equal spans. Units go to workers round-robin.
        let unit = if self.batch > 1 {
            self.batch
        } else {
            rest.len().div_ceil(threads).max(1)
        };
        let units: Vec<&[C]> = rest.chunks(unit).collect();
        let workers = threads.min(units.len());
        let per_worker: Vec<(Vec<C>, TestStats)> = std::thread::scope(|scope| {
            let units = &units;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let mut wb = backend.fork();
                    scope.spawn(move || {
                        let mut res = Vec::new();
                        let mut st = TestStats::default();
                        for u in (w..units.len()).step_by(workers) {
                            self.refine_span(
                                wb.as_mut(),
                                predicate,
                                units[u],
                                resolve,
                                &mut res,
                                &mut st,
                            );
                        }
                        (res, st)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("refinement worker panicked"))
                .collect()
        });
        // Merge in worker order: counter addition commutes exactly, so the
        // totals equal the sequential run's; the fixed order keeps even
        // the intermediate states reproducible.
        for (res, st) in per_worker {
            out.extend(res);
            tests.add(&st);
        }
    }

    /// Decides one contiguous span, batching submissions when configured.
    fn refine_span<'p, C, R>(
        &self,
        backend: &mut dyn RefinementBackend,
        predicate: Predicate,
        span: &[C],
        resolve: &R,
        out: &mut Vec<C>,
        tests: &mut TestStats,
    ) where
        C: Copy + Ord + Send + Sync,
        R: Fn(C) -> (&'p Polygon, &'p Polygon) + Sync,
    {
        if self.batch > 1 {
            for group in span.chunks(self.batch) {
                let pairs: Vec<(&Polygon, &Polygon)> = group.iter().map(|&c| resolve(c)).collect();
                let verdicts = backend.test_batch(predicate, &pairs, tests);
                debug_assert_eq!(verdicts.len(), group.len());
                for (&c, keep) in group.iter().zip(verdicts) {
                    if keep {
                        out.push(c);
                    }
                }
            }
        } else {
            for &c in span {
                let (p, q) = resolve(c);
                if backend.test(predicate, p, q, tests) {
                    out.push(c);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HwConfig;
    use crate::pipeline::backend::{HardwareBackend, SoftwareBackend};

    fn square(x: f64, y: f64, s: f64) -> Polygon {
        Polygon::from_coords(&[(x, y), (x + s, y), (x + s, y + s), (x, y + s)])
    }

    /// A filter stage that confirms even indices and rejects multiples of
    /// five — exercises every `Decision` arm, including `Reject`, which no
    /// built-in paper filter uses (the paper's filters are one-sided).
    struct ParityFilter;
    impl CandidateFilter<usize> for ParityFilter {
        fn examine(&mut self, &i: &usize) -> Decision {
            if i % 5 == 0 {
                Decision::Reject
            } else if i % 2 == 0 {
                Decision::Confirm
            } else {
                Decision::Refine
            }
        }
    }

    #[test]
    fn filter_chain_routes_all_three_decisions() {
        let polys: Vec<Polygon> = (0..10).map(|i| square(i as f64 * 3.0, 0.0, 1.0)).collect();
        let query = square(0.0, 0.0, 1.0); // intersects only polygon 0 (rejected by filter)
        let exec = StagedExecutor {
            batch: 1,
            threads: 1,
            partitions: 1,
            shards: 1,
        };
        let mut backend = SoftwareBackend;
        let (results, cost) = exec.run(
            &mut backend,
            Predicate::Intersects,
            || ((0..10).collect(), FilterStats::default()),
            vec![Box::new(ParityFilter)],
            |_| 0,
            |i| (&query, &polys[i]),
        );
        // Confirmed: even non-multiples-of-5 {2,4,6,8}. Refined {1,3,7,9}:
        // none intersects the query. Rejected {0,5} — including the one
        // true geometric intersection, proving Reject short-circuits.
        assert_eq!(results, vec![2, 4, 6, 8]);
        assert_eq!(cost.filter_hits, 4);
        assert_eq!(cost.candidates, 10);
        assert_eq!(cost.results, 4);
        assert_eq!(cost.tests.software_tests, 4);
    }

    /// Horizontal bars crossed by tall vertical bars: for the crossing
    /// pairs the MBRs overlap but no vertex of either polygon lies inside
    /// the other, so (at `sw_threshold = 0`) they genuinely reach the
    /// hardware filter; shifted verticals add PiP- and MBR-decided pairs
    /// for routing variety.
    fn bars() -> (Vec<Polygon>, Vec<Polygon>) {
        let horiz: Vec<Polygon> = (0..6)
            .map(|i| {
                let y = 10.0 * i as f64 + 2.0;
                Polygon::from_coords(&[(0.0, y), (6.0, y), (6.0, y + 2.0), (0.0, y + 2.0)])
            })
            .collect();
        let vert: Vec<Polygon> = (0..6)
            .map(|j| {
                let x = 1.0 + 4.0 * j as f64;
                Polygon::from_coords(&[(x, -1.0), (x + 2.0, -1.0), (x + 2.0, 61.0), (x, 61.0)])
            })
            .collect();
        (horiz, vert)
    }

    /// The full cross-product: batch × threads must all give the same
    /// results and the same deterministic counters.
    #[test]
    fn batch_and_threads_preserve_results_and_counters() {
        let (left, right) = bars();
        let cands: Vec<(usize, usize)> = (0..6).flat_map(|i| (0..6).map(move |j| (i, j))).collect();

        let run = |batch: usize, threads: usize| {
            let exec = StagedExecutor {
                batch,
                threads,
                partitions: 1,
                shards: 1,
            };
            let mut backend = HardwareBackend::new(HwConfig::at_resolution(8));
            exec.run(
                &mut backend,
                Predicate::Intersects,
                || (cands.clone(), FilterStats::default()),
                Vec::new(),
                |_| 0,
                |(i, j)| (&left[i], &right[j]),
            )
        };

        let (base_results, base_cost) = run(1, 1);
        assert!(!base_results.is_empty());
        assert!(
            base_cost.tests.hw_tests > 0,
            "workload must exercise the hardware"
        );
        for (batch, threads) in [(1, 2), (1, 4), (4, 1), (4, 2), (4, 3), (64, 4)] {
            let (r, c) = run(batch, threads);
            assert_eq!(r, base_results, "batch={batch} threads={threads}");
            let (t, bt) = (&c.tests, &base_cost.tests);
            assert_eq!(t.decided_by_pip, bt.decided_by_pip);
            assert_eq!(t.rejected_by_hw, bt.rejected_by_hw);
            assert_eq!(t.software_tests, bt.software_tests);
            assert_eq!(t.hw_tests, bt.hw_tests);
            // Same-batch configs have identical submission counters too.
            let (rr, cc) = run(batch, 1);
            assert_eq!(rr, base_results);
            assert_eq!(
                cc.tests.hw_batches, t.hw_batches,
                "batch={batch} threads={threads}"
            );
            assert_eq!(cc.tests.hw, t.hw, "batch={batch} threads={threads}");
        }
    }

    /// The aggregation path's invariant: rows, areas (bit-for-bit) and
    /// deterministic counters are identical across batch, thread,
    /// partition and shard settings.
    #[test]
    fn measured_areas_are_invariant_across_execution_shapes() {
        let (left, right) = bars();
        let cands: Vec<(usize, usize)> = (0..6).flat_map(|i| (0..6).map(move |j| (i, j))).collect();
        let run = |batch: usize, threads: usize, partitions: usize, shards: usize| {
            let exec = StagedExecutor {
                batch,
                threads,
                partitions,
                shards,
            };
            let mut backend = HardwareBackend::new(HwConfig::at_resolution(8));
            exec.run_measure(
                &mut backend,
                32,
                || (cands.clone(), FilterStats::default()),
                |&(i, _)| i,
                |(i, j)| (&left[i], &right[j]),
            )
        };
        let (base, base_cost) = run(1, 1, 1, 1);
        assert!(!base.is_empty(), "bars must overlap");
        assert!(base.iter().all(|&(_, a)| a > 0.0));
        assert!(base_cost.tests.overlap_tests > 0);
        for (batch, threads, partitions, shards) in
            [(1, 4, 1, 1), (4, 2, 1, 1), (1, 1, 4, 2), (4, 3, 5, 3)]
        {
            let (rows, cost) = run(batch, threads, partitions, shards);
            assert_eq!(rows.len(), base.len(), "b{batch} t{threads} p{partitions}");
            for ((c, a), (bc, ba)) in rows.iter().zip(&base) {
                assert_eq!(c, bc);
                assert_eq!(a.to_bits(), ba.to_bits(), "area drifted at {c:?}");
            }
            assert_eq!(cost.tests.overlap_tests, base_cost.tests.overlap_tests);
            assert_eq!(cost.tests.hw, base_cost.tests.hw);
            assert_eq!(cost.candidates, base_cost.candidates);
            assert_eq!(cost.results, base_cost.results);
        }
    }

    #[test]
    fn batching_reduces_submission_rounds() {
        let (left, right) = bars();
        let cands: Vec<(usize, usize)> = (0..6).flat_map(|i| (0..6).map(move |j| (i, j))).collect();
        let run = |batch: usize| {
            let exec = StagedExecutor {
                batch,
                threads: 1,
                partitions: 1,
                shards: 1,
            };
            let mut backend = HardwareBackend::new(HwConfig::at_resolution(8));
            exec.run(
                &mut backend,
                Predicate::Intersects,
                || (cands.clone(), FilterStats::default()),
                Vec::new(),
                |_| 0,
                |(i, j)| (&left[i], &right[j]),
            )
        };
        let (r1, c1) = run(1);
        let (r2, c2) = run(64);
        assert_eq!(r1, r2);
        assert!(c2.tests.hw_tests > 0, "workload must exercise the hardware");
        assert!(
            c2.tests.hw.submissions() < c1.tests.hw.submissions(),
            "batched {} !< per-pair {}",
            c2.tests.hw.submissions(),
            c1.tests.hw.submissions()
        );
        assert_eq!(c1.tests.hw_batches, 0);
        assert!(c2.tests.hw_batches > 0);
    }
}
