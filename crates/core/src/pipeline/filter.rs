//! The declarative intermediate-filter chain (stage 2 of Fig. 8).
//!
//! The paper uses two very different intermediate filters — the interior
//! (tiling) filter for selections (Table 1) and the 0/1-object distance
//! filters for within-distance joins (Fig. 14) — but both do the same job:
//! look at a candidate cheaply and either settle it or pass it on. The
//! [`CandidateFilter`] trait captures that contract; the executor runs
//! candidates through a chain of them, so pipelines declare their filters
//! instead of inlining filter loops.

use crate::engine::PreparedDataset;
use spatial_filters::{one_object_upper_bound, zero_object_upper_bound, InteriorFilter};
use spatial_geom::{Polygon, Segment};

/// What a filter concluded about one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Provably a result: skip refinement (a *filter hit*).
    Confirm,
    /// Provably not a result: drop without refinement.
    Reject,
    /// Undecided: pass to the next filter, ultimately to the backend.
    Refine,
}

/// One intermediate filter over candidates of type `C` (`usize` for
/// selections, `(usize, usize)` for joins).
///
/// `examine` takes `&mut self` because real filters keep state (the
/// 1-object filter's edge cache); implementations must stay deterministic
/// in candidate order, which the executor keeps identical across
/// configurations — filtering always runs sequentially, before candidates
/// are partitioned for parallel refinement. Stage 1 upholds its side of
/// the contract even when the MBR filter itself is threaded: the join
/// scheduler merges work-unit outputs in unit order, so the candidate
/// sequence reaching this chain is bit-identical to a sequential
/// traversal for every `filter_threads` / `filter_simd` setting.
pub trait CandidateFilter<C> {
    fn examine(&mut self, candidate: &C) -> Decision;
}

/// The interior (tiling) filter as a chain stage: candidates whose MBR
/// lies in a fully-interior tile of the query are confirmed — for the
/// intersection *and* containment predicates alike (Table 1's double
/// duty). Never rejects: an MBR outside every interior tile proves
/// nothing.
pub struct InteriorFilterStage<'a> {
    filter: InteriorFilter,
    ds: &'a PreparedDataset,
}

impl<'a> InteriorFilterStage<'a> {
    pub fn new(query: &Polygon, level: u32, ds: &'a PreparedDataset) -> Self {
        InteriorFilterStage {
            filter: InteriorFilter::build(query, level),
            ds,
        }
    }
}

impl CandidateFilter<usize> for InteriorFilterStage<'_> {
    fn examine(&mut self, &i: &usize) -> Decision {
        if self.filter.covers(&self.ds.polygon(i).mbr()) {
            Decision::Confirm
        } else {
            Decision::Refine
        }
    }
}

/// The 0-object and 1-object distance filters as one chain stage
/// (Fig. 14): upper-bound the pair distance from MBRs alone, then from
/// one object's (sampled) real boundary against the other's MBR; a bound
/// `≤ d` confirms the pair. Never rejects: these are upper bounds.
pub struct ObjectFilterStage<'a> {
    a: &'a PreparedDataset,
    b: &'a PreparedDataset,
    d: f64,
    /// One-slot edge cache keyed on the left object: the tree join emits
    /// left-consecutive pairs, so consecutive candidates usually reuse it.
    cached_edges: Option<(usize, Vec<Segment>)>,
}

/// The 1-object bound stays valid on any boundary *subset* (distances to
/// fewer edges only grow), so huge boundaries are sampled down — otherwise
/// the filter would scan a 39k-vertex river once per candidate pair and
/// cost more than the geometry comparison it is meant to avoid.
const MAX_FILTER_EDGES: usize = 64;

impl<'a> ObjectFilterStage<'a> {
    pub fn new(a: &'a PreparedDataset, b: &'a PreparedDataset, d: f64) -> Self {
        ObjectFilterStage {
            a,
            b,
            d,
            cached_edges: None,
        }
    }

    fn sampled(poly: &Polygon) -> Vec<Segment> {
        let step = poly.vertex_count().div_ceil(MAX_FILTER_EDGES).max(1);
        poly.edges().step_by(step).collect()
    }
}

impl CandidateFilter<(usize, usize)> for ObjectFilterStage<'_> {
    fn examine(&mut self, &(i, j): &(usize, usize)) -> Decision {
        let (pa, pb) = (self.a.polygon(i), self.b.polygon(j));
        let ub0 = zero_object_upper_bound(&pa.mbr(), &pb.mbr());
        if ub0 <= self.d {
            return Decision::Confirm;
        }
        // 1-object filter on the larger polygon of the pair; only the left
        // side repeats consecutively after the tree join, so only left
        // polygons are worth caching.
        let (big, other_mbr, cache_key) = if pa.vertex_count() >= pb.vertex_count() {
            (pa, pb.mbr(), Some(i))
        } else {
            (pb, pa.mbr(), None)
        };
        let ub1 = match (&self.cached_edges, cache_key) {
            (Some((k, edges)), Some(key)) if *k == key => {
                one_object_upper_bound(big, edges, &other_mbr)
            }
            _ => {
                let edges = Self::sampled(big);
                let ub = one_object_upper_bound(big, &edges, &other_mbr);
                if let Some(key) = cache_key {
                    self.cached_edges = Some((key, edges));
                }
                ub
            }
        };
        if ub1 <= self.d {
            Decision::Confirm
        } else {
            Decision::Refine
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(x: f64, y: f64, s: f64) -> Polygon {
        Polygon::from_coords(&[(x, y), (x + s, y), (x + s, y + s), (x, y + s)])
    }

    fn dataset(polys: Vec<Polygon>) -> PreparedDataset {
        PreparedDataset::new("test", polys)
    }

    #[test]
    fn interior_stage_confirms_deep_candidates() {
        let query = square(0.0, 0.0, 16.0);
        let ds = dataset(vec![square(7.0, 7.0, 1.0), square(-5.0, -5.0, 1.0)]);
        let mut stage = InteriorFilterStage::new(&query, 4, &ds);
        assert_eq!(stage.examine(&0), Decision::Confirm, "deep-interior MBR");
        assert_eq!(
            stage.examine(&1),
            Decision::Refine,
            "outside MBR proves nothing"
        );
    }

    #[test]
    fn object_stage_confirms_close_pairs_and_caches() {
        let a = dataset(vec![square(0.0, 0.0, 4.0)]);
        let b = dataset(vec![square(4.5, 0.0, 4.0), square(100.0, 0.0, 1.0)]);
        let mut stage = ObjectFilterStage::new(&a, &b, 10.0);
        // MBR diameters bound the close pair's distance below d.
        assert_eq!(stage.examine(&(0, 0)), Decision::Confirm);
        // The far pair cannot be confirmed by upper bounds at d=10.
        let far = stage.examine(&(0, 1));
        assert_eq!(far, Decision::Refine);
    }
}
